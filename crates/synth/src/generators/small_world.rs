use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k` nearest neighbours, with each edge rewired to a
/// random endpoint with probability `rewire_p`.
///
/// Models the small-world behaviour cited in the paper's background (§II,
/// \[30\]): high local clustering (ring locality ⇒ near-diagonal non-zeros in
/// the generated order) plus a sprinkling of long-range shortcuts that
/// defeat purely diagonal orderings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WattsStrogatz {
    /// Number of vertices.
    pub n: u32,
    /// Each vertex links to `k` nearest ring neighbours (`k/2` on each
    /// side; `k` must be even and `>= 2`).
    pub k: u32,
    /// Probability of rewiring each lattice edge.
    pub rewire_p: f64,
}

impl WattsStrogatz {
    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd, zero, or `>= n`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(
            self.k >= 2 && self.k.is_multiple_of(2),
            "k must be even and >= 2"
        );
        assert!(self.k < self.n, "k must be < n");
        let mut rng = Rng::new(seed);
        let mut edges = Vec::with_capacity(self.n as usize * self.k as usize / 2);
        for u in 0..self.n {
            for hop in 1..=self.k / 2 {
                let v = (u + hop) % self.n;
                if rng.gen_bool(self.rewire_p) {
                    // Rewire the far endpoint to a uniform random vertex.
                    let w = rng.gen_u32(self.n);
                    if w != u {
                        edges.push((u, w));
                        continue;
                    }
                }
                edges.push((u, v));
            }
        }
        undirected_csr(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;
    use commorder_sparse::stats::mean_index_distance;

    #[test]
    fn zero_rewire_is_a_ring_lattice() {
        let g = WattsStrogatz {
            n: 100,
            k: 4,
            rewire_p: 0.0,
        }
        .generate(1)
        .unwrap();
        assert_well_formed(&g);
        // Every vertex has exactly degree 4.
        assert!(g.out_degrees().iter().all(|&d| d == 4));
        // All edges are short (ring distance <= 2, wrap-around aside).
        let long = g
            .iter()
            .filter(|&(r, c, _)| {
                let d = r.abs_diff(c);
                d.min(100 - d) > 2
            })
            .count();
        assert_eq!(long, 0);
    }

    #[test]
    fn rewiring_creates_long_range_edges() {
        let lattice = WattsStrogatz {
            n: 1000,
            k: 6,
            rewire_p: 0.0,
        }
        .generate(2)
        .unwrap();
        let rewired = WattsStrogatz {
            n: 1000,
            k: 6,
            rewire_p: 0.3,
        }
        .generate(2)
        .unwrap();
        assert!(mean_index_distance(&rewired) > mean_index_distance(&lattice) * 5.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = WattsStrogatz {
            n: 300,
            k: 4,
            rewire_p: 0.2,
        };
        assert_eq!(cfg.generate(4).unwrap(), cfg.generate(4).unwrap());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        let _ = WattsStrogatz {
            n: 10,
            k: 3,
            rewire_p: 0.0,
        }
        .generate(0);
    }
}
