//! Self-hosting test: the analyzer runs over its own workspace — all
//! ten crates, including this one — and must report nothing.
//!
//! This is the same invocation `cargo run -p xtask -- lint` and CI
//! perform; keeping it as a test means `cargo test` alone catches a
//! regression that introduces a finding (or an allowlist entry that
//! stopped matching anything).

use std::path::PathBuf;

use commorder_analyze::{analyze_workspace, AnalyzerConfig};

#[test]
fn workspace_analyzes_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        analyze_workspace(&root, &AnalyzerConfig::default()).expect("workspace must be readable");
    assert!(
        report.findings.is_empty(),
        "self-host findings:\n{}",
        report.render_text()
    );
}

#[test]
fn workspace_discovers_all_crates() {
    // The layer table and the tree must agree: every directory under
    // crates/ is declared, so XT0404 can only fire on genuinely new
    // crates.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = AnalyzerConfig::default();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(crates_dir).expect("crates/ must exist") {
        let entry = entry.expect("readable dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            config.layers.contains_key(&name),
            "crate {name:?} is missing from AnalyzerConfig::default().layers"
        );
    }
}
