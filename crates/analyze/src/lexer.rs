//! A lossless, zero-dependency Rust lexer.
//!
//! Every byte of the input belongs to exactly one token, so
//! concatenating the token texts reproduces the source byte-for-byte
//! (the propcheck round-trip test enforces this). The lexer understands
//! exactly as much Rust as the analysis passes need:
//!
//! * line and nested block comments, with doc-comment flavors;
//! * string-ish literals in all prefix forms (`"…"`, `b"…"`, `c"…"`,
//!   `r"…"`, `r#"…"#`, `br#"…"#`, `cr"…"`), char and byte-char
//!   literals, raw identifiers (`r#type`);
//! * the lifetime-versus-char-literal ambiguity after a `'`;
//! * shebang lines and numeric literals (including `1.5e-3` and
//!   `0xAE` without eating a following `+`).
//!
//! Everything else is an identifier, a one-byte punctuation token, or
//! `Unknown`. That is enough to kill the string/comment false positives
//! of a line-regex lint and to extract `use`/path graphs, without
//! needing a grammar.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of ASCII whitespace.
    Whitespace,
    /// A `#!...` line at byte offset 0 (not `#![...]`).
    Shebang,
    /// A `//` comment (not a doc comment).
    LineComment,
    /// A `///` or `//!` doc comment (`////…` is a plain comment).
    DocLineComment,
    /// A `/* … */` comment, nesting-aware.
    BlockComment,
    /// A `/** … */` or `/*! … */` doc comment.
    DocBlockComment,
    /// An identifier, keyword, or raw identifier (`r#type`).
    Ident,
    /// A lifetime such as `'a` (including the quote).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'"'`.
    CharLit,
    /// A string-ish literal in any prefix/raw form.
    StrLit,
    /// A numeric literal, integer or float, with any suffix.
    NumLit,
    /// A single punctuation byte.
    Punct,
    /// A byte the lexer cannot classify (kept for losslessness).
    Unknown,
}

impl TokenKind {
    /// `true` for comments and whitespace — tokens the analysis passes
    /// skip when matching code patterns.
    #[must_use]
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace
                | TokenKind::Shebang
                | TokenKind::LineComment
                | TokenKind::DocLineComment
                | TokenKind::BlockComment
                | TokenKind::DocBlockComment
        )
    }

    /// `true` for `///`, `//!`, `/**`, `/*!` comments.
    #[must_use]
    pub fn is_doc_comment(self) -> bool {
        matches!(self, TokenKind::DocLineComment | TokenKind::DocBlockComment)
    }
}

/// One token: a kind plus the byte span and start position it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte on its line.
    pub col: u32,
}

impl Token {
    /// The token's text, sliced from the source it was lexed from.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Byte length of the token.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the token covers zero bytes (never produced by
    /// [`lex`]; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// `true` for bytes that may begin an identifier. Non-ASCII bytes are
/// treated as identifier material so multi-byte UTF-8 text groups into
/// single tokens instead of `Unknown` runs.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// `true` for bytes that may continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a complete token stream. Lossless: the spans
/// partition `0..src.len()` in order, with no gaps or overlaps.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        if self.src.starts_with(b"#!") && self.src.get(2) != Some(&b'[') {
            let end = self.line_end(0);
            self.emit(TokenKind::Shebang, end);
        }
        while self.pos < self.src.len() {
            let start = self.pos;
            let b = self.src[start];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.whitespace(),
                b'/' => self.slash(),
                b'"' => self.string(start + 1),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ if b.is_ascii_punctuation() => self.emit(TokenKind::Punct, start + 1),
                _ => self.emit(TokenKind::Unknown, start + 1),
            }
        }
        self.tokens
    }

    /// Byte offset of the end of the current line (exclusive of the
    /// newline), starting the scan at `from`.
    fn line_end(&self, from: usize) -> usize {
        let mut p = from;
        while p < self.src.len() && self.src[p] != b'\n' {
            p += 1;
        }
        p
    }

    fn byte(&self, at: usize) -> Option<u8> {
        self.src.get(at).copied()
    }

    /// Pushes a token covering `self.pos..end` and advances the
    /// line/column cursor across the consumed bytes.
    fn emit(&mut self, kind: TokenKind, end: usize) {
        let start = self.pos;
        self.tokens.push(Token {
            kind,
            start,
            end,
            line: self.line,
            col: self.col,
        });
        for &b in &self.src[start..end] {
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.pos = end;
    }

    fn whitespace(&mut self) {
        let mut p = self.pos;
        while p < self.src.len() && matches!(self.src[p], b' ' | b'\t' | b'\r' | b'\n') {
            p += 1;
        }
        self.emit(TokenKind::Whitespace, p);
    }

    fn slash(&mut self) {
        match self.byte(self.pos + 1) {
            Some(b'/') => {
                let end = self.line_end(self.pos);
                let text = &self.src[self.pos..end];
                let doc = (text.starts_with(b"///") && !text.starts_with(b"////"))
                    || text.starts_with(b"//!");
                let kind = if doc {
                    TokenKind::DocLineComment
                } else {
                    TokenKind::LineComment
                };
                self.emit(kind, end);
            }
            Some(b'*') => self.block_comment(),
            _ => self.emit(TokenKind::Punct, self.pos + 1),
        }
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        // `/**/` and `/***` open plain comments; `/*!` and `/**x` open
        // doc comments.
        let doc = match (self.byte(start + 2), self.byte(start + 3)) {
            (Some(b'!'), _) => true,
            (Some(b'*'), Some(b'*' | b'/')) | (Some(b'*'), None) => false,
            (Some(b'*'), Some(_)) => true,
            _ => false,
        };
        let mut depth = 1usize;
        let mut p = start + 2;
        while p < self.src.len() && depth > 0 {
            if self.src[p] == b'/' && self.byte(p + 1) == Some(b'*') {
                depth += 1;
                p += 2;
            } else if self.src[p] == b'*' && self.byte(p + 1) == Some(b'/') {
                depth -= 1;
                p += 2;
            } else {
                p += 1;
            }
        }
        let kind = if doc {
            TokenKind::DocBlockComment
        } else {
            TokenKind::BlockComment
        };
        self.emit(kind, p);
    }

    /// Lexes a non-raw string body starting just after the opening
    /// quote at `body`; emits a `StrLit` from `self.pos`.
    fn string(&mut self, body: usize) {
        let mut p = body;
        while p < self.src.len() {
            match self.src[p] {
                b'\\' => p += 2,
                b'"' => {
                    p += 1;
                    break;
                }
                _ => p += 1,
            }
        }
        self.emit(TokenKind::StrLit, p.min(self.src.len()));
    }

    /// Lexes a raw string body: `hashes` hash marks were counted and
    /// `body` points just past the opening quote.
    fn raw_string(&mut self, body: usize, hashes: usize) {
        let mut p = body;
        while p < self.src.len() {
            if self.src[p] == b'"' {
                let mut h = 0;
                while h < hashes && self.byte(p + 1 + h) == Some(b'#') {
                    h += 1;
                }
                if h == hashes {
                    p += 1 + hashes;
                    self.emit(TokenKind::StrLit, p);
                    return;
                }
            }
            p += 1;
        }
        self.emit(TokenKind::StrLit, self.src.len());
    }

    /// A `'`: lifetime, char literal, or a stray quote.
    fn quote(&mut self) {
        let start = self.pos;
        match self.byte(start + 1) {
            // Escape: always a char literal. The byte after the
            // backslash is consumed by the escape (`'\''`), so the
            // closing-quote scan starts beyond it.
            Some(b'\\') => {
                let mut p = start + 3;
                while p < self.src.len() {
                    match self.src[p] {
                        b'\\' => p += 2,
                        b'\'' => {
                            p += 1;
                            break;
                        }
                        _ => p += 1,
                    }
                }
                self.emit(TokenKind::CharLit, p.min(self.src.len()));
            }
            Some(b) => {
                // One codepoint then a closing quote → char literal
                // ('a', '0', '(', 'é'). Otherwise an identifier start
                // means a lifetime ('a in `&'a str`, 'static).
                let cp_len = utf8_len(b);
                if self.byte(start + 1 + cp_len) == Some(b'\'') && b != b'\'' {
                    self.emit(TokenKind::CharLit, start + 2 + cp_len);
                } else if is_ident_start(b) {
                    let mut p = start + 2;
                    while p < self.src.len() && is_ident_continue(self.src[p]) {
                        p += 1;
                    }
                    self.emit(TokenKind::Lifetime, p);
                } else {
                    self.emit(TokenKind::Unknown, start + 1);
                }
            }
            None => self.emit(TokenKind::Unknown, start + 1),
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let radix_prefixed = self.byte(start) == Some(b'0')
            && matches!(self.byte(start + 1), Some(b'x' | b'o' | b'b'));
        let mut p = start;
        while p < self.src.len() {
            let b = self.src[p];
            if b.is_ascii_alphanumeric() || b == b'_' {
                p += 1;
            } else if b == b'.' && self.byte(p + 1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the literal; `0.unwrap()` does not.
                p += 1;
            } else if (b == b'+' || b == b'-')
                && !radix_prefixed
                && p > start
                && matches!(self.src[p - 1], b'e' | b'E')
                && self.byte(p + 1).is_some_and(|d| d.is_ascii_digit())
            {
                // Exponent sign in `1.5e-3`, but not the `+` in `0xAE+1`.
                p += 1;
            } else {
                break;
            }
        }
        self.emit(TokenKind::NumLit, p);
    }

    /// An identifier-start byte: raw identifier, prefixed string/char
    /// literal, or a plain identifier.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        let rest = &self.src[start..];
        // Longest literal prefix first: br"…", cr"…", then b/c/r forms.
        for prefix in [&b"br"[..], b"cr", b"b", b"c", b"r"] {
            if !rest.starts_with(prefix) {
                continue;
            }
            let after = start + prefix.len();
            let raw = prefix.ends_with(b"r");
            if raw {
                // Count hashes, then expect a quote (raw string) or, for
                // the bare `r#` prefix, an identifier (raw identifier).
                let mut hashes = 0;
                while self.byte(after + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.byte(after + hashes) == Some(b'"') {
                    self.raw_string(after + hashes + 1, hashes);
                    return;
                }
                if prefix == b"r" && hashes == 1 && self.byte(after + 1).is_some_and(is_ident_start)
                {
                    let mut p = after + 2;
                    while p < self.src.len() && is_ident_continue(self.src[p]) {
                        p += 1;
                    }
                    self.emit(TokenKind::Ident, p);
                    return;
                }
            } else if self.byte(after) == Some(b'"') {
                self.string(after + 1);
                return;
            } else if prefix == b"b" && self.byte(after) == Some(b'\'') {
                // Byte-char literal `b'x'`, including `b'"'` and `b'\''`;
                // the span starts at the `b` prefix.
                self.byte_char(after);
                return;
            }
        }
        let mut p = start;
        while p < self.src.len() && is_ident_continue(self.src[p]) {
            p += 1;
        }
        self.emit(TokenKind::Ident, p);
    }

    /// Lexes `b'x'` where `quote` is the offset of the opening `'`.
    fn byte_char(&mut self, quote: usize) {
        let mut p = quote + 1;
        if self.byte(p) == Some(b'\\') {
            p += 2;
        } else {
            p += 1;
        }
        if self.byte(p) == Some(b'\'') {
            p += 1;
        }
        self.emit(TokenKind::CharLit, p.min(self.src.len()));
    }
}

/// Byte length of the UTF-8 codepoint beginning with `b` (1 for ASCII
/// and for malformed leading bytes).
fn utf8_len(b: u8) -> usize {
    if b >= 0xF0 {
        4
    } else if b >= 0xE0 {
        3
    } else if b >= 0xC0 {
        2
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reassemble(src: &str) -> String {
        lex(src).iter().map(|t| t.text(src)).collect()
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lossless_on_plain_code() {
        let src = "fn main() { let x = 1 + 2; }\n";
        assert_eq!(reassemble(src), src);
    }

    #[test]
    fn raw_strings_with_hashes() {
        for src in [
            "r\"no hashes\"",
            "r#\"one \" hash\"#",
            "r##\"nested \"# still open\"##",
            "br#\"bytes\"#",
            "cr#\"c string\"#",
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, TokenKind::StrLit, "{src}");
            assert_eq!(reassemble(src), src);
        }
    }

    #[test]
    fn raw_identifier_is_ident() {
        let toks = lex("r#type");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Ident);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ x";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[0].text(src), "/* outer /* inner */ still comment */");
        assert_eq!(reassemble(src), src);
    }

    #[test]
    fn doc_comment_flavors() {
        assert_eq!(kinds("/// doc"), vec![TokenKind::DocLineComment]);
        assert_eq!(kinds("//! inner"), vec![TokenKind::DocLineComment]);
        assert_eq!(kinds("//// rule"), vec![TokenKind::LineComment]);
        assert_eq!(kinds("/** doc */"), vec![TokenKind::DocBlockComment]);
        assert_eq!(kinds("/*! inner */"), vec![TokenKind::DocBlockComment]);
        assert_eq!(kinds("/**/"), vec![TokenKind::BlockComment]);
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Punct, TokenKind::Lifetime, TokenKind::Ident,]
        );
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'a'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("'\\n'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("'\\''"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("'('"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("b'\"'"), vec![TokenKind::CharLit]);
    }

    #[test]
    fn shebang_only_at_offset_zero() {
        let src = "#!/usr/bin/env run\nfn main() {}\n";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::Shebang);
        assert_eq!(toks[0].text(src), "#!/usr/bin/env run");
        assert_eq!(reassemble(src), src);
        // `#![attr]` is not a shebang.
        let attr = "#![forbid(unsafe_code)]\n";
        assert_eq!(lex(attr)[0].kind, TokenKind::Punct);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = "let s = \"call .unwrap() /* not a comment */\";";
        let toks = lex(src);
        let lit: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .collect();
        assert_eq!(lit.len(), 1);
        assert!(lit[0].text(src).contains(".unwrap()"));
        assert_eq!(reassemble(src), src);
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let src = "0.unwrap()";
        let toks = kinds(src);
        assert_eq!(toks[0], TokenKind::NumLit);
        assert_eq!(toks[1], TokenKind::Punct);
        assert_eq!(reassemble(src), src);
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::NumLit]);
        assert_eq!(
            kinds("0xAE+1"),
            vec![TokenKind::NumLit, TokenKind::Punct, TokenKind::NumLit]
        );
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "ab\ncd ef";
        let toks: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .collect();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 1));
        assert_eq!((toks[2].line, toks[2].col), (2, 4));
    }

    #[test]
    fn unterminated_forms_stay_lossless() {
        for src in ["\"open", "r#\"open", "/* open", "'\\", "b'"] {
            assert_eq!(reassemble(src), src, "{src}");
        }
    }
}
