//! Determinism seed with a thread-identity source the module-level
//! hazard scan does not know about.

/// Seed: report renderer that brands each row with the worker thread.
pub fn render_json(rows: &[u32]) -> String {
    let who = std::thread::current();
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!("{r}@{:?};", who.id()));
    }
    out
}
