//! The aggregating in-memory registry sink: span statistics by path,
//! counter/gauge totals, power-of-two histograms, and the
//! human-readable phase-tree summary behind `commorder-cli profile`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

use crate::event::Event;
use crate::names;
use crate::sink::Sink;

/// Aggregate timing of one span path (or one `(path, detail)` instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Completed spans recorded.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Fastest single span.
    pub min_ns: u64,
    /// Slowest single span.
    pub max_ns: u64,
}

impl SpanStat {
    fn add(&mut self, dur_ns: u64) {
        if self.count == 0 {
            self.min_ns = dur_ns;
            self.max_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
            self.max_ns = self.max_ns.max(dur_ns);
        }
        self.count += 1;
        self.total_ns += dur_ns;
    }
}

/// Power-of-two bucketed distribution of `observe` values (bucket `i`
/// counts observations with `floor(log2(value_ns)) == i`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Bucket counts (index = `floor(log2(value_ns))`, clamped).
    pub buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    fn add(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count = self.count.saturating_add(1);
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let ns = (value * 1e9).max(0.0);
        let bucket = if ns < 1.0 {
            0
        } else {
            (ns.log2() as usize).min(63)
        };
        self.buckets[bucket] = self.buckets[bucket].saturating_add(1);
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Value at quantile `q` (clamped to `[0, 1]`); 0 when empty.
    ///
    /// Resolution is one power-of-two bucket: the returned value is the
    /// lower bound of the bucket holding the `ceil(q * count)`-th
    /// observation, clamped to the exact observed `[min, max]` range (so
    /// a single-sample histogram returns that sample at every quantile).
    /// Bucket counts accumulate in 128-bit arithmetic, so saturated
    /// (`u64::MAX`) buckets cannot overflow the scan.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum: u128 = 0;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            cum += u128::from(bucket);
            if cum >= u128::from(rank) {
                let lower_bound = if i == 0 {
                    0.0
                } else {
                    (i as f64).exp2() * 1e-9
                };
                return lower_bound.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.50)`).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile (`quantile(0.95)`).
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile (`quantile(0.99)`).
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Aggregate heap-allocation totals attributed to one span path (fed by
/// the `obs-alloc` counting allocator; always present in the API so
/// consumers need no feature gates, empty when the feature is off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStat {
    /// Allocation calls (alloc + realloc) recorded under the path.
    pub count: u64,
    /// Bytes requested by those calls.
    pub bytes: u64,
}

#[derive(Default)]
struct RegistryInner {
    spans: BTreeMap<String, SpanStat>,
    detailed: BTreeMap<(String, String), SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    allocs: BTreeMap<String, AllocStat>,
}

/// Aggregating sink: keeps totals instead of a stream.
///
/// Install alongside a [`crate::JsonlSink`] (or alone) and read it back
/// after the run via [`Registry::render_tree`], [`Registry::hottest`],
/// and the metric accessors.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Aggregate statistics for an exact span path (`a/b/c`).
    #[must_use]
    pub fn span(&self, path: &str) -> Option<SpanStat> {
        self.lock().spans.get(path).copied()
    }

    /// All span paths with their statistics, in path order.
    #[must_use]
    pub fn spans(&self) -> Vec<(String, SpanStat)> {
        self.lock()
            .spans
            .iter()
            .map(|(p, s)| (p.clone(), *s))
            .collect()
    }

    /// Current value of a counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Last sampled value of a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Exclusive (self) time of an exact span path: its inclusive total
    /// minus the summed totals of its direct children, saturating at 0.
    /// `None` when the path was never recorded.
    #[must_use]
    pub fn self_ns(&self, path: &str) -> Option<u64> {
        let inner = self.lock();
        let stat = inner.spans.get(path)?;
        Some(
            stat.total_ns
                .saturating_sub(children_total_ns(&inner.spans, path)),
        )
    }

    /// Every span path with `(inclusive_ns, self_ns)`, in path order.
    /// By construction `self_ns <= inclusive_ns` for every row.
    #[must_use]
    pub fn self_times(&self) -> Vec<(String, u64, u64)> {
        let inner = self.lock();
        inner
            .spans
            .iter()
            .map(|(path, stat)| {
                let self_ns = stat
                    .total_ns
                    .saturating_sub(children_total_ns(&inner.spans, path));
                (path.clone(), stat.total_ns, self_ns)
            })
            .collect()
    }

    /// Aggregate allocation totals for an exact span path (recorded only
    /// when the `obs-alloc` counting allocator is installed).
    #[must_use]
    pub fn alloc(&self, path: &str) -> Option<AllocStat> {
        self.lock().allocs.get(path).copied()
    }

    /// All span paths with allocation totals, in path order.
    #[must_use]
    pub fn allocs(&self) -> Vec<(String, AllocStat)> {
        self.lock()
            .allocs
            .iter()
            .map(|(p, s)| (p.clone(), *s))
            .collect()
    }

    /// Collapsed-stack ("folded") flamegraph export: one
    /// `root;child;leaf count` line per span path, weighted by the
    /// completed-span **count** and sorted lexicographically by stack.
    ///
    /// Counts — not durations — are the weights precisely so the export
    /// is deterministic: with thread-invariant chunking every span path
    /// completes the same number of times at any thread count, making
    /// this output byte-identical across runs. Feed it to any
    /// collapsed-stack renderer (`flamegraph.pl`, inferno, speedscope).
    #[must_use]
    pub fn render_folded(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (path, stat) in &inner.spans {
            let _ = writeln!(out, "{} {}", path.replace('/', ";"), stat.count);
        }
        out
    }

    /// The `k` slowest span instances (by summed duration) among spans
    /// named `name` that carried a detail label — e.g. the hottest
    /// (matrix, technique) grid cells. Ties break by label so the order
    /// is stable.
    #[must_use]
    pub fn hottest(&self, name: &str, k: usize) -> Vec<(String, SpanStat)> {
        let inner = self.lock();
        let mut rows: Vec<(String, SpanStat)> = inner
            .detailed
            .iter()
            .filter(|((path, _), _)| path.rsplit('/').next() == Some(name))
            .map(|((_, detail), stat)| (detail.clone(), *stat))
            .collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }

    /// Renders the aggregated spans as an indented phase tree with
    /// inclusive time, exclusive (self) time, and a percent-of-parent
    /// column, followed by the counter/gauge/histogram/allocation
    /// summaries.
    ///
    /// Siblings are sorted **lexicographically by name** — never by
    /// time — so the rendering is byte-stable across runs and thread
    /// counts and can be pinned by golden tests.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        out.push_str("phase tree (by span path; inclusive / self / % of parent)\n");
        let roots: Vec<&String> = inner.spans.keys().filter(|p| !p.contains('/')).collect();
        let root_total: u64 = roots
            .iter()
            .filter_map(|p| inner.spans.get(*p))
            .map(|s| s.total_ns)
            .sum();
        // BTreeMap keys iterate in lexicographic order already.
        for root in roots {
            render_subtree(&mut out, &inner.spans, root, root_total, 0);
        }
        if !inner.counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in &inner.counters {
                let _ = writeln!(out, "  {name:<32} {value}");
            }
        }
        if !inner.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, value) in &inner.gauges {
                let _ = writeln!(out, "  {name:<32} {value:.4}");
            }
        }
        if !inner.histograms.is_empty() {
            out.push_str("histograms\n");
            for (name, h) in &inner.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} n={} mean={} min={} max={} p50={} p95={} p99={}",
                    h.count,
                    fmt_seconds(h.mean()),
                    fmt_seconds(if h.count == 0 { 0.0 } else { h.min }),
                    fmt_seconds(if h.count == 0 { 0.0 } else { h.max }),
                    fmt_seconds(h.p50()),
                    fmt_seconds(h.p95()),
                    fmt_seconds(h.p99()),
                );
            }
        }
        if !inner.allocs.is_empty() {
            out.push_str("allocations (by span path)\n");
            for (path, stat) in &inner.allocs {
                let _ = writeln!(
                    out,
                    "  {path:<34} {:>10} allocs {:>14} bytes",
                    stat.count, stat.bytes
                );
            }
        }
        out
    }
}

/// Summed inclusive time of `path`'s direct children.
fn children_total_ns(spans: &BTreeMap<String, SpanStat>, path: &str) -> u64 {
    let prefix = format!("{path}/");
    spans
        .range(prefix.clone()..)
        .take_while(|(p, _)| p.starts_with(&prefix))
        .filter(|(p, _)| !p[prefix.len()..].contains('/'))
        .map(|(_, s)| s.total_ns)
        .sum()
}

fn render_subtree(
    out: &mut String,
    spans: &BTreeMap<String, SpanStat>,
    path: &str,
    parent_total: u64,
    level: usize,
) {
    let Some(stat) = spans.get(path) else { return };
    let name = path.rsplit('/').next().unwrap_or(path);
    let percent = if parent_total > 0 {
        100.0 * stat.total_ns as f64 / parent_total as f64
    } else {
        100.0
    };
    let self_ns = stat.total_ns.saturating_sub(children_total_ns(spans, path));
    let indent = "  ".repeat(level);
    let label = format!("{indent}{name}");
    let _ = writeln!(
        out,
        "  {label:<34} {:>6}x {:>10} {:>10} {percent:5.1}%",
        stat.count,
        fmt_ns(stat.total_ns),
        fmt_ns(self_ns),
    );
    // Direct children: paths extending `path` by exactly one segment,
    // already in lexicographic order from the BTreeMap range scan.
    let prefix = format!("{path}/");
    let children: Vec<&String> = spans
        .range(prefix.clone()..)
        .take_while(|(p, _)| p.starts_with(&prefix))
        .map(|(p, _)| p)
        .filter(|p| !p[prefix.len()..].contains('/'))
        .collect();
    for child in children {
        render_subtree(out, spans, child, stat.total_ns, level + 1);
    }
}

/// Adaptive duration formatting for nanosecond totals.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    fmt_seconds(s)
}

/// Adaptive duration formatting for seconds.
#[must_use]
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

impl Sink for Registry {
    fn record(&self, event: &Event) {
        let mut inner = self.lock();
        match event {
            Event::Meta { .. } => {}
            Event::Span {
                path,
                detail,
                dur_ns,
                ..
            } => {
                inner.spans.entry(path.clone()).or_default().add(*dur_ns);
                if let Some(detail) = detail {
                    inner
                        .detailed
                        .entry((path.clone(), detail.clone()))
                        .or_default()
                        .add(*dur_ns);
                }
            }
            Event::Counter { name, delta } => {
                *inner.counters.entry(name).or_insert(0) += delta;
            }
            Event::Gauge { name, value } => {
                inner.gauges.insert(name, *value);
            }
            Event::Observe { name, value } => {
                inner.histograms.entry(name).or_default().add(*value);
            }
            Event::Alloc { path, count, bytes } => {
                let stat = inner.allocs.entry(path.clone()).or_default();
                stat.count = stat.count.saturating_add(*count);
                stat.bytes = stat.bytes.saturating_add(*bytes);
            }
        }
        // Every name reaching a registry should be declared; aggregation
        // still proceeds for unknown names (the CHK validators flag them).
        debug_assert!(
            match event {
                Event::Counter { name, .. }
                | Event::Gauge { name, .. }
                | Event::Observe { name, .. } => names::lookup(name).is_some(),
                _ => true,
            },
            "undeclared metric: {event:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, detail: Option<&str>, dur_ns: u64) -> Event {
        Event::Span {
            thread: 0,
            depth: path.matches('/').count() as u64,
            path: path.to_string(),
            name: "test",
            detail: detail.map(ToString::to_string),
            start_ns: 0,
            dur_ns,
        }
    }

    #[test]
    fn spans_aggregate_by_path() {
        let r = Registry::new();
        r.record(&span("job", None, 10));
        r.record(&span("job", None, 30));
        r.record(&span("job/reorder", None, 5));
        let s = r.span("job").expect("path recorded");
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(r.spans().len(), 2);
    }

    #[test]
    fn counters_gauges_histograms() {
        let r = Registry::new();
        r.record(&Event::Counter {
            name: "exec.jobs",
            delta: 2,
        });
        r.record(&Event::Counter {
            name: "exec.jobs",
            delta: 3,
        });
        r.record(&Event::Gauge {
            name: "exec.utilization",
            value: 0.5,
        });
        r.record(&Event::Observe {
            name: "exec.queue_wait_seconds",
            value: 0.001,
        });
        r.record(&Event::Observe {
            name: "exec.queue_wait_seconds",
            value: 0.003,
        });
        assert_eq!(r.counter("exec.jobs"), 5);
        assert_eq!(r.counter("exec.steals"), 0);
        assert_eq!(r.gauge("exec.utilization"), Some(0.5));
        let h = r.histogram("exec.queue_wait_seconds").expect("observed");
        assert_eq!(h.count, 2);
        assert!((h.mean() - 0.002).abs() < 1e-12);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn hottest_ranks_detailed_instances() {
        let r = Registry::new();
        r.record(&span("job/grid.cell", Some("a/RABBIT"), 10));
        r.record(&span("job/grid.cell", Some("b/RCM"), 90));
        r.record(&span("job/grid.cell", Some("a/RABBIT"), 20));
        let top = r.hottest("grid.cell", 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "b/RCM");
        assert_eq!(top[0].1.total_ns, 90);
        assert_eq!(top[1].0, "a/RABBIT");
        assert_eq!(top[1].1.total_ns, 30);
        assert!(r.hottest("nope", 5).is_empty());
    }

    #[test]
    fn tree_renders_nested_phases() {
        let r = Registry::new();
        r.record(&span("run", None, 100));
        r.record(&span("run/fast", None, 20));
        r.record(&span("run/slow", None, 80));
        r.record(&span("run/slow/inner", None, 40));
        let tree = r.render_tree();
        let fast = tree.find("fast").expect("fast phase listed");
        let slow = tree.find("slow").expect("slow phase listed");
        assert!(
            fast < slow,
            "children sorted lexicographically, not by time:\n{tree}"
        );
        assert!(tree.contains("inner"));
        assert!(tree.contains("80.0%"), "{tree}");
    }

    #[test]
    fn tree_sibling_order_is_insertion_order_independent() {
        let forward = Registry::new();
        forward.record(&span("run", None, 100));
        forward.record(&span("run/a", None, 10));
        forward.record(&span("run/b", None, 90));
        let backward = Registry::new();
        backward.record(&span("run/b", None, 90));
        backward.record(&span("run/a", None, 10));
        backward.record(&span("run", None, 100));
        assert_eq!(forward.render_tree(), backward.render_tree());
        assert_eq!(forward.render_folded(), backward.render_folded());
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let r = Registry::new();
        r.record(&span("run", None, 100));
        r.record(&span("run/a", None, 30));
        r.record(&span("run/b", None, 20));
        r.record(&span("run/a/deep", None, 25));
        assert_eq!(r.self_ns("run"), Some(50)); // 100 - (30 + 20)
        assert_eq!(r.self_ns("run/a"), Some(5)); // grandchild excluded
        assert_eq!(r.self_ns("run/b"), Some(20));
        assert_eq!(r.self_ns("missing"), None);
        for (_, total_ns, self_ns) in r.self_times() {
            assert!(self_ns <= total_ns);
        }
    }

    #[test]
    fn self_time_saturates_when_children_exceed_parent() {
        // Aggregate child totals can exceed the parent's through clock
        // quantization; self time must clamp to zero, never wrap.
        let r = Registry::new();
        r.record(&span("run", None, 10));
        r.record(&span("run/child", None, 15));
        assert_eq!(r.self_ns("run"), Some(0));
    }

    #[test]
    fn folded_output_is_sorted_and_count_weighted() {
        let r = Registry::new();
        r.record(&span("suite", None, 5));
        r.record(&span("exec.job/grid.job", None, 80));
        r.record(&span("exec.job", None, 100));
        r.record(&span("exec.job", None, 50));
        assert_eq!(
            r.render_folded(),
            "exec.job 2\nexec.job;grid.job 1\nsuite 1\n"
        );
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn quantile_of_single_sample_returns_the_sample() {
        let mut h = Histogram::default();
        h.add(0.037);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert!((h.quantile(q) - 0.037).abs() < 1e-12, "q={q}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::default();
        for i in 1..=1000u32 {
            h.add(f64::from(i) * 1e-6);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        assert!(p50 >= h.min && p99 <= h.max);
        // Bucket resolution is a factor of two.
        assert!((250e-6..=1000e-6).contains(&p50), "p50={p50}");
    }

    #[test]
    fn quantile_survives_saturating_bucket_counts() {
        let mut h = Histogram {
            count: u64::MAX,
            sum: f64::MAX,
            min: 1e-9,
            max: 1.0,
            buckets: [0; 64],
        };
        h.buckets[0] = u64::MAX;
        h.buckets[30] = u64::MAX;
        h.buckets[63] = u64::MAX;
        let (p50, p99) = (h.p50(), h.p99());
        assert!(p50.is_finite() && p99.is_finite());
        assert!(p50 <= p99);
        assert!(p50 >= h.min && p99 <= h.max);
        // Re-adding at saturation must not wrap.
        h.add(0.5);
        assert_eq!(h.count, u64::MAX);
    }

    #[test]
    fn non_finite_observations_are_skipped() {
        let mut h = Histogram::default();
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert_eq!(h.count, 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn alloc_events_aggregate_by_path() {
        let r = Registry::new();
        r.record(&Event::Alloc {
            path: "exec.job".to_string(),
            count: 3,
            bytes: 100,
        });
        r.record(&Event::Alloc {
            path: "exec.job".to_string(),
            count: 2,
            bytes: 50,
        });
        let stat = r.alloc("exec.job").expect("alloc recorded");
        assert_eq!(stat.count, 5);
        assert_eq!(stat.bytes, 150);
        assert_eq!(r.allocs().len(), 1);
        assert!(r.alloc("missing").is_none());
        assert!(r.render_tree().contains("allocations"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(1_500_000_000), "1.500s");
        assert_eq!(fmt_ns(2_500_000), "2.500ms");
        assert_eq!(fmt_ns(900), "0.9us");
    }
}
