//! Workspace-wide symbol table and intra-workspace call graph.
//!
//! Built from the same lossless token stream as every other pass — no
//! AST, no type inference. Function items (and worker-closure
//! pseudo-items passed to `spawn`) become nodes; call sites inside
//! their bodies are resolved against the symbol table:
//!
//! * **plain calls** (`helper(…)`) resolve to free functions — same
//!   file, then unique-in-crate, then through the file's `use`
//!   imports, then unique-workspace;
//! * **path calls** (`crate::io::read(…)`, `CsrMatrix::identity(…)`,
//!   `Self::step(…)`) resolve through module and type qualifiers;
//! * **method calls** (`x.replay(…)`) resolve through a receiver
//!   type where the tokens pin one: `self.` uses the caller's `impl`
//!   type, `self.field` goes through the struct field table, a plain
//!   variable receiver through the caller's parameter and `let`
//!   bindings, and a call-chain tail (`Rabbit::new().run(…)`,
//!   `Pipeline::builder(…).kernel(…).build()`) through the declared
//!   return types of the workspace functions along the chain. A typed
//!   receiver binds via the per-type method table (or, when the type
//!   names a trait — `dyn`/`impl`/generic bound — via the trait-impl
//!   table, class-hierarchy-analysis style: edges to *every*
//!   implementor, reported as ambiguous).
//!
//! Method-call edges are keyed by resolved receiver/owner type only —
//! there is **no bare-name fallback**. A receiver the token stream
//! cannot type counts as external rather than growing guessed edges
//! to every same-named method (the `Rabbit::run`/`ExperimentSpec::run`
//! collision class). Call sites that name no workspace function are
//! counted as external — recorded, never guessed. The graph carries
//! three declared seed sets (determinism, hot-path, worker) whose
//! reachability closures drive the [`crate::hotpath`],
//! [`crate::concurrency`], and effect-inference passes; the
//! serializable projection ([`CallGraphReport`]) is emitted in
//! `analyze --json` and validated by `commorder-check`'s `CHK1102`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{code_indices, in_ranges};
use crate::layering::cyclic_sccs;
use crate::lexer::{Token, TokenKind};
use crate::model::{CallGraphReport, CrateData, FileRole};

/// One function item — or worker-closure pseudo-item — in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning crate in the discovery order.
    pub crate_idx: usize,
    /// Index of the owning file within the crate.
    pub file_idx: usize,
    /// Display name without position: `name`, `Type::name`, or
    /// `parent::{closure}` for worker closures.
    pub name: String,
    /// Bare name used for resolution; `"{closure}"` for closures.
    pub simple: String,
    /// Enclosing `impl`/`trait` type, when any.
    pub impl_type: Option<String>,
    /// The trait an `impl Trait for Type` block implements, when any.
    pub impl_trait: Option<String>,
    /// Byte offset of the `fn` keyword (the signature start).
    pub sig_start: usize,
    /// Byte range of the body (including delimiters).
    pub body: (usize, usize),
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// `true` for `spawn`-closure pseudo-items.
    pub is_closure: bool,
    /// Head type of the declared return type, with `Self` resolved to
    /// the impl type — `fn builder() -> PipelineBuilder` stores
    /// `PipelineBuilder`, `fn new() -> Self` on `Rabbit` stores
    /// `Rabbit`. Drives call-chain receiver typing.
    pub ret_type: Option<String>,
}

/// The assembled graph: nodes, adjacency, seed sets, and site counts.
pub struct CallGraph {
    /// Nodes sorted by (crate, file, line, col).
    pub nodes: Vec<FnNode>,
    /// Adjacency lists (sorted, deduplicated).
    pub adj: Vec<Vec<usize>>,
    /// Determinism seeds: `render_json` functions and `Pipeline`
    /// methods.
    pub seeds_determinism: BTreeSet<usize>,
    /// Hot-path seeds: nodes whose bare name is in the configured set.
    pub seeds_hotpath: BTreeSet<usize>,
    /// Worker seeds: `spawn` closures plus configured entry points.
    pub seeds_worker: BTreeSet<usize>,
    /// Call sites observed in non-test bodies.
    pub call_sites: u32,
    /// Sites with at least one workspace candidate (edges added to
    /// every candidate).
    pub resolved: u32,
    /// Sites naming no workspace function (std/core/external).
    pub external: u32,
    /// Subset of `resolved` with more than one candidate.
    pub ambiguous: u32,
    /// Resolved call-site edges with their source anchors —
    /// `(caller, callee, byte offset, line, col)` of the site's name
    /// token, one entry per (site, candidate) pair in extraction
    /// order. The effect pass anchors its findings here.
    pub site_edges: Vec<(usize, usize, usize, u32, u32)>,
    /// Node ids per (crate, file), for innermost-owner lookups.
    file_nodes: BTreeMap<(usize, usize), Vec<usize>>,
}

/// Keywords that look like `ident (` but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "as", "await", "box", "break", "const", "continue", "dyn", "else", "fn", "for", "if", "impl",
    "in", "let", "loop", "match", "move", "mut", "pub", "ref", "return", "unsafe", "where",
    "while", "yield",
];

fn is_punct(tok: &Token, src: &str, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text(src).len() == 1 && tok.text(src).starts_with(c)
}

fn ident_is(tok: &Token, src: &str, word: &str) -> bool {
    tok.kind == TokenKind::Ident && tok.text(src) == word
}

/// `true` when code indices `at` and `at + 1` form an adjacent `::`.
fn double_colon_at(src: &str, tokens: &[Token], code: &[usize], at: usize) -> bool {
    let (Some(&a), Some(&b)) = (code.get(at), code.get(at + 1)) else {
        return false;
    };
    is_punct(&tokens[a], src, ':')
        && is_punct(&tokens[b], src, ':')
        && tokens[a].end == tokens[b].start
}

/// `true` for names a call site could bind: first char lowercase or
/// `_` (raw-identifier prefixes are stripped first).
fn is_snake(name: &str) -> bool {
    let bare = name.strip_prefix("r#").unwrap_or(name);
    bare.chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

/// An `impl`/`trait` block: byte range plus the type it attributes.
struct TypeBlock {
    start: usize,
    end: usize,
    name: String,
    /// For `impl Trait for Type`, the trait name.
    trait_name: Option<String>,
}

/// Extracts `impl`/`trait` block ranges with their subject type name.
/// For `impl Trait for Type` the subject is `Type`; generics, `&`,
/// `mut`, and `dyn` are skipped; `where` clauses end name collection.
fn type_blocks(src: &str, tokens: &[Token], code: &[usize]) -> Vec<TypeBlock> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let t = &tokens[code[i]];
        let is_impl = ident_is(t, src, "impl");
        let is_trait = ident_is(t, src, "trait");
        if !(is_impl || is_trait) {
            i += 1;
            continue;
        }
        // `impl` may also open `impl Trait` return types; those appear
        // after `->` or inside parens and never reach a `{` at depth 0
        // before `;`/`)`, so the body scan below naturally rejects them
        // when no block opens.
        let mut angle = 0i64;
        let mut before_for: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut j = i + 1;
        let mut open = None;
        while j < code.len() {
            let n = &tokens[code[j]];
            if is_punct(n, src, '<') {
                angle += 1;
            } else if is_punct(n, src, '>') {
                // `->` arrows do not close a generic bracket.
                let arrow = j > 0 && is_punct(&tokens[code[j - 1]], src, '-');
                if !arrow && angle > 0 {
                    angle -= 1;
                }
            } else if angle == 0 {
                if is_punct(n, src, '{') {
                    open = Some(j);
                    break;
                }
                if is_punct(n, src, ';') || is_punct(n, src, '(') {
                    break; // `impl Trait` in type position / malformed
                }
                if ident_is(n, src, "for") {
                    saw_for = true;
                } else if ident_is(n, src, "where") {
                    // Type names in bounds must not win.
                    while j < code.len() && !is_punct(&tokens[code[j]], src, '{') {
                        j += 1;
                    }
                    continue;
                } else if n.kind == TokenKind::Ident
                    && !ident_is(n, src, "dyn")
                    && !ident_is(n, src, "mut")
                {
                    let slot = if saw_for {
                        &mut after_for
                    } else {
                        &mut before_for
                    };
                    *slot = Some(n.text(src).to_string());
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let (name, trait_name) = if saw_for {
            (after_for, before_for)
        } else {
            (before_for, None)
        };
        let end = matching_close(src, tokens, code, open);
        if let Some(name) = name {
            blocks.push(TypeBlock {
                start: t.start,
                end,
                name,
                trait_name,
            });
        }
        // Descend into the block so nested impls are still found.
        i = open + 1;
    }
    blocks
}

/// Byte offset one past the `}` matching the `{` at code index `open`.
fn matching_close(src: &str, tokens: &[Token], code: &[usize], open: usize) -> usize {
    let mut depth = 0i64;
    let mut k = open;
    while k < code.len() {
        let t = &tokens[code[k]];
        if is_punct(t, src, '{') {
            depth += 1;
        } else if is_punct(t, src, '}') {
            depth -= 1;
            if depth == 0 {
                return t.end;
            }
        }
        k += 1;
    }
    src.len()
}

/// What the tokens say about a method call's receiver.
enum Recv {
    /// Literal `self.name(…)`.
    SelfDirect,
    /// `self.field.name(…)` — typed through the struct field table.
    SelfField(String),
    /// `x.name(…)` on a plain variable; the byte offset disambiguates
    /// shadowed `let` bindings.
    Var(String, usize),
    /// `….prev(…).name(…)` — the receiver is a call result; the code
    /// index of its closing `)` lets the resolver walk the chain
    /// through declared return types.
    Chain(usize),
    /// Literals, index results, deep field chains — nothing the token
    /// stream can type.
    Unknown,
}

/// What one call site looks like before resolution.
enum Site {
    /// `name(…)` with no qualifier or receiver.
    Plain { name: String },
    /// `recv.name(…)`.
    Method { name: String, recv: Recv },
    /// `a::b::name(…)`.
    Path { segments: Vec<String> },
}

/// A call site plus the anchor of its name token, for `site_edges`.
struct SiteAt {
    /// The site shape.
    site: Site,
    /// Byte offset of the name token.
    pos: usize,
    /// 1-based line of the name token.
    line: u32,
    /// 1-based column of the name token.
    col: u32,
}

/// Builds the call graph over every non-test `fn` item of the
/// workspace (bin targets excluded, mirroring the module graphs).
#[must_use]
pub fn build(
    crates: &[CrateData],
    hot_seed_fns: &BTreeSet<String>,
    worker_seed_fns: &BTreeSet<String>,
) -> CallGraph {
    let mut nodes: Vec<FnNode> = Vec::new();

    // Type facts come first: return-type parsing prefers known names.
    let facts = collect_type_facts(crates);

    // Phase 1: function items.
    for (ci, c) in crates.iter().enumerate() {
        for (fi, f) in c.files.iter().enumerate() {
            if f.is_bin {
                continue;
            }
            let code = code_indices(&f.tokens);
            let blocks = type_blocks(&f.src, &f.tokens, &code);
            collect_fns(ci, fi, f, &code, &blocks, &facts.known, &mut nodes);
        }
    }
    // Phase 2: worker-closure pseudo-items (need the fns for parents).
    let mut closures = Vec::new();
    for (ci, c) in crates.iter().enumerate() {
        for (fi, f) in c.files.iter().enumerate() {
            if f.is_bin {
                continue;
            }
            let code = code_indices(&f.tokens);
            collect_spawn_closures(ci, fi, f, &code, &nodes, &mut closures);
        }
    }
    nodes.extend(closures);
    nodes.sort_by(|a, b| {
        (a.crate_idx, a.file_idx, a.line, a.col).cmp(&(b.crate_idx, b.file_idx, b.line, b.col))
    });

    let mut file_nodes: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        file_nodes
            .entry((n.crate_idx, n.file_idx))
            .or_default()
            .push(i);
    }

    let mut graph = CallGraph {
        adj: vec![Vec::new(); nodes.len()],
        nodes,
        seeds_determinism: BTreeSet::new(),
        seeds_hotpath: BTreeSet::new(),
        seeds_worker: BTreeSet::new(),
        call_sites: 0,
        resolved: 0,
        external: 0,
        ambiguous: 0,
        site_edges: Vec::new(),
        file_nodes,
    };
    graph.assign_seeds(hot_seed_fns, worker_seed_fns);
    graph.resolve_sites(crates, &facts);
    graph
}

/// Scans one file for `fn` items outside macro bodies and test
/// regions, attributing each to its innermost `impl`/`trait` block.
fn collect_fns(
    ci: usize,
    fi: usize,
    f: &crate::model::FileData,
    code: &[usize],
    blocks: &[TypeBlock],
    known: &BTreeSet<String>,
    nodes: &mut Vec<FnNode>,
) {
    let src = &f.src;
    let tokens = &f.tokens;
    let mut i = 0;
    while i + 1 < code.len() {
        let t = &tokens[code[i]];
        if !ident_is(t, src, "fn")
            || in_ranges(t.start, &f.macro_ranges)
            || in_ranges(t.start, &f.test_ranges)
        {
            i += 1;
            continue;
        }
        let name_tok = &tokens[code[i + 1]];
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Signature scan: the body is the first `{` at paren/bracket
        // depth 0; a `;` there instead means a bodyless declaration.
        let mut depth = 0i64;
        let mut j = i + 2;
        let mut open = None;
        let mut arrow = None;
        while j < code.len() {
            let n = &tokens[code[j]];
            if is_punct(n, src, '(') || is_punct(n, src, '[') {
                depth += 1;
            } else if is_punct(n, src, ')') || is_punct(n, src, ']') {
                depth -= 1;
            } else if depth == 0 {
                if is_punct(n, src, '{') {
                    open = Some(j);
                    break;
                }
                if is_punct(n, src, ';') {
                    break;
                }
                if arrow.is_none()
                    && is_punct(n, src, '-')
                    && code.get(j + 1).is_some_and(|&k| {
                        is_punct(&tokens[k], src, '>') && n.end == tokens[k].start
                    })
                {
                    arrow = Some(j + 2);
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let end = matching_close(src, tokens, code, open);
        let block = blocks
            .iter()
            .filter(|b| b.start <= t.start && t.start < b.end)
            .min_by_key(|b| b.end - b.start);
        let impl_type = block.map(|b| b.name.clone());
        let impl_trait = block.and_then(|b| b.trait_name.clone());
        let ret_type = arrow.and_then(|a| {
            let to = (a..open)
                .find(|&m| ident_is(&tokens[code[m]], src, "where"))
                .unwrap_or(open);
            if (a..to).any(|m| ident_is(&tokens[code[m]], src, "Self")) {
                impl_type.clone()
            } else {
                type_head(src, tokens, code, a, to, known)
            }
        });
        let simple = name_tok.text(src).to_string();
        let name = match &impl_type {
            Some(ty) => format!("{ty}::{simple}"),
            None => simple.clone(),
        };
        nodes.push(FnNode {
            crate_idx: ci,
            file_idx: fi,
            name,
            simple,
            impl_type,
            impl_trait,
            sig_start: t.start,
            body: (tokens[code[open]].start, end),
            line: name_tok.line,
            col: name_tok.col,
            is_closure: false,
            ret_type,
        });
        i = open + 1; // nested fns are found by continuing inside
    }
}

/// Scans one file for closures passed to `spawn(…)` and records them
/// as pseudo-items owned by their innermost enclosing function.
fn collect_spawn_closures(
    ci: usize,
    fi: usize,
    f: &crate::model::FileData,
    code: &[usize],
    fns: &[FnNode],
    out: &mut Vec<FnNode>,
) {
    let src = &f.src;
    let tokens = &f.tokens;
    let mut i = 0;
    while i + 2 < code.len() {
        let t = &tokens[code[i]];
        if !ident_is(t, src, "spawn")
            || !is_punct(&tokens[code[i + 1]], src, '(')
            || in_ranges(t.start, &f.macro_ranges)
            || in_ranges(t.start, &f.test_ranges)
        {
            i += 1;
            continue;
        }
        // `spawn(` then optionally `move`, then the `|params|` head.
        let mut j = i + 2;
        if j < code.len() && ident_is(&tokens[code[j]], src, "move") {
            j += 1;
        }
        if j >= code.len() || !is_punct(&tokens[code[j]], src, '|') {
            i += 1;
            continue;
        }
        let bar = &tokens[code[j]];
        // The closure extends to the `)` matching spawn's `(`.
        let mut depth = 0i64;
        let mut k = i + 1;
        let mut end = src.len();
        while k < code.len() {
            let n = &tokens[code[k]];
            if is_punct(n, src, '(') || is_punct(n, src, '[') || is_punct(n, src, '{') {
                depth += 1;
            } else if is_punct(n, src, ')') || is_punct(n, src, ']') || is_punct(n, src, '}') {
                depth -= 1;
                if depth == 0 {
                    end = n.end;
                    break;
                }
            }
            k += 1;
        }
        let parent = fns
            .iter()
            .filter(|n| {
                n.crate_idx == ci && n.file_idx == fi && n.body.0 <= t.start && t.start < n.body.1
            })
            .min_by_key(|n| n.body.1 - n.body.0)
            .map_or_else(|| "?".to_string(), |n| n.name.clone());
        out.push(FnNode {
            crate_idx: ci,
            file_idx: fi,
            name: format!("{parent}::{{closure}}"),
            simple: "{closure}".to_string(),
            impl_type: None,
            impl_trait: None,
            sig_start: bar.start,
            body: (bar.start, end),
            line: bar.line,
            col: bar.col,
            is_closure: true,
            ret_type: None,
        });
        i = k.max(i + 1);
    }
}

impl CallGraph {
    /// Innermost node owning byte `pos` of file `(ci, fi)`, if any.
    #[must_use]
    pub fn owner(&self, ci: usize, fi: usize, pos: usize) -> Option<usize> {
        self.file_nodes
            .get(&(ci, fi))?
            .iter()
            .copied()
            .filter(|&n| self.nodes[n].body.0 <= pos && pos < self.nodes[n].body.1)
            .min_by_key(|&n| self.nodes[n].body.1 - self.nodes[n].body.0)
    }

    /// Marks the three seed sets from node names and the configured
    /// entry-point lists.
    fn assign_seeds(
        &mut self,
        hot_seed_fns: &BTreeSet<String>,
        worker_seed_fns: &BTreeSet<String>,
    ) {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.is_closure {
                self.seeds_worker.insert(i);
                continue;
            }
            if n.simple == "render_json" || n.impl_type.as_deref() == Some("Pipeline") {
                self.seeds_determinism.insert(i);
            }
            if hot_seed_fns.contains(&n.simple) {
                self.seeds_hotpath.insert(i);
            }
            if worker_seed_fns.contains(&n.name) {
                self.seeds_worker.insert(i);
            }
        }
    }

    /// Breadth-first closure from `seeds`; `result[n]` is the first
    /// seed (in ascending node order) that reaches `n`, or `None`.
    #[must_use]
    pub fn reachable(&self, seeds: &BTreeSet<usize>) -> Vec<Option<usize>> {
        let mut from: Vec<Option<usize>> = vec![None; self.nodes.len()];
        for &seed in seeds {
            if from[seed].is_some() {
                continue;
            }
            let mut queue = VecDeque::from([seed]);
            from[seed] = Some(seed);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    if from[v].is_none() {
                        from[v] = Some(seed);
                        queue.push_back(v);
                    }
                }
            }
        }
        from
    }

    /// The serializable projection consumed by `render_json`.
    #[must_use]
    pub fn to_report(&self, crates: &[CrateData]) -> CallGraphReport {
        let display = |i: usize| {
            let n = &self.nodes[i];
            let file = &crates[n.crate_idx].files[n.file_idx].rel;
            format!("{file}::{}@{}:{}", n.name, n.line, n.col)
        };
        let nodes: Vec<String> = (0..self.nodes.len()).map(display).collect();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (u, outs) in self.adj.iter().enumerate() {
            for &v in outs {
                edges.push((u as u32, v as u32));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut sccs: Vec<Vec<u32>> = cyclic_sccs(self.nodes.len(), &self.adj)
            .into_iter()
            .map(|c| c.into_iter().map(|i| i as u32).collect())
            .collect();
        // Direct self-recursion is a cyclic component of size one.
        let in_scc: BTreeSet<u32> = sccs.iter().flatten().copied().collect();
        for (i, outs) in self.adj.iter().enumerate() {
            if outs.contains(&i) && !in_scc.contains(&(i as u32)) {
                sccs.push(vec![i as u32]);
            }
        }
        sccs.sort();
        let set = |s: &BTreeSet<usize>| s.iter().map(|&i| i as u32).collect();
        CallGraphReport {
            nodes,
            edges,
            seeds_determinism: set(&self.seeds_determinism),
            seeds_hotpath: set(&self.seeds_hotpath),
            seeds_worker: set(&self.seeds_worker),
            sccs,
            call_sites: self.call_sites,
            resolved: self.resolved,
            external: self.external,
            ambiguous: self.ambiguous,
        }
    }

    /// Extracts and resolves every call site, filling `adj` and the
    /// site counters.
    fn resolve_sites(&mut self, crates: &[CrateData], facts: &TypeFacts) {
        let tables = Tables::build(&self.nodes, crates, facts);

        let mut new_edges: Vec<(usize, usize)> = Vec::new();
        let mut sites: u32 = 0;
        let mut resolved: u32 = 0;
        let mut external: u32 = 0;
        let mut ambiguous: u32 = 0;

        for caller in 0..self.nodes.len() {
            let n = &self.nodes[caller];
            let f = &crates[n.crate_idx].files[n.file_idx];
            let code = code_indices(&f.tokens);
            let env = caller_env(n, f, &code, &tables);
            for s in extract_sites(f, &code, self, caller) {
                sites += 1;
                let candidates = match &s.site {
                    Site::Plain { name } => tables.resolve_plain(name, n, f),
                    Site::Method { name, recv } => {
                        tables.resolve_method(name, recv, n, f, &code, &env)
                    }
                    Site::Path { segments } => {
                        tables.resolve_path(segments, n, &self.nodes, crates)
                    }
                };
                if candidates.is_empty() {
                    external += 1;
                } else {
                    resolved += 1;
                    if candidates.len() > 1 {
                        ambiguous += 1;
                    }
                    for c in candidates {
                        new_edges.push((caller, c));
                        self.site_edges.push((caller, c, s.pos, s.line, s.col));
                    }
                }
            }
        }
        // Every spawn closure is also called by its enclosing function.
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_closure {
                let n = &self.nodes[i];
                if let Some(parent) = self.owner_excluding(n.crate_idx, n.file_idx, n.body.0, i) {
                    new_edges.push((parent, i));
                }
            }
        }
        for (u, v) in new_edges {
            self.adj[u].push(v);
        }
        for outs in &mut self.adj {
            outs.sort_unstable();
            outs.dedup();
        }
        self.call_sites = sites;
        self.resolved = resolved;
        self.external = external;
        self.ambiguous = ambiguous;
    }

    /// Innermost node owning `pos`, excluding node `skip`.
    fn owner_excluding(&self, ci: usize, fi: usize, pos: usize, skip: usize) -> Option<usize> {
        self.file_nodes
            .get(&(ci, fi))?
            .iter()
            .copied()
            .filter(|&n| n != skip && self.nodes[n].body.0 <= pos && pos < self.nodes[n].body.1)
            .min_by_key(|&n| self.nodes[n].body.1 - self.nodes[n].body.0)
    }
}

/// Extracts the call sites lexically owned by `caller` from its file.
fn extract_sites(
    f: &crate::model::FileData,
    code: &[usize],
    graph: &CallGraph,
    caller: usize,
) -> Vec<SiteAt> {
    let src = &f.src;
    let tokens = &f.tokens;
    let node = &graph.nodes[caller];
    let (body_start, body_end) = node.body;
    let mut out = Vec::new();
    for (ci, &idx) in code.iter().enumerate() {
        let t = &tokens[idx];
        if t.start < body_start || t.start >= body_end || t.kind != TokenKind::Ident {
            continue;
        }
        if in_ranges(t.start, &f.test_ranges) || in_ranges(t.start, &f.macro_ranges) {
            continue;
        }
        if graph.owner(node.crate_idx, node.file_idx, t.start) != Some(caller) {
            continue;
        }
        // Mid-chain segments were consumed by their chain start.
        if ci >= 2 && double_colon_at(src, tokens, code, ci - 2) {
            continue;
        }
        let prev = ci.checked_sub(1).map(|p| &tokens[code[p]]);
        if let Some(p) = prev {
            if is_punct(p, src, '$') || ident_is(p, src, "fn") || ident_is(p, src, "use") {
                continue;
            }
        }
        let next_is = |off: usize, c: char| {
            code.get(ci + off)
                .is_some_and(|&k| is_punct(&tokens[k], src, c))
        };
        if next_is(1, '!') {
            continue; // macro invocation
        }
        let name = t.text(src).to_string();
        let anchor = |site: Site| SiteAt {
            site,
            pos: t.start,
            line: t.line,
            col: t.col,
        };
        if prev.is_some_and(|p| is_punct(p, src, '.')) {
            if call_paren_after(src, tokens, code, ci + 1) {
                let recv = receiver_shape(src, tokens, code, ci);
                out.push(anchor(Site::Method { name, recv }));
            }
            continue;
        }
        if double_colon_at(src, tokens, code, ci + 1) {
            // Walk the `a::b::c` chain.
            let mut segments = vec![name];
            let mut j = ci;
            while double_colon_at(src, tokens, code, j + 1) {
                let Some(&nk) = code.get(j + 3) else { break };
                let nt = &tokens[nk];
                if nt.kind == TokenKind::Ident {
                    segments.push(nt.text(src).to_string());
                    j += 3;
                } else {
                    break; // `::<` turbofish or `::{` group
                }
            }
            let last_snake = segments.last().is_some_and(|s| is_snake(s));
            if last_snake && segments.len() >= 2 && call_paren_after(src, tokens, code, j + 1) {
                out.push(anchor(Site::Path { segments }));
            }
            continue;
        }
        if next_is(1, '(') && is_snake(&name) && !NON_CALL_KEYWORDS.contains(&name.as_str()) {
            out.push(anchor(Site::Plain { name }));
        }
    }
    out
}

/// `true` when the code tokens at `at` open a call: `(` directly, or a
/// `::<…>` turbofish followed by `(`.
fn call_paren_after(src: &str, tokens: &[Token], code: &[usize], at: usize) -> bool {
    let Some(&k) = code.get(at) else { return false };
    if is_punct(&tokens[k], src, '(') {
        return true;
    }
    // `::<…>(` — the only other call shape.
    if !double_colon_at(src, tokens, code, at) {
        return false;
    }
    let Some(&lt) = code.get(at + 2) else {
        return false;
    };
    if !is_punct(&tokens[lt], src, '<') {
        return false;
    }
    let mut depth = 0i64;
    let mut j = at + 2;
    while j < code.len() {
        let t = &tokens[code[j]];
        if is_punct(t, src, '<') {
            depth += 1;
        } else if is_punct(t, src, '>') {
            let arrow = j > 0 && is_punct(&tokens[code[j - 1]], src, '-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return code
                        .get(j + 1)
                        .is_some_and(|&k| is_punct(&tokens[k], src, '('));
                }
            }
        }
        j += 1;
    }
    false
}

/// Receiver shape of the method ident at code index `ci` (whose
/// preceding code token is the `.`).
fn receiver_shape(src: &str, tokens: &[Token], code: &[usize], ci: usize) -> Recv {
    let Some(r) = ci.checked_sub(2) else {
        return Recv::Unknown;
    };
    let rt = &tokens[code[r]];
    if ident_is(rt, src, "self") {
        return Recv::SelfDirect;
    }
    if is_punct(rt, src, ')') {
        // Call-chain tail: `….prev(…).name(…)` — typed by walking the
        // chain through declared return types at resolution time.
        return Recv::Chain(r);
    }
    if rt.kind != TokenKind::Ident {
        return Recv::Unknown;
    }
    // `path::CONST.m(…)` — path-qualified receivers are not typed.
    if r >= 2 && double_colon_at(src, tokens, code, r - 2) {
        return Recv::Unknown;
    }
    if r >= 1 && is_punct(&tokens[code[r - 1]], src, '.') {
        if r >= 2 && ident_is(&tokens[code[r - 2]], src, "self") {
            return Recv::SelfField(rt.text(src).to_string());
        }
        return Recv::Unknown; // deeper field chains stay untyped
    }
    Recv::Var(rt.text(src).to_string(), rt.start)
}

/// Workspace-wide typing facts for receiver resolution.
struct TypeFacts {
    /// `(crate, struct, field)` → head type ident of the field.
    fields: BTreeMap<(usize, String, String), String>,
    /// Declared trait names.
    traits: BTreeSet<String>,
    /// Declared struct/enum/trait names — used to pick the most
    /// meaningful ident out of a composite type expression.
    known: BTreeSet<String>,
}

/// Scans every non-bin file for `struct`/`enum`/`trait` declarations
/// (pass 1: names) and struct field types (pass 2, which prefers
/// already-known names inside composite types like `Box<dyn Reorder>`).
fn collect_type_facts(crates: &[CrateData]) -> TypeFacts {
    let mut facts = TypeFacts {
        fields: BTreeMap::new(),
        traits: BTreeSet::new(),
        known: BTreeSet::new(),
    };
    for c in crates {
        for f in c.files.iter().filter(|f| !f.is_bin) {
            let src = &f.src;
            let tokens = &f.tokens;
            let code = code_indices(tokens);
            for i in 0..code.len().saturating_sub(1) {
                let t = &tokens[code[i]];
                if in_ranges(t.start, &f.test_ranges) || in_ranges(t.start, &f.macro_ranges) {
                    continue;
                }
                let is_decl = ident_is(t, src, "struct")
                    || ident_is(t, src, "enum")
                    || ident_is(t, src, "trait");
                let name_tok = &tokens[code[i + 1]];
                if is_decl && name_tok.kind == TokenKind::Ident {
                    facts.known.insert(name_tok.text(src).to_string());
                    if ident_is(t, src, "trait") {
                        facts.traits.insert(name_tok.text(src).to_string());
                    }
                }
            }
        }
    }
    for (ci, c) in crates.iter().enumerate() {
        for f in c.files.iter().filter(|f| !f.is_bin) {
            collect_struct_fields(ci, f, &facts.known, &mut facts.fields);
        }
    }
    facts
}

/// Records `field → head type` for every brace-bodied `struct` in one
/// file.
fn collect_struct_fields(
    ci: usize,
    f: &crate::model::FileData,
    known: &BTreeSet<String>,
    fields: &mut BTreeMap<(usize, String, String), String>,
) {
    let src = &f.src;
    let tokens = &f.tokens;
    let code = code_indices(tokens);
    let mut i = 0;
    while i + 1 < code.len() {
        let t = &tokens[code[i]];
        if !ident_is(t, src, "struct")
            || in_ranges(t.start, &f.test_ranges)
            || in_ranges(t.start, &f.macro_ranges)
        {
            i += 1;
            continue;
        }
        let name_tok = &tokens[code[i + 1]];
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let struct_name = name_tok.text(src).to_string();
        // Skip generics to the body `{`; `;`/`(` means unit/tuple.
        let mut angle = 0i64;
        let mut j = i + 2;
        let mut open = None;
        while j < code.len() {
            let n = &tokens[code[j]];
            if is_punct(n, src, '<') {
                angle += 1;
            } else if is_punct(n, src, '>') {
                let arrow = j > 0 && is_punct(&tokens[code[j - 1]], src, '-');
                if !arrow && angle > 0 {
                    angle -= 1;
                }
            } else if angle == 0 {
                if is_punct(n, src, '{') {
                    open = Some(j);
                    break;
                }
                if is_punct(n, src, ';') || is_punct(n, src, '(') {
                    break;
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        // Walk the body at depth 1: `ident :` (single colon) opens a
        // field; its type runs to the `,` or `}` closing the field.
        let mut depth = 0i64;
        let mut angle = 0i64;
        let mut k = open;
        while k < code.len() {
            let n = &tokens[code[k]];
            if is_punct(n, src, '{') || is_punct(n, src, '(') || is_punct(n, src, '[') {
                depth += 1;
            } else if is_punct(n, src, '}') || is_punct(n, src, ')') || is_punct(n, src, ']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if is_punct(n, src, '<') {
                angle += 1;
            } else if is_punct(n, src, '>') {
                let arrow = k > 0 && is_punct(&tokens[code[k - 1]], src, '-');
                if !arrow && angle > 0 {
                    angle -= 1;
                }
            } else if depth == 1
                && angle == 0
                && n.kind == TokenKind::Ident
                && k + 1 < code.len()
                && is_punct(&tokens[code[k + 1]], src, ':')
                && !double_colon_at(src, tokens, &code, k + 1)
            {
                let field = n.text(src).to_string();
                // Type range: after the `:` until the field-closing
                // `,`/`}` at this depth.
                let ty_from = k + 2;
                let mut d2 = 0i64;
                let mut a2 = 0i64;
                let mut m = ty_from;
                while m < code.len() {
                    let tt = &tokens[code[m]];
                    if is_punct(tt, src, '{') || is_punct(tt, src, '(') || is_punct(tt, src, '[') {
                        d2 += 1;
                    } else if is_punct(tt, src, ')') || is_punct(tt, src, ']') {
                        d2 -= 1;
                    } else if is_punct(tt, src, '}') {
                        if d2 == 0 {
                            break;
                        }
                        d2 -= 1;
                    } else if is_punct(tt, src, '<') {
                        a2 += 1;
                    } else if is_punct(tt, src, '>') {
                        let arrow = m > 0 && is_punct(&tokens[code[m - 1]], src, '-');
                        if !arrow && a2 > 0 {
                            a2 -= 1;
                        }
                    } else if d2 == 0 && a2 == 0 && is_punct(tt, src, ',') {
                        break;
                    }
                    m += 1;
                }
                if let Some(ty) = type_head(src, tokens, &code, ty_from, m, known) {
                    fields.insert((ci, struct_name.clone(), field), ty);
                }
                k = m;
                continue;
            }
            k += 1;
        }
        i = open + 1;
    }
}

/// The most meaningful type ident in `code[from..to)`: the first that
/// names a workspace type or trait, else the first uppercase-initial
/// ident — so `Box<dyn Reorder>` yields `Reorder` (known trait) while
/// `Vec<Mutex<usize>>` yields `Vec`.
fn type_head(
    src: &str,
    tokens: &[Token],
    code: &[usize],
    from: usize,
    to: usize,
    known: &BTreeSet<String>,
) -> Option<String> {
    let mut first_upper = None;
    for j in from..to.min(code.len()) {
        let t = &tokens[code[j]];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text(src);
        if matches!(text, "dyn" | "mut" | "impl" | "const" | "as") {
            continue;
        }
        if known.contains(text) {
            return Some(text.to_string());
        }
        if first_upper.is_none() && text.chars().next().is_some_and(char::is_uppercase) {
            first_upper = Some(text.to_string());
        }
    }
    first_upper
}

/// Variable types visible inside one function: parameters (bound at
/// offset 0) plus `let` bindings at their byte offsets, so shadowing
/// resolves to the latest binding before the use site.
struct TypeEnv {
    bindings: BTreeMap<String, Vec<(usize, String)>>,
}

impl TypeEnv {
    fn lookup(&self, name: &str, pos: usize) -> Option<&str> {
        self.bindings
            .get(name)?
            .iter()
            .rev()
            .find(|(p, _)| *p <= pos)
            .map(|(_, t)| t.as_str())
    }

    fn bind(&mut self, name: &str, pos: usize, ty: String) {
        self.bindings
            .entry(name.to_string())
            .or_default()
            .push((pos, ty));
    }
}

/// Builds the type environment for one caller: generic parameters map
/// to their first bound (`<T: Reorder>` types `T` as the `Reorder`
/// trait), signature parameters bind their head type, and `let`
/// bindings bind an annotated type, the chain-walked type of the
/// right-hand side, or the `Type::` constructor head as a fallback.
fn caller_env(
    node: &FnNode,
    f: &crate::model::FileData,
    code: &[usize],
    tables: &Tables,
) -> TypeEnv {
    let facts = tables.facts;
    let src = &f.src;
    let tokens = &f.tokens;
    let mut env = TypeEnv {
        bindings: BTreeMap::new(),
    };
    let mut generics: BTreeMap<String, Option<String>> = BTreeMap::new();

    if !node.is_closure {
        let sig = code
            .iter()
            .position(|&k| tokens[k].start == node.sig_start)
            .unwrap_or(0);
        let mut j = sig + 2; // past `fn name`
        if code.get(j).is_some_and(|&k| is_punct(&tokens[k], src, '<')) {
            let mut angle = 0i64;
            while j < code.len() {
                let t = &tokens[code[j]];
                if is_punct(t, src, '<') {
                    angle += 1;
                } else if is_punct(t, src, '>') {
                    let arrow = j > 0 && is_punct(&tokens[code[j - 1]], src, '-');
                    if !arrow {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                } else if angle == 1
                    && t.kind == TokenKind::Ident
                    && j > 0
                    && (is_punct(&tokens[code[j - 1]], src, '<')
                        || is_punct(&tokens[code[j - 1]], src, ','))
                {
                    // `T` in `<T: Bound, …>` — capture the first bound.
                    let mut bound = None;
                    if code
                        .get(j + 1)
                        .is_some_and(|&k| is_punct(&tokens[k], src, ':'))
                    {
                        for m in (j + 2)..code.len() {
                            let b = &tokens[code[m]];
                            if b.kind == TokenKind::Ident
                                && b.text(src).chars().next().is_some_and(char::is_uppercase)
                            {
                                bound = Some(b.text(src).to_string());
                                break;
                            }
                            if is_punct(b, src, ',') || is_punct(b, src, '>') {
                                break;
                            }
                        }
                    }
                    generics.insert(t.text(src).to_string(), bound);
                }
                j += 1;
            }
        }
        // Parameter list: `ident :` pairs at paren depth 1.
        if code.get(j).is_some_and(|&k| is_punct(&tokens[k], src, '(')) {
            let mut depth = 0i64;
            let mut angle = 0i64;
            let mut k = j;
            while k < code.len() {
                let t = &tokens[code[k]];
                if is_punct(t, src, '(') || is_punct(t, src, '[') || is_punct(t, src, '{') {
                    depth += 1;
                } else if is_punct(t, src, ')') || is_punct(t, src, ']') || is_punct(t, src, '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if is_punct(t, src, '<') {
                    angle += 1;
                } else if is_punct(t, src, '>') {
                    let arrow = k > 0 && is_punct(&tokens[code[k - 1]], src, '-');
                    if !arrow && angle > 0 {
                        angle -= 1;
                    }
                } else if depth == 1
                    && angle == 0
                    && t.kind == TokenKind::Ident
                    && code
                        .get(k + 1)
                        .is_some_and(|&c| is_punct(&tokens[c], src, ':'))
                    && !double_colon_at(src, tokens, code, k + 1)
                {
                    // Type range: to the `,` at depth 1 / angle 0, or
                    // the parameter list's `)`.
                    let ty_from = k + 2;
                    let mut d2 = depth;
                    let mut a2 = 0i64;
                    let mut m = ty_from;
                    while m < code.len() {
                        let tt = &tokens[code[m]];
                        if is_punct(tt, src, '(')
                            || is_punct(tt, src, '[')
                            || is_punct(tt, src, '{')
                        {
                            d2 += 1;
                        } else if is_punct(tt, src, ')')
                            || is_punct(tt, src, ']')
                            || is_punct(tt, src, '}')
                        {
                            d2 -= 1;
                            if d2 == 0 {
                                break;
                            }
                        } else if is_punct(tt, src, '<') {
                            a2 += 1;
                        } else if is_punct(tt, src, '>') {
                            let arrow = m > 0 && is_punct(&tokens[code[m - 1]], src, '-');
                            if !arrow && a2 > 0 {
                                a2 -= 1;
                            }
                        } else if d2 == 1 && a2 == 0 && is_punct(tt, src, ',') {
                            break;
                        }
                        m += 1;
                    }
                    if let Some(ty) = type_head(src, tokens, code, ty_from, m, &facts.known) {
                        let ty = match generics.get(&ty) {
                            Some(Some(bound)) => Some(bound.clone()),
                            Some(None) => None,
                            None => Some(ty),
                        };
                        if let Some(ty) = ty {
                            env.bind(t.text(src), 0, ty);
                        }
                    }
                    k = m;
                    continue;
                }
                k += 1;
            }
        }
    }

    // `let` bindings inside the body.
    let (body_start, body_end) = node.body;
    for i in 0..code.len() {
        let t = &tokens[code[i]];
        if t.start < body_start || t.start >= body_end {
            continue;
        }
        if !ident_is(t, src, "let") {
            continue;
        }
        let mut k = i + 1;
        if code
            .get(k)
            .is_some_and(|&c| ident_is(&tokens[c], src, "mut"))
        {
            k += 1;
        }
        let Some(&nk) = code.get(k) else { continue };
        let name_tok = &tokens[nk];
        if name_tok.kind != TokenKind::Ident || !is_snake(name_tok.text(src)) {
            continue; // destructuring patterns stay untyped
        }
        let Some(&after) = code.get(k + 1) else {
            continue;
        };
        if is_punct(&tokens[after], src, ':') && !double_colon_at(src, tokens, code, k + 1) {
            // `let x: Type = …` — type runs to the `=` or `;`.
            let ty_from = k + 2;
            let mut m = ty_from;
            let mut d2 = 0i64;
            let mut a2 = 0i64;
            while m < code.len() {
                let tt = &tokens[code[m]];
                if is_punct(tt, src, '(') || is_punct(tt, src, '[') || is_punct(tt, src, '{') {
                    d2 += 1;
                } else if is_punct(tt, src, ')') || is_punct(tt, src, ']') || is_punct(tt, src, '}')
                {
                    d2 -= 1;
                } else if is_punct(tt, src, '<') {
                    a2 += 1;
                } else if is_punct(tt, src, '>') {
                    let arrow = m > 0 && is_punct(&tokens[code[m - 1]], src, '-');
                    if !arrow && a2 > 0 {
                        a2 -= 1;
                    }
                } else if d2 == 0 && a2 == 0 && (is_punct(tt, src, '=') || is_punct(tt, src, ';')) {
                    break;
                }
                m += 1;
            }
            if let Some(ty) = type_head(src, tokens, code, ty_from, m, &facts.known) {
                if !generics.contains_key(&ty) {
                    env.bind(name_tok.text(src), name_tok.start, ty);
                }
            }
        } else if is_punct(&tokens[after], src, '=') {
            // `let x = …;` — the right-hand side is typed through the
            // chain walker when possible (`let b = Pipeline::builder()`
            // types `b` as `PipelineBuilder`), falling back to the
            // uppercase constructor head for struct literals and
            // external constructors (`Vec::new()` stays `Vec`).
            let rhs_from = k + 2;
            let mut d2 = 0i64;
            let mut m = rhs_from;
            let mut last = None;
            while m < code.len() {
                let tt = &tokens[code[m]];
                if is_punct(tt, src, '(') || is_punct(tt, src, '[') || is_punct(tt, src, '{') {
                    d2 += 1;
                } else if is_punct(tt, src, ')') || is_punct(tt, src, ']') || is_punct(tt, src, '}')
                {
                    d2 -= 1;
                    if d2 < 0 {
                        break;
                    }
                } else if d2 == 0 && is_punct(tt, src, ';') {
                    break;
                }
                last = Some(m);
                m += 1;
            }
            let chain_ty = last
                .and_then(|l| value_type(tables, node, f, code, &env, l, 0))
                .filter(|ty| !generics.contains_key(ty));
            if let Some(ty) = chain_ty {
                env.bind(name_tok.text(src), name_tok.start, ty);
            } else if let Some(&rhs) = code.get(rhs_from) {
                let rt = &tokens[rhs];
                if rt.kind == TokenKind::Ident
                    && rt.text(src).chars().next().is_some_and(char::is_uppercase)
                    && !generics.contains_key(rt.text(src))
                {
                    env.bind(name_tok.text(src), name_tok.start, rt.text(src).to_string());
                }
            }
        }
    }
    env
}

/// Symbol-table indices shared by every resolution step. Plain calls
/// can only bind free functions; method calls only `impl`/`trait`
/// methods.
struct Tables<'a> {
    nodes: &'a [FnNode],
    /// `(crate, file, name)` → free functions declared there.
    free_by_file: BTreeMap<(usize, usize, &'a str), Vec<usize>>,
    /// `(crate, name)` → free functions declared there.
    free_by_crate: BTreeMap<(usize, &'a str), Vec<usize>>,
    /// `name` → free functions anywhere in the workspace.
    free_global: BTreeMap<&'a str, Vec<usize>>,
    /// `(impl type, method)` → methods — the only way a method call
    /// binds.
    by_type_method: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// `(trait, method)` → implementors, plus trait default methods.
    trait_methods: BTreeMap<(String, String), Vec<usize>>,
    /// Crate lib name → crate index.
    lib_index: BTreeMap<&'a str, usize>,
    facts: &'a TypeFacts,
}

impl<'a> Tables<'a> {
    fn build(nodes: &'a [FnNode], crates: &'a [CrateData], facts: &'a TypeFacts) -> Self {
        let mut t = Tables {
            nodes,
            free_by_file: BTreeMap::new(),
            free_by_crate: BTreeMap::new(),
            free_global: BTreeMap::new(),
            by_type_method: BTreeMap::new(),
            trait_methods: BTreeMap::new(),
            lib_index: crates
                .iter()
                .enumerate()
                .map(|(i, c)| (c.lib_name.as_str(), i))
                .collect(),
            facts,
        };
        for (i, n) in nodes.iter().enumerate() {
            if n.is_closure {
                continue;
            }
            match &n.impl_type {
                Some(ty) => {
                    t.by_type_method
                        .entry((ty.as_str(), &n.simple))
                        .or_default()
                        .push(i);
                }
                None => {
                    t.free_by_file
                        .entry((n.crate_idx, n.file_idx, &n.simple))
                        .or_default()
                        .push(i);
                    t.free_by_crate
                        .entry((n.crate_idx, &n.simple))
                        .or_default()
                        .push(i);
                    t.free_global.entry(&n.simple).or_default().push(i);
                }
            }
            if let Some(tr) = &n.impl_trait {
                t.trait_methods
                    .entry((tr.clone(), n.simple.clone()))
                    .or_default()
                    .push(i);
            } else if let Some(ty) = &n.impl_type {
                if facts.traits.contains(ty) {
                    t.trait_methods
                        .entry((ty.clone(), n.simple.clone()))
                        .or_default()
                        .push(i);
                }
            }
        }
        t
    }

    /// Declared return type of `ty::name` when the workspace has
    /// exactly one such method and its signature declares one.
    fn assoc_ret(&self, ty: &str, name: &str) -> Option<&str> {
        let c = self.by_type_method.get(&(ty, name))?;
        if c.len() == 1 {
            self.nodes[c[0]].ret_type.as_deref()
        } else {
            None
        }
    }

    /// Resolves a plain `name(…)` call to free functions: same file →
    /// unique in crate → through `use` imports → unique in workspace.
    fn resolve_plain(&self, name: &str, caller: &FnNode, f: &crate::model::FileData) -> Vec<usize> {
        if let Some(c) = self
            .free_by_file
            .get(&(caller.crate_idx, caller.file_idx, name))
        {
            if c.len() == 1 {
                return c.clone();
            }
        }
        if let Some(c) = self.free_by_crate.get(&(caller.crate_idx, name)) {
            if c.len() == 1 {
                return c.clone();
            }
        }
        // A `use` whose last segment is the name tells us the crate.
        for u in &f.uses {
            if u.segments.last().map(String::as_str) != Some(name) {
                continue;
            }
            let target = match u.segments.first().map(String::as_str) {
                Some("crate") | Some("self") => Some(caller.crate_idx),
                Some(head) => self.lib_index.get(head).copied(),
                None => None,
            };
            if let Some(k) = target {
                if let Some(c) = self.free_by_crate.get(&(k, name)) {
                    if c.len() == 1 {
                        return c.clone();
                    }
                }
            }
        }
        self.free_global.get(name).cloned().unwrap_or_default()
    }

    /// Resolves a `recv.name(…)` method call against workspace methods.
    ///
    /// A typed receiver (from `self`, the field table, the caller's
    /// type environment, or a call chain walked through declared return
    /// types) binds through the per-type method table; when the type
    /// names a trait (`dyn`/`impl`/generic bound) the trait-impl table
    /// supplies the CHA candidate set instead. A receiver the tokens
    /// cannot type is external — method edges are keyed by resolved
    /// receiver type only, never guessed from the bare name.
    fn resolve_method(
        &self,
        name: &str,
        recv: &Recv,
        caller: &FnNode,
        f: &crate::model::FileData,
        code: &[usize],
        env: &TypeEnv,
    ) -> Vec<usize> {
        let ty: Option<String> = match recv {
            Recv::SelfDirect => caller.impl_type.clone(),
            Recv::SelfField(field) => caller.impl_type.as_ref().and_then(|t| {
                self.facts
                    .fields
                    .get(&(caller.crate_idx, t.clone(), field.clone()))
                    .cloned()
            }),
            Recv::Var(v, pos) => env.lookup(v, *pos).map(str::to_string),
            Recv::Chain(end) => value_type(self, caller, f, code, env, *end, 0),
            Recv::Unknown => None,
        };
        let Some(ty) = ty else {
            return Vec::new();
        };
        if let Some(c) = self.by_type_method.get(&(ty.as_str(), name)) {
            return c.clone();
        }
        if self.facts.traits.contains(&ty) {
            return self
                .trait_methods
                .get(&(ty.clone(), name.to_string()))
                .cloned()
                .unwrap_or_default();
        }
        if matches!(recv, Recv::SelfDirect) {
            // An inherited trait default method: `self.step()` inside
            // `impl Trait for Type` where `step` has no override.
            if let Some(tr) = &caller.impl_trait {
                if let Some(c) = self.trait_methods.get(&(tr.clone(), name.to_string())) {
                    return c.clone();
                }
            }
        }
        Vec::new()
    }

    /// Resolves an `a::b::name(…)` path call: `Self::`/type qualifiers
    /// go through the per-type method table, module qualifiers through
    /// the free-function tables narrowed by the head crate and the
    /// qualifier's module.
    fn resolve_path(
        &self,
        segments: &[String],
        caller: &FnNode,
        nodes: &[FnNode],
        crates: &[CrateData],
    ) -> Vec<usize> {
        let name = segments.last().map(String::as_str).unwrap_or_default();
        let qual = segments
            .get(segments.len().wrapping_sub(2))
            .map(String::as_str)
            .unwrap_or_default();
        if qual == "Self" {
            if let Some(ty) = &caller.impl_type {
                if let Some(c) = self.by_type_method.get(&(ty.as_str(), name)) {
                    return c.clone();
                }
            }
            return Vec::new();
        }
        if qual.chars().next().is_some_and(char::is_uppercase) {
            // Type-qualified associated call: `Vec::new` and friends
            // miss the table and come back external.
            return self
                .by_type_method
                .get(&(qual, name))
                .cloned()
                .unwrap_or_default();
        }
        // Keeps candidates living in the module the qualifier names;
        // for two-segment paths (`crate::step`) the qualifier is the
        // head and no module narrowing applies.
        let in_module = |cands: &[usize]| -> Vec<usize> {
            if qual == "crate" || qual == "self" {
                return cands.to_vec();
            }
            cands
                .iter()
                .copied()
                .filter(|&i| {
                    let n = &nodes[i];
                    matches!(
                        &crates[n.crate_idx].files[n.file_idx].role,
                        FileRole::Module(m) if m == qual
                    )
                })
                .collect()
        };
        let head = segments.first().map(String::as_str).unwrap_or_default();
        let target_crate = match head {
            "crate" | "self" => Some(caller.crate_idx),
            h => self.lib_index.get(h).copied().or_else(|| {
                // `helper::step()` where `helper` is a module of the
                // caller's crate.
                crates[caller.crate_idx]
                    .modules
                    .contains(h)
                    .then_some(caller.crate_idx)
            }),
        };
        if let Some(k) = target_crate {
            let Some(c) = self.free_by_crate.get(&(k, name)) else {
                return Vec::new();
            };
            let filtered = in_module(c);
            if !filtered.is_empty() {
                return filtered;
            }
            if c.len() == 1 {
                // The re-export surface may hide the module; a unique
                // same-crate free function is still an unambiguous
                // match.
                return c.clone();
            }
            return Vec::new();
        }
        // Unknown head (`std::mem::take`): match only when a workspace
        // module named like the qualifier defines the function;
        // anything else is external, never guessed.
        let cands = self.free_global.get(name).cloned().unwrap_or_default();
        in_module(&cands)
    }
}

/// Static type of the value expression ending at code index `end`:
/// `self`, typed variables, `self.field`, tuple-struct constructors,
/// and call results typed through declared return types — so
/// `Pipeline::builder(…).kernel(…)` types as `PipelineBuilder` when
/// `builder` declares that return type and `kernel` returns `Self`.
/// Conservative: any step the tokens cannot type makes the whole
/// expression untyped.
fn value_type(
    tables: &Tables,
    caller: &FnNode,
    f: &crate::model::FileData,
    code: &[usize],
    env: &TypeEnv,
    end: usize,
    depth: usize,
) -> Option<String> {
    if depth > 8 {
        return None;
    }
    let src = &f.src;
    let tokens = &f.tokens;
    let t = &tokens[code[end]];
    if t.kind == TokenKind::Ident {
        if ident_is(t, src, "self") {
            return caller.impl_type.clone();
        }
        if end >= 1 && is_punct(&tokens[code[end - 1]], src, '.') {
            // `self.field` types through the field table; deeper field
            // chains stay untyped.
            if end >= 2 && ident_is(&tokens[code[end - 2]], src, "self") {
                let ty = caller.impl_type.as_ref()?;
                return tables
                    .facts
                    .fields
                    .get(&(caller.crate_idx, ty.clone(), t.text(src).to_string()))
                    .cloned();
            }
            return None;
        }
        if end >= 2 && double_colon_at(src, tokens, code, end - 2) {
            return None; // path-qualified const / enum variant
        }
        return env.lookup(t.text(src), t.start).map(str::to_string);
    }
    if !is_punct(t, src, ')') {
        return None;
    }
    // Walk back to the `(` matching the call's closing `)`.
    let mut d = 0i64;
    let mut k = end;
    loop {
        let tt = &tokens[code[k]];
        if is_punct(tt, src, ')') || is_punct(tt, src, ']') || is_punct(tt, src, '}') {
            d += 1;
        } else if is_punct(tt, src, '(') || is_punct(tt, src, '[') || is_punct(tt, src, '{') {
            d -= 1;
            if d == 0 {
                break;
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    // The callee ident directly before the `(` (turbofish chains are
    // left untyped).
    let m_idx = k.checked_sub(1)?;
    let m_tok = &tokens[code[m_idx]];
    if m_tok.kind != TokenKind::Ident {
        return None;
    }
    let m = m_tok.text(src);
    if NON_CALL_KEYWORDS.contains(&m) {
        return None;
    }
    if m_idx >= 2 && double_colon_at(src, tokens, code, m_idx - 2) {
        // `Q::m(…)` — an associated call on a type qualifier.
        let q_idx = m_idx.checked_sub(3)?;
        let q_tok = &tokens[code[q_idx]];
        if q_tok.kind != TokenKind::Ident {
            return None;
        }
        let qual = q_tok.text(src);
        let ty = if qual == "Self" {
            caller.impl_type.clone()?
        } else if qual.chars().next().is_some_and(char::is_uppercase) {
            qual.to_string()
        } else {
            return None; // module-path free call — not chained through
        };
        return tables.assoc_ret(&ty, m).map(str::to_string);
    }
    if m_idx >= 1 && is_punct(&tokens[code[m_idx - 1]], src, '.') {
        // `expr.m(…)` — recurse on the receiver expression.
        let base_end = m_idx.checked_sub(2)?;
        let base = value_type(tables, caller, f, code, env, base_end, depth + 1)?;
        return tables.assoc_ret(&base, m).map(str::to_string);
    }
    if m.chars().next().is_some_and(char::is_uppercase) {
        // `Foo(…)` — a tuple-struct constructor of a known type.
        return tables.facts.known.contains(m).then(|| m.to_string());
    }
    // Plain free call `m(…)` — a unique workspace target types it.
    let cands = tables.resolve_plain(m, caller, f);
    if cands.len() == 1 {
        return tables.nodes[cands[0]].ret_type.clone();
    }
    None
}
