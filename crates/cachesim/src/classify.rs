//! Three-C miss classification (Hill & Smith \[22\], the paper's citation
//! for compulsory misses): **compulsory** (first touch), **capacity**
//! (would also miss in a fully-associative LRU cache of equal size), and
//! **conflict** (hits fully-associative but misses set-associative).
//!
//! The paper only needs the compulsory class (its traffic floor); this
//! module adds the capacity/conflict split as an analysis tool — e.g.
//! checking that reordering's wins come from shrinking the *working set*
//! (capacity misses) rather than from accidental set-index effects.

use std::collections::HashMap;

use crate::source::TraceSource;
use crate::{CacheConfig, LruCache};

/// Miss counts by Three-C class, plus totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissClasses {
    /// Accesses observed.
    pub accesses: u64,
    /// Hits in the set-associative cache.
    pub hits: u64,
    /// First-touch misses.
    pub compulsory: u64,
    /// Misses the fully-associative cache also takes (beyond compulsory).
    pub capacity: u64,
    /// Misses only the set-associative cache takes.
    pub conflict: u64,
}

impl MissClasses {
    /// Total misses across the three classes.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }
}

/// Fully-associative LRU of `capacity_lines` lines (order = recency).
struct FullyAssociative {
    recency: Vec<u64>, // most recent at the back
    index: HashMap<u64, usize>,
    capacity: usize,
}

impl FullyAssociative {
    fn new(capacity: usize) -> Self {
        FullyAssociative {
            recency: Vec::with_capacity(capacity),
            index: HashMap::new(),
            capacity,
        }
    }

    /// Returns `true` on hit.
    fn access(&mut self, line: u64) -> bool {
        if let Some(&pos) = self.index.get(&line) {
            // Move to back (most recent). O(n) but n = cache lines.
            self.recency.remove(pos);
            self.recency.push(line);
            for (i, &l) in self.recency.iter().enumerate().skip(pos) {
                self.index.insert(l, i);
            }
            return true;
        }
        if self.recency.len() == self.capacity {
            let evicted = self.recency.remove(0);
            self.index.remove(&evicted);
            for (i, &l) in self.recency.iter().enumerate() {
                self.index.insert(l, i);
            }
        }
        self.index.insert(line, self.recency.len());
        self.recency.push(line);
        false
    }
}

/// Classifies every miss of `source`'s stream on the given geometry
/// (single forward replay; nothing is buffered).
///
/// # Panics
///
/// Panics on a degenerate geometry (see [`CacheConfig::num_lines`]).
#[must_use]
pub fn classify<S: TraceSource + ?Sized>(config: CacheConfig, source: &S) -> MissClasses {
    let mut set_assoc = LruCache::new(config);
    let mut full = FullyAssociative::new(config.num_lines());
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut out = MissClasses::default();
    source.replay(&mut |acc| {
        out.accesses += 1;
        let line = acc.addr() / u64::from(config.line_bytes);
        let sa_hit = set_assoc.access(acc);
        let fa_hit = full.access(line);
        if sa_hit {
            out.hits += 1;
            return;
        }
        if seen.insert(line) {
            out.compulsory += 1;
        } else if fa_hit {
            out.conflict += 1;
        } else {
            out.capacity += 1;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Access;

    fn read(line: u64) -> Access {
        Access::read(line * 32)
    }

    fn cfg(sets: u64, ways: u32) -> CacheConfig {
        CacheConfig {
            capacity_bytes: sets * u64::from(ways) * 32,
            line_bytes: 32,
            associativity: ways,
        }
    }

    #[test]
    fn streaming_is_pure_compulsory() {
        let trace: Vec<Access> = (0..64).map(read).collect();
        let c = classify(cfg(2, 2), &trace);
        assert_eq!(c.compulsory, 64);
        assert_eq!(c.capacity, 0);
        assert_eq!(c.conflict, 0);
    }

    #[test]
    fn cyclic_overflow_is_capacity() {
        // 8 distinct lines cycled through a 4-line cache: every revisit
        // misses in both organizations.
        let mut trace = Vec::new();
        for _ in 0..5 {
            for l in 0..8 {
                trace.push(read(l));
            }
        }
        let c = classify(cfg(1, 4), &trace); // fully-assoc 4 lines
        assert_eq!(c.compulsory, 8);
        assert_eq!(c.conflict, 0);
        assert_eq!(c.capacity, 32);
    }

    #[test]
    fn same_set_collisions_are_conflict() {
        // 2 sets x 1 way (direct mapped, 2 lines). Lines 0 and 2 collide
        // in set 0 while the fully-associative twin (2 lines) holds both.
        let trace = vec![read(0), read(2), read(0), read(2), read(0)];
        let c = classify(cfg(2, 1), &trace);
        assert_eq!(c.compulsory, 2);
        assert_eq!(c.conflict, 3);
        assert_eq!(c.capacity, 0);
    }

    #[test]
    fn classes_partition_the_misses() {
        let mut state = 11u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let trace: Vec<Access> = (0..3000).map(|_| read(next() % 64)).collect();
        let config = cfg(4, 2);
        let c = classify(config, &trace);
        // Cross-check totals against a plain LRU run.
        let mut lru = LruCache::new(config);
        for &a in &trace {
            lru.access(a);
        }
        let stats = lru.finish();
        assert_eq!(c.misses(), stats.misses());
        assert_eq!(c.hits, stats.hits);
        assert_eq!(c.compulsory, stats.compulsory_misses);
        assert_eq!(c.accesses, 3000);
    }
}
