//! End-to-end I/O pipeline: read a Matrix Market file, reorder it with
//! RABBIT++, verify the kernel result is permutation-consistent, and
//! write the reordered matrix back out — the workflow for applying
//! `commorder` to your own matrices (e.g. downloads from SuiteSparse).
//!
//! ```sh
//! cargo run --release --example reorder_io [input.mtx]
//! ```
//!
//! Without an argument, a demo matrix is generated, round-tripped
//! through the Matrix Market format in memory, and processed.

use commorder::prelude::*;
use commorder::sparse::{io, kernels};
use commorder::synth::generators::PlantedPartition;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Obtain a matrix: from a file if given, else generate + round-trip.
    let coo = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path}");
            io::read_matrix_market(std::fs::File::open(path)?)?
        }
        None => {
            // Generate community-sorted, then scramble — the typical state
            // of a carelessly published dataset.
            let tidy = PlantedPartition::uniform(4096, 32, 10.0, 0.05).generate(3)?;
            let demo = tidy.permute_symmetric(&RandomOrder::new(8).reorder(&tidy)?)?;
            let mut buf = Vec::new();
            io::write_matrix_market(&mut buf, &demo)?;
            println!(
                "no input given; generated a demo matrix ({} bytes as .mtx)",
                buf.len()
            );
            io::read_matrix_market(buf.as_slice())?
        }
    };
    let matrix = CsrMatrix::try_from(coo)?;
    println!(
        "loaded: {} x {}, {} non-zeros",
        matrix.n_rows(),
        matrix.n_cols(),
        matrix.nnz()
    );

    // 2. Reorder with RABBIT++.
    let rpp = RabbitPlusPlus::new();
    let start = std::time::Instant::now();
    let perm = rpp.reorder(&matrix)?;
    println!(
        "RABBIT++ reordering took {:.1} ms",
        start.elapsed().as_secs_f64() * 1e3
    );
    let reordered = matrix.permute_symmetric(&perm)?;

    // 3. Verify numerics: SpMV commutes with the symmetric permutation
    //    (y' = P y when x' = P x).
    let x: Vec<f32> = (0..matrix.n_cols()).map(|i| (i % 97) as f32).collect();
    let y = kernels::spmv_csr(&matrix, &x)?;
    let xp = perm.apply_to_vec(&x)?;
    let yp = kernels::spmv_csr(&reordered, &xp)?;
    let y_expect = perm.apply_to_vec(&y)?;
    let max_err = yp
        .iter()
        .zip(&y_expect)
        .map(|(a, b)| (a - b).abs())
        .fold(0f32, f32::max);
    println!("SpMV permutation-consistency max error: {max_err:e}");
    assert!(max_err < 1e-3, "reordering must not change kernel results");

    // 4. Report the locality improvement on the simulated L2.
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let before = pipeline.simulate(&matrix);
    let after = pipeline.simulate(&reordered);
    println!(
        "SpMV DRAM traffic: {} -> {} of compulsory ({} improvement)",
        Table::ratio(before.traffic_ratio),
        Table::ratio(after.traffic_ratio),
        Table::ratio(before.traffic_ratio / after.traffic_ratio),
    );

    // 5. Write the reordered matrix out.
    let out = std::env::temp_dir().join("reordered.mtx");
    io::write_matrix_market(std::fs::File::create(&out)?, &reordered)?;
    println!("wrote reordered matrix to {}", out.display());
    Ok(())
}
