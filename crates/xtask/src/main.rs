//! Workspace automation tasks.
//!
//! `cargo run -p xtask -- lint` runs the offline static-analysis pass
//! over every crate: it needs no network, no rustc invocation, and no
//! third-party dependencies, so it works in the most restricted CI
//! sandbox. Since PR 5 the backend is `commorder-analyze`: a lossless
//! token-stream lexer plus layering/determinism/telemetry-name passes,
//! replacing the old line-regex scan. It complements (not replaces)
//! `cargo clippy` with the workspace deny-list: clippy enforces
//! expression-level lints, the analyzer enforces the *policy*
//! invariants a lint pass can't express — crate-header pragmas,
//! manifest opt-ins, the panic-free-library rule with its documented
//! allowlist, the layering DAG, and report-path determinism.
//!
//! `cargo run -p xtask -- lint --fix-allowlist` mechanically removes
//! allowlist entries the analyzer reports as unused (`XT0702`) before
//! printing the report, so the allowlist never accretes dead rows.
//!
//! `cargo run -p xtask -- bench-analyze` measures the analyzer itself
//! (lexer throughput and self-host wall time) and writes the result to
//! `results/BENCH_analyze.json` for the CI artifact trail.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use commorder_analyze::workspace::prune_allowlist;
use commorder_analyze::{analyze_workspace, codes, lex, AnalyzerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(
            &workspace_root(),
            args.iter().any(|a| a == "--json"),
            args.iter().any(|a| a == "--fix-allowlist"),
        ),
        Some("bench-analyze") => bench_analyze(&workspace_root()),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <task>");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint [--json] [--fix-allowlist]");
            eprintln!("          offline static-analysis pass over all workspace crates;");
            eprintln!("          --fix-allowlist prunes XT0702-unused allowlist entries first");
            eprintln!("  bench-analyze");
            eprintln!("          measure lexer throughput + analyzer self-host wall time");
            eprintln!("          and write results/BENCH_analyze.json");
            ExitCode::FAILURE
        }
    }
}

/// Runs the analyzer over the workspace and prints the report; the
/// process fails when any error-severity finding is present. With
/// `fix_allowlist`, stale (`XT0702`) allowlist entries are pruned from
/// the allowlist file before the reported run.
fn lint(root: &Path, json: bool, fix_allowlist: bool) -> ExitCode {
    if fix_allowlist {
        match prune_stale_allowlist_entries(root) {
            Ok(0) => eprintln!("xtask lint: allowlist has no unused entries"),
            Ok(n) => eprintln!("xtask lint: pruned {n} unused allowlist entr{}", plural(n)),
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match analyze_workspace(root, &AnalyzerConfig::default()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the analyzer once to locate `XT0702` findings, then rewrites
/// the allowlist file with those lines removed. Returns the number of
/// pruned entries.
fn prune_stale_allowlist_entries(root: &Path) -> Result<usize, String> {
    let config = AnalyzerConfig::default();
    let report = analyze_workspace(root, &config)?;
    let stale: BTreeSet<u32> = report
        .findings
        .iter()
        .filter(|f| f.code == codes::ALLOWLIST_UNUSED && f.file == config.allowlist_rel)
        .map(|f| f.line)
        .collect();
    if stale.is_empty() {
        return Ok(0);
    }
    let path = root.join(&config.allowlist_rel);
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    fs::write(&path, prune_allowlist(&text, &stale))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(stale.len())
}

/// "y"/"ies" suffix for the prune message.
fn plural(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

/// Benchmarks the analyzer over the live workspace: raw lexer
/// throughput (tokens/s over every `crates/**/*.rs` file) and the wall
/// time of a full self-host `analyze_workspace` run. Writes
/// `results/BENCH_analyze.json`.
fn bench_analyze(root: &Path) -> ExitCode {
    let mut sources = Vec::new();
    if let Err(e) = collect_rs_files(&root.join("crates"), &mut sources) {
        eprintln!("xtask bench-analyze: {e}");
        return ExitCode::FAILURE;
    }
    sources.sort();

    let mut bytes: u64 = 0;
    let mut tokens: u64 = 0;
    let lex_start = Instant::now();
    for path in &sources {
        let src = match fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("xtask bench-analyze: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        bytes += src.len() as u64;
        tokens += lex(&src).len() as u64;
    }
    let lex_seconds = lex_start.elapsed().as_secs_f64();

    let selfhost_start = Instant::now();
    let report = match analyze_workspace(root, &AnalyzerConfig::default()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask bench-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let selfhost_seconds = selfhost_start.elapsed().as_secs_f64();
    let tokens_per_second = if lex_seconds > 0.0 {
        tokens as f64 / lex_seconds
    } else {
        0.0
    };

    let json = format!(
        "{{\n  \"schema\": \"bench-analyze.v1\",\n  \"files\": {},\n  \"bytes\": {},\n  \
         \"tokens\": {},\n  \"lex_seconds\": {:.6},\n  \"tokens_per_second\": {:.0},\n  \
         \"selfhost_seconds\": {:.6},\n  \"findings\": {}\n}}\n",
        sources.len(),
        bytes,
        tokens,
        lex_seconds,
        tokens_per_second,
        selfhost_seconds,
        report.findings.len(),
    );
    let out_dir = root.join("results");
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!(
            "xtask bench-analyze: cannot create {}: {e}",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let out_path = out_dir.join("BENCH_analyze.json");
    if let Err(e) = fs::write(&out_path, &json) {
        eprintln!(
            "xtask bench-analyze: cannot write {}: {e}",
            out_path.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask bench-analyze: {} files, {} tokens, {:.0} tokens/s lex, {:.3}s self-host -> {}",
        sources.len(),
        tokens,
        tokens_per_second,
        selfhost_seconds,
        out_path.display()
    );
    ExitCode::SUCCESS
}

/// Recursively collects every `.rs` file under `dir`, skipping
/// `target/` build directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}
