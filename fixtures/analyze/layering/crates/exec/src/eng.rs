//! Depends back on the cachesim crate.

use commorder_cachesim::sim::Sim;

/// Completes the cachesim <-> exec cycle.
pub struct Engine {
    /// Back-reference.
    pub sim: Option<Box<Sim>>,
}
