//! **Figure 6**: DRAM traffic of the *insular sub-matrix* after RABBIT's
//! first modification (insular nodes grouped), normalized to the
//! sub-matrix's compulsory traffic — "the insular portion of the matrix
//! achieves ideal traffic".
//!
//! The sub-matrix is obtained by masking all non-zeros that do not
//! connect to insular nodes, exactly as the paper describes; the
//! community-size reduction from grouping is also reported (paper: −27%
//! average, −41% for insularity < 0.95).

use commorder::prelude::*;
use commorder::reorder::quality;
use commorder::sparse::ops;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();
    let pipeline = Pipeline::new(harness.gpu);

    let mut table = Table::new(
        "Fig. 6: normalized DRAM traffic for the insular sub-matrix (insular nodes grouped)",
        vec![
            "matrix".into(),
            "insularity".into(),
            "% insular".into(),
            "traffic/compulsory".into(),
        ],
    );
    let insular_only = RabbitPlusPlus::with_config(RabbitPlusPlusConfig {
        group_insular: true,
        hub_policy: HubPolicy::None,
        rabbit: Rabbit::new(),
    });
    let rows: Vec<(f64, f64, f64)> = harness.engine().map(&cases, |_, case| {
        eprintln!("[fig6] {}", case.entry.name);
        let result = insular_only
            .run(&case.matrix)
            .expect("square corpus matrix");
        let insularity =
            quality::insularity(&case.matrix, &result.rabbit.assignment).expect("validated");
        let insular_frac =
            result.insular.iter().filter(|&&b| b).count() as f64 / result.insular.len() as f64;
        // Mask non-zeros not incident to insular nodes, then apply the
        // insular-grouped order and simulate.
        let masked = ops::mask_incident(&case.matrix, &result.insular).expect("validated");
        let reordered = masked
            .permute_symmetric(&result.permutation)
            .expect("validated");
        (
            insularity,
            insular_frac,
            pipeline.simulate(&reordered).traffic_ratio,
        )
    });
    let mut ratios = Vec::new();
    for (case, &(insularity, insular_frac, traffic_ratio)) in cases.iter().zip(&rows) {
        table.add_row(vec![
            case.entry.name.to_string(),
            format!("{insularity:.3}"),
            Table::percent(insular_frac),
            Table::ratio(traffic_ratio),
        ]);
        ratios.push(traffic_ratio);
    }
    println!("{table}");
    println!(
        "mean insular sub-matrix traffic: {} (paper: ~1.0x, i.e. compulsory; \
         sub-1.0 values come from empty rows inflating the compulsory estimate, \
         like the paper's wiki-Talk footnote)",
        Table::ratio(arith_mean_ratio(&ratios).unwrap_or(f64::NAN))
    );
}
