//! Social-network scenario: why degree skew breaks community detection,
//! and how RABBIT++ claws the loss back (§V-B / §VI of the paper).
//!
//! Sweeps the R-MAT skew knob from mild to Graph500-heavy and reports,
//! for each matrix: the skew metric, RABBIT's detected insularity, and
//! the SpMV traffic under RABBIT vs RABBIT++.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use commorder::prelude::*;
use commorder::reorder::quality;
use commorder::sparse::stats::skew_top10;
use commorder::synth::generators::Rmat;

fn main() -> Result<(), commorder::sparse::SparseError> {
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let mut table = Table::new(
        "R-MAT skew sweep: skew vs community quality vs reordering payoff",
        vec![
            "quadrant (a)".into(),
            "skew(top10%)".into(),
            "insularity".into(),
            "RABBIT traffic".into(),
            "RABBIT++ traffic".into(),
            "RABBIT++ gain".into(),
        ],
    );

    // a = 0.25 is uniform (no skew); 0.57 is Graph500's heavy tail.
    for &a_quadrant in &[0.30, 0.40, 0.50, 0.57, 0.65] {
        let residual = (1.0 - a_quadrant) / 2.2;
        let matrix = Rmat {
            scale: 13,
            avg_degree: 16.0,
            a: a_quadrant,
            b: residual,
            c: residual,
            scramble_ids: true,
        }
        .generate(1234)?;

        let rpp = RabbitPlusPlus::new().run(&matrix)?;
        let insularity = quality::insularity(&matrix, &rpp.rabbit.assignment)?;
        let rabbit_run = pipeline.simulate(&matrix.permute_symmetric(&rpp.rabbit.permutation)?);
        let rpp_run = pipeline.simulate(&matrix.permute_symmetric(&rpp.permutation)?);
        table.add_row(vec![
            format!("{a_quadrant:.2}"),
            Table::percent(skew_top10(&matrix)),
            format!("{insularity:.3}"),
            Table::ratio(rabbit_run.traffic_ratio),
            Table::ratio(rpp_run.traffic_ratio),
            Table::ratio(rabbit_run.traffic_ratio / rpp_run.traffic_ratio),
        ]);
    }
    println!("{table}");
    println!(
        "The paper's §V-B in one table: more skew (larger a) => lower insularity\n\
         => RABBIT further from ideal => more for RABBIT++'s hub grouping to recover."
    );
    Ok(())
}
