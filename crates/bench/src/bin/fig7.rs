//! **Figure 7**: reduction in SpMV DRAM traffic with RABBIT++ relative to
//! RABBIT, for the low-insularity matrices (insularity < 0.95); the
//! paper reports a maximum reduction of 1.56x and a 7.7% mean on this
//! subset (4.1% across all matrices, ≤1% for high-insularity inputs).

use commorder::prelude::*;
use commorder::reorder::quality;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();
    let pipeline = Pipeline::new(harness.gpu);

    struct Row {
        name: String,
        insularity: f64,
        rabbit: f64,
        rabbitpp: f64,
        speedup: f64,
    }
    let mut rows: Vec<Row> = harness.engine().map(&cases, |_, case| {
        eprintln!("[fig7] {}", case.entry.name);
        let rpp = RabbitPlusPlus::new()
            .run(&case.matrix)
            .expect("square corpus matrix");
        let insularity =
            quality::insularity(&case.matrix, &rpp.rabbit.assignment).expect("validated");
        let rabbit_run = pipeline.simulate(
            &case
                .matrix
                .permute_symmetric(&rpp.rabbit.permutation)
                .expect("validated"),
        );
        let rpp_run = pipeline.simulate(
            &case
                .matrix
                .permute_symmetric(&rpp.permutation)
                .expect("validated"),
        );
        Row {
            name: case.entry.name.to_string(),
            insularity,
            rabbit: rabbit_run.traffic_ratio,
            rabbitpp: rpp_run.traffic_ratio,
            speedup: pipeline.gpu().estimate_time(
                pipeline.kernel(),
                u64::from(case.matrix.n_rows()),
                case.matrix.nnz() as u64,
                rabbit_run.dram_bytes,
            ) / pipeline.gpu().estimate_time(
                pipeline.kernel(),
                u64::from(case.matrix.n_rows()),
                case.matrix.nnz() as u64,
                rpp_run.dram_bytes,
            ),
        }
    });
    rows.sort_by(|a, b| a.insularity.partial_cmp(&b.insularity).expect("finite"));

    let mut table = Table::new(
        "Fig. 7: RABBIT++ traffic reduction over RABBIT (insularity < 0.95 subset)",
        vec![
            "matrix".into(),
            "insularity".into(),
            "RABBIT".into(),
            "RABBIT++".into(),
            "traffic reduction".into(),
            "speedup".into(),
        ],
    );
    for r in rows.iter().filter(|r| r.insularity < 0.95) {
        table.add_row(vec![
            r.name.clone(),
            format!("{:.3}", r.insularity),
            Table::ratio(r.rabbit),
            Table::ratio(r.rabbitpp),
            Table::ratio(r.rabbit / r.rabbitpp),
            Table::ratio(r.speedup),
        ]);
    }
    println!("{table}");

    let reduction = |rs: Vec<&Row>| -> (f64, f64) {
        let ratios: Vec<f64> = rs.iter().map(|r| r.rabbit / r.rabbitpp).collect();
        let max = ratios.iter().cloned().fold(1.0f64, f64::max);
        let mean = arith_mean_ratio(&ratios).unwrap_or(f64::NAN);
        (max, mean)
    };
    let (max_all, mean_all) = reduction(rows.iter().collect());
    let (max_low, mean_low) = reduction(rows.iter().filter(|r| r.insularity < 0.95).collect());
    let high: Vec<f64> = rows
        .iter()
        .filter(|r| r.insularity >= 0.95)
        .map(|r| r.rabbit / r.rabbitpp)
        .collect();
    println!(
        "traffic reduction — ALL: max {} mean {} | ins<0.95: max {} mean {} | ins>=0.95 mean {}",
        Table::ratio(max_all),
        Table::ratio(mean_all),
        Table::ratio(max_low),
        Table::ratio(mean_low),
        Table::ratio(arith_mean_ratio(&high).unwrap_or(f64::NAN)),
    );
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    println!(
        "speedup — max {} mean {}",
        Table::ratio(speedups.iter().cloned().fold(1.0f64, f64::max)),
        Table::ratio(arith_mean_ratio(&speedups).unwrap_or(f64::NAN)),
    );
    println!(
        "Paper reference: max traffic reduction 1.56x, mean 4.1% (7.7% on ins<0.95); \
         max speedup 1.57x, mean 5.3% (9.7% on ins<0.95); ins>=0.95 within 1% of RABBIT"
    );
}
