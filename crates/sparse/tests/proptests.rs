//! Property-based tests for the sparse substrate: format invariants,
//! kernel correctness against the dense reference, and permutation laws.
//!
//! Driven by the offline `commorder_check::propcheck` harness: each
//! property runs [`DEFAULT_CASES`] deterministically seeded cases, and a
//! failure panics with the (name, case, seed) triple to reproduce it.

use commorder_check::propcheck::{arb_csr, arb_perm, run_cases, DEFAULT_CASES};
use commorder_sparse::{kernels, ops, stats, CooMatrix, CscMatrix, Permutation};

fn approx(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn csr_invariants_hold_after_conversion() {
    run_cases("csr-invariants", DEFAULT_CASES, |rng| {
        // Row offsets monotone, columns strictly increasing per row.
        let m = arb_csr(rng, 30, 5);
        let offs = m.row_offsets();
        assert_eq!(offs[0], 0);
        assert_eq!(*offs.last().expect("offsets non-empty") as usize, m.nnz());
        for r in 0..m.n_rows() {
            let (cols, _) = m.row(r);
            for w in cols.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    });
}

#[test]
fn spmv_matches_dense_reference() {
    run_cases("spmv-vs-dense", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 25, 6);
        let x: Vec<f32> = (0..m.n_cols()).map(|i| (i as f32).sin()).collect();
        let sparse = kernels::spmv_csr(&m, &x).expect("dims");
        let dense = kernels::dense_reference_spmv(&m, &x);
        for (a, b) in sparse.iter().zip(&dense) {
            assert!(approx(*a, *b), "{a} vs {b}");
        }
    });
}

#[test]
fn coo_and_tiled_kernels_agree_with_csr() {
    run_cases("kernel-agreement", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 25, 6);
        let tile = 1 + rng.gen_u32(39);
        let x: Vec<f32> = (0..m.n_cols()).map(|i| 1.0 + (i % 3) as f32).collect();
        let reference = kernels::spmv_csr(&m, &x).expect("dims");
        let coo = kernels::spmv_coo(&CooMatrix::from(&m), &x).expect("dims");
        let tiled = kernels::spmv_csr_tiled(&m, &x, tile).expect("dims");
        for ((a, b), c) in reference.iter().zip(&coo).zip(&tiled) {
            assert!(approx(*a, *b));
            assert!(approx(*a, *c));
        }
    });
}

#[test]
fn csc_round_trip_preserves_matrix() {
    run_cases("csc-round-trip", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 25, 5);
        let csc = CscMatrix::from(&m);
        assert_eq!(csc.to_csr(), m);
        assert_eq!(csc.nnz(), m.nnz());
        // Column degrees equal in-degrees.
        let in_deg = m.in_degrees();
        for c in 0..m.n_cols() {
            assert_eq!(csc.col_degree(c), in_deg[c as usize]);
        }
    });
}

#[test]
fn permute_preserves_structure_metrics() {
    run_cases("permute-invariants", DEFAULT_CASES, |rng| {
        // nnz and degree *multiset* are permutation invariants.
        let m = arb_csr(rng, 25, 5);
        let p = arb_perm(rng, m.n_rows());
        let pm = m.permute_symmetric(&p).expect("square");
        assert_eq!(pm.nnz(), m.nnz());
        let mut d1 = m.out_degrees();
        let mut d2 = pm.out_degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        // Skew is invariant under symmetric permutation.
        let s1 = stats::skew_top10(&m);
        let s2 = stats::skew_top10(&pm);
        assert!((s1 - s2).abs() < 1e-12);
    });
}

#[test]
fn from_new_ids_accepts_exactly_bijections() {
    run_cases("from-new-ids-bijections", DEFAULT_CASES, |rng| {
        let n = 1 + rng.gen_u32(60);
        // A shuffled identity is a bijection and must be accepted.
        let good = arb_perm(rng, n).into_inner();
        assert!(Permutation::from_new_ids(good.clone()).is_ok());
        // Any single corruption (duplicate or out-of-range entry) breaks
        // the bijection and must be rejected.
        let idx = rng.gen_range(u64::from(n)) as usize;
        let mut dup = good.clone();
        dup[idx] = dup[(idx + 1) % dup.len()];
        if dup.len() > 1 {
            assert!(Permutation::from_new_ids(dup).is_err());
        }
        let mut oob = good;
        oob[idx] = n + rng.gen_u32(5);
        assert!(Permutation::from_new_ids(oob).is_err());
    });
}

#[test]
fn self_loop_removal_and_symmetrize_compose() {
    run_cases("clean-then-symmetrize", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 25, 5);
        let clean = ops::remove_self_loops(&m);
        assert!(clean.iter().all(|(r, c, _)| r != c));
        let sym = ops::symmetrize(&clean).expect("square");
        assert!(sym.is_symmetric());
        assert!(sym.iter().all(|(r, c, _)| r != c));
    });
}

#[test]
fn connected_components_partition_vertices() {
    run_cases("components-partition", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 25, 4);
        let (comp, count) = ops::connected_components(&m).expect("square");
        assert_eq!(comp.len(), m.n_rows() as usize);
        assert!(comp.iter().all(|&c| c < count));
        // Adjacent vertices share a component.
        for (r, c, _) in m.iter() {
            assert_eq!(comp[r as usize], comp[c as usize]);
        }
    });
}

#[test]
fn compulsory_traffic_monotone_in_nnz() {
    use commorder_sparse::traffic::Kernel;
    run_cases("compulsory-monotone", DEFAULT_CASES, |rng| {
        let n = 1 + rng.gen_range(10_000);
        let nnz = rng.gen_range(1_000_000);
        for k in [Kernel::SpmvCsr, Kernel::SpmvCoo, Kernel::SpmmCsr { k: 4 }] {
            assert!(k.compulsory_bytes(n, nnz + 1) > k.compulsory_bytes(n, nnz));
            assert!(k.compulsory_bytes(n + 1, nnz) > k.compulsory_bytes(n, nnz));
        }
    });
}
