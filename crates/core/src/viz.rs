//! ASCII "spy plot" rendering of sparse matrices — the visual intuition
//! of the paper's Fig. 1 (scattered non-zeros vs. diagonal-concentrated
//! non-zeros) for terminals, examples and the CLI's `spy` subcommand.

use commorder_sparse::CsrMatrix;

/// Density glyph ramp: blank → light → dense.
const RAMP: [char; 5] = [' ', '.', ':', 'o', '@'];

/// Renders an `size x size`-character density plot of the matrix: each
/// character cell aggregates a rectangular block of the matrix and shows
/// a glyph scaled by the block's non-zero density (log-scaled so sparse
/// structure stays visible).
///
/// Returns an empty string for an empty matrix.
///
/// # Example
///
/// ```
/// use commorder::viz::spy;
/// use commorder::sparse::CsrMatrix;
///
/// # fn main() -> Result<(), commorder::sparse::SparseError> {
/// let m = CsrMatrix::new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0])?;
/// let plot = spy(&m, 2);
/// assert_eq!(plot.lines().count(), 2);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `size == 0`.
#[must_use]
pub fn spy(a: &CsrMatrix, size: u32) -> String {
    assert!(size > 0, "size must be positive");
    if a.n_rows() == 0 || a.n_cols() == 0 {
        return String::new();
    }
    let rows = size.min(a.n_rows());
    let cols = size.min(a.n_cols());
    let mut counts = vec![0u64; rows as usize * cols as usize];
    // Map each entry to its character cell.
    let cell_r = |r: u32| (u64::from(r) * u64::from(rows) / u64::from(a.n_rows())) as usize;
    let cell_c = |c: u32| (u64::from(c) * u64::from(cols) / u64::from(a.n_cols())) as usize;
    for (r, c, _) in a.iter() {
        counts[cell_r(r) * cols as usize + cell_c(c)] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(0);
    let mut out = String::with_capacity((cols as usize + 1) * rows as usize);
    for r in 0..rows as usize {
        for c in 0..cols as usize {
            let count = counts[r * cols as usize + c];
            let glyph = if count == 0 || max == 0 {
                RAMP[0]
            } else {
                // Log scale: 1 count still visible, max saturates.
                let level = ((count as f64).ln_1p() / (max as f64).ln_1p()
                    * (RAMP.len() - 1) as f64)
                    .ceil() as usize;
                RAMP[level.clamp(1, RAMP.len() - 1)]
            };
            out.push(glyph);
        }
        out.push('\n');
    }
    out
}

/// Fraction of the spy grid's non-zero mass lying in the `band`-cell
/// diagonal band — a quick scalar companion to [`spy`] for tests and
/// summaries.
///
/// # Panics
///
/// Panics if `size == 0`.
#[must_use]
pub fn diagonal_mass(a: &CsrMatrix, size: u32, band: u32) -> f64 {
    assert!(size > 0, "size must be positive");
    if a.nnz() == 0 {
        return 1.0;
    }
    let rows = u64::from(size.min(a.n_rows()));
    let cols = u64::from(size.min(a.n_cols()));
    let mut on_diag = 0u64;
    for (r, c, _) in a.iter() {
        let cr = u64::from(r) * rows / u64::from(a.n_rows());
        let cc = u64::from(c) * cols / u64::from(a.n_cols());
        if cr.abs_diff(cc) <= u64::from(band) {
            on_diag += 1;
        }
    }
    on_diag as f64 / a.nnz() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_reorder::{Rabbit, RandomOrder, Reordering};
    use commorder_synth::generators::PlantedPartition;

    #[test]
    fn spy_has_requested_shape() {
        let m = PlantedPartition::uniform(256, 8, 6.0, 0.05)
            .generate(13)
            .unwrap();
        let plot = spy(&m, 16);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 16);
        assert!(lines.iter().all(|l| l.chars().count() == 16));
    }

    #[test]
    fn identity_like_matrix_is_diagonal_in_the_plot() {
        // Tridiagonal matrix: all mass within one cell of the diagonal.
        let n = 64u32;
        let entries: Vec<_> = (0..n - 1)
            .flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)])
            .collect();
        let m = commorder_sparse::CsrMatrix::try_from(
            commorder_sparse::CooMatrix::from_entries(n, n, entries).unwrap(),
        )
        .unwrap();
        assert!((diagonal_mass(&m, 16, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reordering_visibly_concentrates_the_diagonal() {
        let tidy = PlantedPartition::uniform(512, 16, 8.0, 0.02)
            .generate(14)
            .unwrap();
        let messy = tidy
            .permute_symmetric(&RandomOrder::new(7).reorder(&tidy).unwrap())
            .unwrap();
        let fixed = messy
            .permute_symmetric(&Rabbit::new().reorder(&messy).unwrap())
            .unwrap();
        let before = diagonal_mass(&messy, 32, 2);
        let after = diagonal_mass(&fixed, 32, 2);
        assert!(
            after > before + 0.3,
            "diagonal mass should jump: {before} -> {after}"
        );
    }

    #[test]
    fn empty_matrix_renders_empty() {
        assert_eq!(spy(&commorder_sparse::CsrMatrix::empty(0), 8), "");
        assert_eq!(
            diagonal_mass(&commorder_sparse::CsrMatrix::empty(4), 8, 1),
            1.0
        );
    }

    #[test]
    fn small_matrix_clamps_grid() {
        let m = commorder_sparse::CsrMatrix::new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0])
            .unwrap();
        let plot = spy(&m, 40);
        assert_eq!(plot.lines().count(), 2);
    }
}
