//! Deterministic synthetic sparse-matrix generators and the 50-matrix
//! evaluation corpus for the `commorder` workspace.
//!
//! The ISPASS'23 paper evaluates on 50 matrices curated from SuiteSparse,
//! Konect and Web Data Commons. Those repositories cannot be bundled, so
//! this crate provides generator families covering the same structural
//! axes — community strength, degree skew, diameter, density — and a
//! fixed, seeded [`corpus`] whose entries each name the paper-corpus
//! family they stand in for. See `DESIGN.md` §1 for the substitution
//! argument.
//!
//! Everything is deterministic: the same crate version always produces
//! bit-identical matrices (own PRNG in [`rng`], no external randomness).
//!
//! # Example
//!
//! ```
//! use commorder_synth::generators::PlantedPartition;
//!
//! # fn main() -> Result<(), commorder_sparse::SparseError> {
//! let g = PlantedPartition::uniform(1024, 16, 8.0, 0.05).generate(42)?;
//! assert_eq!(g.n_rows(), 1024);
//! assert!(g.is_symmetric());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod generators;
pub mod rng;
pub mod stream;

pub use corpus::{CorpusEntry, Domain, GeneratorSpec, PublishOrder};
