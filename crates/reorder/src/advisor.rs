//! Reordering advisor — a measurable step toward the paper's "ultimate
//! goal of developing a universally effective matrix reordering
//! solution" (§I).
//!
//! The paper's analysis yields decision signals: degree **skew** predicts
//! community-detection quality (§V-B), **insularity** predicts how close
//! RABBIT gets to ideal (§V-A), bandwidth concentration identifies
//! already-ordered or mesh-like inputs, and pre-processing budgets rule
//! out the expensive techniques (§VI-C). [`Advisor::recommend`] encodes
//! those signals into an inspectable recommendation with a rationale —
//! not a black box, every threshold is a documented field.

use commorder_sparse::{stats, CsrMatrix, SparseError};

use crate::quality;
use crate::{technique_by_name, Rabbit, Reordering};

/// Advisor recommendations come from the name-keyed registry — the same
/// constructions `suite --techniques` resolves — so the advisor can
/// never recommend a technique the CLI cannot spell. The seed only
/// affects seeded techniques (random, rabbit-flat), which the advisor
/// never picks.
fn registered(name: &str) -> Box<dyn Reordering> {
    technique_by_name(name, 0xC0DE)
        .unwrap_or_else(|| unreachable!("advisor recommendations are registered: {name}"))
}

/// How much pre-processing time the caller can afford.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Budget {
    /// Reordering cost is amortized over many kernel iterations
    /// (the paper's setting, §VI-C) — spend freely.
    #[default]
    Amortized,
    /// Few iterations: only near-linear-time techniques are worth it.
    Tight,
}

/// The advisor's verdict.
pub struct Recommendation {
    /// The technique to run.
    pub technique: Box<dyn Reordering>,
    /// Expected regime, per the paper's analysis.
    pub rationale: String,
    /// Signals the decision was based on.
    pub signals: Signals,
}

impl std::fmt::Debug for Recommendation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recommendation")
            .field("technique", &self.technique.name())
            .field("rationale", &self.rationale)
            .field("signals", &self.signals)
            .finish()
    }
}

/// Cheap structural signals measured on the input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signals {
    /// Fraction of nnz in the top-10% rows (§V-B skew).
    pub skew: f64,
    /// Mean |row − col| normalized by n (diagonal concentration of the
    /// *current* order).
    pub normalized_index_distance: f64,
    /// Mean degree.
    pub mean_degree: f64,
    /// Insularity of a RABBIT detection pass (only measured under
    /// [`Budget::Amortized`]; `None` under a tight budget).
    pub insularity: Option<f64>,
}

/// Decision thresholds (public and overridable; defaults follow the
/// paper's numbers where it names one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Advisor {
    /// Above this normalized index distance the current order is treated
    /// as unstructured (scrambled-publisher case).
    pub disorder_threshold: f64,
    /// Below this, the current order is already near-diagonal and a
    /// bandwidth method (RCM) suffices.
    pub diagonal_threshold: f64,
    /// The paper's insularity split point.
    pub insularity_threshold: f64,
}

impl Default for Advisor {
    fn default() -> Self {
        Advisor {
            disorder_threshold: 0.10,
            diagonal_threshold: 0.005,
            insularity_threshold: 0.95,
        }
    }
}

impl Advisor {
    /// Measures the signals and recommends a technique.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
    pub fn recommend(&self, a: &CsrMatrix, budget: Budget) -> Result<Recommendation, SparseError> {
        let n = f64::from(a.n_rows().max(1));
        let signals_base = Signals {
            skew: stats::skew_top10(a),
            normalized_index_distance: stats::mean_index_distance(a) / n,
            mean_degree: a.nnz() as f64 / n,
            insularity: None,
        };

        // Near-diagonal input: the publisher (or a previous pass) already
        // ordered it; RCM tightens the band at trivial cost.
        if signals_base.normalized_index_distance < self.diagonal_threshold {
            return Ok(Recommendation {
                technique: registered("rcm"),
                rationale: format!(
                    "already near-diagonal (normalized index distance {:.4} < {:.4}); \
                     bandwidth reduction preserves and tightens the existing structure",
                    signals_base.normalized_index_distance, self.diagonal_threshold
                ),
                signals: signals_base,
            });
        }

        if budget == Budget::Tight {
            // Without amortization headroom, RABBIT is still the best
            // value (Fig. 9: amortizes ~7x faster than GORDER); skip the
            // extra RABBIT++ pass.
            return Ok(Recommendation {
                technique: registered("rabbit"),
                rationale: "tight pre-processing budget: RABBIT amortizes fastest \
                            among the broadly effective techniques (Fig. 9)"
                    .to_string(),
                signals: signals_base,
            });
        }

        // Amortized budget: run detection once and use insularity to pick.
        let detection = Rabbit::new().run(a)?;
        let insularity = quality::insularity(a, &detection.assignment)?;
        let signals = Signals {
            insularity: Some(insularity),
            ..signals_base
        };
        if insularity >= self.insularity_threshold {
            Ok(Recommendation {
                technique: registered("rabbit"),
                rationale: format!(
                    "insularity {insularity:.3} >= {:.2}: RABBIT is already within \
                     ~26% of ideal (Fig. 3); the ++ modifications change <1%",
                    self.insularity_threshold
                ),
                signals,
            })
        } else {
            Ok(Recommendation {
                technique: registered("rabbit++"),
                rationale: format!(
                    "insularity {insularity:.3} < {:.2} with skew {:.1}%: the \
                     insular/hub grouping of RABBIT++ recovers up to 1.6x here (Fig. 7)",
                    self.insularity_threshold,
                    signals.skew * 100.0
                ),
                signals,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_synth::generators::{Banded, PlantedPartition, Rmat};

    #[test]
    fn near_diagonal_input_gets_rcm() {
        let g = Banded {
            n: 4096,
            band: 16,
            fill_degree: 5.0,
            long_range_p: 0.0,
            scramble_ids: false,
        }
        .generate(1)
        .unwrap();
        let rec = Advisor::default().recommend(&g, Budget::Amortized).unwrap();
        assert_eq!(rec.technique.name(), "RCM", "{}", rec.rationale);
        assert!(rec.signals.normalized_index_distance < 0.005);
    }

    #[test]
    fn high_insularity_input_gets_plain_rabbit() {
        let tidy = PlantedPartition::uniform(2048, 32, 10.0, 0.02)
            .generate(2)
            .unwrap();
        let messy = tidy
            .permute_symmetric(&crate::RandomOrder::new(1).reorder(&tidy).unwrap())
            .unwrap();
        let rec = Advisor::default()
            .recommend(&messy, Budget::Amortized)
            .unwrap();
        assert_eq!(rec.technique.name(), "RABBIT", "{}", rec.rationale);
        assert!(rec.signals.insularity.unwrap() >= 0.95);
    }

    #[test]
    fn skewed_low_insularity_input_gets_rabbitpp() {
        let g = Rmat::graph500(12, 16.0).generate(3).unwrap();
        let rec = Advisor::default().recommend(&g, Budget::Amortized).unwrap();
        assert_eq!(rec.technique.name(), "RABBIT++", "{}", rec.rationale);
        assert!(rec.signals.insularity.unwrap() < 0.95);
        assert!(rec.signals.skew > 0.3);
    }

    #[test]
    fn tight_budget_skips_detection() {
        let g = Rmat::graph500(10, 8.0).generate(4).unwrap();
        let rec = Advisor::default().recommend(&g, Budget::Tight).unwrap();
        assert_eq!(rec.technique.name(), "RABBIT");
        assert!(rec.signals.insularity.is_none());
    }

    #[test]
    fn recommended_technique_actually_runs() {
        let g = Rmat::graph500(9, 6.0).generate(5).unwrap();
        let rec = Advisor::default().recommend(&g, Budget::Amortized).unwrap();
        let p = rec.technique.reorder(&g).unwrap();
        assert_eq!(p.len(), g.n_rows() as usize);
    }
}
