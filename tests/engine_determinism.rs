//! The execution engine's determinism guarantee, end to end: the
//! experiment report is a pure function of the [`ExperimentSpec`] — the
//! worker count, scheduling order and grid declaration order must never
//! leak into the results.

use commorder::prelude::*;
use commorder::synth::corpus;
use commorder_check::propcheck::run_cases;

/// A small real grid: the first three mini-corpus matrices x four
/// techniques on the test-scale platform.
fn mini_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(GpuSpec::test_scale()).techniques(vec![
        Box::new(RandomOrder::new(7)),
        Box::new(Original),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
    ]);
    for entry in corpus::mini().into_iter().take(3) {
        let matrix = entry.generate().expect("mini corpus generates");
        spec = spec.matrix_in_group(entry.name, entry.domain.label(), matrix);
    }
    spec
}

#[test]
fn report_json_is_byte_identical_for_1_2_and_8_threads() {
    let reference = mini_spec()
        .run(&Engine::new(1))
        .expect("valid grid")
        .render_json();
    for threads in [2usize, 8] {
        let json = mini_spec()
            .run(&Engine::new(threads))
            .expect("valid grid")
            .render_json();
        assert_eq!(
            json, reference,
            "report JSON diverged at {threads} worker threads"
        );
    }
    // The report must carry data and never scheduling observability.
    assert!(reference.contains("\"records\""));
    assert!(!reference.contains("seconds"));
    assert!(!reference.contains("worker"));
}

#[test]
fn record_values_and_permutations_match_across_thread_counts() {
    let reference = mini_spec().run(&Engine::new(1)).expect("valid grid");
    let wide = mini_spec().run(&Engine::new(8)).expect("valid grid");
    assert_eq!(reference.records.len(), wide.records.len());
    for (a, b) in reference.records.iter().zip(&wide.records) {
        assert_eq!(
            (a.matrix, a.technique, a.kernel),
            (b.matrix, b.technique, b.kernel)
        );
        assert_eq!(a.run, b.run);
    }
    assert_eq!(reference.permutations, wide.permutations);
}

#[test]
fn grid_declaration_order_never_affects_per_run_stats() {
    // Propcheck: submit the same cells in a shuffled axis order and
    // verify every (matrix, technique) cell reports identical stats —
    // jobs must not observe each other through scheduling.
    let techniques: &[fn() -> Box<dyn Reordering>] = &[
        || Box::new(RandomOrder::new(7)),
        || Box::new(Original),
        || Box::new(Rabbit::new()),
        || Box::new(RabbitPlusPlus::new()),
    ];
    let entries: Vec<_> = corpus::mini().into_iter().take(3).collect();
    let matrices: Vec<(String, CsrMatrix)> = entries
        .iter()
        .map(|e| {
            (
                e.name.to_string(),
                e.generate().expect("mini corpus generates"),
            )
        })
        .collect();

    let run_order = |matrix_order: &[usize], technique_order: &[usize]| -> ExperimentResult {
        let mut spec = ExperimentSpec::new(GpuSpec::test_scale());
        for &mi in matrix_order {
            spec = spec.matrix(matrices[mi].0.clone(), matrices[mi].1.clone());
        }
        for &ti in technique_order {
            spec = spec.technique(techniques[ti]());
        }
        spec.run(&Engine::new(4)).expect("valid grid")
    };
    let reference = run_order(&[0, 1, 2], &[0, 1, 2, 3]);

    run_cases("grid-order-invariance", 6, |rng| {
        // A random permutation of each axis (Fisher–Yates on indices).
        let shuffle = |n: usize, rng: &mut commorder::synth::rng::Rng| -> Vec<usize> {
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            order
        };
        let matrix_order = shuffle(matrices.len(), rng);
        let technique_order = shuffle(techniques.len(), rng);
        let shuffled = run_order(&matrix_order, &technique_order);

        for (smi, &mi) in matrix_order.iter().enumerate() {
            for (sti, &ti) in technique_order.iter().enumerate() {
                let got = shuffled.run_for(smi, sti);
                let want = reference.run_for(mi, ti);
                assert_eq!(
                    got.run, want.run,
                    "cell ({}, {}) changed under grid order {matrix_order:?} x {technique_order:?}",
                    matrices[mi].0, reference.techniques[ti],
                );
                assert_eq!(
                    shuffled.permutations[smi][sti], reference.permutations[mi][ti],
                    "permutation for ({}, {}) changed under reordering of the grid",
                    matrices[mi].0, reference.techniques[ti],
                );
            }
        }
    });
}

/// The compile-time Send/Sync audit backing the engine: everything a
/// job closure captures must cross threads.
#[test]
fn experiment_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LruCache>();
    assert_send_sync::<CacheStats>();
    assert_send_sync::<CacheConfig>();
    assert_send_sync::<ExecutionModel>();
    assert_send_sync::<commorder::cachesim::Access>();
    assert_send_sync::<Pipeline>();
    assert_send_sync::<Box<dyn Reordering>>();
    assert_send_sync::<ExperimentResult>();
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineStats>();
}
