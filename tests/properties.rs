//! Property-based integration tests over randomly generated sparse
//! matrices: permutation algebra, kernel/permutation commutation, format
//! round-trips, metric bounds and cache-policy dominance.
//!
//! Driven by the offline `commorder_check::propcheck` harness.

use commorder::cachesim::belady::simulate_belady;
use commorder::cachesim::source::KernelTrace;
use commorder::cachesim::trace::ExecutionModel;
use commorder::prelude::*;
use commorder::reorder::quality;
use commorder::sparse::{io, kernels, ops};
use commorder_check::propcheck::{arb_csr, arb_perm, run_cases, DEFAULT_CASES};

#[test]
fn spmv_commutes_with_symmetric_permutation() {
    run_cases("spmv-permutation-commutes", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 38, 5);
        let n = m.n_rows();
        let perm = RandomOrder::new(42).reorder(&m).expect("square");
        let pm = m.permute_symmetric(&perm).expect("validated");
        let x: Vec<f32> = (0..n).map(|i| (i % 7) as f32 - 3.0).collect();
        let y = kernels::spmv_csr(&m, &x).expect("dims");
        let xp = perm.apply_to_vec(&x).expect("lengths match");
        let yp = kernels::spmv_csr(&pm, &xp).expect("dims");
        let y_expect = perm.apply_to_vec(&y).expect("lengths match");
        for (a, b) in yp.iter().zip(&y_expect) {
            assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0));
        }
    });
}

#[test]
fn every_technique_outputs_a_bijection() {
    run_cases("paper-suite-bijections", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 38, 5);
        let seed = rng.gen_range(100);
        for technique in paper_suite(seed) {
            let p = technique.reorder(&m).expect("square input");
            assert_eq!(p.len(), m.n_rows() as usize);
            // from_new_ids validated it; double-check the inverse law.
            let inv = p.inverse();
            for v in 0..m.n_rows() {
                assert_eq!(inv.new_of(p.new_of(v)), v);
            }
        }
    });
}

#[test]
fn permutation_composition_is_associative() {
    run_cases("composition-associative", DEFAULT_CASES, |rng| {
        let n = 1 + rng.gen_u32(29);
        let (a, b, c) = (arb_perm(rng, n), arb_perm(rng, n), arb_perm(rng, n));
        let left = a
            .then(&b)
            .expect("same length")
            .then(&c)
            .expect("same length");
        let right = a
            .then(&b.then(&c).expect("same length"))
            .expect("same length");
        assert_eq!(left, right);
    });
}

#[test]
fn matrix_market_round_trip() {
    run_cases("matrix-market-round-trip", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 38, 5);
        let mut buf = Vec::new();
        io::write_matrix_market(&mut buf, &m).expect("in-memory write");
        let back =
            CsrMatrix::try_from(io::read_matrix_market(buf.as_slice()).expect("own output parses"))
                .expect("valid");
        assert_eq!(back, m);
    });
}

#[test]
fn transpose_is_an_involution() {
    run_cases("transpose-involution", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 38, 5);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().nnz(), m.nnz());
    });
}

#[test]
fn symmetrize_produces_symmetric_superset() {
    run_cases("symmetrize-superset", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 38, 5);
        let s = ops::symmetrize(&m).expect("square");
        assert!(s.is_symmetric());
        assert!(s.nnz() >= m.nnz());
        assert!(s.nnz() <= 2 * m.nnz());
    });
}

#[test]
fn insularity_and_modularity_bounds() {
    run_cases("quality-metric-bounds", DEFAULT_CASES, |rng| {
        // Modularity is defined for non-negative weights; rebuild the
        // random pattern with the positive values the paper's corpus uses.
        let raw = arb_csr(rng, 38, 5);
        let entries: Vec<(u32, u32, f32)> = raw
            .iter()
            .map(|(row, col, _)| (row, col, 1.0 + (row % 5) as f32))
            .collect();
        let m = CsrMatrix::try_from(
            CooMatrix::from_entries(raw.n_rows(), raw.n_cols(), entries).expect("in range"),
        )
        .expect("valid");
        let r = Rabbit::new().run(&m).expect("square");
        let ins = quality::insularity(&m, &r.assignment).expect("validated");
        assert!((0.0..=1.0).contains(&ins));
        let sym = ops::symmetrize(&m).expect("square");
        let q = quality::modularity(&sym, &r.assignment).expect("validated");
        assert!((-0.5..=1.0).contains(&q), "modularity {q}");
        // Insular fraction is consistent with the node mask.
        let frac = quality::insular_fraction(&m, &r.assignment).expect("validated");
        assert!((0.0..=1.0).contains(&frac));
    });
}

#[test]
fn lru_dominated_by_belady_on_kernel_traces() {
    run_cases("belady-dominates-pipeline", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 38, 5);
        let config = CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 32,
            associativity: 4,
        };
        let source = KernelTrace::new(&m, Kernel::SpmvCsr, ExecutionModel::Sequential);
        let mut lru = LruCache::new(config);
        lru.consume(&source);
        let l = lru.finish();
        let o = simulate_belady(config, &source);
        assert!(o.misses() <= l.misses());
        assert!(l.compulsory_misses <= l.misses());
        assert_eq!(o.compulsory_misses, l.compulsory_misses);
        assert_eq!(o.accesses, l.accesses);
    });
}

#[test]
fn traffic_is_at_least_compulsory_reads() {
    run_cases("traffic-at-least-compulsory", DEFAULT_CASES, |rng| {
        // Fill misses alone must cover every distinct read line once.
        let m = arb_csr(rng, 38, 5);
        let pipeline = Pipeline::new(GpuSpec::test_scale());
        let run = pipeline.simulate(&m);
        assert!(run.stats.fills >= run.stats.compulsory_misses);
        assert!(run.time_seconds >= 0.0);
    });
}

#[test]
fn interleaved_and_sequential_have_same_footprint() {
    run_cases("schedule-independent-footprint", DEFAULT_CASES, |rng| {
        // Compulsory misses are schedule independent.
        let m = arb_csr(rng, 38, 5);
        let streams = 1 + rng.gen_u32(7);
        let config = CacheConfig::test_scale();
        let count = |model| {
            let mut cache = LruCache::new(config);
            cache.consume(&KernelTrace::new(&m, Kernel::SpmvCsr, model));
            let s = cache.finish();
            (s.accesses, s.compulsory_misses)
        };
        let (len_a, comp_a) = count(ExecutionModel::Sequential);
        let (len_b, comp_b) = count(ExecutionModel::Interleaved { streams });
        assert_eq!(len_a, len_b);
        assert_eq!(comp_a, comp_b);
    });
}
