//! `commorder-cli` — apply and evaluate matrix reorderings on Matrix
//! Market files from the command line.
//!
//! ```text
//! commorder-cli analyze  <in.mtx>
//! commorder-cli analyze  --source [ROOT] [--json]
//! commorder-cli reorder  <in.mtx> <out.mtx> [technique]
//! commorder-cli simulate <in.mtx> [technique] [kernel]
//! commorder-cli spy      <in.mtx> [technique]
//! commorder-cli advise   <in.mtx>
//! commorder-cli check    <file> [--json]
//! commorder-cli corpus [export <dir> | stats <name>]
//! commorder-cli suite [--threads N] [--corpus mini|standard|mega] [--techniques LIST] [--kernels LIST] [--max-matrices N] [--only NAME] [--json PATH|-] [--telemetry PATH] [--list]
//! commorder-cli profile [--top N] [--flame PATH] [suite flags]
//! ```
//!
//! `check` audits a data file (`.mtx`, `.csr`, `.perm`, `.trace`,
//! telemetry `.jsonl`) against the workspace invariants and reports
//! stable `CHK` diagnostics; the process exits non-zero when any
//! error-severity finding is present.
//!
//! `analyze --source` runs the `commorder-analyze` token-stream source
//! analyzer (the `xtask lint` backend) over a workspace checkout —
//! `ROOT` defaults to the current directory — and prints the findings
//! as text or (`--json`) as the machine-readable report the `CHK1101`
//! validator understands; the process exits non-zero when any
//! error-severity finding is present.
//!
//! `suite --telemetry <path>` streams structured telemetry (span
//! timings, counters) as JSON Lines while the grid runs; the
//! deterministic JSON report is byte-identical with or without it.
//! `profile` runs the same grid under the aggregating registry and
//! prints the phase tree plus the hottest (matrix, technique) cells;
//! `--flame PATH` additionally writes the deterministic collapsed-stack
//! (folded) flamegraph export. Building with `--features obs-alloc`
//! installs the counting global allocator, attributing allocation
//! count and bytes to the active span path in telemetry and profiles.

use std::process::ExitCode;
use std::sync::Arc;

use commorder::cli::{
    parse_kernel, parse_technique, ProfileOptions, SuiteOptions, KERNEL_NAMES, TECHNIQUE_NAMES,
};
use commorder::obs;
use commorder::prelude::*;
use commorder::reorder::paper_suite;
use commorder::reorder::quality::{self, CommunityStats};
use commorder::sparse::{io, ops, stats};
use commorder::synth::corpus;

// With `obs-alloc` on, every allocation in this binary is counted and
// attributed to the active span path (see `commorder-obs::alloc`).
#[cfg(feature = "obs-alloc")]
#[global_allocator]
static COUNTING_ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  commorder-cli analyze  <in.mtx>\n  commorder-cli analyze  --source [ROOT] [--json]\n  commorder-cli reorder  <in.mtx> <out.mtx> [technique]\n  commorder-cli simulate <in.mtx> [technique] [kernel]\n  commorder-cli spy      <in.mtx> [technique]\n  commorder-cli advise   <in.mtx>\n  commorder-cli check    <file> [--json]   (.mtx | .csr | .perm | .trace | .jsonl)\n  commorder-cli corpus [export <dir> | stats <name>]\n  commorder-cli suite [--threads N] [--corpus mini|standard|mega] [--techniques LIST] [--kernels LIST] [--max-matrices N] [--only NAME] [--json PATH|-] [--telemetry PATH] [--list]\n  commorder-cli profile [--top N] [--flame PATH] [suite flags]\n\ntechniques: {}\nkernels: {}\n\nsuite runs the full paper grid (corpus x 7 orderings x SpMV-CSR) on the\nwork-stealing engine; --threads defaults to the machine's parallelism and\nthe JSON report is byte-identical for any thread count (--telemetry adds\na sidecar JSONL event stream without changing it). --techniques replaces\nthe paper suite with a comma-separated registry list (e.g.\nrabbit++,boba,rcm++); --kernels replaces the SpMV-CSR kernel axis (e.g.\nspgemm,spgemm-cluster — spgemm-cluster executes the rows of each RABBIT\ncommunity as a block); --corpus mega selects the streamed million-row\ntier. profile runs the same grid under the telemetry registry and prints\nthe phase tree plus the --top hottest (matrix, technique) cells;\n--flame writes the deterministic collapsed-stack (folded) flamegraph. suite\n--list prints the resolved grid without running it. corpus stats\ngenerates one entry (any tier) and prints its shape — CI runs it under\nulimit -v as the streamed-generation memory tripwire.",
        TECHNIQUE_NAMES.join(" | "),
        KERNEL_NAMES.join(" | ")
    );
    ExitCode::FAILURE
}

type JsonlFileSink = obs::JsonlSink<std::io::BufWriter<std::fs::File>>;
/// An installed `--telemetry` sink: the sink itself (for the final
/// flush) alongside its install guard.
type InstalledJsonl = (Arc<JsonlFileSink>, obs::SinkGuard);

/// Installs the `--telemetry PATH` JSONL sink when requested.
fn install_jsonl(
    options: &SuiteOptions,
) -> Result<Option<InstalledJsonl>, Box<dyn std::error::Error>> {
    match &options.telemetry {
        Some(path) => {
            let writer = std::io::BufWriter::new(std::fs::File::create(path)?);
            let sink = Arc::new(obs::JsonlSink::new(writer));
            let guard = obs::install(sink.clone());
            Ok(Some((sink, guard)))
        }
        None => Ok(None),
    }
}

/// Flushes and uninstalls a `--telemetry` sink after the run.
fn finish_jsonl(
    jsonl: Option<InstalledJsonl>,
    path: Option<&String>,
    label: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some((sink, guard)) = jsonl {
        drop(guard);
        sink.flush()?;
        if let Some(path) = path {
            eprintln!("[{label}] telemetry jsonl -> {path}");
        }
    }
    Ok(())
}

/// Resolves the corpus tier: the `--corpus` flag, then the
/// `COMMORDER_CORPUS` environment variable, then `standard`.
fn resolve_corpus(options: &SuiteOptions) -> (String, Vec<corpus::CorpusEntry>, GpuSpec) {
    let corpus_kind = options.corpus.clone().unwrap_or_else(|| {
        std::env::var("COMMORDER_CORPUS").unwrap_or_else(|_| "standard".to_string())
    });
    let (entries, gpu) = match corpus_kind.as_str() {
        "mini" => (corpus::mini(), GpuSpec::test_scale()),
        "mega" => (corpus::mega(), GpuSpec::a6000_scaled()),
        _ => (corpus::standard(), GpuSpec::a6000_scaled()),
    };
    (corpus_kind, entries, gpu)
}

/// Resolves `--techniques` (registry list) or falls back to the paper
/// suite.
fn resolve_techniques(options: &SuiteOptions) -> Result<Vec<Box<dyn Reordering>>, String> {
    match &options.techniques {
        Some(list) => commorder::reorder::parse_technique_list(list, 0xC0DE),
        None => Ok(paper_suite(0xC0DE)),
    }
}

/// Resolves `--kernels` (registry list) or falls back to the paper
/// suite's SpMV-CSR kernel axis.
fn resolve_kernels(options: &SuiteOptions) -> Result<Vec<Kernel>, String> {
    match &options.kernels {
        Some(list) => commorder::sparse::traffic::parse_kernel_list(list),
        None => Ok(vec![Kernel::SpmvCsr]),
    }
}

/// Generates the corpus and runs the suite grid — the shared core
/// of the `suite` and `profile` subcommands. Emits `suite` /
/// `suite.generate` spans around the main-thread phases; per-job spans
/// come from the engine and pipeline instrumentation.
fn run_grid(options: &SuiteOptions) -> Result<ExperimentResult, Box<dyn std::error::Error>> {
    let _root = obs::span!("suite");
    let (corpus_kind, entries, gpu) = resolve_corpus(options);
    let limit = options.max_matrices.unwrap_or(usize::MAX);
    let engine = match options.threads {
        Some(n) => Engine::new(n),
        None => Engine::from_env(),
    };

    let entries: Vec<_> = match &options.only {
        Some(name) => {
            let kept: Vec<_> = entries
                .into_iter()
                .filter(|e| e.name.contains(name.as_str()))
                .collect();
            if kept.is_empty() {
                return Err(
                    format!("--only {name:?} matches no {corpus_kind} corpus entry").into(),
                );
            }
            kept
        }
        None => entries,
    };
    let mut spec = ExperimentSpec::new(gpu)
        .techniques(resolve_techniques(options)?)
        .kernels(resolve_kernels(options)?);
    for entry in entries.into_iter().take(limit) {
        eprintln!("[suite] gen {}", entry.name);
        let _span = obs::span!("suite.generate", "{}", entry.name);
        let matrix = entry.generate()?;
        spec = spec.matrix_in_group(entry.name, entry.domain.label(), matrix);
    }
    eprintln!(
        "[suite] {} matrices x {} techniques x {} kernels on {} threads",
        spec.matrices.len(),
        spec.techniques.len(),
        spec.kernels.len(),
        engine.threads()
    );
    Ok(spec.run(&engine)?)
}

/// `suite --list`: resolves the corpus grid exactly as a run would
/// (corpus selection, `--only` filter, `--max-matrices` truncation,
/// technique suite, thread count) and prints it without generating a
/// single matrix.
fn list_suite(options: &SuiteOptions) -> Result<(), Box<dyn std::error::Error>> {
    let (corpus_kind, entries, _) = resolve_corpus(options);
    let entries: Vec<_> = match &options.only {
        Some(name) => {
            let kept: Vec<_> = entries
                .into_iter()
                .filter(|e| e.name.contains(name.as_str()))
                .collect();
            if kept.is_empty() {
                return Err(
                    format!("--only {name:?} matches no {corpus_kind} corpus entry").into(),
                );
            }
            kept
        }
        None => entries,
    };
    let limit = options.max_matrices.unwrap_or(usize::MAX);
    let entries: Vec<_> = entries.into_iter().take(limit).collect();
    let techniques: Vec<String> = resolve_techniques(options)?
        .iter()
        .map(|t| t.name().to_string())
        .collect();

    let mut table = Table::new(
        format!("Suite grid ({corpus_kind} corpus, resolved, not run)"),
        vec![
            "matrix".to_string(),
            "domain".to_string(),
            "publish order".to_string(),
        ],
    );
    for e in &entries {
        table.add_row(vec![
            e.name.to_string(),
            e.domain.label().to_string(),
            format!("{:?}", e.publish),
        ]);
    }
    println!("{table}");
    let kernels: Vec<String> = resolve_kernels(options)?
        .iter()
        .map(Kernel::cli_name)
        .collect();
    println!("techniques: {}", techniques.join(" | "));
    println!("kernels:    {}", kernels.join(" | "));
    let threads = match options.threads {
        Some(n) => n.to_string(),
        None => "auto (available parallelism)".to_string(),
    };
    println!("threads:    {threads}");
    println!(
        "jobs:       {} ({} matrices x {} techniques x {} kernels)",
        entries.len() * techniques.len() * kernels.len(),
        entries.len(),
        techniques.len(),
        kernels.len()
    );
    Ok(())
}

/// The full paper-suite grid run behind the `suite` subcommand.
fn run_suite(options: &SuiteOptions) -> Result<(), Box<dyn std::error::Error>> {
    if options.list {
        return list_suite(options);
    }
    let jsonl = install_jsonl(options)?;
    let result = run_grid(options)?;

    let mut headers = vec!["matrix".to_string(), "domain".to_string()];
    headers.extend(result.techniques.iter().cloned());
    let kernel_label = resolve_kernels(options)?
        .iter()
        .map(Kernel::name)
        .collect::<Vec<String>>()
        .join("+");
    let mut table = Table::new(
        format!("Paper suite: {kernel_label} DRAM traffic normalized to compulsory"),
        headers,
    );
    for (mi, (name, group)) in result.matrices.iter().enumerate() {
        let mut row = vec![name.clone(), group.clone()];
        for ti in 0..result.techniques.len() {
            row.push(Table::ratio(result.run_for(mi, ti).run.traffic_ratio));
        }
        table.add_row(row);
    }
    let mut mean_row = vec!["MEAN (traffic)".to_string(), String::new()];
    let mut time_row = vec!["MEAN (run time)".to_string(), String::new()];
    for ti in 0..result.techniques.len() {
        mean_row.push(Table::ratio(
            arith_mean_ratio(&result.traffic_ratios(ti)).unwrap_or(f64::NAN),
        ));
        time_row.push(Table::ratio(
            arith_mean_ratio(&result.time_ratios(ti)).unwrap_or(f64::NAN),
        ));
    }
    table.add_row(mean_row);
    table.add_row(time_row);
    // With `--json -` stdout is the machine-readable report; keep the
    // human table on stderr so the stream stays parseable.
    let json_to_stdout = options.json.as_deref() == Some("-");
    if json_to_stdout {
        eprintln!("{table}");
    } else {
        println!("{table}");
    }
    eprintln!("[suite] engine: {}", result.stats.summary());

    if let Some(path) = &options.json {
        let json = result.render_json();
        if json_to_stdout {
            print!("{json}");
        } else {
            std::fs::write(path, json)?;
            eprintln!("[suite] report json -> {path}");
        }
    }
    finish_jsonl(jsonl, options.telemetry.as_ref(), "suite")?;
    Ok(())
}

/// The `profile` subcommand: the suite grid under the aggregating
/// registry, reported as a phase tree plus the hottest cells.
fn run_profile(options: &ProfileOptions) -> Result<(), Box<dyn std::error::Error>> {
    let registry = Arc::new(obs::Registry::new());
    let registry_guard = obs::install(registry.clone());
    let jsonl = install_jsonl(&options.grid)?;
    let result = run_grid(&options.grid)?;
    drop(registry_guard);
    finish_jsonl(jsonl, options.grid.telemetry.as_ref(), "profile")?;

    print!("{}", registry.render_tree());
    if let Some(path) = &options.flame {
        std::fs::write(path, registry.render_folded())?;
        eprintln!("[profile] folded flamegraph -> {path}");
    }
    let hottest = registry.hottest("grid.cell", options.top);
    if !hottest.is_empty() {
        println!(
            "top {} hottest (matrix, technique) cells by simulation time",
            hottest.len()
        );
        for (rank, (label, stat)) in hottest.iter().enumerate() {
            println!(
                "  {:>2}. {:<34} {:>4} cells {:>10}",
                rank + 1,
                label,
                stat.count,
                obs::registry::fmt_ns(stat.total_ns),
            );
        }
    }
    if let Some(path) = &options.grid.json {
        let json = result.render_json();
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, json)?;
            eprintln!("[profile] report json -> {path}");
        }
    }
    eprintln!("[profile] engine: {}", result.stats.summary());
    Ok(())
}

fn load(path: &str) -> Result<CsrMatrix, Box<dyn std::error::Error>> {
    let coo = io::read_matrix_market(std::fs::File::open(path)?)?;
    Ok(CsrMatrix::try_from(coo)?)
}

/// `analyze --source [ROOT] [--json]`: the token-stream source
/// analyzer over a workspace checkout. Exits non-zero on any
/// error-severity finding, mirroring `cargo run -p xtask -- lint`.
fn analyze_source(rest: &[String]) -> ExitCode {
    let mut root = String::from(".");
    let mut json = false;
    for arg in rest {
        match arg.as_str() {
            "--json" => json = true,
            other if !other.starts_with('-') => root = other.to_string(),
            other => {
                eprintln!("error: unknown analyze --source flag {other:?}");
                return usage();
            }
        }
    }
    let config = commorder::srclint::AnalyzerConfig::default();
    let report = match commorder::srclint::analyze_workspace(std::path::Path::new(&root), &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn analyze(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let m = load(path)?;
    println!(
        "{path}: {} x {}, {} non-zeros",
        m.n_rows(),
        m.n_cols(),
        m.nnz()
    );
    let deg = stats::DegreeStats::from_degrees(&m.out_degrees());
    println!(
        "degrees: min {} / mean {:.2} / median {} / p90 {} / max {} (empty rows: {})",
        deg.min, deg.mean, deg.median, deg.p90, deg.max, deg.zero_count
    );
    println!(
        "skew (nnz in top-10% rows): {:.2}% | bandwidth {} | symmetric: {}",
        stats::skew_top10(&m) * 100.0,
        stats::bandwidth(&m),
        m.is_symmetric()
    );
    let (_, components) = ops::connected_components(&m)?;
    println!("connected components: {components}");
    let r = Rabbit::new().run(&m)?;
    let cs = CommunityStats::from_sizes(&r.dendrogram.community_sizes());
    println!(
        "RABBIT communities: {} (mean size {:.1}, largest {:.1}% of matrix)",
        cs.count,
        cs.mean_size,
        cs.max_size_fraction * 100.0
    );
    println!(
        "insularity: {:.3} | insular nodes: {:.1}% | modularity: {:.3}",
        quality::insularity(&m, &r.assignment)?,
        quality::insular_fraction(&m, &r.assignment)? * 100.0,
        quality::modularity(&ops::symmetrize(&m)?, &r.assignment)?
    );
    Ok(())
}

fn reorder(input: &str, output: &str, technique: &str) -> Result<(), Box<dyn std::error::Error>> {
    let technique =
        parse_technique(technique).ok_or_else(|| format!("unknown technique {technique:?}"))?;
    let m = load(input)?;
    let start = std::time::Instant::now();
    let perm = technique.reorder(&m)?;
    eprintln!(
        "{} reordering took {:.1} ms",
        technique.name(),
        start.elapsed().as_secs_f64() * 1e3
    );
    let reordered = m.permute_symmetric(&perm)?;
    io::write_matrix_market(std::fs::File::create(output)?, &reordered)?;
    eprintln!("wrote {output}");
    Ok(())
}

fn simulate(path: &str, technique: &str, kernel: &str) -> Result<(), Box<dyn std::error::Error>> {
    let technique =
        parse_technique(technique).ok_or_else(|| format!("unknown technique {technique:?}"))?;
    let kernel = parse_kernel(kernel).ok_or_else(|| format!("unknown kernel {kernel:?}"))?;
    let m = load(path)?;
    let pipeline = Pipeline::builder(GpuSpec::a6000_scaled())
        .kernel(kernel)
        .build()?;
    let before = pipeline.simulate(&m);
    let eval = pipeline.evaluate(&m, technique.as_ref())?;
    println!(
        "{} on {}: ORIGINAL {:.2}x -> {} {:.2}x of compulsory traffic ({:.2}x / {:.2}x of ideal time)",
        kernel.name(),
        path,
        before.traffic_ratio,
        eval.technique,
        eval.run.traffic_ratio,
        before.time_ratio,
        eval.run.time_ratio,
    );
    Ok(())
}

fn spy_plot(path: &str, technique: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    let m = load(path)?;
    println!("{path} as published:");
    print!("{}", commorder::viz::spy(&m, 40));
    if let Some(name) = technique {
        let technique =
            parse_technique(name).ok_or_else(|| format!("unknown technique {name:?}"))?;
        let reordered = m.permute_symmetric(&technique.reorder(&m)?)?;
        println!("\nafter {}:", technique.name());
        print!("{}", commorder::viz::spy(&reordered, 40));
    }
    Ok(())
}

fn check(path: &str, json: bool) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let contents = std::fs::read_to_string(path)?;
    let report = commorder::check::check_file_contents(path, &contents);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn advise(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    use commorder::reorder::advisor::{Advisor, Budget};
    let m = load(path)?;
    for (label, budget) in [("amortized", Budget::Amortized), ("tight", Budget::Tight)] {
        let rec = Advisor::default().recommend(&m, budget)?;
        println!("{label} budget -> {}", rec.technique.name());
        println!("  {}", rec.rationale);
    }
    Ok(())
}

/// `corpus stats <name>`: generates one entry (searched across the
/// standard, mega and mini tiers) and prints its shape. Mega entries
/// stream straight into CSR, so CI runs this under `ulimit -v` to prove
/// million-row generation never materializes an edge list.
fn corpus_stats(name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let entry = corpus::standard()
        .into_iter()
        .chain(corpus::mega())
        .chain(corpus::mini())
        .find(|e| e.name == name)
        .ok_or_else(|| format!("no corpus entry named {name:?} in any tier"))?;
    let started = std::time::Instant::now();
    let m = entry.generate()?;
    println!(
        "{}: {} x {}, {} non-zeros ({}, generated in {:.2} s)",
        entry.name,
        m.n_rows(),
        m.n_cols(),
        m.nnz(),
        entry.domain.label(),
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

fn list_corpus() {
    let mut table = Table::new(
        "standard evaluation corpus",
        vec!["name".into(), "domain".into(), "publish order".into()],
    );
    for e in corpus::standard() {
        table.add_row(vec![
            e.name.to_string(),
            e.domain.label().to_string(),
            format!("{:?}", e.publish),
        ]);
    }
    println!("{table}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, flag, rest @ ..] if cmd == "analyze" && flag == "--source" => {
            return analyze_source(rest)
        }
        [cmd, input] if cmd == "analyze" => analyze(input),
        [cmd, input, output] if cmd == "reorder" => reorder(input, output, "rabbit++"),
        [cmd, input, output, technique] if cmd == "reorder" => reorder(input, output, technique),
        [cmd, input] if cmd == "simulate" => simulate(input, "rabbit++", "spmv-csr"),
        [cmd, input, technique] if cmd == "simulate" => simulate(input, technique, "spmv-csr"),
        [cmd, input, technique, kernel] if cmd == "simulate" => simulate(input, technique, kernel),
        [cmd, input] if cmd == "check" => {
            return check(input, false).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            })
        }
        [cmd, input, flag] if cmd == "check" && flag == "--json" => {
            return check(input, true).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            })
        }
        [cmd, input] if cmd == "advise" => advise(input),
        [cmd, input] if cmd == "spy" => spy_plot(input, None),
        [cmd, input, technique] if cmd == "spy" => spy_plot(input, Some(technique)),
        [cmd] if cmd == "corpus" => {
            list_corpus();
            Ok(())
        }
        [cmd, rest @ ..] if cmd == "suite" => match SuiteOptions::parse(rest) {
            Ok(options) => run_suite(&options),
            Err(message) => {
                eprintln!("error: {message}");
                return usage();
            }
        },
        [cmd, rest @ ..] if cmd == "profile" => match ProfileOptions::parse(rest) {
            Ok(options) => run_profile(&options),
            Err(message) => {
                eprintln!("error: {message}");
                return usage();
            }
        },
        [cmd, sub, name] if cmd == "corpus" && sub == "stats" => corpus_stats(name),
        [cmd, sub, dir] if cmd == "corpus" && sub == "export" => {
            let entries = corpus::standard();
            corpus::export_to_directory(&entries, std::path::Path::new(dir))
                .map(|n| eprintln!("wrote {n} matrices to {dir}"))
                .map_err(Into::into)
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
