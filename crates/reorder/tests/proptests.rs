//! Property-based tests for the reordering crate: every technique yields
//! a bijection on arbitrary graphs, community metrics respect their
//! bounds, and RABBIT++'s segment layout laws hold.
//!
//! Driven by the offline `commorder_check::propcheck` harness.

use commorder_check::propcheck::{arb_graph, run_cases, DEFAULT_CASES};
use commorder_exec::Engine;
use commorder_reorder::{
    community::{detect, DetectionConfig},
    quality, Bisection, Boba, Dbg, DegSort, FlatCommunity, Gorder, HubGroup, HubPolicy, HubSort,
    LabelPropagation, Original, Rabbit, RabbitPlusPlus, RabbitPlusPlusConfig, RandomOrder, Rcm,
    RcmPlusPlus, ReorderContext, Reordering, SlashBurn,
};
use commorder_sparse::ops;

fn all_techniques() -> Vec<Box<dyn Reordering>> {
    vec![
        Box::new(Original),
        Box::new(RandomOrder::new(7)),
        Box::new(DegSort),
        Box::new(Dbg::default()),
        Box::new(HubSort),
        Box::new(HubGroup),
        Box::new(Rcm),
        Box::new(Gorder::default()),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
        Box::new(SlashBurn::default()),
        Box::new(Bisection::default()),
        Box::new(LabelPropagation::default()),
        Box::new(FlatCommunity::new(11)),
        Box::new(Boba),
        Box::new(RcmPlusPlus::default()),
    ]
}

#[test]
fn every_technique_is_total_and_bijective() {
    run_cases("techniques-bijective", DEFAULT_CASES, |rng| {
        let g = arb_graph(rng, 30, 4);
        for technique in all_techniques() {
            let p = technique.reorder(&g).expect("square input must succeed");
            assert_eq!(p.len(), g.n_rows() as usize, "{}", technique.name());
            let r = g.permute_symmetric(&p).expect("valid perm");
            assert_eq!(r.nnz(), g.nnz(), "{}", technique.name());
            assert!(r.is_symmetric(), "{}", technique.name());
        }
    });
}

#[test]
fn reorder_with_matches_serial_reorder_at_any_thread_count() {
    // The context API's determinism contract: for every registered
    // technique — whether it overrides `reorder_with` with parallel
    // phases or inherits the serial default — the permutation is a pure
    // function of the matrix, never of the engine width.
    run_cases("techniques-thread-invariant", DEFAULT_CASES, |rng| {
        let g = arb_graph(rng, 26, 4);
        let threads = 1 + rng.gen_u32(8) as usize;
        let engine = Engine::new(threads);
        let cx = ReorderContext::new(&engine, 0xC0DE);
        for technique in all_techniques() {
            let serial = technique.reorder(&g).expect("square");
            let parallel = technique.reorder_with(&g, &cx).expect("square");
            assert_eq!(
                serial,
                parallel,
                "{} diverged at {threads} threads",
                technique.name()
            );
        }
    });
}

#[test]
fn every_technique_is_deterministic() {
    run_cases("techniques-deterministic", DEFAULT_CASES, |rng| {
        let g = arb_graph(rng, 22, 4);
        for technique in all_techniques() {
            let a = technique.reorder(&g).expect("square");
            let b = technique.reorder(&g).expect("square");
            assert_eq!(a, b, "{} not deterministic", technique.name());
        }
    });
}

#[test]
fn dendrogram_assignment_and_order_are_consistent() {
    run_cases("dendrogram-consistent", DEFAULT_CASES, |rng| {
        let g = arb_graph(rng, 30, 4);
        let d = detect(&g, DetectionConfig::default()).expect("square");
        let comm = d.assignment();
        let order = d.dfs_order();
        // dfs_order is a permutation of all vertices.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.n_rows()).collect::<Vec<_>>());
        // Communities are contiguous runs in the order.
        let mut seen = std::collections::HashSet::new();
        let mut prev = u32::MAX;
        for &v in &order {
            let c = comm[v as usize];
            if c != prev {
                assert!(seen.insert(c), "community {c} fragmented");
                prev = c;
            }
        }
        // Sizes sum to n.
        let total: u32 = d.community_sizes().iter().sum();
        assert_eq!(total, g.n_rows());
    });
}

#[test]
fn singleton_assignment_has_zero_insularity_iff_edges_exist() {
    run_cases("singleton-insularity", DEFAULT_CASES, |rng| {
        let g = arb_graph(rng, 22, 3);
        let singletons: Vec<u32> = (0..g.n_rows()).collect();
        let ins = quality::insularity(&g, &singletons).expect("validated");
        if g.nnz() == 0 {
            assert_eq!(ins, 1.0);
        } else {
            // No self loops in arb_graph, so no intra edges.
            assert_eq!(ins, 0.0);
        }
    });
}

#[test]
fn one_community_maximizes_insularity_minimizes_modularity_gap() {
    run_cases("blob-community", DEFAULT_CASES, |rng| {
        let g = arb_graph(rng, 22, 3);
        let blob = vec![0u32; g.n_rows() as usize];
        assert_eq!(quality::insularity(&g, &blob).expect("validated"), 1.0);
        let sym = ops::symmetrize(&g).expect("square");
        let q = quality::modularity(&sym, &blob).expect("validated");
        assert!(q.abs() < 1e-9, "single blob modularity must be 0, got {q}");
    });
}

#[test]
fn detected_modularity_not_worse_than_singletons() {
    run_cases("modularity-improves", DEFAULT_CASES, |rng| {
        let g = arb_graph(rng, 30, 4);
        let sym = ops::symmetrize(&g).expect("square");
        let d = detect(&sym, DetectionConfig::default()).expect("square");
        let detected = quality::modularity(&sym, &d.assignment()).expect("validated");
        let singles: Vec<u32> = (0..sym.n_rows()).collect();
        let baseline = quality::modularity(&sym, &singles).expect("validated");
        // Each merge required a positive gain, so Q can only have grown.
        assert!(detected >= baseline - 1e-9, "{detected} < {baseline}");
    });
}

#[test]
fn rabbitpp_design_space_all_valid() {
    run_cases("rabbitpp-design-space", DEFAULT_CASES, |rng| {
        let g = arb_graph(rng, 22, 4);
        for config in RabbitPlusPlusConfig::design_space() {
            let r = RabbitPlusPlus::with_config(config).run(&g).expect("square");
            assert_eq!(r.permutation.len(), g.n_rows() as usize);
            // Hub segment must be sorted by decreasing degree under Sort.
            if config.hub_policy == HubPolicy::Sort && !config.group_insular {
                let inv = r.permutation.inverse();
                let degrees = g.in_degrees();
                let hub_count = r.hubs.iter().filter(|&&h| h).count() as u32;
                let mut prev = u32::MAX;
                for new_id in 0..hub_count {
                    let d = degrees[inv.new_of(new_id) as usize];
                    assert!(d <= prev);
                    prev = d;
                }
            }
        }
    });
}

#[test]
fn insular_nodes_never_touch_other_communities() {
    run_cases("insular-no-cross-edges", DEFAULT_CASES, |rng| {
        let g = arb_graph(rng, 30, 4);
        let r = Rabbit::new().run(&g).expect("square");
        let mask = quality::insular_nodes(&g, &r.assignment).expect("validated");
        for (row, col, _) in g.iter() {
            if mask[row as usize] {
                assert_eq!(
                    r.assignment[row as usize], r.assignment[col as usize],
                    "insular node {row} has a cross-community edge"
                );
            }
        }
    });
}
