//! Seeded violations for the token-stream source rules.

/// Rule needles inside strings and comments must stay silent:
/// unsafe { x.unwrap() } panic!("boom") println!("decoy")
pub const DECOY: &str = "unsafe { x.unwrap() } panic!(\"boom\") todo!()";

/// Seeded `.unwrap()` and `.expect()` call sites.
pub fn calls(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("fixture");
    a + b
}

/// Seeded macro calls.
pub fn macros() {
    println!("fixture");
    panic!("fixture");
    todo!()
}

/// Seeded `unsafe`: the token rule fires on the keyword itself.
pub unsafe fn danger() {}

/// Seeded trace-buffer idioms.
pub fn buffers(accesses: Vec<Access>) -> usize {
    let trace = collect_trace(&accesses);
    accesses.len() + trace
}

pub fn undocumented() {}
