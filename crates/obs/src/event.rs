//! The telemetry event model and its JSONL encoding.
//!
//! Every observation the workspace emits — a completed span, a counter
//! increment, a gauge sample, a raw histogram observation — is one
//! [`Event`]. Sinks receive events by reference and decide how to
//! persist or aggregate them; [`Event::to_jsonl`] is the canonical
//! single-line JSON encoding consumed by `commorder-cli check` and any
//! external tooling.

/// One telemetry observation.
///
/// Field meanings are stable: downstream tooling (the `CHK09xx`
/// validators, the `profile` subcommand) matches on the JSONL keys this
/// enum encodes to, so variants and fields are append-only.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Stream header, recorded once per sink at install time.
    Meta {
        /// Telemetry schema version (currently 1).
        version: u32,
    },
    /// A completed span: a named phase that ran on one thread.
    Span {
        /// Ordinal of the emitting thread (process-unique, dense).
        thread: u64,
        /// Nesting depth on that thread (0 = no enclosing span).
        depth: u64,
        /// `/`-joined names of the enclosing spans plus this one, e.g.
        /// `exec.job/grid.job/grid.reorder`.
        path: String,
        /// The span's own name (the last `path` segment).
        name: &'static str,
        /// Free-form instance label (e.g. `matrix/technique`); spans
        /// aggregate by `path`, details distinguish hot instances.
        detail: Option<String>,
        /// Start time in nanoseconds since the telemetry epoch.
        start_ns: u64,
        /// Wall-clock duration in nanoseconds.
        dur_ns: u64,
    },
    /// A monotonic counter increment.
    Counter {
        /// Registered metric name (see [`crate::names`]).
        name: &'static str,
        /// Non-negative increment.
        delta: u64,
    },
    /// A point-in-time gauge sample (last write wins).
    Gauge {
        /// Registered metric name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
    /// One raw histogram observation (aggregated by the registry sink
    /// into power-of-two buckets).
    Observe {
        /// Registered metric name.
        name: &'static str,
        /// Observed value (seconds for `*_seconds` metrics).
        value: f64,
    },
    /// Heap-allocation totals attributed to one completed span (emitted
    /// only when the `obs-alloc` counting allocator is installed).
    Alloc {
        /// `/`-joined span path the allocations occurred under.
        path: String,
        /// Allocation calls (alloc + realloc) during the span, on the
        /// span's own thread.
        count: u64,
        /// Bytes requested by those calls.
        bytes: u64,
    },
}

impl Event {
    /// Encodes the event as one line of JSON (no trailing newline).
    ///
    /// Keys are emitted in a fixed order; `detail` is omitted when
    /// absent. Non-finite floats encode as `null` (JSON has no NaN).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        match self {
            Event::Meta { version } => {
                format!("{{\"type\":\"meta\",\"version\":{version}}}")
            }
            Event::Span {
                thread,
                depth,
                path,
                name,
                detail,
                start_ns,
                dur_ns,
            } => {
                let detail = match detail {
                    Some(d) => format!(",\"detail\":{}", json_string(d)),
                    None => String::new(),
                };
                format!(
                    "{{\"type\":\"span\",\"thread\":{thread},\"depth\":{depth},\
                     \"path\":{},\"name\":{}{detail},\"start_ns\":{start_ns},\
                     \"dur_ns\":{dur_ns}}}",
                    json_string(path),
                    json_string(name),
                )
            }
            Event::Counter { name, delta } => format!(
                "{{\"type\":\"counter\",\"name\":{},\"delta\":{delta}}}",
                json_string(name)
            ),
            Event::Gauge { name, value } => format!(
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}",
                json_string(name),
                json_f64(*value)
            ),
            Event::Observe { name, value } => format!(
                "{{\"type\":\"observe\",\"name\":{},\"value\":{}}}",
                json_string(name),
                json_f64(*value)
            ),
            Event::Alloc { path, count, bytes } => format!(
                "{{\"type\":\"alloc\",\"path\":{},\"count\":{count},\"bytes\":{bytes}}}",
                json_string(path)
            ),
        }
    }
}

/// JSON string literal with minimal escaping.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic JSON number: shortest-round-trip `Display` for finite
/// values, `null` otherwise.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_event_encodes_all_fields() {
        let e = Event::Span {
            thread: 3,
            depth: 1,
            path: "exec.job/grid.job".to_string(),
            name: "grid.job",
            detail: Some("web/RABBIT".to_string()),
            start_ns: 10,
            dur_ns: 25,
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"type\":\"span\",\"thread\":3,\"depth\":1,\
             \"path\":\"exec.job/grid.job\",\"name\":\"grid.job\",\
             \"detail\":\"web/RABBIT\",\"start_ns\":10,\"dur_ns\":25}"
        );
    }

    #[test]
    fn detail_is_omitted_when_absent() {
        let e = Event::Span {
            thread: 0,
            depth: 0,
            path: "suite.run".to_string(),
            name: "suite.run",
            detail: None,
            start_ns: 0,
            dur_ns: 1,
        };
        assert!(!e.to_jsonl().contains("detail"));
    }

    #[test]
    fn metric_events_encode() {
        assert_eq!(
            Event::Counter {
                name: "exec.steals",
                delta: 7
            }
            .to_jsonl(),
            "{\"type\":\"counter\",\"name\":\"exec.steals\",\"delta\":7}"
        );
        assert_eq!(
            Event::Gauge {
                name: "exec.utilization",
                value: 0.5
            }
            .to_jsonl(),
            "{\"type\":\"gauge\",\"name\":\"exec.utilization\",\"value\":0.5}"
        );
        assert_eq!(
            Event::Observe {
                name: "exec.queue_wait_seconds",
                value: f64::NAN
            }
            .to_jsonl(),
            "{\"type\":\"observe\",\"name\":\"exec.queue_wait_seconds\",\"value\":null}"
        );
        assert_eq!(
            Event::Meta { version: 1 }.to_jsonl(),
            "{\"type\":\"meta\",\"version\":1}"
        );
        assert_eq!(
            Event::Alloc {
                path: "exec.job/grid.cell".to_string(),
                count: 12,
                bytes: 4096,
            }
            .to_jsonl(),
            "{\"type\":\"alloc\",\"path\":\"exec.job/grid.cell\",\"count\":12,\"bytes\":4096}"
        );
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
