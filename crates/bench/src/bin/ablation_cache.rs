//! **Ablation**: sensitivity of the headline result to the simulated L2
//! geometry (capacity, associativity, line size).
//!
//! DESIGN.md fixes one scaled geometry (128 KiB, 16-way, 32 B); this
//! binary sweeps each axis independently on a representative matrix and
//! reports the RABBIT++-vs-RANDOM traffic advantage, showing the
//! conclusions are not an artifact of one configuration.

use commorder::cachesim::plru::PlruCache;
use commorder::cachesim::{trace, CacheConfig};
use commorder::prelude::*;
use commorder_bench::Harness;

fn advantage(gpu: GpuSpec, random: &CsrMatrix, rpp: &CsrMatrix) -> (f64, f64, f64) {
    let p = Pipeline::new(gpu);
    let a = p.simulate(random).traffic_ratio;
    let b = p.simulate(rpp).traffic_ratio;
    (a, b, a / b)
}

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let name = if harness.entries.len() <= 8 {
        "mini-webhub"
    } else {
        "web-stackex"
    };
    let case = harness
        .load_subset(&[name])
        .into_iter()
        .next()
        .expect("representative matrix exists");
    eprintln!("[ablation_cache] {}", case.entry.name);

    let base = harness.gpu.l2;
    let random_m = case
        .matrix
        .permute_symmetric(
            &RandomOrder::new(harness.random_seed)
                .reorder(&case.matrix)
                .expect("square"),
        )
        .expect("validated");
    let rpp_m = case
        .matrix
        .permute_symmetric(&RabbitPlusPlus::new().reorder(&case.matrix).expect("square"))
        .expect("validated");

    let mut table = Table::new(
        format!("{name}: RANDOM vs RABBIT++ traffic across L2 geometries"),
        vec![
            "geometry".into(),
            "RANDOM".into(),
            "RABBIT++".into(),
            "advantage".into(),
        ],
    );
    // The sweep axis: every geometry variant, labelled. Each point is an
    // independent simulation pair, fanned across the engine's workers.
    let mut geometries: Vec<(String, CacheConfig)> = Vec::new();
    for factor in [4u64, 2, 1] {
        geometries.push((
            format!("capacity {} KiB", base.capacity_bytes / 1024 / factor),
            CacheConfig {
                capacity_bytes: base.capacity_bytes / factor,
                ..base
            },
        ));
    }
    for assoc in [4u32, 8, 16, 32] {
        geometries.push((
            format!("assoc {assoc}-way"),
            CacheConfig {
                associativity: assoc,
                ..base
            },
        ));
    }
    for line in [32u32, 64, 128] {
        geometries.push((
            format!("line {line} B"),
            CacheConfig {
                line_bytes: line,
                ..base
            },
        ));
    }
    let rows = harness.engine().map(&geometries, |_, (label, l2)| {
        let gpu = GpuSpec {
            l2: *l2,
            ..harness.gpu
        };
        let (a, b, adv) = advantage(gpu, &random_m, &rpp_m);
        (label.clone(), a, b, adv)
    });
    for (label, a, b, adv) in rows {
        table.add_row(vec![
            label,
            Table::ratio(a),
            Table::ratio(b),
            Table::ratio(adv),
        ]);
    }
    println!("{table}");

    // Replacement-policy realism: the headline simulator is true LRU;
    // hardware builds tree-PLRU. Re-measure both orderings under PLRU.
    let mut policy_table = Table::new(
        format!("{name}: replacement policy (LRU model vs hardware-like PLRU)"),
        vec!["ordering".into(), "LRU".into(), "tree-PLRU".into()],
    );
    for (label, m) in [("RANDOM", &random_m), ("RABBIT++", &rpp_m)] {
        let lru_run = Pipeline::new(harness.gpu).simulate(m);
        let mut plru = PlruCache::new(harness.gpu.l2);
        trace::for_each_access(m, Kernel::SpmvCsr, ExecutionModel::Sequential, |a| {
            plru.access(a);
        });
        let plru_stats = plru.finish();
        let compulsory = Kernel::SpmvCsr.compulsory_bytes_for(m) as f64;
        policy_table.add_row(vec![
            label.to_string(),
            Table::ratio(lru_run.traffic_ratio),
            Table::ratio(plru_stats.dram_traffic_bytes() as f64 / compulsory),
        ]);
    }
    println!("{policy_table}");
    println!(
        "Expected: the RABBIT++ advantage persists across every geometry; it grows\n\
         as capacity shrinks (working set pressure), is insensitive to\n\
         associativity beyond ~8 ways, and survives the LRU -> tree-PLRU\n\
         replacement-policy swap (hardware realism check)."
    );
}
