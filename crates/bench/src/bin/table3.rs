//! **Table III**: average percentage of dead lines (cache lines filled
//! but never reused \[18\], \[25\]) inserted into the L2 during SpMV, per
//! reordering technique — the mechanism behind RABBIT++'s traffic wins.

use commorder::prelude::*;
use commorder_bench::{figure2_techniques, parallel_map, Harness};

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();
    let pipeline = Pipeline::new(harness.gpu);

    let mut techniques = figure2_techniques(harness.random_seed);
    techniques.push(Box::new(RabbitPlusPlus::new()));

    let mut table = Table::new(
        "Table III: average % of dead lines inserted into the L2 (SpMV)",
        vec!["technique".into(), "% dead lines".into()],
    );
    for technique in &techniques {
        eprintln!("[table3] {}", technique.name());
        let fractions: Vec<f64> = parallel_map(&cases, |case| {
            pipeline
                .evaluate(&case.matrix, technique.as_ref())
                .expect("square corpus matrix")
                .run
                .stats
                .dead_line_fraction()
        });
        table.add_row(vec![
            technique.name().to_string(),
            Table::percent(arith_mean_ratio(&fractions).unwrap_or(f64::NAN)),
        ]);
    }
    println!("{table}");
    println!(
        "Paper reference: RANDOM 63.31% ORIGINAL 25.08% DEGSORT 26.88% DBG 25.23% \
         GORDER 17.73% RABBIT 22.25% RABBIT++ 16.37% — RABBIT++ lowest"
    );
}
