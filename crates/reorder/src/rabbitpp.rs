//! RABBIT++ — the paper's contribution (§VI): RABBIT enhanced with
//! insular-node grouping and hub grouping.
//!
//! Starting from the RABBIT order and its community assignment:
//!
//! 1. **Insular grouping** (first modification, Fig. 5): nodes whose
//!    entire neighbourhood is intra-community are grouped ahead of
//!    non-insular nodes, each side keeping RABBIT's relative order.
//!    The insular region then enjoys perfect community locality (Fig. 6).
//! 2. **Hub grouping** (second modification): hub nodes (in-degree above
//!    the mean) are pulled to the very front of the ID space —
//!    [`HubPolicy::Group`] preserves RABBIT's relative order among hubs
//!    (RABBIT+HUBGROUP, which the paper finds best because "there is some
//!    community structure even among the hub nodes"), while
//!    [`HubPolicy::Sort`] orders them by decreasing degree
//!    (RABBIT+HUBSORT, which the paper finds counter-productive).
//!
//! The full Table II design space is expressible through
//! [`RabbitPlusPlusConfig`]; the default is the paper's RABBIT++
//! (insular grouping **and** hub grouping).

use commorder_exec::Engine;
use commorder_sparse::{CsrMatrix, Permutation, SparseError};

use crate::degree::hub_mask;
use crate::quality;
use crate::rabbit::{Rabbit, RabbitResult};
use crate::{ReorderContext, Reordering};

/// How hub nodes are laid out (the second modification of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HubPolicy {
    /// Leave hubs wherever RABBIT put them (no second modification).
    #[default]
    None,
    /// Group hubs at the front, keeping RABBIT's relative order
    /// (RABBIT+HUBGROUP).
    Group,
    /// Sort hubs at the front by decreasing in-degree (RABBIT+HUBSORT).
    Sort,
}

impl HubPolicy {
    /// Label fragment used in Table II row names.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            HubPolicy::None => "RABBIT",
            HubPolicy::Group => "RABBIT+HUBGROUP",
            HubPolicy::Sort => "RABBIT+HUBSORT",
        }
    }
}

/// Design-space configuration for the RABBIT modifications (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RabbitPlusPlusConfig {
    /// Apply the first modification (group insular nodes).
    pub group_insular: bool,
    /// Hub layout (second modification).
    pub hub_policy: HubPolicy,
    /// Underlying RABBIT configuration.
    pub rabbit: Rabbit,
}

impl Default for RabbitPlusPlusConfig {
    /// The paper's RABBIT++: insular grouping + hub grouping.
    fn default() -> Self {
        RabbitPlusPlusConfig {
            group_insular: true,
            hub_policy: HubPolicy::Group,
            rabbit: Rabbit::new(),
        }
    }
}

impl RabbitPlusPlusConfig {
    /// Table II row/column label for this combination.
    #[must_use]
    pub fn label(&self) -> String {
        let base = self.hub_policy.label();
        if self.group_insular {
            format!("{base} (insular grouped)")
        } else {
            base.to_string()
        }
    }

    /// All six Table II combinations, in the table's reading order.
    #[must_use]
    pub fn design_space() -> Vec<RabbitPlusPlusConfig> {
        let mut v = Vec::with_capacity(6);
        for group_insular in [false, true] {
            for hub_policy in [HubPolicy::None, HubPolicy::Sort, HubPolicy::Group] {
                v.push(RabbitPlusPlusConfig {
                    group_insular,
                    hub_policy,
                    rabbit: Rabbit::new(),
                });
            }
        }
        v
    }
}

/// The RABBIT++ reordering technique.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RabbitPlusPlus {
    /// Modification configuration; defaults to the paper's RABBIT++.
    pub config: RabbitPlusPlusConfig,
}

/// Everything a RABBIT++ run produces, for the §VI analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct RabbitPlusPlusResult {
    /// Final old-ID → new-ID permutation.
    pub permutation: Permutation,
    /// The underlying RABBIT run (its permutation, dendrogram, assignment).
    pub rabbit: RabbitResult,
    /// Insular mask per old vertex (all-neighbours-intra-community).
    pub insular: Vec<bool>,
    /// Hub mask per old vertex (in-degree above mean).
    pub hubs: Vec<bool>,
}

impl RabbitPlusPlus {
    /// RABBIT++ with the paper's default modifications.
    #[must_use]
    pub fn new() -> Self {
        RabbitPlusPlus::default()
    }

    /// A specific point in the Table II design space.
    #[must_use]
    pub fn with_config(config: RabbitPlusPlusConfig) -> Self {
        RabbitPlusPlus { config }
    }

    /// Runs RABBIT and applies the configured modifications, returning all
    /// intermediates.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
    pub fn run(&self, a: &CsrMatrix) -> Result<RabbitPlusPlusResult, SparseError> {
        self.run_with(a, &Engine::serial())
    }

    /// [`RabbitPlusPlus::run`] with the RABBIT phases and the insular
    /// scan fanned out on `engine`; byte-identical to the serial run at
    /// any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
    pub fn run_with(
        &self,
        a: &CsrMatrix,
        engine: &Engine,
    ) -> Result<RabbitPlusPlusResult, SparseError> {
        let rabbit = self.config.rabbit.run_with(a, engine)?;
        let insular = quality::insular_nodes_with(a, &rabbit.assignment, engine)?;
        let hubs = hub_mask(a);
        let n = a.n_rows();

        // Segment of each vertex. The second modification orders "the
        // non-insular nodes" (§VI-A): with insular grouping on, the hub
        // segment holds only *non-insular* hubs, so insular communities
        // stay contiguous. Layout: [hubs][insular][rest]; disabled
        // modifications collapse their segment into `rest`.
        let segment = |v: u32| -> u8 {
            let (h, i) = (hubs[v as usize], insular[v as usize]);
            let hub_eligible = h && !(self.config.group_insular && i);
            match self.config.hub_policy {
                HubPolicy::None if self.config.group_insular && i => 1,
                HubPolicy::None => 2,
                _ if hub_eligible => 0,
                _ if self.config.group_insular && i => 1,
                _ => 2,
            }
        };

        // Vertices in RABBIT order, stably partitioned into segments.
        let rabbit_order = rabbit.permutation.inverse(); // new -> old
        let mut order: Vec<u32> = Vec::with_capacity(n as usize);
        for seg in 0..3u8 {
            let mut seg_vertices: Vec<u32> = (0..n)
                .map(|new_id| rabbit_order.new_of(new_id))
                .filter(|&old| segment(old) == seg)
                .collect();
            if seg == 0 && self.config.hub_policy == HubPolicy::Sort {
                let degrees = a.in_degrees();
                seg_vertices.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
            }
            order.extend(seg_vertices);
        }
        let permutation = Permutation::from_order(&order)?;
        Ok(RabbitPlusPlusResult {
            permutation,
            rabbit,
            insular,
            hubs,
        })
    }
}

impl Reordering for RabbitPlusPlus {
    fn name(&self) -> &str {
        match (self.config.group_insular, self.config.hub_policy) {
            (true, HubPolicy::Group) => "RABBIT++",
            (false, HubPolicy::None) => "RABBIT",
            (_, HubPolicy::Sort) => "RABBIT+HUBSORT",
            (true, HubPolicy::None) => "RABBIT+INSULAR",
            (false, HubPolicy::Group) => "RABBIT+HUBGROUP",
        }
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        Ok(self.run(a)?.permutation)
    }

    fn reorder_with(
        &self,
        a: &CsrMatrix,
        cx: &ReorderContext<'_>,
    ) -> Result<Permutation, SparseError> {
        Ok(self.run_with(a, cx.engine())?.permutation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_synth::generators::CommunityHub;

    fn webby() -> CsrMatrix {
        CommunityHub {
            n: 1536,
            communities: 24,
            intra_degree: 8.0,
            hub_fraction: 0.04,
            hub_degree: 24.0,
            mixing: 0.1,
            scramble_ids: true,
        }
        .generate(41)
        .unwrap()
    }

    #[test]
    fn design_space_has_six_unique_combinations() {
        let space = RabbitPlusPlusConfig::design_space();
        assert_eq!(space.len(), 6);
        let labels: std::collections::HashSet<_> =
            space.iter().map(RabbitPlusPlusConfig::label).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn default_config_is_the_paper_rabbitpp() {
        let c = RabbitPlusPlusConfig::default();
        assert!(c.group_insular);
        assert_eq!(c.hub_policy, HubPolicy::Group);
        assert_eq!(RabbitPlusPlus::new().name(), "RABBIT++");
    }

    #[test]
    fn segments_are_laid_out_hubs_insular_rest() {
        let g = webby();
        let r = RabbitPlusPlus::new().run(&g).unwrap();
        let inv = r.permutation.inverse();
        // Segment id per new position must be non-decreasing.
        let seg_of = |old: u32| -> u8 {
            if r.hubs[old as usize] && !r.insular[old as usize] {
                0
            } else if r.insular[old as usize] {
                1
            } else {
                2
            }
        };
        let mut prev = 0u8;
        for new_id in 0..g.n_rows() {
            let s = seg_of(inv.new_of(new_id));
            assert!(s >= prev, "segment order violated at new id {new_id}");
            prev = s;
        }
    }

    #[test]
    fn insular_only_config_keeps_hubs_in_place() {
        let g = webby();
        let cfg = RabbitPlusPlusConfig {
            group_insular: true,
            hub_policy: HubPolicy::None,
            rabbit: Rabbit::new(),
        };
        let r = RabbitPlusPlus::with_config(cfg).run(&g).unwrap();
        let inv = r.permutation.inverse();
        // All insular vertices precede all non-insular ones.
        let mut seen_non_insular = false;
        for new_id in 0..g.n_rows() {
            let old = inv.new_of(new_id);
            if r.insular[old as usize] {
                assert!(!seen_non_insular, "insular vertex after non-insular");
            } else {
                seen_non_insular = true;
            }
        }
    }

    #[test]
    fn hubsort_sorts_the_hub_segment_by_degree() {
        let g = webby();
        let cfg = RabbitPlusPlusConfig {
            group_insular: false,
            hub_policy: HubPolicy::Sort,
            rabbit: Rabbit::new(),
        };
        let r = RabbitPlusPlus::with_config(cfg).run(&g).unwrap();
        let inv = r.permutation.inverse();
        let degrees = g.in_degrees();
        let hub_count = r.hubs.iter().filter(|&&h| h).count() as u32;
        let mut prev = u32::MAX;
        for new_id in 0..hub_count {
            let d = degrees[inv.new_of(new_id) as usize];
            assert!(d <= prev, "hub degrees must be non-increasing");
            prev = d;
        }
    }

    #[test]
    fn no_modifications_reproduces_rabbit_exactly() {
        let g = webby();
        let cfg = RabbitPlusPlusConfig {
            group_insular: false,
            hub_policy: HubPolicy::None,
            rabbit: Rabbit::new(),
        };
        let plain = RabbitPlusPlus::with_config(cfg).run(&g).unwrap();
        assert_eq!(plain.permutation, plain.rabbit.permutation);
    }

    #[test]
    fn relative_rabbit_order_is_preserved_within_segments() {
        let g = webby();
        let r = RabbitPlusPlus::new().run(&g).unwrap();
        let rabbit_rank = &r.rabbit.permutation;
        let inv = r.permutation.inverse();
        // Within the insular (non-hub) segment, rabbit ranks must ascend.
        let mut prev_rank = 0u32;
        let mut started = false;
        for new_id in 0..g.n_rows() {
            let old = inv.new_of(new_id);
            if !r.hubs[old as usize] && r.insular[old as usize] {
                let rank = rabbit_rank.new_of(old);
                if started {
                    assert!(rank > prev_rank, "rabbit order not preserved");
                }
                prev_rank = rank;
                started = true;
            }
        }
    }

    #[test]
    fn run_exposes_masks_of_correct_length() {
        let g = webby();
        let r = RabbitPlusPlus::new().run(&g).unwrap();
        assert_eq!(r.insular.len(), g.n_rows() as usize);
        assert_eq!(r.hubs.len(), g.n_rows() as usize);
        assert!(r.hubs.iter().any(|&h| h), "web graph must have hubs");
        assert!(
            r.insular.iter().any(|&i| i),
            "web graph must have insular nodes"
        );
    }
}
