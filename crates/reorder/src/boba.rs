//! BOBA — parallel lightweight graph reordering (Drescher & Porumbescu,
//! arXiv 2306.10410).
//!
//! BOBA assigns new IDs by *first touch over the edge stream*: scanning
//! the edge list in storage order, every vertex gets the next free ID
//! the first time it appears as a destination; vertices that never
//! appear are appended in original order. The entire pass is linear in
//! the number of edges, needs no community detection or sorting, and
//! parallelizes by splitting the stream into chunks — which is exactly
//! why the paper positions it as the lightweight baseline against
//! heavyweight community-based orders like RABBIT.
//!
//! Here the edge stream is the CSR column array in row-major order. The
//! parallel path records each chunk's *local* first-touch sequence and
//! then replays the chunks in storage order through a global seen-set:
//! a vertex's global first touch is its first touch in the earliest
//! chunk that saw it, so the concatenation reproduces the serial scan
//! byte-for-byte at any thread count.

use commorder_exec::Engine;
use commorder_obs as obs;
use commorder_sparse::{CsrMatrix, Permutation, SparseError};

use crate::degree::require_square;
use crate::{ReorderContext, Reordering};

/// The BOBA reordering technique (first-touch edge-order relabeling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Boba;

impl Boba {
    /// Computes the first-touch order of `a`'s column stream on
    /// `engine`, byte-identical at any thread count.
    fn first_touch_order(a: &CsrMatrix, engine: &Engine) -> Vec<u32> {
        let n = a.n_rows() as usize;
        let cols = a.col_indices();
        // Per-chunk local first-touch sequences, in stream order. The
        // chunk count depends on the stream length alone, keeping the
        // nested span layout identical at every thread count.
        let chunks = crate::par::fixed_chunks(cols.len(), STREAM_PER_CHUNK);
        let touches: Vec<Vec<u32>> = if chunks.len() > 1 {
            engine.map(&chunks, |_, &(start, end)| {
                let mut seen = vec![false; n];
                let mut local = Vec::new();
                for &c in &cols[start..end] {
                    if !seen[c as usize] {
                        seen[c as usize] = true;
                        local.push(c);
                    }
                }
                local
            })
        } else {
            let mut seen = vec![false; n];
            let mut local = Vec::with_capacity(n);
            for &c in cols {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    local.push(c);
                }
            }
            vec![local]
        };
        // Replay chunk-local touches in stream order through one global
        // seen-set; untouched vertices keep their original order at the
        // tail.
        let mut seen = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for local in &touches {
            for &c in local {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    order.push(c);
                }
            }
        }
        for v in 0..n as u32 {
            if !seen[v as usize] {
                order.push(v);
            }
        }
        order
    }
}

/// Minimum column-stream entries per first-touch chunk: a per-chunk
/// `seen` bitmap costs `n` bytes, so chunks must be large enough to
/// amortize it.
const STREAM_PER_CHUNK: usize = 65_536;

impl Reordering for Boba {
    fn name(&self) -> &str {
        "BOBA"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        self.reorder_with(a, &ReorderContext::serial(0))
    }

    fn reorder_with(
        &self,
        a: &CsrMatrix,
        cx: &ReorderContext<'_>,
    ) -> Result<Permutation, SparseError> {
        require_square(a)?;
        let _span = obs::span!("reorder.boba");
        let order = Self::first_touch_order(a, cx.engine());
        Permutation::from_order(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::CooMatrix;
    use commorder_synth::generators::Rmat;

    #[test]
    fn first_touch_order_matches_the_stream() {
        // Rows: 0 -> [2, 3], 1 -> [0], 2 -> [], 3 -> [1].
        let m = CsrMatrix::try_from(
            CooMatrix::from_entries(
                4,
                4,
                vec![(0, 2, 1.0), (0, 3, 1.0), (1, 0, 1.0), (3, 1, 1.0)],
            )
            .unwrap(),
        )
        .unwrap();
        let p = Boba.reorder(&m).unwrap();
        // Stream order: 2, 3, 0, 1 — all vertices touched.
        assert_eq!(p.new_of(2), 0);
        assert_eq!(p.new_of(3), 1);
        assert_eq!(p.new_of(0), 2);
        assert_eq!(p.new_of(1), 3);
    }

    #[test]
    fn untouched_vertices_append_in_original_order() {
        // Only vertex 3 appears as a destination.
        let m = CsrMatrix::try_from(
            CooMatrix::from_entries(4, 4, vec![(0, 3, 1.0), (1, 3, 1.0)]).unwrap(),
        )
        .unwrap();
        let p = Boba.reorder(&m).unwrap();
        assert_eq!(p.new_of(3), 0);
        assert_eq!(p.new_of(0), 1);
        assert_eq!(p.new_of(1), 2);
        assert_eq!(p.new_of(2), 3);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let g = Rmat::graph500(11, 8.0).generate(19).unwrap();
        let serial = Boba.reorder(&g).unwrap();
        for threads in [2usize, 3, 8] {
            let engine = Engine::new(threads);
            let cx = ReorderContext::new(&engine, 0);
            let parallel = Boba.reorder_with(&g, &cx).unwrap();
            assert_eq!(serial, parallel, "drift at {threads} threads");
        }
    }

    #[test]
    fn improves_locality_on_a_scrambled_graph() {
        use commorder_sparse::stats::mean_index_distance;
        let g = Rmat::graph500(11, 8.0).generate(23).unwrap();
        let p = Boba.reorder(&g).unwrap();
        let r = g.permute_symmetric(&p).unwrap();
        assert_eq!(r.nnz(), g.nnz());
        // First-touch ordering clusters co-referenced columns; on a
        // scrambled power-law graph that must shrink index distance.
        assert!(mean_index_distance(&r) < mean_index_distance(&g));
    }
}
