/// Geometry of the simulated last-level cache.
///
/// The A6000's L2 serves 32-byte sectors; the simulator models one sector
/// as one line. Associativity follows typical GPU L2 banking (16-way).
///
/// # Example
///
/// ```
/// use commorder_cachesim::CacheConfig;
///
/// let full = CacheConfig::a6000();
/// assert_eq!(full.capacity_bytes, 6 * 1024 * 1024);
/// assert_eq!(full.num_lines(), full.num_sets() * full.associativity as usize);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line (sector) size in bytes.
    pub line_bytes: u32,
    /// Ways per set.
    pub associativity: u32,
}

impl CacheConfig {
    /// The NVIDIA A6000 L2: 6 MB, 32 B sectors, 16-way (Table I).
    #[must_use]
    pub fn a6000() -> Self {
        CacheConfig {
            capacity_bytes: 6 * 1024 * 1024,
            line_bytes: 32,
            associativity: 16,
        }
    }

    /// The scaled-down A6000 L2 the synthetic corpus is calibrated
    /// against: 6 MB / 48 = 128 KiB (see `commorder-synth::corpus` for
    /// the scaling argument).
    #[must_use]
    pub fn a6000_scaled() -> Self {
        CacheConfig {
            capacity_bytes: 128 * 1024,
            line_bytes: 32,
            associativity: 16,
        }
    }

    /// A tiny 8 KiB cache for unit tests and the mini corpus.
    #[must_use]
    pub fn test_scale() -> Self {
        CacheConfig {
            capacity_bytes: 8 * 1024,
            line_bytes: 32,
            associativity: 16,
        }
    }

    /// Number of cache lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero line size, capacity not
    /// a multiple of `line_bytes * associativity`).
    #[must_use]
    pub fn num_lines(&self) -> usize {
        assert!(self.line_bytes > 0, "line size must be positive");
        assert!(self.associativity > 0, "associativity must be positive");
        assert_eq!(
            self.capacity_bytes % u64::from(self.line_bytes * self.associativity),
            0,
            "capacity must be a whole number of sets"
        );
        (self.capacity_bytes / u64::from(self.line_bytes)) as usize
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// See [`CacheConfig::num_lines`].
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.associativity as usize
    }

    /// Maps a byte address to `(set index, line tag)`.
    #[must_use]
    pub fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / u64::from(self.line_bytes);
        ((line % self.num_sets() as u64) as usize, line)
    }
}

impl Default for CacheConfig {
    /// Defaults to the scaled A6000 configuration used across the
    /// reproduction experiments.
    fn default() -> Self {
        CacheConfig::a6000_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6000_geometry() {
        let c = CacheConfig::a6000();
        assert_eq!(c.num_lines(), 6 * 1024 * 1024 / 32);
        assert_eq!(c.num_sets(), 6 * 1024 * 1024 / 32 / 16);
    }

    #[test]
    fn scaled_is_exactly_48x_smaller() {
        assert_eq!(
            CacheConfig::a6000().capacity_bytes,
            CacheConfig::a6000_scaled().capacity_bytes * 48
        );
    }

    #[test]
    fn set_and_tag_group_same_line() {
        let c = CacheConfig::test_scale();
        let (s0, t0) = c.set_and_tag(0);
        let (s1, t1) = c.set_and_tag(31);
        assert_eq!((s0, t0), (s1, t1));
        let (_, t2) = c.set_and_tag(32);
        assert_ne!(t0, t2);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn rejects_ragged_capacity() {
        let _ = CacheConfig {
            capacity_bytes: 1000,
            line_bytes: 32,
            associativity: 16,
        }
        .num_lines();
    }

    #[test]
    fn consecutive_lines_map_to_consecutive_sets() {
        let c = CacheConfig::test_scale();
        let sets = c.num_sets();
        let (s0, _) = c.set_and_tag(0);
        let (s1, _) = c.set_and_tag(32);
        assert_eq!((s0 + 1) % sets, s1 % sets);
    }
}
