//! Span timers: RAII guards that measure a named phase and report it as
//! an [`Event::Span`] when dropped.
//!
//! Nesting is tracked per thread: each thread owns a stack of the span
//! names currently open on it, so a span's `path` is the `/`-joined
//! chain of its ancestors plus itself. The stack is thread-local — spans
//! opened on a worker thread nest under that worker's spans, never under
//! another thread's — which is exactly the execution structure the
//! work-stealing engine produces (one `exec.job` root per job).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::event::Event;
use crate::{emit, enabled, epoch};

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static ORDINAL: RefCell<Option<u64>> = const { RefCell::new(None) };
}

static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(0);

/// Process-unique dense ordinal of the calling thread (assigned on first
/// use; stable for the thread's lifetime).
#[must_use]
pub fn thread_ordinal() -> u64 {
    ORDINAL.with(|slot| {
        *slot
            .borrow_mut()
            .get_or_insert_with(|| NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed))
    })
}

/// An open span. Dropping it records the phase duration.
///
/// Obtain via [`crate::span!`] or [`Span::enter`]. When telemetry is
/// disabled the guard is inert (a single relaxed atomic load at enter,
/// nothing at drop).
#[derive(Debug)]
#[must_use = "a span measures until dropped; bind it to a `_guard` name"]
pub struct Span(Option<OpenSpan>);

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    path: String,
    depth: u64,
    detail: Option<String>,
    started: Instant,
    /// Thread-local (alloc count, bytes) totals when the span opened;
    /// the drop handler attributes the delta to this span's path.
    #[cfg(feature = "obs-alloc")]
    allocs_at_open: (u64, u64),
}

impl Span {
    /// Opens a span named `name` nested under the thread's current span.
    pub fn enter(name: &'static str) -> Span {
        Span::open(name, None)
    }

    /// Opens a span carrying a free-form instance label (e.g. the
    /// matrix/technique pair of a grid cell).
    pub fn enter_detailed(name: &'static str, detail: String) -> Span {
        Span::open(name, Some(detail))
    }

    /// An inert span (what every constructor returns while telemetry is
    /// disabled).
    pub fn disabled() -> Span {
        Span(None)
    }

    fn open(name: &'static str, detail: Option<String>) -> Span {
        if !enabled() {
            return Span(None);
        }
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let depth = stack.len() as u64;
            let mut path = String::with_capacity(16 * (stack.len() + 1));
            for parent in stack.iter() {
                path.push_str(parent);
                path.push('/');
            }
            path.push_str(name);
            stack.push(name);
            (path, depth)
        });
        Span(Some(OpenSpan {
            name,
            path,
            depth,
            detail,
            started: Instant::now(),
            #[cfg(feature = "obs-alloc")]
            allocs_at_open: crate::alloc::thread_totals(),
        }))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else {
            return;
        };
        let dur_ns = open.started.elapsed().as_nanos() as u64;
        let start_ns = open.started.saturating_duration_since(epoch()).as_nanos() as u64;
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // The guard was pushed at enter; intervening spans are
            // guards too, so LIFO drop order keeps this exact.
            if stack.last() == Some(&open.name) {
                stack.pop();
            }
        });
        #[cfg(feature = "obs-alloc")]
        {
            // Attribute the allocation delta since enter to this span's
            // path. The delta includes descendants (it is "inclusive"
            // like span time); zero-allocation spans emit nothing.
            let (count_now, bytes_now) = crate::alloc::thread_totals();
            let count = count_now.wrapping_sub(open.allocs_at_open.0);
            let bytes = bytes_now.wrapping_sub(open.allocs_at_open.1);
            if count > 0 {
                emit(&Event::Alloc {
                    path: open.path.clone(),
                    count,
                    bytes,
                });
            }
        }
        emit(&Event::Span {
            thread: thread_ordinal(),
            depth: open.depth,
            path: open.path,
            name: open.name,
            detail: open.detail,
            start_ns,
            dur_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    #[test]
    fn spans_nest_and_report_paths() {
        let _serial = crate::tests_serial();
        let sink = Arc::new(MemorySink::new());
        let _guard = crate::install(sink.clone());
        {
            let _a = Span::enter("outer");
            {
                let _b = Span::enter("inner");
            }
        }
        let spans: Vec<(String, u64)> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Span { path, depth, .. } => Some((path, depth)),
                _ => None,
            })
            .collect();
        // Children end (and report) before their parents.
        assert_eq!(
            spans,
            vec![("outer/inner".to_string(), 1), ("outer".to_string(), 0)]
        );
    }

    #[test]
    fn disabled_spans_do_not_touch_the_stack() {
        let _serial = crate::tests_serial();
        {
            let _quiet = Span::enter("never-recorded");
            assert!(STACK.with(|s| s.borrow().is_empty()));
        }
        let sink = Arc::new(MemorySink::new());
        let _guard = crate::install(sink.clone());
        {
            let _a = Span::enter("recorded");
        }
        assert_eq!(
            sink.events()
                .iter()
                .filter(|e| matches!(e, Event::Span { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn sibling_spans_share_a_parent_path() {
        let _serial = crate::tests_serial();
        let sink = Arc::new(MemorySink::new());
        let _guard = crate::install(sink.clone());
        {
            let _p = Span::enter("parent");
            {
                let _a = Span::enter("first");
            }
            {
                let _b = Span::enter_detailed("second", "cell=3".to_string());
            }
        }
        let paths: Vec<String> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Span { path, .. } => Some(path),
                _ => None,
            })
            .collect();
        assert_eq!(paths, vec!["parent/first", "parent/second", "parent"]);
    }

    #[test]
    fn thread_ordinals_are_distinct() {
        let mine = thread_ordinal();
        let theirs = std::thread::spawn(thread_ordinal)
            .join()
            .expect("thread runs to completion");
        assert_ne!(mine, theirs);
        assert_eq!(mine, thread_ordinal(), "ordinal is stable per thread");
    }
}
