//! **SpGEMM study (beyond the paper)**: does insularity predict the
//! *cluster-wise* SpGEMM win the way it predicts SpMV wins?
//!
//! For every (square, flop-bounded) corpus matrix the study detects
//! RABBIT communities on the published order, replays the Gustavson
//! self-multiply `A x A` twice through the LRU model — row-by-row, and
//! cluster-wise with each community's rows executed as a block — and
//! reports the traffic win of the cluster-wise schedule next to the
//! matrix's insularity. The accumulator peaks (largest per-row vs.
//! largest per-community distinct-result-column footprint) expose the
//! mechanism: a community whose rows share result columns re-touches
//! hot accumulator lines instead of faulting new ones.
//!
//! The SpMV counterpart (traffic win of RABBIT reordering over the
//! published order) runs beside it so the two correlations are
//! measured on identical matrices.

use commorder::cachesim::source::simulate_lru;
use commorder::cachesim::SpGemmTrace;
use commorder::prelude::*;
use commorder::reorder::quality;
use commorder::sparse::kernels::spgemm_profile;
use commorder::sparse::stats::pearson;
use commorder_bench::Harness;

/// Matrices whose self-multiply exceeds this many flops are skipped —
/// the biggest skewed R-MATs cost minutes each through the LRU model
/// and add no statistical power the bounded set lacks.
const FLOP_CAP: u64 = 200_000_000;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();
    let pipeline = Pipeline::new(harness.gpu);

    struct Row {
        name: String,
        insularity: f64,
        spgemm_win: f64,
        spmv_win: f64,
        acc_peak_row: u64,
        acc_peak_cluster: u64,
    }

    let kept: Vec<_> = cases
        .iter()
        .filter(|case| {
            let flops = spgemm_profile(&case.matrix, &case.matrix)
                .map(|p| p.flops)
                .unwrap_or(u64::MAX);
            if flops > FLOP_CAP {
                eprintln!(
                    "[spgemm_study] skip {} ({flops} flops > {FLOP_CAP} cap)",
                    case.entry.name
                );
                false
            } else {
                true
            }
        })
        .collect();
    let skipped = cases.len() - kept.len();

    let mut rows: Vec<Row> = harness.engine().map(&kept, |_, case| {
        eprintln!("[spgemm_study] {}", case.entry.name);
        let m = &case.matrix;
        let result = Rabbit::new().run(m).expect("square corpus matrix");
        let insularity = quality::insularity(m, &result.assignment).expect("validated");

        let plain = SpGemmTrace::new(m, m, Kernel::SpGemmGustavson, None).expect("square");
        let clustered = SpGemmTrace::new(m, m, Kernel::SpGemmClusterWise, Some(&result.assignment))
            .expect("assignment covers every row");
        let plain_bytes = simulate_lru(harness.gpu.l2, &plain).dram_traffic_bytes();
        let cluster_bytes = simulate_lru(harness.gpu.l2, &clustered).dram_traffic_bytes();

        // SpMV counterpart on the same matrix: published order vs
        // RABBIT-reordered, same LRU model via the pipeline.
        let reordered = m.permute_symmetric(&result.permutation).expect("validated");
        let spmv_published = pipeline.simulate(m).dram_bytes;
        let spmv_reordered = pipeline.simulate(&reordered).dram_bytes;

        Row {
            name: case.entry.name.to_string(),
            insularity,
            spgemm_win: plain_bytes as f64 / cluster_bytes.max(1) as f64,
            spmv_win: spmv_published as f64 / spmv_reordered.max(1) as f64,
            acc_peak_row: plain.accumulator_peak(),
            acc_peak_cluster: clustered.accumulator_peak(),
        }
    });
    rows.sort_by(|a, b| a.insularity.partial_cmp(&b.insularity).expect("finite"));

    let mut table = Table::new(
        "SpGEMM study: cluster-wise traffic win vs insularity (A x A, LRU)",
        vec![
            "matrix".into(),
            "insularity".into(),
            "SpGEMM win".into(),
            "SpMV win".into(),
            "acc peak row".into(),
            "acc peak cluster".into(),
        ],
    );
    for r in &rows {
        table.add_row(vec![
            r.name.clone(),
            format!("{:.3}", r.insularity),
            Table::ratio(r.spgemm_win),
            Table::ratio(r.spmv_win),
            r.acc_peak_row.to_string(),
            r.acc_peak_cluster.to_string(),
        ]);
    }
    println!("{table}");
    if skipped > 0 {
        println!("({skipped} matrices skipped above the {FLOP_CAP}-flop cap)");
    }

    let ins: Vec<f64> = rows.iter().map(|r| r.insularity).collect();
    let spgemm: Vec<f64> = rows.iter().map(|r| r.spgemm_win).collect();
    let spmv: Vec<f64> = rows.iter().map(|r| r.spmv_win).collect();
    let r_spgemm = pearson(&ins, &spgemm);
    let r_spmv = pearson(&ins, &spmv);
    println!(
        "Pearson r (insularity vs win): SpGEMM cluster-wise {} | SpMV RABBIT {}",
        r_spgemm.map_or("n/a".to_string(), |r| format!("{r:.3}")),
        r_spmv.map_or("n/a".to_string(), |r| format!("{r:.3}")),
    );
}
