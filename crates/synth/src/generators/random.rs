use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// Erdős–Rényi `G(n, m)` random graph: `n * avg_degree / 2` uniformly
/// random edges.
///
/// This is the structure-free baseline — no communities, no skew — against
/// which every reordering technique should be powerless (its RANDOM and
/// ORIGINAL orderings are statistically identical).
///
/// # Example
///
/// ```
/// use commorder_synth::generators::ErdosRenyi;
///
/// let g = ErdosRenyi { n: 100, avg_degree: 4.0 }.generate(1).unwrap();
/// assert_eq!(g.n_rows(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErdosRenyi {
    /// Number of vertices.
    pub n: u32,
    /// Target average degree (each undirected edge contributes 2).
    pub avg_degree: f64,
}

impl ErdosRenyi {
    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer (practically
    /// unreachable for valid configs).
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        let mut rng = Rng::new(seed);
        let m = (f64::from(self.n) * self.avg_degree / 2.0).round() as usize;
        let mut edges = Vec::with_capacity(m);
        while edges.len() < m {
            let u = rng.gen_u32(self.n);
            let v = rng.gen_u32(self.n);
            if u != v {
                edges.push((u, v));
            }
        }
        undirected_csr(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;

    #[test]
    fn generates_requested_density() {
        let g = ErdosRenyi {
            n: 1000,
            avg_degree: 8.0,
        }
        .generate(42)
        .unwrap();
        assert_well_formed(&g);
        // nnz = 2 * edges minus collisions; allow 10% slack.
        let nnz = g.nnz() as f64;
        assert!((7200.0..=8000.0).contains(&nnz), "nnz = {nnz}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ErdosRenyi {
            n: 200,
            avg_degree: 4.0,
        };
        assert_eq!(cfg.generate(7).unwrap(), cfg.generate(7).unwrap());
        assert_ne!(cfg.generate(7).unwrap(), cfg.generate(8).unwrap());
    }

    #[test]
    fn no_community_structure_in_skew() {
        let g = ErdosRenyi {
            n: 2000,
            avg_degree: 8.0,
        }
        .generate(3)
        .unwrap();
        // Poisson degrees: top 10% of rows hold well under 30% of edges.
        let skew = commorder_sparse::stats::skew_top10(&g);
        assert!(skew < 0.30, "skew = {skew}");
    }
}
