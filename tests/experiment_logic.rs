//! Library-level regression tests for the experiment binaries' core
//! computations, on tiny deterministic inputs — so a refactor that breaks
//! an experiment's logic fails `cargo test`, not just a human reading
//! its output.

use commorder::prelude::*;
use commorder::reorder::quality::{self, adjusted_rand_index};
use commorder::sparse::ops;
use commorder::synth::corpus;

fn webhub() -> CsrMatrix {
    corpus::mini()
        .into_iter()
        .find(|e| e.name == "mini-webhub")
        .expect("mini corpus entry exists")
        .generate()
        .expect("generates")
}

#[test]
fn fig3_logic_insularity_buckets_and_sorting() {
    // The fig3 binary sorts by insularity and splits at 0.95; verify the
    // split helper and the per-matrix quantities it feeds.
    let pairs = [(0.99, 1.1), (0.5, 2.0), (0.97, 1.2), (0.3, 3.0)];
    let split = InsularitySplit::from_pairs(&pairs);
    assert!((split.high - 1.15).abs() < 1e-12);
    assert!((split.low - 2.5).abs() < 1e-12);
    assert!((split.all - 1.825).abs() < 1e-12);
}

#[test]
fn fig6_logic_masked_insular_submatrix_is_near_compulsory() {
    // The fig6 binary masks to insular-incident entries, applies the
    // insular-grouped order, and expects ~compulsory traffic.
    let m = webhub();
    let cfg = RabbitPlusPlusConfig {
        group_insular: true,
        hub_policy: HubPolicy::None,
        rabbit: Rabbit::new(),
    };
    let result = RabbitPlusPlus::with_config(cfg).run(&m).expect("square");
    let masked = ops::mask_incident(&m, &result.insular).expect("validated");
    assert!(masked.nnz() > 0, "web matrix has insular structure");
    assert!(masked.nnz() < m.nnz(), "mask removes hub-incident entries");
    let reordered = masked
        .permute_symmetric(&result.permutation)
        .expect("validated");
    let run = Pipeline::new(GpuSpec::test_scale()).simulate(&reordered);
    assert!(
        run.traffic_ratio < 1.35,
        "insular sub-matrix should be near compulsory, got {}",
        run.traffic_ratio
    );
}

#[test]
fn table2_logic_design_space_labels_and_extremes() {
    // Table2 iterates the design space; RABBIT++ must not be the worst
    // configuration on a hub-heavy matrix, and HUBSORT without insular
    // grouping must not be the best.
    let m = webhub();
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let mut results = Vec::new();
    for config in RabbitPlusPlusConfig::design_space() {
        let eval = pipeline
            .evaluate(&m, &RabbitPlusPlus::with_config(config))
            .expect("square");
        results.push((config.label(), eval.run.time_ratio));
    }
    assert_eq!(results.len(), 6);
    let best = results
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
        .0
        .clone();
    let worst = results
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
        .0
        .clone();
    assert_ne!(
        worst, "RABBIT+HUBGROUP (insular grouped)",
        "RABBIT++ must not be the worst config: {results:?}"
    );
    assert_ne!(
        best, "RABBIT+HUBSORT",
        "bare HUBSORT must not win (paper Table II): {results:?}"
    );
}

#[test]
fn fig9_logic_amortization_consistency() {
    // Amortization iterations = preprocess / per-iteration saving; the
    // gpumodel helper must agree with the hand computation the binary
    // relies on.
    let gpu = GpuSpec::test_scale();
    let (n, nnz) = (10_000u64, 100_000u64);
    let c = Kernel::SpmvCsr.compulsory_bytes(n, nnz);
    let iters = gpu
        .amortization_iterations(Kernel::SpmvCsr, n, nnz, 0.5, 2 * c, c)
        .expect("improvement exists");
    let saving = gpu.estimate_time(Kernel::SpmvCsr, n, nnz, 2 * c)
        - gpu.estimate_time(Kernel::SpmvCsr, n, nnz, c);
    assert!((iters - 0.5 / saving).abs() < 1e-9);
}

#[test]
fn extended_suite_logic_locality_ranks_match_traffic_ranks() {
    // The extended suite claims the simulator-free scorecard ranks
    // techniques like the simulator; verify on one matrix for the
    // extreme pair (RANDOM vs RABBIT).
    use commorder::reorder::locality::LocalityScore;
    let m = webhub();
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let mut measured = Vec::new();
    for technique in [&RandomOrder::new(3) as &dyn Reordering, &Rabbit::new()] {
        let perm = technique.reorder(&m).expect("square");
        let reordered = m.permute_symmetric(&perm).expect("validated");
        let traffic = pipeline.simulate(&reordered).traffic_ratio;
        let score = LocalityScore::measure(&reordered, 64);
        measured.push((traffic, score.windowed_reuse));
    }
    let (random, rabbit) = (&measured[0], &measured[1]);
    assert!(rabbit.0 < random.0, "simulator: rabbit beats random");
    assert!(rabbit.1 > random.1, "scorecard: rabbit beats random");
}

#[test]
fn detection_quality_on_every_mini_community_matrix() {
    // ARI against planted structure where ground truth is known: the
    // mini SBM is generated community-sorted before scrambling, so the
    // planted blocks are index ranges of the unscrambled matrix.
    let entry = corpus::mini()
        .into_iter()
        .find(|e| e.name == "mini-sbm")
        .expect("mini corpus entry exists");
    let tidy = entry.spec.generate(entry.seed).expect("generates");
    let detected = Rabbit::new().run(&tidy).expect("square").assignment;
    let planted: Vec<u32> = (0..tidy.n_rows())
        .map(|v| v / (tidy.n_rows() / 32))
        .collect();
    let ari = adjusted_rand_index(&detected, &planted).expect("equal lengths");
    assert!(
        ari > 0.7,
        "detection should recover planted blocks: ari = {ari}"
    );
}

#[test]
fn quality_metrics_agree_on_detected_structure() {
    // Modularity, insularity and insular fraction must tell one story.
    let m = webhub();
    let r = Rabbit::new().run(&m).expect("square");
    let sym = ops::symmetrize(&m).expect("square");
    let q = quality::modularity(&sym, &r.assignment).expect("validated");
    let ins = quality::insularity(&m, &r.assignment).expect("validated");
    let frac = quality::insular_fraction(&m, &r.assignment).expect("validated");
    assert!(q > 0.3, "web matrix has community structure: Q = {q}");
    assert!(ins > 0.5, "insularity = {ins}");
    assert!(frac > 0.0 && frac < 1.0, "insular fraction = {frac}");
}
