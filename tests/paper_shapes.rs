//! Integration tests asserting the paper's qualitative results
//! ("shapes") end-to-end on the mini corpus: who wins, in which regime,
//! and by roughly what kind of margin.

use commorder::prelude::*;
use commorder::reorder::quality;
use commorder::synth::corpus;

fn load_mini() -> Vec<(String, CsrMatrix)> {
    corpus::mini()
        .into_iter()
        .map(|e| {
            (
                e.name.to_string(),
                e.generate().expect("mini corpus generates"),
            )
        })
        .collect()
}

#[test]
fn rabbit_beats_random_on_average() {
    // Fig. 2's headline: community-based reordering is broadly effective.
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let mut random_ratios = Vec::new();
    let mut rabbit_ratios = Vec::new();
    for (_, m) in load_mini() {
        random_ratios.push(
            pipeline
                .evaluate(&m, &RandomOrder::new(1))
                .expect("square")
                .run
                .traffic_ratio,
        );
        rabbit_ratios.push(
            pipeline
                .evaluate(&m, &Rabbit::new())
                .expect("square")
                .run
                .traffic_ratio,
        );
    }
    let random_mean = arith_mean_ratio(&random_ratios).expect("non-empty");
    let rabbit_mean = arith_mean_ratio(&rabbit_ratios).expect("non-empty");
    assert!(
        rabbit_mean * 1.3 < random_mean,
        "rabbit {rabbit_mean} should be far below random {random_mean}"
    );
}

#[test]
fn high_insularity_means_near_ideal() {
    // Fig. 3's right side: insularity >= 0.95 brings SpMV close to ideal.
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let mut checked = 0;
    for (name, m) in load_mini() {
        let r = Rabbit::new().run(&m).expect("square");
        let ins = quality::insularity(&m, &r.assignment).expect("validated");
        if ins >= 0.95 {
            let reordered = m.permute_symmetric(&r.permutation).expect("validated");
            let run = pipeline.simulate(&reordered);
            assert!(
                run.time_ratio < 1.6,
                "{name}: insularity {ins} but time ratio {}",
                run.time_ratio
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 1,
        "mini corpus must include a high-insularity case"
    );
}

#[test]
fn rabbitpp_helps_the_low_insularity_webby_matrix() {
    // Fig. 7's headline case: communities + hubs (sx-stackoverflow-like).
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let cases = load_mini();
    let (_, m) = cases
        .iter()
        .find(|(name, _)| name == "mini-webhub")
        .expect("mini corpus has the web matrix");
    let rpp = RabbitPlusPlus::new().run(m).expect("square");
    let rabbit_run = pipeline.simulate(
        &m.permute_symmetric(&rpp.rabbit.permutation)
            .expect("validated"),
    );
    let rpp_run = pipeline.simulate(&m.permute_symmetric(&rpp.permutation).expect("validated"));
    assert!(
        rpp_run.traffic_ratio < rabbit_run.traffic_ratio,
        "rabbit++ {} must beat rabbit {} on the hubby web matrix",
        rpp_run.traffic_ratio,
        rabbit_run.traffic_ratio
    );
}

#[test]
fn belady_is_a_lower_bound_for_every_technique() {
    // Fig. 8's invariant, across techniques and matrices.
    let lru = Pipeline::new(GpuSpec::test_scale());
    let opt = Pipeline::builder(GpuSpec::test_scale())
        .policy(ReplacementPolicy::Belady)
        .build()
        .expect("valid built-in spec");
    for (name, m) in load_mini().into_iter().take(4) {
        for technique in paper_suite(3) {
            let perm = technique.reorder(&m).expect("square");
            let reordered = m.permute_symmetric(&perm).expect("validated");
            let l = lru.simulate(&reordered);
            let o = opt.simulate(&reordered);
            assert!(
                o.dram_bytes <= l.dram_bytes,
                "{name}/{}: belady {} > lru {}",
                technique.name(),
                o.dram_bytes,
                l.dram_bytes
            );
            // Both are bounded below by compulsory *read* traffic.
            assert!(o.stats.compulsory_misses <= o.stats.misses());
        }
    }
}

#[test]
fn publish_order_changes_original_but_not_rabbit() {
    // Observation 3: ORIGINAL depends on publisher luck; RABBIT does not
    // (up to detection noise).
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let corpus = corpus::mini();
    let sbm = corpus
        .iter()
        .find(|e| e.name == "mini-sbm")
        .expect("mini corpus has the sbm entry");
    let scrambled = sbm.generate().expect("generates");
    // Re-generate without scrambling by re-running the raw spec.
    let tidy = sbm.spec.generate(sbm.seed).expect("generates");

    let orig_tidy = pipeline
        .evaluate(&tidy, &Original)
        .expect("square")
        .run
        .traffic_ratio;
    let orig_scrambled = pipeline
        .evaluate(&scrambled, &Original)
        .expect("square")
        .run
        .traffic_ratio;
    assert!(
        orig_tidy * 1.5 < orig_scrambled,
        "publisher order must matter for ORIGINAL: {orig_tidy} vs {orig_scrambled}"
    );

    let rabbit_tidy = pipeline
        .evaluate(&tidy, &Rabbit::new())
        .expect("square")
        .run
        .traffic_ratio;
    let rabbit_scrambled = pipeline
        .evaluate(&scrambled, &Rabbit::new())
        .expect("square")
        .run
        .traffic_ratio;
    assert!(
        (rabbit_tidy - rabbit_scrambled).abs() < 0.25,
        "rabbit must be publish-order robust: {rabbit_tidy} vs {rabbit_scrambled}"
    );
}

#[test]
fn dead_lines_track_traffic_quality() {
    // Table III's mechanism: better orderings insert fewer dead lines.
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    let cases = load_mini();
    let (_, m) = cases
        .iter()
        .find(|(name, _)| name == "mini-sbm")
        .expect("mini corpus has the sbm entry");
    let random = pipeline.evaluate(m, &RandomOrder::new(1)).expect("square");
    let rabbit = pipeline.evaluate(m, &Rabbit::new()).expect("square");
    assert!(
        rabbit.run.stats.dead_line_fraction() < random.run.stats.dead_line_fraction(),
        "rabbit dead {} vs random dead {}",
        rabbit.run.stats.dead_line_fraction(),
        random.run.stats.dead_line_fraction()
    );
}

#[test]
fn all_kernels_agree_on_technique_ordering() {
    // Table IV's shape: RABBIT++ <= RABBIT << RANDOM holds for every
    // kernel format on the community-structured matrix.
    let cases = load_mini();
    let (_, m) = cases
        .iter()
        .find(|(name, _)| name == "mini-sbm")
        .expect("mini corpus has the sbm entry");
    for kernel in [Kernel::SpmvCsr, Kernel::SpmvCoo, Kernel::SpmmCsr { k: 4 }] {
        let pipeline = Pipeline::builder(GpuSpec::test_scale())
            .kernel(kernel)
            .build()
            .expect("valid built-in spec");
        let random = pipeline
            .evaluate(m, &RandomOrder::new(1))
            .expect("square")
            .run
            .time_ratio;
        let rabbit = pipeline
            .evaluate(m, &Rabbit::new())
            .expect("square")
            .run
            .time_ratio;
        let rpp = pipeline
            .evaluate(m, &RabbitPlusPlus::new())
            .expect("square")
            .run
            .time_ratio;
        assert!(
            rabbit < random && rpp < random,
            "{}: rabbit {rabbit} / rabbit++ {rpp} vs random {random}",
            kernel.name()
        );
        // At mini scale the communities are only ~8 cache lines wide, so
        // RABBIT++'s segmenting costs a partial line per community — an
        // overhead that vanishes at the paper's (and the standard
        // corpus') community sizes. Allow that artifact here; the strict
        // "RABBIT++ <= RABBIT" check runs at standard scale in the fig7 /
        // table2 experiments.
        assert!(
            rpp <= rabbit * 1.5,
            "{}: rabbit++ {rpp} regressed far past rabbit {rabbit}",
            kernel.name()
        );
    }
}

#[test]
fn mawi_anomaly_high_insularity_poor_locality() {
    // §V-B: the hub-trace matrix has high insularity yet RABBIT cannot
    // bring it near ideal (giant degenerate community).
    let cases = load_mini();
    let (_, m) = cases
        .iter()
        .find(|(name, _)| name == "mini-mawi")
        .expect("mini corpus has the mawi entry");
    let r = Rabbit::new().run(m).expect("square");
    let ins = quality::insularity(m, &r.assignment).expect("validated");
    let stats = quality::CommunityStats::from_sizes(&r.dendrogram.community_sizes());
    assert!(ins > 0.6, "hub trace should look insular, got {ins}");
    assert!(
        stats.max_size_fraction > 0.4,
        "expected a (near-)giant community, got {}",
        stats.max_size_fraction
    );
}

#[test]
fn advisor_never_loses_badly_to_fixed_rabbit() {
    // The advisor (extension of the paper's "universally effective"
    // goal) must match or beat always-RABBIT within 10% on every mini
    // corpus matrix.
    use commorder::reorder::advisor::{Advisor, Budget};
    let pipeline = Pipeline::new(GpuSpec::test_scale());
    for (name, m) in load_mini() {
        let rec = Advisor::default()
            .recommend(&m, Budget::Amortized)
            .expect("square");
        let advised = pipeline
            .evaluate(&m, rec.technique.as_ref())
            .expect("square")
            .run
            .traffic_ratio;
        let rabbit = pipeline
            .evaluate(&m, &Rabbit::new())
            .expect("square")
            .run
            .traffic_ratio;
        assert!(
            advised <= rabbit * 1.10,
            "{name}: advisor pick {} ({advised:.2}) vs rabbit {rabbit:.2} — {}",
            rec.technique.name(),
            rec.rationale
        );
    }
}
