//! Umbrella package hosting the workspace's examples and integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use commorder;
