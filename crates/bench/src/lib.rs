//! Shared harness for the experiment binaries that regenerate every
//! table and figure of the paper.
//!
//! Each binary (`fig2` … `fig9`, `table2` … `table4`, `all`) loads the
//! evaluation corpus, declares an [`ExperimentSpec`] grid (or maps a
//! bespoke analysis over the corpus with the [`Engine`]), and prints a
//! table shaped like the paper's. Environment variables control scale:
//!
//! * `COMMORDER_CORPUS` — `standard` (default, the 50-matrix corpus with
//!   the 128 KiB scaled A6000 L2) or `mini` (8 small matrices with an
//!   8 KiB L2; seconds instead of minutes, same qualitative shapes).
//! * `COMMORDER_MAX_MATRICES` — truncate the corpus for smoke runs.
//! * `COMMORDER_THREADS` — engine worker count (default: available
//!   parallelism). Results are identical for any value.
//! * `COMMORDER_CSV` — directory to additionally save the main data
//!   tables as CSV (for external plotting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;

use commorder::prelude::*;
use commorder::synth::corpus::{self, CorpusEntry};

/// A generated corpus matrix with its corpus metadata, for the bespoke
/// analyses (insularity splits, dendrogram statistics) that need more
/// than the grid API exposes.
pub struct MatrixCase {
    /// Corpus entry metadata.
    pub entry: CorpusEntry,
    /// The matrix in its published (ORIGINAL) order.
    pub matrix: CsrMatrix,
}

/// Experiment-wide configuration resolved from the environment.
pub struct Harness {
    /// Platform (GPU + L2 geometry) for all simulations.
    pub gpu: GpuSpec,
    /// Corpus entries to evaluate.
    pub entries: Vec<CorpusEntry>,
    /// Seed for the RANDOM ordering.
    pub random_seed: u64,
}

impl Harness {
    /// Builds the harness from `COMMORDER_CORPUS` / `COMMORDER_MAX_MATRICES`.
    #[must_use]
    pub fn from_env() -> Self {
        let corpus_kind =
            std::env::var("COMMORDER_CORPUS").unwrap_or_else(|_| "standard".to_string());
        let (entries, gpu) = match corpus_kind.as_str() {
            "mini" => (corpus::mini(), GpuSpec::test_scale()),
            _ => (corpus::standard(), GpuSpec::a6000_scaled()),
        };
        let limit = std::env::var("COMMORDER_MAX_MATRICES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(usize::MAX);
        Harness {
            gpu,
            entries: entries.into_iter().take(limit).collect(),
            random_seed: 0xC0DE,
        }
    }

    /// The execution engine every binary shares: `COMMORDER_THREADS`
    /// workers, defaulting to the machine's available parallelism.
    #[must_use]
    pub fn engine(&self) -> Engine {
        Engine::from_env()
    }

    /// An [`ExperimentSpec`] over the whole corpus with the given
    /// technique axis — the one-liner most figure binaries start from.
    /// Kernel/model/policy axes keep their Fig. 2 defaults; extend with
    /// `.kernels(..)` / `.models(..)` / `.policies(..)` as needed.
    #[must_use]
    pub fn spec(&self, techniques: Vec<Box<dyn Reordering>>) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(self.gpu).techniques(techniques);
        for case in self.load() {
            spec = spec.matrix_in_group(case.entry.name, case.entry.domain.label(), case.matrix);
        }
        spec
    }

    /// Like [`Harness::spec`], but restricted to the named corpus subset
    /// (for the per-matrix ablation studies).
    #[must_use]
    pub fn spec_for(
        &self,
        subset: &[&str],
        techniques: Vec<Box<dyn Reordering>>,
    ) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(self.gpu).techniques(techniques);
        for case in self.load_subset(subset) {
            spec = spec.matrix_in_group(case.entry.name, case.entry.domain.label(), case.matrix);
        }
        spec
    }

    /// Generates every corpus matrix (reporting progress on stderr).
    ///
    /// # Panics
    ///
    /// Panics if a built-in corpus entry fails to generate (a bug — the
    /// corpus is covered by tests).
    #[must_use]
    pub fn load(&self) -> Vec<MatrixCase> {
        self.entries
            .iter()
            .map(|entry| {
                eprintln!("[gen] {}", entry.name);
                let matrix = entry
                    .generate()
                    .unwrap_or_else(|e| panic!("corpus entry {} failed: {e}", entry.name));
                MatrixCase {
                    entry: entry.clone(),
                    matrix,
                }
            })
            .collect()
    }

    /// Generates only the named corpus entries, in corpus order.
    #[must_use]
    pub fn load_subset(&self, subset: &[&str]) -> Vec<MatrixCase> {
        self.entries
            .iter()
            .filter(|e| subset.contains(&e.name))
            .map(|entry| {
                eprintln!("[gen] {}", entry.name);
                let matrix = entry
                    .generate()
                    .unwrap_or_else(|e| panic!("corpus entry {} failed: {e}", entry.name));
                MatrixCase {
                    entry: entry.clone(),
                    matrix,
                }
            })
            .collect()
    }

    /// Prints the platform header (Table I) every binary leads with.
    pub fn print_platform(&self) {
        let g = &self.gpu;
        println!("platform: {}", g.name);
        println!(
            "  peak bw {:.0} GB/s | measured bw {:.0} GB/s | L2 {} KiB ({}B lines, {}-way) | mem {} GB",
            g.peak_bandwidth / 1e9,
            g.measured_bandwidth / 1e9,
            g.l2.capacity_bytes / 1024,
            g.l2.line_bytes,
            g.l2.associativity,
            g.memory_capacity >> 30,
        );
        println!(
            "  corpus: {} matrices | kernel model: sequential trace, LRU L2 | engine: {} threads\n",
            self.entries.len(),
            self.engine().threads(),
        );
    }
}

/// The Fig. 2 technique list (without RABBIT++), in paper order.
#[must_use]
pub fn figure2_techniques(seed: u64) -> Vec<Box<dyn Reordering>> {
    vec![
        Box::new(RandomOrder::new(seed)),
        Box::new(Original),
        Box::new(DegSort),
        Box::new(Dbg::default()),
        Box::new(Gorder::default()),
        Box::new(Rabbit::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_mini_resolves() {
        std::env::set_var("COMMORDER_CORPUS", "mini");
        std::env::set_var("COMMORDER_MAX_MATRICES", "3");
        let h = Harness::from_env();
        assert_eq!(h.entries.len(), 3);
        assert_eq!(h.gpu.l2.capacity_bytes, 8 * 1024);
        std::env::remove_var("COMMORDER_CORPUS");
        std::env::remove_var("COMMORDER_MAX_MATRICES");
    }

    #[test]
    fn figure2_suite_is_the_paper_order() {
        let names: Vec<String> = figure2_techniques(1)
            .iter()
            .map(|t| t.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["RANDOM", "ORIGINAL", "DEGSORT", "DBG", "GORDER", "RABBIT"]
        );
    }
}
