//! Microbenchmarks for the cache simulator itself: LRU and Belady
//! throughput on an SpMV trace, and trace-generation cost.

use commorder::cachesim::belady::simulate_belady;
use commorder::cachesim::hierarchy::CacheHierarchy;
use commorder::cachesim::plru::PlruCache;
use commorder::cachesim::trace::{collect_trace, for_each_access, ExecutionModel};
use commorder::prelude::*;
use commorder::synth::generators::PlantedPartition;
use commorder_bench::microbench::Runner;

fn fixture() -> CsrMatrix {
    PlantedPartition::uniform(4096, 32, 10.0, 0.1)
        .generate(99)
        .expect("valid generator config")
}

fn main() {
    let runner = Runner::from_env();
    let a = fixture();
    let trace = collect_trace(&a, Kernel::SpmvCsr, ExecutionModel::Sequential);
    let config = CacheConfig::test_scale();
    let accesses = Some(trace.len() as u64);

    println!("== cachesim ==");
    runner.bench("trace_generation", accesses, || {
        let mut count = 0u64;
        for_each_access(&a, Kernel::SpmvCsr, ExecutionModel::Sequential, |_| {
            count += 1;
        });
        count
    });
    runner.bench("lru", accesses, || {
        let mut cache = LruCache::new(config);
        for &acc in &trace {
            cache.access(acc);
        }
        cache.finish()
    });
    runner.bench("belady", accesses, || simulate_belady(config, &trace));
    runner.bench("plru", accesses, || {
        let mut cache = PlruCache::new(config);
        for &acc in &trace {
            cache.access(acc);
        }
        cache.finish()
    });
    runner.bench("two_level_hierarchy", accesses, || {
        let l1 = CacheConfig {
            capacity_bytes: 1024,
            ..config
        };
        let mut stack = CacheHierarchy::new(l1, config);
        for &acc in &trace {
            stack.access(acc);
        }
        stack.finish()
    });
}
