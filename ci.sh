#!/usr/bin/env bash
# Workspace CI gate. Everything here runs offline: no registry
# dependencies, no network. Mirrored by .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== xtask lint (token-stream static analysis, zero findings)"
cargo run -q -p xtask -- lint

echo "== analyzer JSON report validates (CHK1101 + CHK1102 + CHK1103)"
# The machine-readable findings report must itself satisfy the schema
# the validators publish — CHK1101 covers the findings envelope,
# CHK1102 the embedded call-graph section (stats arithmetic, edge
# endpoints, acyclic SCC condensation), CHK1103 the effects section
# (bit legend, effect-mask monotonicity over call edges, witness-path
# well-formedness, stats arithmetic). A drifted or truncated report
# would otherwise gate nothing.
cargo run -q -p xtask -- lint --json > /tmp/commorder-lint.json
cargo run -q -p commorder --bin commorder-cli -- check /tmp/commorder-lint.json

echo "== CLI-surfaced analyze report validates (analyze --source --json)"
# Same validation through the public CLI surface: the report consumers
# script against must stay in lockstep with the xtask one.
cargo run -q -p commorder --bin commorder-cli -- analyze --source --json \
  > /tmp/commorder-analyze-cli.json
cargo run -q -p commorder --bin commorder-cli -- check /tmp/commorder-analyze-cli.json

echo "== analyzer goldens are fresh (regenerate + git diff)"
# The byte-frozen fixtures must match what the current analyzer emits;
# an analyzer change that forgets to re-freeze its goldens fails here,
# not on a future contributor's machine.
COMMORDER_UPDATE_GOLDEN=1 cargo test -q -p commorder-analyze --test golden > /dev/null
COMMORDER_UPDATE_GOLDEN=1 cargo test -q -p commorder-check --test golden > /dev/null
git diff --exit-code -- fixtures/analyze/golden crates/check/tests/golden

echo "== clippy (workspace deny-list)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== tier-1: build + test"
cargo build --release -q
cargo test -q --workspace

echo "== suite smoke (--threads 4, deterministic report + telemetry)"
COMMORDER_CORPUS=mini COMMORDER_MAX_MATRICES=3 \
  cargo run --release -q -p commorder --bin commorder-cli -- \
  suite --threads 4 --corpus mini --max-matrices 3 \
  --json /tmp/commorder-suite-smoke.json --telemetry /tmp/commorder-suite-smoke.jsonl
test -s /tmp/commorder-suite-smoke.json
test -s /tmp/commorder-suite-smoke.jsonl

echo "== telemetry stream validates (CHK09xx)"
cargo run --release -q -p commorder --bin commorder-cli -- \
  check /tmp/commorder-suite-smoke.jsonl

echo "== unified bench harness (xtask bench --quick) + CHK12xx validation"
# One driver, three schema-versioned artifacts at the repo root:
# BENCH_analyze.json (lexer throughput + self-host analysis),
# BENCH_pipeline.json (trace-gen and LRU/PLRU/Belady simulated
# accesses/s, SpGEMM throughput + accumulator peaks, suite wall time,
# peak RSS) and BENCH_reorder.json
# (engine-parallel RABBIT / RABBIT++ / BOBA throughput; the run fails
# if the permutation fingerprint drifts across thread counts). --quick
# shrinks the inputs to CI scale; every artifact must pass the
# CHK1201/CHK1202 schema validators before it can gate anything.
cargo run --release -q -p xtask -- bench --quick
for b in BENCH_analyze.json BENCH_pipeline.json BENCH_reorder.json; do
  test -s "$b"
  cargo run --release -q -p commorder --bin commorder-cli -- check "$b"
done

echo "== SpGEMM metrics present in the pipeline bench artifact"
# The workload-layer SpGEMM leg must land its throughput and
# accumulator-peak rows in BENCH_pipeline.json; a silently dropped leg
# would pass the schema validators (they check rows, not coverage).
grep -q '"pipeline.spgemm_lru_accesses_per_second"' BENCH_pipeline.json
grep -q '"pipeline.spgemm_cluster_acc_peak_elements"' BENCH_pipeline.json

echo "== effect-pass metric present in the analyze bench artifact"
# Same coverage guard for the interprocedural effect-inference leg: the
# schema validators accept any well-formed metric set, so the row's
# presence is asserted by name.
grep -q '"analyze.effect_functions_per_second"' BENCH_analyze.json

echo "== regression gate (self-compare passes, injected regression fails)"
# The gate must accept the run it just produced and reject a doctored
# baseline: bump the baseline's lexer throughput to 9e9 tokens/s and
# the fresh run is a >30% regression against it, so --compare must
# exit nonzero. A gate that cannot fail gates nothing.
rm -rf /tmp/commorder-bench-baseline
mkdir -p /tmp/commorder-bench-baseline
cp BENCH_analyze.json BENCH_pipeline.json BENCH_reorder.json \
  /tmp/commorder-bench-baseline/
cargo run --release -q -p xtask -- bench --no-run \
  --compare /tmp/commorder-bench-baseline
sed -i -E 's/("analyze\.lex_tokens_per_second","value":)[0-9.eE+-]+/\19e9/' \
  /tmp/commorder-bench-baseline/BENCH_analyze.json
if cargo run --release -q -p xtask -- bench --no-run \
  --compare /tmp/commorder-bench-baseline; then
  echo "regression gate accepted an injected 9e9 baseline" >&2
  exit 1
fi

echo "== profile --flame determinism (byte-identical at 1 vs 4 threads)"
# The folded flamegraph is count-based (spans entered, not wall time),
# so the export must be byte-identical regardless of engine width.
COMMORDER_CORPUS=mini ./target/release/commorder-cli \
  profile --threads 1 --corpus mini --max-matrices 2 \
  --flame /tmp/commorder-flame-t1.folded > /dev/null
COMMORDER_CORPUS=mini ./target/release/commorder-cli \
  profile --threads 4 --corpus mini --max-matrices 2 \
  --flame /tmp/commorder-flame-t4.folded > /dev/null
cmp /tmp/commorder-flame-t1.folded /tmp/commorder-flame-t4.folded

echo "== obs-alloc counting allocator (feature-gated build + tests)"
# The allocation-tracking global allocator is off by default; this
# keeps the feature-gated unsafe module compiling and its span-path
# attribution tests green.
cargo test -q -p commorder-obs --features obs-alloc

echo "== streamed-generation tripwire (mega tier, ulimit -v 256 MiB)"
# The mega tier must be emitted straight into CSR — a reintroduced
# intermediate edge list for mega-soc-rmat-1m (8.2M undirected edges,
# ~130 MiB as (u32, u32) pairs before dedup) blows the same 256 MiB
# address-space ceiling the trace tripwire uses. Streamed generation
# peaks well under it.
(
  ulimit -v 262144
  MALLOC_ARENA_MAX=2 ./target/release/commorder-cli corpus stats mega-soc-rmat-1m
)

echo "== streaming-memory tripwire (ulimit -v 256 MiB)"
# Regression tripwire for reintroduced full-trace materialization: the
# largest synth corpus matrix (soc-rmat-xl, ~6.2M accesses per SpMV
# trace) runs the whole paper grid under a hard 256 MiB address-space
# ceiling. The streaming pipeline peaks at ~200 MiB VSZ (measured with
# MALLOC_ARENA_MAX=2 for a deterministic arena count), while holding
# even one full Vec<Access> trace adds 48-71 MiB and aborts on
# allocation failure. Uses the binary built by the tier-1 step; cargo
# itself must stay outside the limited subshell.
(
  ulimit -v 262144
  MALLOC_ARENA_MAX=2 ./target/release/commorder-cli \
    suite --threads 2 --corpus standard --only soc-rmat-xl \
    --json /tmp/commorder-tripwire.json
)
test -s /tmp/commorder-tripwire.json

echo "== SpGEMM streaming tripwire (ulimit -v 256 MiB)"
# Gustavson SpGEMM must stream row by row: the opt-block-512 self-
# multiply replays ~40M accesses per kernel, and materializing that
# trace (or the ~10M-entry result) would blow the same 256 MiB ceiling.
# Cluster-wise runs through RABBIT community detection inside the
# pipeline, so this also pins the detect-assign-replay path.
(
  ulimit -v 262144
  MALLOC_ARENA_MAX=2 ./target/release/commorder-cli \
    suite --threads 2 --corpus standard --only opt-block-512 \
    --kernels spgemm,spgemm-cluster --techniques rabbit++ \
    --json /tmp/commorder-spgemm-tripwire.json
)
test -s /tmp/commorder-spgemm-tripwire.json

echo "== strict-checks feature"
cargo test -q -p commorder-sparse -p commorder-cachesim -p commorder \
  --features commorder-sparse/strict-checks,commorder-cachesim/strict-checks,commorder/strict-checks

echo "ci: all gates passed"
