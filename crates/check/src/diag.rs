//! Structured diagnostics: the record every validator emits, plus the
//! human-readable and JSON reporters.
//!
//! Validators never panic on malformed data — they describe each
//! violation as a [`Diagnostic`] with a stable `CHK` code so tools (and
//! golden-file tests) can match on findings across releases.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth surfacing, never wrong by itself.
    Info,
    /// Suspicious but not invariant-breaking (e.g. duplicate COO entry,
    /// which construction would merge by summing).
    Warning,
    /// A structural invariant is broken; downstream results would be
    /// garbage.
    Error,
}

impl Severity {
    /// Lowercase label used by both reporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where in the checked object a finding points.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Location {
    /// Dotted path of the checked object/array, e.g. `csr.row_offsets`,
    /// `permutation`, `trace`.
    pub object: String,
    /// Offending position within the object, when one exists.
    pub index: Option<u64>,
}

impl Location {
    /// Location with an offending index.
    #[must_use]
    pub fn at(object: &str, index: u64) -> Self {
        Location {
            object: object.to_string(),
            index: Some(index),
        }
    }

    /// Location describing the object as a whole.
    #[must_use]
    pub fn whole(object: &str) -> Self {
        Location {
            object: object.to_string(),
            index: None,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{i}]", self.object),
            None => f.write_str(&self.object),
        }
    }
}

/// One validator finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`CHK0101`, ...); see [`crate::codes`].
    pub code: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Human-readable description carrying the offending values.
    pub message: String,
    /// Where the finding points.
    pub location: Location,
}

impl Diagnostic {
    /// Error-severity diagnostic.
    #[must_use]
    pub fn error(code: &'static str, location: Location, message: String) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message,
            location,
        }
    }

    /// Warning-severity diagnostic.
    #[must_use]
    pub fn warning(code: &'static str, location: Location, message: String) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message,
            location,
        }
    }

    /// Info-severity diagnostic.
    #[must_use]
    pub fn info(code: &'static str, location: Location, message: String) -> Self {
        Diagnostic {
            code,
            severity: Severity::Info,
            message,
            location,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// The outcome of running one or more validators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// Every finding, in validator emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// Empty (clean) report.
    #[must_use]
    pub fn new() -> Self {
        CheckReport::default()
    }

    /// Absorbs the findings of one validator run.
    pub fn extend(&mut self, diagnostics: Vec<Diagnostic>) {
        self.diagnostics.extend(diagnostics);
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when no finding reaches error severity.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Distinct codes present, sorted (handy for asserting fixtures).
    #[must_use]
    pub fn codes(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Human-readable report: one line per finding plus a summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} finding(s) total\n",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        ));
        out
    }

    /// Machine-readable report: stable-key JSON, one object per finding.
    ///
    /// Shape: `{"errors": E, "warnings": W, "diagnostics": [{"code": ...,
    /// "severity": ..., "object": ..., "index": N|null, "message": ...}]}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"object\":\"{}\",\"index\":{},\"message\":\"{}\"}}",
                escape_json(d.code),
                d.severity.label(),
                escape_json(&d.location.object),
                d.location
                    .index
                    .map_or_else(|| "null".to_string(), |i| i.to_string()),
                escape_json(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckReport {
        let mut r = CheckReport::new();
        r.extend(vec![
            Diagnostic::error(
                "CHK0101",
                Location::at("csr.row_offsets", 3),
                "offsets must be non-decreasing".to_string(),
            ),
            Diagnostic::warning(
                "CHK0204",
                Location::whole("coo"),
                "duplicate coordinate".to_string(),
            ),
        ]);
        r
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        assert!(CheckReport::new().is_clean());
        assert_eq!(r.codes(), vec!["CHK0101", "CHK0204"]);
    }

    #[test]
    fn text_report_lines() {
        let text = sample().render_text();
        assert!(
            text.contains("error[CHK0101] csr.row_offsets[3]:"),
            "{text}"
        );
        assert!(text.contains("warning[CHK0204] coo:"), "{text}");
        assert!(text.contains("1 error(s), 1 warning(s)"), "{text}");
    }

    #[test]
    fn json_report_is_stable_and_escaped() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"errors\":1,\"warnings\":1,"), "{json}");
        assert!(json.contains("\"index\":3"), "{json}");
        assert!(json.contains("\"index\":null"), "{json}");
        let mut r = CheckReport::new();
        r.extend(vec![Diagnostic::info(
            "CHK0000",
            Location::whole("x"),
            "quote \" backslash \\ newline \n".to_string(),
        )]);
        let j = r.render_json();
        assert!(j.contains("quote \\\" backslash \\\\ newline \\n"), "{j}");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
