//! GORDER (Wei, Yu, Lu, Lin — SIGMOD'16): greedy ordering that maximizes
//! a sliding-window locality score.
//!
//! The score between two vertices is `S(u,v) = Sₙ(u,v) + Sₛ(u,v)`:
//! `Sₙ` is 1 when they are adjacent, `Sₛ` counts common in-neighbours.
//! Vertices are emitted greedily, each time picking the vertex with the
//! highest total score against the last `w` emitted vertices. A *unit
//! heap* (bucketed priority queue with O(1) unit increments/decrements)
//! makes each update constant time, exactly as in the reference
//! implementation.
//!
//! GORDER is the paper's "effective but impractically slow" baseline: its
//! pre-processing cost scales with `Σ_u d(u)²` and dominates Fig. 9. The
//! `hub_threshold` knob bounds that quadratic blow-up by skipping score
//! propagation *through* ultra-high-degree intermediate vertices (a
//! standard practical concession; set it to `u32::MAX` for the exact
//! algorithm).

use commorder_sparse::{ops, CsrMatrix, Permutation, SparseError};

use crate::Reordering;

/// GORDER configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gorder {
    /// Sliding-window size (the paper and reference implementation use 5).
    pub window: u32,
    /// Skip score propagation through intermediate vertices with degree
    /// above this bound (see module docs).
    pub hub_threshold: u32,
}

impl Default for Gorder {
    fn default() -> Self {
        Gorder {
            window: 5,
            hub_threshold: 256,
        }
    }
}

/// Bucketed max-priority queue over vertices with unit-step key changes.
struct UnitHeap {
    key: Vec<u32>,
    /// Doubly-linked list threading: `prev[v]` / `next[v]`, `u32::MAX` = none.
    prev: Vec<u32>,
    next: Vec<u32>,
    /// `head[k]` = first vertex in bucket `k`.
    head: Vec<u32>,
    max_key: u32,
    placed: Vec<bool>,
    remaining: usize,
}

const NONE: u32 = u32::MAX;

impl UnitHeap {
    fn new(n: usize) -> Self {
        let mut heap = UnitHeap {
            key: vec![0; n],
            prev: vec![NONE; n],
            next: vec![NONE; n],
            head: vec![NONE; 1],
            max_key: 0,
            placed: vec![false; n],
            remaining: n,
        };
        // Link everything into bucket 0 (insertion order preserved).
        for v in (0..n as u32).rev() {
            heap.link(v, 0);
        }
        heap
    }

    fn link(&mut self, v: u32, k: u32) {
        if self.head.len() <= k as usize {
            self.head.resize(k as usize + 1, NONE);
        }
        let old_head = self.head[k as usize];
        self.next[v as usize] = old_head;
        self.prev[v as usize] = NONE;
        if old_head != NONE {
            self.prev[old_head as usize] = v;
        }
        self.head[k as usize] = v;
        self.key[v as usize] = k;
        self.max_key = self.max_key.max(k);
    }

    fn unlink(&mut self, v: u32) {
        let (p, nx) = (self.prev[v as usize], self.next[v as usize]);
        if p != NONE {
            self.next[p as usize] = nx;
        } else {
            self.head[self.key[v as usize] as usize] = nx;
        }
        if nx != NONE {
            self.prev[nx as usize] = p;
        }
        self.prev[v as usize] = NONE;
        self.next[v as usize] = NONE;
    }

    fn increment(&mut self, v: u32) {
        if self.placed[v as usize] {
            return;
        }
        let k = self.key[v as usize];
        self.unlink(v);
        self.link(v, k + 1);
    }

    fn decrement(&mut self, v: u32) {
        if self.placed[v as usize] {
            return;
        }
        let k = self.key[v as usize];
        debug_assert!(k > 0, "decrement below zero");
        self.unlink(v);
        self.link(v, k.saturating_sub(1));
    }

    /// Removes and returns the vertex with the largest key.
    fn extract_max(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            let h = self.head[self.max_key as usize];
            if h != NONE {
                self.unlink(h);
                self.placed[h as usize] = true;
                self.remaining -= 1;
                return Some(h);
            }
            if self.max_key == 0 {
                return None;
            }
            self.max_key -= 1;
        }
    }

    /// Removes a specific vertex (used to seed the sequence).
    fn extract(&mut self, v: u32) {
        debug_assert!(!self.placed[v as usize]);
        self.unlink(v);
        self.placed[v as usize] = true;
        self.remaining -= 1;
    }
}

impl Gorder {
    /// Applies the score delta of vertex `v` entering (+1) or leaving (-1)
    /// the window.
    fn apply_window_delta(&self, sym: &CsrMatrix, heap: &mut UnitHeap, v: u32, enter: bool) {
        let bump = |heap: &mut UnitHeap, w: u32| {
            if enter {
                heap.increment(w);
            } else {
                heap.decrement(w);
            }
        };
        let (neigh, _) = sym.row(v);
        for &u in neigh {
            // Sₙ: u adjacent to v.
            bump(heap, u);
            // Sₛ: any w adjacent to u shares in-neighbour u with v.
            if sym.row_degree(u) <= self.hub_threshold {
                let (two_hop, _) = sym.row(u);
                for &w in two_hop {
                    if w != v {
                        bump(heap, w);
                    }
                }
            }
        }
    }
}

impl Reordering for Gorder {
    fn name(&self) -> &str {
        "GORDER"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        if self.window == 0 {
            return Err(SparseError::DimensionMismatch {
                expected: "window >= 1".to_string(),
                found: "window == 0".to_string(),
            });
        }
        let sym = ops::symmetrize(a)?;
        let n = sym.n_rows();
        if n == 0 {
            return Ok(Permutation::identity(0));
        }
        let mut heap = UnitHeap::new(n as usize);
        let mut order: Vec<u32> = Vec::with_capacity(n as usize);

        // Seed with the maximum-degree vertex (reference implementation).
        let start = (0..n).max_by_key(|&v| sym.row_degree(v)).expect("n > 0");
        heap.extract(start);
        order.push(start);
        self.apply_window_delta(&sym, &mut heap, start, true);

        while let Some(v) = heap.extract_max() {
            order.push(v);
            // Slide the window: the vertex `window` positions back leaves.
            if order.len() > self.window as usize {
                let leaving = order[order.len() - 1 - self.window as usize];
                self.apply_window_delta(&sym, &mut heap, leaving, false);
            }
            self.apply_window_delta(&sym, &mut heap, v, true);
        }
        debug_assert_eq!(order.len(), n as usize);
        Permutation::from_order(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::stats::mean_index_distance;
    use commorder_sparse::CooMatrix;
    use commorder_synth::generators::PlantedPartition;

    #[test]
    fn unit_heap_extracts_in_key_order() {
        let mut h = UnitHeap::new(4);
        h.increment(2);
        h.increment(2);
        h.increment(1);
        assert_eq!(h.extract_max(), Some(2));
        assert_eq!(h.extract_max(), Some(1));
        // Remaining two have key 0; insertion-order head wins.
        let rest = [h.extract_max().unwrap(), h.extract_max().unwrap()];
        assert!(rest.contains(&0) && rest.contains(&3));
        assert_eq!(h.extract_max(), None);
    }

    #[test]
    fn unit_heap_decrement_reorders() {
        let mut h = UnitHeap::new(3);
        h.increment(0);
        h.increment(0);
        h.increment(1);
        h.decrement(0);
        h.decrement(0); // 0 back to key 0
        assert_eq!(h.extract_max(), Some(1));
    }

    #[test]
    fn unit_heap_ignores_placed_vertices() {
        let mut h = UnitHeap::new(2);
        h.extract(1);
        h.increment(1); // no-op
        assert_eq!(h.extract_max(), Some(0));
        assert_eq!(h.extract_max(), None);
    }

    #[test]
    fn gorder_emits_adjacent_vertices_consecutively_on_a_clique_pair() {
        // Two disjoint triangles; each triangle should be emitted as a
        // contiguous block.
        let entries: Vec<_> = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
            .iter()
            .flat_map(|&(u, v)| [(u, v, 1.0), (v, u, 1.0)])
            .collect();
        let g = CsrMatrix::try_from(CooMatrix::from_entries(6, 6, entries).unwrap()).unwrap();
        let p = Gorder::default().reorder(&g).unwrap();
        let group_of = |v: u32| if p.new_of(v) < 3 { 0 } else { 1 };
        assert_eq!(group_of(0), group_of(1));
        assert_eq!(group_of(1), group_of(2));
        assert_eq!(group_of(3), group_of(4));
        assert_eq!(group_of(4), group_of(5));
        assert_ne!(group_of(0), group_of(3));
    }

    #[test]
    fn gorder_improves_locality_on_scrambled_communities() {
        let g = PlantedPartition::uniform(600, 20, 8.0, 0.05)
            .generate(11)
            .unwrap();
        let scramble = crate::RandomOrder::new(3).reorder(&g).unwrap();
        let messy = g.permute_symmetric(&scramble).unwrap();
        let p = Gorder::default().reorder(&messy).unwrap();
        let fixed = messy.permute_symmetric(&p).unwrap();
        assert!(
            mean_index_distance(&fixed) < mean_index_distance(&messy) * 0.5,
            "gorder should halve mean index distance"
        );
    }

    #[test]
    fn gorder_rejects_zero_window() {
        let g = CsrMatrix::empty(2);
        assert!(Gorder {
            window: 0,
            hub_threshold: 256
        }
        .reorder(&g)
        .is_err());
    }

    #[test]
    fn gorder_handles_empty_and_disconnected() {
        assert!(Gorder::default()
            .reorder(&CsrMatrix::empty(0))
            .unwrap()
            .is_empty());
        let p = Gorder::default().reorder(&CsrMatrix::empty(5)).unwrap();
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn hub_threshold_changes_cost_not_validity() {
        let g = PlantedPartition::uniform(300, 10, 6.0, 0.2)
            .generate(12)
            .unwrap();
        let exact = Gorder {
            window: 5,
            hub_threshold: u32::MAX,
        }
        .reorder(&g)
        .unwrap();
        let capped = Gorder {
            window: 5,
            hub_threshold: 4,
        }
        .reorder(&g)
        .unwrap();
        assert_eq!(exact.len(), 300);
        assert_eq!(capped.len(), 300);
    }
}
