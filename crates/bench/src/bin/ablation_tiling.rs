//! **Ablation (paper §VII future work)**: does RABBIT++ compose with
//! tiling? The paper conjectures "RABBIT++ can potentially improve the
//! efficiency of tiling and blocking optimizations; we leave this
//! exploration to future work" — this binary runs that experiment.
//!
//! Column-tiled SpMV bounds the irregular `X` range per tile but pays
//! per-tile metadata (offset arrays) and extra `Y` walks;
//! propagation-blocking SpMV regularizes all accesses at a 4-elements-
//! per-nnz streaming toll. We sweep both under RANDOM, RABBIT and
//! RABBIT++ orders and report DRAM traffic normalized to the *untiled*
//! CSR compulsory traffic, so each optimization's overhead is visible.

use commorder::prelude::*;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    // Tiling is a per-matrix study; use a representative low-insularity
    // subset instead of the whole corpus.
    let subset: Vec<&str> = if harness.entries.len() <= 8 {
        vec!["mini-rmat", "mini-webhub", "mini-er"]
    } else {
        vec!["soc-rmat-65k", "web-stackex", "soc-pa-65k", "rnd-er-49k"]
    };

    // Tile widths in elements; cache holds line_elems * num_lines X values.
    let cache_elems = (harness.gpu.l2.capacity_bytes / 4) as u32;
    let widths = [cache_elems / 8, cache_elems / 2, cache_elems * 2];
    let bins = 16u32;

    // One grid: 3 orderings x {untiled, 3 tile widths, blocked} on the
    // kernel axis.
    let orderings: Vec<Box<dyn Reordering>> = vec![
        Box::new(RandomOrder::new(harness.random_seed)),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
    ];
    let mut kernels = vec![Kernel::SpmvCsr];
    kernels.extend(
        widths
            .iter()
            .map(|&w| Kernel::SpmvCsrTiled { tile_cols: w }),
    );
    kernels.push(Kernel::SpmvBlocked { bins });
    let spec = harness.spec_for(&subset, orderings).kernels(kernels);
    let result = spec.run(&harness.engine()).expect("valid corpus grid");
    eprintln!("[ablation_tiling] engine: {}", result.stats.summary());

    for (mi, (name, _)) in result.matrices.iter().enumerate() {
        let mut table = Table::new(
            format!("Tiling x reordering on {name} (traffic normalized to UNTILED compulsory)"),
            vec![
                "ordering".into(),
                "untiled".into(),
                format!("tile {}", widths[0]),
                format!("tile {}", widths[1]),
                format!("tile {}", widths[2]),
                format!("blocked-{bins}"),
            ],
        );
        let untiled_compulsory =
            Kernel::SpmvCsr.compulsory_bytes_for(&spec.matrices[mi].matrix) as f64;
        for (ti, technique) in result.techniques.iter().enumerate() {
            let mut row = vec![technique.clone()];
            for ki in 0..result.kernels.len() {
                row.push(Table::ratio(
                    result.record(mi, ti, ki, 0, 0).run.dram_bytes as f64 / untiled_compulsory,
                ));
            }
            table.add_row(row);
        }
        println!("{table}");
    }
    println!(
        "Reading: small tiles bound the X range but pay per-tile offset metadata\n\
         (tiles x (n+1) extra elements) that dominates at SpMV's low arithmetic\n\
         density — only cache-matched tiles ever approach the untiled kernel, and\n\
         they still lose to plain RABBIT/RABBIT++ with no tiling at all. This is\n\
         the quantified version of the paper's §VII position: reordering achieves\n\
         tiling's locality goal without the application changes or metadata, so\n\
         community reordering subsumes tiling in this regime. Blocking (last\n\
         column) is ordering-independent by construction — the streamed\n\
         4-elements-per-nnz toll is the flat price it pays for that."
    );
}
