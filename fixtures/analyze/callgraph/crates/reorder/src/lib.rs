//! Fixture: call-graph resolution — a recursion SCC, ambiguous method
//! dispatch, and external calls, seeded by a `reorder` function.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
