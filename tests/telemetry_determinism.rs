//! Telemetry is a strict sidecar: installing a sink must never change
//! the experiment report, only add a parallel event stream. This golden
//! test pins that contract end to end — the report JSON is byte
//! identical with and without telemetry at 1 and 4 worker threads, and
//! the captured stream validates clean under the `CHK09xx` auditors
//! while covering every pipeline phase for every grid cell.

use std::sync::Arc;

use commorder::obs;
use commorder::prelude::*;
use commorder::synth::corpus;

/// Three mini-corpus matrices x two techniques x two replacement
/// policies on the test-scale platform: small enough for a test, real
/// enough to exercise the reorder, trace-gen, simulate, and model
/// phases down both streaming simulator paths (LRU and two-pass
/// Belady).
fn mini_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(GpuSpec::test_scale())
        .techniques(vec![Box::new(Original), Box::new(Rabbit::new())])
        .policies(vec![ReplacementPolicy::Lru, ReplacementPolicy::Belady]);
    for entry in corpus::mini().into_iter().take(3) {
        let matrix = entry.generate().expect("mini corpus generates");
        spec = spec.matrix_in_group(entry.name, entry.domain.label(), matrix);
    }
    spec
}

#[test]
fn report_json_is_byte_identical_with_and_without_telemetry() {
    let _serial = obs::tests_serial();
    // One job per matrix x technique; one cell per job x policy.
    let jobs = 3 * 2;
    let cells = jobs * 2;

    let baseline = mini_spec()
        .run(&Engine::new(1))
        .expect("valid grid")
        .render_json();

    for threads in [1usize, 4] {
        let sink = Arc::new(MemorySink::new());
        let guard = obs::install(sink.clone());
        let json = mini_spec()
            .run(&Engine::new(threads))
            .expect("valid grid")
            .render_json();
        drop(guard);
        assert_eq!(
            json, baseline,
            "telemetry changed the report at {threads} worker threads"
        );

        // The sidecar stream must satisfy its own invariants: parseable
        // events, exact span nesting, declared metric names.
        let stream = sink.to_jsonl();
        let mut report = commorder::check::CheckReport::new();
        report.extend(commorder::check::check_telemetry(&stream));
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());

        // Every grid cell reports its reorder and all three pipeline
        // phases (trace-gen is explicit when telemetry is on).
        let spans = |name: &str| stream.matches(&format!("\"name\":\"{name}\"")).count();
        assert_eq!(
            spans("grid.job"),
            jobs,
            "one job span per matrix x technique"
        );
        assert_eq!(spans("grid.reorder"), jobs);
        assert_eq!(spans("grid.cell"), cells);
        assert_eq!(spans("pipeline.trace_gen"), cells);
        assert_eq!(spans("pipeline.simulate"), cells);
        assert_eq!(spans("pipeline.model"), cells);
        assert!(stream.contains("\"name\":\"exec.jobs\""));
        assert!(stream.contains("\"name\":\"cachesim.accesses\""));
    }
}
