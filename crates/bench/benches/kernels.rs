//! Microbenchmarks for the sparse kernels: SpMV-CSR, SpMV-COO and SpMM
//! throughput on a mid-sized community matrix.

use commorder::prelude::*;
use commorder::sparse::graph::pagerank;
use commorder::sparse::{kernels, EllMatrix, SellMatrix};
use commorder::synth::generators::PlantedPartition;
use commorder_bench::microbench::Runner;

fn fixture() -> CsrMatrix {
    PlantedPartition::uniform(8192, 64, 12.0, 0.05)
        .generate(77)
        .expect("valid generator config")
}

fn bench_kernels(runner: &Runner) {
    let a = fixture();
    let coo = CooMatrix::from(&a);
    let x = vec![1.0f32; a.n_cols() as usize];
    let b4 = vec![1.0f32; a.n_cols() as usize * 4];
    let nnz = Some(a.nnz() as u64);

    println!("== kernels ==");
    runner.bench("spmv_csr", nnz, || {
        kernels::spmv_csr(&a, &x).expect("dims match")
    });
    runner.bench("spmv_coo", nnz, || {
        kernels::spmv_coo(&coo, &x).expect("dims match")
    });
    runner.bench("spmm_csr_k4", nnz, || {
        kernels::spmm_csr(&a, &b4, 4).expect("dims match")
    });
    let ell = EllMatrix::from_csr(&a).expect("fits");
    runner.bench("spmv_ell", nnz, || ell.spmv(&x).expect("dims match"));
    let sell = SellMatrix::from_csr(&a, 32, 256).expect("valid geometry");
    runner.bench("spmv_sell_32_256", nnz, || {
        sell.spmv(&x).expect("dims match")
    });
    runner.bench("spmv_blocked_16", nnz, || {
        kernels::spmv_blocked(&a, &x, 16).expect("dims match")
    });
    runner.bench("pagerank_1iter", nnz, || {
        pagerank(&a, 0.85, 1).expect("square")
    });
}

fn bench_spmv_orderings(runner: &Runner) {
    // CPU-side SpMV also benefits from reordering (cache locality is
    // cache locality); this measures the end effect outside the simulator.
    let a = fixture();
    let x = vec![1.0f32; a.n_cols() as usize];
    println!("== spmv_by_ordering ==");
    for (name, perm) in [
        ("random", RandomOrder::new(3).reorder(&a).expect("square")),
        ("rabbit", Rabbit::new().reorder(&a).expect("square")),
        (
            "rabbitpp",
            RabbitPlusPlus::new().reorder(&a).expect("square"),
        ),
    ] {
        let m = a.permute_symmetric(&perm).expect("validated");
        runner.bench(name, Some(m.nnz() as u64), || {
            kernels::spmv_csr(&m, &x).expect("dims match")
        });
    }
}

fn main() {
    let runner = Runner::from_env();
    bench_kernels(&runner);
    bench_spmv_orderings(&runner);
}
