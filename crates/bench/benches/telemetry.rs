//! Microbenchmarks for the telemetry layer: the cost of a `span!` /
//! `counter!` call site when no sink is installed (the price every
//! library pays unconditionally), under the aggregating registry, and
//! under a JSONL writer draining to a null sink.

use std::sync::Arc;

use commorder::obs::{self, JsonlSink, Registry};
use commorder_bench::microbench::Runner;

const N: u64 = 100_000;

fn spans() -> u64 {
    let mut acc = 0u64;
    for i in 0..N {
        let _span = obs::span!("bench.leaf");
        acc = acc.wrapping_add(i);
    }
    acc
}

fn detailed_spans() -> u64 {
    let mut acc = 0u64;
    for i in 0..N {
        // The format args must only be evaluated when a sink is live.
        let _span = obs::span!("bench.leaf", "i={i}");
        acc = acc.wrapping_add(i);
    }
    acc
}

fn counters() -> u64 {
    for _ in 0..N {
        obs::counter!("grid.cells", 1);
    }
    N
}

fn main() {
    let runner = Runner::from_env();
    println!("== telemetry ==");

    runner.bench("span_disabled", Some(N), spans);
    runner.bench("span_detailed_disabled", Some(N), detailed_spans);
    runner.bench("counter_disabled", Some(N), counters);

    {
        let registry = Arc::new(Registry::new());
        let _guard = obs::install(registry);
        runner.bench("span_registry", Some(N), spans);
        runner.bench("span_detailed_registry", Some(N), detailed_spans);
        runner.bench("counter_registry", Some(N), counters);
    }

    {
        let sink = Arc::new(JsonlSink::new(std::io::sink()));
        let _guard = obs::install(sink);
        runner.bench("span_jsonl_null", Some(N), spans);
    }
}
