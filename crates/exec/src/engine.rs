//! The work-stealing engine: per-worker deques, back-stealing, stable
//! result ordering and per-job timing.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use commorder_obs as obs;

/// Scheduling observability for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobTiming {
    /// Seconds between batch submission and the job starting on a
    /// worker — queue wait, excluded from all measured phases.
    pub queue_seconds: f64,
    /// Seconds the job function ran on its worker.
    pub exec_seconds: f64,
    /// Index of the worker that executed the job.
    pub worker: usize,
    /// `true` when the job was stolen from another worker's queue.
    pub stolen: bool,
}

/// A job's return value together with its scheduling record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput<R> {
    /// What the job function returned.
    pub value: R,
    /// When and where it ran.
    pub timing: JobTiming,
}

/// One job whose function panicked. The panic is caught at the job
/// boundary so the rest of the batch still completes; the payload is
/// rendered to a string so the record stays `Send` and comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Submission index of the failed job.
    pub index: usize,
    /// Rendered panic payload (`&str`/`String` payloads verbatim).
    pub message: String,
}

/// Aggregate counters for one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Worker threads the batch ran on.
    pub threads: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs that ran on a worker other than the one they were queued on.
    pub steals: u64,
    /// Wall-clock seconds from submission to the last job completing.
    pub wall_seconds: f64,
    /// Jobs executed per worker (length = `threads`).
    pub per_worker_jobs: Vec<u64>,
    /// Sum of per-job execution seconds (serial-equivalent work).
    pub busy_seconds: f64,
    /// Jobs whose function panicked, in submission order; empty on a
    /// fully successful batch.
    pub failed: Vec<JobFailure>,
}

impl EngineStats {
    /// `busy_seconds / (threads * wall_seconds)` — 1.0 means every
    /// worker was executing jobs for the whole batch.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let denom = self.threads as f64 * self.wall_seconds;
        if denom > 0.0 {
            self.busy_seconds / denom
        } else {
            0.0
        }
    }

    /// One-line summary for experiment binaries' stderr logs.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} jobs on {} workers in {:.2}s (busy {:.2}s, utilization {:.0}%, {} steals)",
            self.jobs,
            self.threads,
            self.wall_seconds,
            self.busy_seconds,
            self.utilization() * 100.0,
            self.steals
        )
    }
}

struct Job<T> {
    index: usize,
    item: T,
}

/// A fixed-width pool of worker threads for embarrassingly parallel
/// batches. See the crate docs for the scheduling model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
}

impl Default for Engine {
    /// An engine sized to the machine (`available_parallelism`).
    fn default() -> Self {
        Engine::available()
    }
}

impl Engine {
    /// An engine with exactly `threads` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
        }
    }

    /// A serial engine — the reference behaviour every parallel run must
    /// reproduce byte-for-byte.
    #[must_use]
    pub fn serial() -> Self {
        Engine::new(1)
    }

    /// An engine sized to `std::thread::available_parallelism` (1 when
    /// the machine cannot report it).
    #[must_use]
    pub fn available() -> Self {
        Engine::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// An engine sized from the `COMMORDER_THREADS` environment variable
    /// when set (and parseable), otherwise [`Engine::available`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("COMMORDER_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            Some(n) => Engine::new(n),
            None => Engine::available(),
        }
    }

    /// Configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every item, returning outputs in submission order.
    ///
    /// `f` receives the job's index and the owned item. See
    /// [`Engine::run_with_stats`] for the full contract.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<JobOutput<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_with_stats(items, f).0
    }

    /// Borrowing convenience: maps `f` over a slice in parallel and
    /// returns the bare values in input order (the common case when the
    /// caller does not need per-job timing).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.iter().collect(), f)
            .into_iter()
            .map(|out| out.value)
            .collect()
    }

    /// Runs `f` over every item and also returns the batch counters.
    ///
    /// Results are placed by job index, so the output order equals the
    /// input order regardless of thread count; with a deterministic `f`
    /// the returned values are identical for any `threads`. Only the
    /// [`JobTiming`]/[`EngineStats`] scheduling records vary between
    /// runs.
    ///
    /// # Panics
    ///
    /// If `f` panics on any job, the panic is re-raised here after the
    /// whole batch drains (workers never die mid-batch — the panic is
    /// contained at the job boundary and carried out as a
    /// [`JobFailure`]).
    pub fn run_with_stats<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<JobOutput<R>>, EngineStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let (results, stats) = self.try_run_with_stats(items, f);
        let outputs = results
            .into_iter()
            .map(|r| match r {
                Ok(out) => out,
                Err(fail) => panic!("job {} panicked: {}", fail.index, fail.message),
            })
            .collect();
        (outputs, stats)
    }

    /// Like [`Engine::run_with_stats`] but panics in `f` are contained
    /// at the job boundary: each slot of the returned vector is
    /// `Ok(output)` or `Err(failure)` in submission order, the rest of
    /// the batch always completes, and the failures are also listed in
    /// [`EngineStats::failed`].
    pub fn try_run_with_stats<T, R, F>(
        &self,
        items: Vec<T>,
        f: F,
    ) -> (Vec<Result<JobOutput<R>, JobFailure>>, EngineStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n_jobs = items.len();
        let threads = self.threads.min(n_jobs).max(1);
        let submitted = Instant::now();

        // All jobs are enqueued before any worker starts; round-robin
        // keeps neighbouring (similar-cost) grid cells on different
        // workers.
        let queues: Vec<Mutex<VecDeque<Job<T>>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (index, item) in items.into_iter().enumerate() {
            queues[index % threads]
                .lock()
                .expect("fresh queue cannot be poisoned")
                .push_back(Job { index, item });
        }

        let steal_count = AtomicU64::new(0);
        let per_worker: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
        let (sender, receiver) = mpsc::channel::<(usize, Result<JobOutput<R>, JobFailure>)>();

        std::thread::scope(|scope| {
            for worker in 0..threads {
                let sender = sender.clone();
                let queues = &queues;
                let f = &f;
                let steal_count = &steal_count;
                let per_worker = &per_worker;
                scope.spawn(move || loop {
                    let own = queues[worker]
                        .lock()
                        .expect("no worker panics while holding a queue lock")
                        .pop_front();
                    let (job, stolen) = match own {
                        Some(job) => (job, false),
                        None => {
                            // Steal from the back of the first non-empty
                            // sibling queue; a full empty scan means the
                            // batch is drained (nothing is ever re-queued).
                            let mut stolen_job = None;
                            for offset in 1..threads {
                                let victim = (worker + offset) % threads;
                                if let Some(job) = queues[victim]
                                    .lock()
                                    .expect("no worker panics while holding a queue lock")
                                    .pop_back()
                                {
                                    stolen_job = Some(job);
                                    break;
                                }
                            }
                            match stolen_job {
                                Some(job) => (job, true),
                                None => break,
                            }
                        }
                    };
                    if stolen {
                        steal_count.fetch_add(1, Ordering::Relaxed);
                    }
                    per_worker[worker].fetch_add(1, Ordering::Relaxed);
                    let started = Instant::now();
                    // Contain job panics at this boundary: a panicking
                    // job must not kill its worker (the queues would
                    // strand) or poison the batch for its siblings.
                    let index = job.index;
                    let result = {
                        let _span = obs::span!("exec.job", "job={}", index);
                        catch_unwind(AssertUnwindSafe(|| f(index, job.item)))
                    };
                    let timing = JobTiming {
                        queue_seconds: started.duration_since(submitted).as_secs_f64(),
                        exec_seconds: started.elapsed().as_secs_f64(),
                        worker,
                        stolen,
                    };
                    if obs::enabled() {
                        obs::counter!("exec.jobs", 1);
                        if stolen {
                            obs::counter!("exec.steals", 1);
                        }
                        obs::observe!("exec.queue_wait_seconds", timing.queue_seconds);
                    }
                    let outcome = match result {
                        Ok(value) => Ok(JobOutput { value, timing }),
                        Err(payload) => Err(JobFailure {
                            index,
                            message: panic_message(payload.as_ref()),
                        }),
                    };
                    // The receiver outlives the scope; a send can only
                    // fail if the main thread is already unwinding.
                    let _ = sender.send((index, outcome));
                });
            }
        });
        drop(sender);

        let mut slots: Vec<Option<Result<JobOutput<R>, JobFailure>>> =
            (0..n_jobs).map(|_| None).collect();
        for (index, outcome) in receiver {
            slots[index] = Some(outcome);
        }
        let results: Vec<Result<JobOutput<R>, JobFailure>> = slots
            .into_iter()
            .map(|slot| slot.expect("every submitted job reports exactly once"))
            .collect();
        let busy_seconds = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|o| o.timing.exec_seconds)
            .sum();
        let failed: Vec<JobFailure> = results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .cloned()
            .collect();
        let stats = EngineStats {
            threads,
            jobs: n_jobs,
            steals: steal_count.load(Ordering::Relaxed),
            wall_seconds: submitted.elapsed().as_secs_f64(),
            per_worker_jobs: per_worker
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            busy_seconds,
            failed,
        };
        obs::gauge!("exec.utilization", stats.utilization());
        (results, stats)
    }
}

/// Renders a caught panic payload: `&str` and `String` payloads pass
/// through verbatim, anything else gets a fixed placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_follow_submission_order() {
        for threads in [1, 2, 3, 8] {
            let engine = Engine::new(threads);
            let items: Vec<u64> = (0..97).collect();
            let out = engine.map(&items, |_, &x| x * 3);
            assert_eq!(
                out,
                (0..97).map(|x| x * 3).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_batch() {
        let engine = Engine::new(4);
        let (outputs, stats) = engine.run_with_stats(Vec::<u32>::new(), |_, x| x);
        assert!(outputs.is_empty());
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let engine = Engine::new(0);
        assert_eq!(engine.threads(), 1);
        assert_eq!(engine.map(&[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn job_index_matches_item() {
        let engine = Engine::new(4);
        let items: Vec<usize> = (0..50).collect();
        let out = engine.map(&items, |i, &x| (i, x));
        for (i, &(ji, x)) in out.iter().enumerate() {
            assert_eq!(ji, i);
            assert_eq!(x, i);
        }
    }

    #[test]
    fn stats_account_for_every_job() {
        let engine = Engine::new(3);
        let items: Vec<u64> = (0..40).collect();
        let (outputs, stats) = engine.run_with_stats(items, |_, x| x);
        assert_eq!(outputs.len(), 40);
        assert_eq!(stats.jobs, 40);
        assert_eq!(stats.per_worker_jobs.iter().sum::<u64>(), 40);
        assert_eq!(stats.threads, 3);
        assert!(stats.wall_seconds >= 0.0);
        assert!(stats.utilization() >= 0.0);
        assert!(!stats.summary().is_empty());
    }

    #[test]
    fn timing_fields_are_sane() {
        let engine = Engine::new(2);
        let outputs = engine.run(vec![1u32, 2, 3, 4], |_, x| {
            // Busy-work so exec_seconds is measurably positive.
            let mut acc = 0u64;
            for i in 0..20_000u64 {
                acc = acc.wrapping_add(i * u64::from(x));
            }
            acc
        });
        for out in &outputs {
            assert!(out.timing.queue_seconds >= 0.0);
            assert!(out.timing.exec_seconds >= 0.0);
            assert!(out.timing.worker < 2);
        }
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // Worker 0 receives one huge job (round-robin index 0); the other
        // workers must steal its queued siblings.  With 2 workers and a
        // heavily skewed first job, at least one steal is all but
        // guaranteed; assert the batch completes correctly either way.
        let engine = Engine::new(2);
        let items: Vec<u64> = (0..16).collect();
        let (outputs, stats) = engine.run_with_stats(items, |_, x| {
            let spins = if x == 0 { 3_000_000u64 } else { 1_000 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i ^ x);
            }
            acc
        });
        assert_eq!(outputs.len(), 16);
        assert_eq!(stats.per_worker_jobs.iter().sum::<u64>(), 16);
        let stolen_flags = outputs.iter().filter(|o| o.timing.stolen).count() as u64;
        assert_eq!(stolen_flags, stats.steals);
    }

    #[test]
    fn more_threads_than_jobs() {
        let engine = Engine::new(16);
        let (outputs, stats) = engine.run_with_stats(vec![1u32, 2], |_, x| x * 10);
        assert_eq!(
            outputs.iter().map(|o| o.value).collect::<Vec<_>>(),
            vec![10, 20]
        );
        // Threads are clamped to the job count: no idle spawn.
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn utilization_guards_zero_denominator() {
        // A zero-job batch (or a wall-clock too fast to measure) must
        // report 0.0 utilization, never NaN or infinity.
        let stats = EngineStats {
            threads: 0,
            jobs: 0,
            steals: 0,
            wall_seconds: 0.0,
            per_worker_jobs: Vec::new(),
            busy_seconds: 0.0,
            failed: Vec::new(),
        };
        assert_eq!(stats.utilization(), 0.0);
        let degenerate = EngineStats {
            threads: 4,
            jobs: 1,
            steals: 0,
            wall_seconds: 0.0,
            per_worker_jobs: vec![1, 0, 0, 0],
            busy_seconds: 0.5,
            failed: Vec::new(),
        };
        assert_eq!(degenerate.utilization(), 0.0);
        assert!(degenerate.utilization().is_finite());
        assert!(!degenerate.summary().is_empty());
    }

    #[test]
    fn batches_emit_job_spans_and_counters() {
        // The only telemetry-installing test in this binary (the obs
        // dispatcher is process-global).
        let _serial = obs::tests_serial();
        let registry = std::sync::Arc::new(obs::Registry::new());
        let _guard = obs::install(registry.clone());
        let engine = Engine::new(2);
        let (outputs, stats) = engine.run_with_stats((0..12u64).collect(), |_, x| x * 2);
        assert_eq!(outputs.len(), 12);
        assert_eq!(registry.counter("exec.jobs"), 12);
        assert_eq!(registry.counter("exec.steals"), stats.steals);
        let spans = registry.span("exec.job").expect("job spans recorded");
        assert_eq!(spans.count, 12);
        let waits = registry
            .histogram("exec.queue_wait_seconds")
            .expect("queue waits observed");
        assert_eq!(waits.count, 12);
        assert_eq!(
            registry.gauge("exec.utilization"),
            Some(stats.utilization())
        );
    }

    #[test]
    fn panicking_job_is_contained() {
        let engine = Engine::new(2);
        let (results, stats) = engine.try_run_with_stats((0..8u32).collect(), |_, x| {
            assert!(x != 3, "job three exploded");
            x * 2
        });
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let fail = r.as_ref().expect_err("job 3 panicked");
                assert_eq!(fail.index, 3);
                assert!(fail.message.contains("job three exploded"));
            } else {
                let out = r.as_ref().expect("other jobs complete");
                assert_eq!(out.value, i as u32 * 2);
            }
        }
        // The failure is surfaced in the stats and every job — failed
        // or not — is accounted for.
        assert_eq!(stats.jobs, 8);
        assert_eq!(stats.failed.len(), 1);
        assert_eq!(stats.failed[0].index, 3);
        assert_eq!(stats.per_worker_jobs.iter().sum::<u64>(), 8);
    }

    #[test]
    fn run_with_stats_reraises_after_the_batch_drains() {
        let engine = Engine::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            engine.run((0..4u32).collect(), |_, x| {
                assert!(x != 1, "boom");
                x
            })
        }));
        let payload = caught.expect_err("the contained panic is re-raised");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("job 1 panicked"), "got {message:?}");
    }

    #[test]
    fn non_string_panic_payload_is_rendered() {
        let engine = Engine::new(1);
        let (results, stats) =
            engine.try_run_with_stats(vec![0u32], |_, _| -> u32 { std::panic::panic_any(42i32) });
        let fail = results[0].as_ref().expect_err("job panicked");
        assert_eq!(fail.message, "non-string panic payload");
        assert_eq!(stats.failed.len(), 1);
    }

    #[test]
    fn engine_constructors() {
        assert!(Engine::available().threads() >= 1);
        assert_eq!(Engine::serial().threads(), 1);
        std::env::set_var("COMMORDER_THREADS", "3");
        assert_eq!(Engine::from_env().threads(), 3);
        std::env::set_var("COMMORDER_THREADS", "not-a-number");
        assert_eq!(Engine::from_env().threads(), Engine::available().threads());
        std::env::remove_var("COMMORDER_THREADS");
    }
}
