//! Engine-level determinism: the value stream out of a batch must be a
//! pure function of the input, never of the thread count or schedule.

use commorder_exec::Engine;

/// A deterministic but order-sensitive job: hash of index and item. If
/// results were placed by completion order instead of submission order,
/// any scheduling jitter would scramble the output vector.
fn job(i: usize, x: &u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (i as u64);
    for _ in 0..(x % 7 + 1) * 1_000 {
        h = h.wrapping_mul(0x0000_0100_0000_01b3).rotate_left(17) ^ x;
    }
    h
}

#[test]
fn value_stream_is_identical_across_thread_counts() {
    let items: Vec<u64> = (0..200).map(|i| i * 2_654_435_761).collect();
    let reference = Engine::serial().map(&items, job);
    for threads in [2, 3, 4, 8, 16] {
        let out = Engine::new(threads).map(&items, job);
        assert_eq!(out, reference, "threads = {threads}");
    }
}

#[test]
fn repeated_runs_agree() {
    let items: Vec<u64> = (0..64).collect();
    let engine = Engine::new(4);
    let a = engine.map(&items, job);
    let b = engine.map(&items, job);
    assert_eq!(a, b);
}

#[test]
fn owned_items_and_timing_roundtrip() {
    let engine = Engine::new(4);
    let items: Vec<String> = (0..32).map(|i| format!("job-{i}")).collect();
    let (outputs, stats) = engine.run_with_stats(items, |i, s| format!("{s}#{i}"));
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out.value, format!("job-{i}#{i}"));
        assert!(out.timing.exec_seconds >= 0.0);
    }
    assert_eq!(stats.jobs, 32);
}
