//! Fixture bottom-layer crate with a back-edge and a module cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod a;
pub mod b;
