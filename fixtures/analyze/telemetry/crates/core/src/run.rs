//! Seeded macro call sites: declared, undeclared, mismatched kind,
//! and a non-literal name.

/// Exercises every telemetry-name rule.
pub fn emit(name: &str) {
    let _span = span!("fixture.run");
    counter!("fixture.hits", 1);
    counter!("fixture.missing", 1);
    gauge!("fixture.hits", 2.0);
    observe!(name, 3.0);
}
