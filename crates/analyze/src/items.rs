//! Structural extraction on top of the token stream.
//!
//! No grammar, no AST: the passes only need a few shapes — where
//! `#[cfg(test)]` items begin and end, where `macro_rules!` bodies
//! live, which paths a `use` declaration imports, and which `a::b`
//! chains occur in code. All of them fall out of brace/bracket matching
//! over the non-trivia token sequence.

use crate::lexer::{Token, TokenKind};

/// Indices into `tokens` of the non-trivia tokens, in order.
#[must_use]
pub fn code_indices(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.kind.is_trivia())
        .map(|(i, _)| i)
        .collect()
}

/// `true` when byte offset `pos` falls inside any of `ranges`.
#[must_use]
pub fn in_ranges(pos: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(s, e)| pos >= s && pos < e)
}

fn is_punct(tok: &Token, src: &str, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text(src) == c.to_string().as_str()
}

fn ident_is(tok: &Token, src: &str, word: &str) -> bool {
    tok.kind == TokenKind::Ident && tok.text(src) == word
}

/// Byte ranges covered by `#[cfg(test)]`-gated items (the attribute
/// through the end of the item it applies to). Source inside these
/// ranges is exempt from the call-site rules and excluded from the
/// dependency graphs.
///
/// The trigger is a `test` *identifier token* anywhere inside the
/// attribute's brackets, so `#[cfg(test)]` and `#[cfg(all(test, …))]`
/// match while `#[cfg(feature = "test")]` (a string literal) does not.
#[must_use]
pub fn test_regions(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code = code_indices(tokens);
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        let hash = &tokens[code[i]];
        let bracket = &tokens[code[i + 1]];
        if !(is_punct(hash, src, '#') && is_punct(bracket, src, '[')) {
            i += 1;
            continue;
        }
        // Scan the attribute to its closing bracket, noting `cfg` and
        // `test` identifier tokens.
        let mut depth = 0i64;
        let mut has_cfg = false;
        let mut has_test = false;
        let mut j = i + 1;
        while j < code.len() {
            let t = &tokens[code[j]];
            if is_punct(t, src, '[') {
                depth += 1;
            } else if is_punct(t, src, ']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if ident_is(t, src, "cfg") {
                has_cfg = true;
            } else if ident_is(t, src, "test") {
                has_test = true;
            }
            j += 1;
        }
        if !(has_cfg && has_test) || j >= code.len() {
            i = j.max(i + 1);
            continue;
        }
        // Skip any further attributes, then consume the gated item.
        let mut k = j + 1;
        while k + 1 < code.len()
            && is_punct(&tokens[code[k]], src, '#')
            && is_punct(&tokens[code[k + 1]], src, '[')
        {
            let mut d = 0i64;
            while k < code.len() {
                let t = &tokens[code[k]];
                if is_punct(t, src, '[') {
                    d += 1;
                } else if is_punct(t, src, ']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let end = item_end(src, tokens, &code, k);
        ranges.push((hash.start, end));
        // Resume after the skipped item.
        while i < code.len() && tokens[code[i]].start < end {
            i += 1;
        }
    }
    ranges
}

/// Byte offset of the end of the item starting at code index `from`:
/// either a `;` at brace depth zero (before any brace opens) or the
/// brace that closes the item's block. Falls back to the end of input.
fn item_end(src: &str, tokens: &[Token], code: &[usize], from: usize) -> usize {
    let mut depth = 0i64;
    let mut inner = 0i64; // () and [] nesting, so `[u8; 3]` never ends an item
    let mut seen_brace = false;
    let mut k = from;
    while k < code.len() {
        let t = &tokens[code[k]];
        if is_punct(t, src, '{') {
            depth += 1;
            seen_brace = true;
        } else if is_punct(t, src, '}') {
            depth -= 1;
            if seen_brace && depth == 0 {
                return t.end;
            }
        } else if is_punct(t, src, '(') || is_punct(t, src, '[') {
            inner += 1;
        } else if is_punct(t, src, ')') || is_punct(t, src, ']') {
            inner -= 1;
        } else if is_punct(t, src, ';') && !seen_brace && inner == 0 {
            return t.end;
        }
        k += 1;
    }
    src.len()
}

/// Byte ranges of `macro_rules!` bodies (the outer `{ … }` block).
/// `pub`-item and path-chain scans skip these: macro bodies are
/// templates, not code, and `$crate::…` paths resolve at expansion
/// sites.
#[must_use]
pub fn macro_rules_regions(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code = code_indices(tokens);
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 2 < code.len() {
        if ident_is(&tokens[code[i]], src, "macro_rules")
            && is_punct(&tokens[code[i + 1]], src, '!')
        {
            let end = item_end(src, tokens, &code, i + 2);
            ranges.push((tokens[code[i]].start, end));
            while i < code.len() && tokens[code[i]].start < end {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    ranges
}

/// One path imported by a `use` declaration, fully expanded from
/// grouped trees. `use a::{b::C, d};` yields `[a, b, C]` and `[a, d]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// 1-based column of the `use` keyword.
    pub col: u32,
    /// `true` for `pub use` (re-exports).
    pub is_pub: bool,
    /// Path segments; a trailing glob or `self` leaf is dropped, so a
    /// path may be shorter than written.
    pub segments: Vec<String>,
}

/// Extracts every path imported by `use` declarations outside the
/// given skip ranges (test regions).
#[must_use]
pub fn use_paths(src: &str, tokens: &[Token], skip: &[(usize, usize)]) -> Vec<UsePath> {
    let code = code_indices(tokens);
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let t = &tokens[code[i]];
        if !ident_is(t, src, "use") || in_ranges(t.start, skip) {
            i += 1;
            continue;
        }
        let is_pub = i > 0 && ident_is(&tokens[code[i - 1]], src, "pub");
        let (line, col) = (t.line, t.col);
        let mut j = i + 1;
        let mut paths = Vec::new();
        parse_use_tree(src, tokens, &code, &mut j, Vec::new(), &mut paths);
        for segments in paths {
            if !segments.is_empty() {
                out.push(UsePath {
                    line,
                    col,
                    is_pub,
                    segments,
                });
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// Recursive-descent parse of one use-tree starting at code index `*j`;
/// stops at `;`, `,`, or the group's closing `}`. Appends each complete
/// path (prefix + local segments) to `paths`.
fn parse_use_tree(
    src: &str,
    tokens: &[Token],
    code: &[usize],
    j: &mut usize,
    prefix: Vec<String>,
    paths: &mut Vec<Vec<String>>,
) {
    let mut segments = prefix;
    while *j < code.len() {
        let t = &tokens[code[*j]];
        if t.kind == TokenKind::Ident {
            let word = t.text(src);
            if word == "as" {
                // Alias: skip the binding name; the path itself is done.
                *j += 2;
                continue;
            }
            if word != "self" || segments.is_empty() {
                segments.push(word.to_string());
            }
            *j += 1;
        } else if is_punct(t, src, ':') {
            *j += 1; // both colons of `::` arrive as single puncts
        } else if is_punct(t, src, '*') {
            *j += 1; // glob leaf: keep the prefix as the path
        } else if is_punct(t, src, '{') {
            *j += 1;
            loop {
                parse_use_tree(src, tokens, code, j, segments.clone(), paths);
                if *j >= code.len() {
                    return;
                }
                let t = &tokens[code[*j]];
                if is_punct(t, src, ',') {
                    *j += 1;
                } else if is_punct(t, src, '}') {
                    *j += 1;
                    break;
                } else {
                    // Malformed; bail out of the group.
                    break;
                }
            }
            return; // a group is always the last element of its branch
        } else if is_punct(t, src, ';') {
            *j += 1;
            break;
        } else if is_punct(t, src, ',') || is_punct(t, src, '}') {
            break; // end of this branch inside a group
        } else {
            *j += 1; // attributes or stray tokens: skip defensively
        }
    }
    paths.push(segments);
}

/// An `a::b` chain occurring in code (outside `use` declarations the
/// chain is a path expression or type path). Only the first two
/// segments are recorded — enough to resolve a crate and a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRef {
    /// 1-based line of the first segment.
    pub line: u32,
    /// 1-based column of the first segment.
    pub col: u32,
    /// First path segment.
    pub head: String,
    /// Second path segment, when present.
    pub second: Option<String>,
}

/// Extracts `ident::ident…` chain heads from code tokens, skipping the
/// given ranges (tests, macro bodies), chains preceded by `$` (macro
/// template variables such as `$crate`), and mid-chain segments.
#[must_use]
pub fn path_refs(src: &str, tokens: &[Token], skip: &[(usize, usize)]) -> Vec<PathRef> {
    let code = code_indices(tokens);
    let mut out = Vec::new();
    for (ci, &idx) in code.iter().enumerate() {
        let t = &tokens[idx];
        if t.kind != TokenKind::Ident || in_ranges(t.start, skip) {
            continue;
        }
        if !double_colon_at(src, tokens, &code, ci + 1) {
            continue;
        }
        // Chain start only: not preceded by `::` or `$`.
        if ci >= 2 && double_colon_at(src, tokens, &code, ci - 2) {
            continue;
        }
        if ci >= 1 && is_punct(&tokens[code[ci - 1]], src, '$') {
            continue;
        }
        let second = code
            .get(ci + 3)
            .map(|&k| &tokens[k])
            .filter(|n| n.kind == TokenKind::Ident)
            .map(|n| n.text(src).to_string());
        out.push(PathRef {
            line: t.line,
            col: t.col,
            head: t.text(src).to_string(),
            second,
        });
    }
    out
}

/// `true` when code indices `at` and `at + 1` are two adjacent `:`
/// puncts forming `::`.
fn double_colon_at(src: &str, tokens: &[Token], code: &[usize], at: usize) -> bool {
    let (Some(&a), Some(&b)) = (code.get(at), code.get(at + 1)) else {
        return false;
    };
    is_punct(&tokens[a], src, ':')
        && is_punct(&tokens[b], src, ':')
        && tokens[a].end == tokens[b].start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn paths_of(src: &str) -> Vec<Vec<String>> {
        let tokens = lex(src);
        use_paths(src, &tokens, &[])
            .into_iter()
            .map(|u| u.segments)
            .collect()
    }

    #[test]
    fn simple_and_grouped_use() {
        assert_eq!(paths_of("use a::b::C;"), vec![vec!["a", "b", "C"]]);
        assert_eq!(
            paths_of("use a::{b::C, d};"),
            vec![vec!["a", "b", "C"], vec!["a", "d"]]
        );
        assert_eq!(paths_of("use a::b as x;"), vec![vec!["a", "b"]]);
        assert_eq!(paths_of("use a::b::*;"), vec![vec!["a", "b"]]);
        assert_eq!(
            paths_of("use a::{self, b};"),
            vec![vec!["a"], vec!["a", "b"]]
        );
    }

    #[test]
    fn pub_use_is_flagged() {
        let src = "pub use crate::csr::CsrMatrix;";
        let tokens = lex(src);
        let u = use_paths(src, &tokens, &[]);
        assert!(u[0].is_pub);
        assert_eq!(u[0].segments, vec!["crate", "csr", "CsrMatrix"]);
    }

    #[test]
    fn test_region_covers_mod_tests() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn x() { val.unwrap(); }\n}\nfn after() {}\n";
        let tokens = lex(src);
        let regions = test_regions(src, &tokens);
        assert_eq!(regions.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap_or(0);
        assert!(in_ranges(unwrap_at, &regions));
        let after_at = src.rfind("after").unwrap_or(0);
        assert!(!in_ranges(after_at, &regions));
    }

    #[test]
    fn cfg_feature_test_string_is_not_a_test_region() {
        let src = "#[cfg(feature = \"test\")]\nfn x() {}\n";
        let tokens = lex(src);
        assert!(test_regions(src, &tokens).is_empty());
    }

    #[test]
    fn cfg_all_test_matches() {
        let src = "#[cfg(all(test, feature = \"extra\"))]\nmod t { }\n";
        let tokens = lex(src);
        assert_eq!(test_regions(src, &tokens).len(), 1);
    }

    #[test]
    fn attribute_on_braceless_item() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() {}\n";
        let tokens = lex(src);
        let regions = test_regions(src, &tokens);
        assert_eq!(regions.len(), 1);
        let live_at = src.rfind("live").unwrap_or(0);
        assert!(!in_ranges(live_at, &regions));
    }

    #[test]
    fn macro_rules_body_is_a_region() {
        let src = "macro_rules! m { () => { $crate::x() }; }\nfn live() {}\n";
        let tokens = lex(src);
        let regions = macro_rules_regions(src, &tokens);
        assert_eq!(regions.len(), 1);
        let x_at = src.find("$crate").unwrap_or(0);
        assert!(in_ranges(x_at, &regions));
    }

    #[test]
    fn path_refs_skip_dollar_and_mid_chain() {
        let src = "let v = commorder_sparse::csr::CsrMatrix::identity(4);";
        let tokens = lex(src);
        let refs = path_refs(src, &tokens, &[]);
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].head, "commorder_sparse");
        assert_eq!(refs[0].second.as_deref(), Some("csr"));

        let m = "$crate::obs::emit()";
        let mtok = lex(m);
        assert!(path_refs(m, &mtok, &[]).is_empty());
    }
}
