//! Streamed CSR construction for the million-row corpus tier.
//!
//! The standard corpus builders materialize a `Vec<(u32, u32)>` edge
//! list, expand it into a COO triple array, and convert that to CSR —
//! three full copies of the edge set alive at once. At 131k rows that
//! is noise; at the mega tier (1M–10M rows) it is hundreds of megabytes
//! of transient garbage and the difference between fitting under the CI
//! `ulimit -v` tripwire or not. This module applies the discipline PR 4
//! imposed on the cache simulator to *generation*: the edge set is
//! never stored, only replayed.
//!
//! [`stream_undirected_csr`] makes two passes over a replayable
//! [`EdgeStream`] — pass one counts mirrored degrees, pass two fills a
//! preallocated column array through per-row cursors — then sorts,
//! dedups and compacts each row in place. Peak memory is the finished
//! CSR plus one `u32` per row, independent of how many duplicate edges
//! the generator emits.

use commorder_sparse::{CsrMatrix, SparseError};

use crate::rng::Rng;

/// Domain-separation constant for the relabel shuffle stream, so the
/// scramble table and the edge stream draw from independent sequences
/// and each pass can rebuild either without replaying the other.
const RELABEL_STREAM: u64 = 0x5EED_0FCA_B1E5_0FF5;

/// A replayable source of undirected edges.
///
/// Implementations must be deterministic in `(self, seed)`: two calls
/// to [`EdgeStream::for_each_edge`] with the same seed must visit the
/// exact same edge sequence. This is what lets the builder run two
/// passes without ever materializing the list.
pub trait EdgeStream {
    /// Number of vertices in the generated graph.
    fn n_vertices(&self) -> u32;

    /// Visits every undirected edge `{u, v}` exactly once per call.
    /// Self-loops and duplicates are permitted; the builder drops the
    /// former and collapses the latter.
    fn for_each_edge(&self, seed: u64, visit: &mut dyn FnMut(u32, u32));
}

/// Builds a symmetric pattern CSR matrix from a replayable edge stream
/// without materializing the edge list (see module docs).
///
/// # Errors
///
/// Returns [`SparseError::IndexOutOfBounds`] if the stream emits an
/// endpoint `>= n_vertices`, and [`SparseError::TooLarge`] if the
/// mirrored entry count would overflow `u32` offsets.
pub fn stream_undirected_csr(stream: &dyn EdgeStream, seed: u64) -> Result<CsrMatrix, SparseError> {
    let n = stream.n_vertices() as usize;

    // Pass 1: mirrored degree counts.
    let mut counts = vec![0u32; n];
    let mut bad: Option<u32> = None;
    stream.for_each_edge(seed, &mut |u, v| {
        let (ui, vi) = (u as usize, v as usize);
        if ui >= n || vi >= n {
            bad.get_or_insert(u.max(v));
            return;
        }
        if u != v {
            counts[ui] += 1;
            counts[vi] += 1;
        }
    });
    if let Some(index) = bad {
        return Err(SparseError::IndexOutOfBounds {
            index,
            bound: n as u32,
        });
    }
    let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    if total > u64::from(u32::MAX - 1) {
        return Err(SparseError::TooLarge(format!(
            "streamed graph needs {total} mirrored entries; u32 offsets allow {}",
            u32::MAX - 1
        )));
    }

    // Exclusive prefix sum; `counts` becomes the per-row fill cursor.
    let mut offsets = vec![0u32; n + 1];
    let mut acc = 0u32;
    for (row, c) in counts.iter_mut().enumerate() {
        offsets[row] = acc;
        acc += *c;
        *c = offsets[row];
    }
    offsets[n] = acc;

    // Pass 2: scatter endpoints through the cursors.
    let mut cols = vec![0u32; acc as usize];
    stream.for_each_edge(seed, &mut |u, v| {
        if u != v {
            let (ui, vi) = (u as usize, v as usize);
            cols[counts[ui] as usize] = v;
            counts[ui] += 1;
            cols[counts[vi] as usize] = u;
            counts[vi] += 1;
        }
    });

    // Per-row sort + dedup, compacting in place. The write cursor never
    // passes the read cursor: every prior row shrank or stayed put.
    let mut write = 0usize;
    for row in 0..n {
        let (start, end) = (offsets[row] as usize, offsets[row + 1] as usize);
        cols[start..end].sort_unstable();
        offsets[row] = write as u32;
        let mut prev = u32::MAX;
        for read in start..end {
            let c = cols[read];
            if c != prev {
                cols[write] = c;
                write += 1;
                prev = c;
            }
        }
    }
    offsets[n] = write as u32;
    cols.truncate(write);
    cols.shrink_to_fit();
    drop(counts);

    let values = vec![1.0f32; write];
    CsrMatrix::new(n as u32, n as u32, offsets, cols, values)
}

/// Builds the seed-keyed relabel table shared by both passes: an
/// identity permutation shuffled by a domain-separated RNG stream.
fn relabel_table(n: u32, seed: u64) -> Vec<u32> {
    let mut table: Vec<u32> = (0..n).collect();
    Rng::new(seed ^ RELABEL_STREAM).shuffle(&mut table);
    table
}

/// R-MAT edge stream: the same per-edge quadrant descent as
/// [`crate::generators::Rmat`], replayable because each pass re-seeds
/// the generator instead of storing edges. IDs are always scrambled
/// (through a table drawn from an independent RNG stream) so the
/// published order carries no quadrant locality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamedRmat {
    /// log2 of the vertex count (`n = 2^scale`).
    pub scale: u32,
    /// Target average degree (each vertex gets `avg_degree / 2` emitted
    /// edges before mirroring and dedup).
    pub avg_degree: f64,
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl StreamedRmat {
    /// Graph500-style defaults at a given scale and degree.
    #[must_use]
    pub fn graph500(scale: u32, avg_degree: f64) -> Self {
        StreamedRmat {
            scale,
            avg_degree,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

impl EdgeStream for StreamedRmat {
    fn n_vertices(&self) -> u32 {
        1u32 << self.scale
    }

    fn for_each_edge(&self, seed: u64, visit: &mut dyn FnMut(u32, u32)) {
        let n = self.n_vertices();
        let m = (f64::from(n) * self.avg_degree / 2.0).round() as u64;
        let relabel = relabel_table(n, seed);
        let mut rng = Rng::new(seed);
        for _ in 0..m {
            let (mut u, mut v) = (0u32, 0u32);
            for _ in 0..self.scale {
                u <<= 1;
                v <<= 1;
                let x = rng.next_f64();
                if x < self.a {
                    // top-left: both bits stay 0
                } else if x < self.a + self.b {
                    v |= 1;
                } else if x < self.a + self.b + self.c {
                    u |= 1;
                } else {
                    u |= 1;
                    v |= 1;
                }
            }
            visit(relabel[u as usize], relabel[v as usize]);
        }
    }
}

/// Planted-community edge stream: `n` vertices split into equal-width
/// communities; each vertex draws `intra_degree / 2` partners from its
/// own community plus a cross-community partner with probability
/// `mixing`. Per-vertex RNG streams keep the sequence replayable and
/// independent of visit order. IDs are scrambled like [`StreamedRmat`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamedCommunity {
    /// Vertex count.
    pub n: u32,
    /// Community count (must divide into `n` reasonably evenly).
    pub communities: u32,
    /// Target intra-community degree per vertex.
    pub intra_degree: f64,
    /// Probability a vertex also draws one cross-community edge.
    pub mixing: f64,
}

impl EdgeStream for StreamedCommunity {
    fn n_vertices(&self) -> u32 {
        self.n
    }

    fn for_each_edge(&self, seed: u64, visit: &mut dyn FnMut(u32, u32)) {
        let width = (self.n / self.communities).max(1);
        let per_vertex = (self.intra_degree / 2.0).round() as u32;
        let relabel = relabel_table(self.n, seed);
        for v in 0..self.n {
            let mut rng = Rng::new(seed ^ (u64::from(v).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let base = (v / width) * width;
            let span = width.min(self.n - base);
            for _ in 0..per_vertex {
                let u = base + rng.gen_u32(span);
                visit(relabel[v as usize], relabel[u as usize]);
            }
            if rng.next_f64() < self.mixing {
                let u = rng.gen_u32(self.n);
                visit(relabel[v as usize], relabel[u as usize]);
            }
        }
    }
}

/// K-mer chain edge stream: `n` vertices in chains, each chain a path
/// with occasional short-range branch edges. Chains never connect to
/// each other, so the graph decomposes into islands — the regime where
/// connectivity-sharded community detection parallelizes with zero
/// output drift.
///
/// Chain lengths can be heterogeneous, mirroring real assembly graphs
/// (a few long contigs among many short fragments): the first
/// `long_vertices` ids are laid out as chains of `chain_len`, the rest
/// as chains of `short_len`. Heterogeneity is also what gives sharded
/// detection its work advantage — a short island quiesces in few
/// passes, while the serial global sweep keeps walking *every* vertex
/// until the longest chain converges. With `short_len == 0` all chains
/// are `chain_len` long (uniform layout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamedKmerChain {
    /// Vertex count.
    pub n: u32,
    /// Path length of chains in the long region (the last chain of a
    /// region may be shorter).
    pub chain_len: u32,
    /// Path length of chains in the short region; `0` disables the
    /// split and lays the whole range out in `chain_len` chains.
    pub short_len: u32,
    /// Vertices occupied by long chains (ignored when `short_len == 0`).
    pub long_vertices: u32,
    /// Probability a vertex also branches to another vertex in its own
    /// chain.
    pub branch_p: f64,
}

impl StreamedKmerChain {
    /// Island base and span for vertex `v` — O(1), so the edge stream
    /// stays one pass with no per-chain state.
    fn island_of(&self, v: u32) -> (u32, u32) {
        let long = self.chain_len.max(2);
        if self.short_len == 0 || v < self.long_vertices.min(self.n) {
            let bound = if self.short_len == 0 {
                self.n
            } else {
                self.long_vertices.min(self.n)
            };
            let base = (v / long) * long;
            (base, long.min(bound - base))
        } else {
            let short = self.short_len.max(2);
            let start = self.long_vertices.min(self.n);
            let base = start + ((v - start) / short) * short;
            (base, short.min(self.n - base))
        }
    }
}

impl EdgeStream for StreamedKmerChain {
    fn n_vertices(&self) -> u32 {
        self.n
    }

    fn for_each_edge(&self, seed: u64, visit: &mut dyn FnMut(u32, u32)) {
        for v in 0..self.n {
            let (base, span) = self.island_of(v);
            if v + 1 < base + span {
                visit(v, v + 1);
            }
            let mut rng = Rng::new(seed ^ (u64::from(v).wrapping_mul(0xD134_2543_DE82_EF95)));
            if span > 2 && rng.next_f64() < self.branch_p {
                visit(v, base + rng.gen_u32(span));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;

    #[test]
    fn streamed_rmat_is_well_formed_and_deterministic() {
        let cfg = StreamedRmat::graph500(10, 6.0);
        let a = stream_undirected_csr(&cfg, 7).unwrap();
        let b = stream_undirected_csr(&cfg, 7).unwrap();
        assert_well_formed(&a);
        assert_eq!(a, b);
        assert_ne!(a, stream_undirected_csr(&cfg, 8).unwrap());
        assert_eq!(a.n_rows(), 1024);
        assert!(a.is_symmetric());
    }

    #[test]
    fn streamed_rmat_matches_materialized_shape() {
        // The streamed builder must agree with the eager `undirected_csr`
        // path when fed the identical edge sequence.
        let cfg = StreamedRmat::graph500(9, 4.0);
        let mut edges = Vec::new();
        cfg.for_each_edge(3, &mut |u, v| edges.push((u, v)));
        let eager = crate::generators::undirected_csr(cfg.n_vertices(), &edges).unwrap();
        let streamed = stream_undirected_csr(&cfg, 3).unwrap();
        assert_eq!(eager, streamed);
    }

    #[test]
    fn streamed_community_has_block_structure() {
        let cfg = StreamedCommunity {
            n: 2048,
            communities: 16,
            intra_degree: 8.0,
            mixing: 0.05,
        };
        let g = stream_undirected_csr(&cfg, 11).unwrap();
        assert_well_formed(&g);
        assert!(g.is_symmetric());
        // Mean degree should be near intra_degree (mirrored halves).
        let mean = g.nnz() as f64 / f64::from(g.n_rows());
        assert!((4.0..=12.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn streamed_kmer_decomposes_into_chain_islands() {
        let cfg = StreamedKmerChain {
            n: 4096,
            chain_len: 64,
            short_len: 0,
            long_vertices: 0,
            branch_p: 0.1,
        };
        let g = stream_undirected_csr(&cfg, 5).unwrap();
        assert_well_formed(&g);
        let (_, islands) = commorder_sparse::ops::connected_components(&g).unwrap();
        assert_eq!(islands, 4096 / 64);
    }

    #[test]
    fn streamed_kmer_chain_splits_long_and_short_regions() {
        let cfg = StreamedKmerChain {
            n: 4096,
            chain_len: 256,
            short_len: 32,
            long_vertices: 1024,
            branch_p: 0.1,
        };
        let g = stream_undirected_csr(&cfg, 5).unwrap();
        assert_well_formed(&g);
        let (_, islands) = commorder_sparse::ops::connected_components(&g).unwrap();
        // 4 long chains of 256 plus 96 short chains of 32.
        assert_eq!(islands, 1024 / 256 + (4096 - 1024) / 32);
    }

    #[test]
    fn rejects_out_of_bounds_endpoints() {
        struct Bad;
        impl EdgeStream for Bad {
            fn n_vertices(&self) -> u32 {
                4
            }
            fn for_each_edge(&self, _seed: u64, visit: &mut dyn FnMut(u32, u32)) {
                visit(1, 9);
            }
        }
        assert!(matches!(
            stream_undirected_csr(&Bad, 0),
            Err(SparseError::IndexOutOfBounds { index: 9, bound: 4 })
        ));
    }
}
