//! Seeded macro call sites: declared, undeclared, mismatched kind,
//! a non-literal name, and a unitless histogram.

/// Exercises every telemetry-name rule.
pub fn emit(name: &str) {
    let _span = span!("fixture.run");
    counter!("fixture.hits", 1);
    counter!("fixture.missing", 1);
    gauge!("fixture.hits", 2.0);
    observe!(name, 3.0);
    observe!("fixture.lat", 4.0);
}
