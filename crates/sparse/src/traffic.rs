//! The paper's hardware-limit accounting (§IV-B): kernel identities,
//! compulsory DRAM traffic, and arithmetic intensity.
//!
//! > "The minimum DRAM traffic (or compulsory traffic) for the SpMV kernel
//! > is achieved when the last level cache only incurs compulsory cache
//! > misses. Therefore, assuming 4 bytes for matrix values and the CSR
//! > coordinates and an |N| x |N| sparse matrix with |NZ| non-zeros, the
//! > compulsory traffic for SpMV is (2*|N|*4B) + ((|N|+1+|NZ|+|NZ|)*4B)."
//!
//! Every figure in the paper normalizes measured DRAM traffic to the value
//! computed here; every run time is normalized to
//! `compulsory_bytes / measured_bandwidth` (see `commorder-gpumodel`).

use crate::{CsrMatrix, ELEM_BYTES};

/// The sparse kernels evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// SpMV with the matrix in CSR format (Algorithm 1; Figs. 2–8, Tables
    /// II/III).
    SpmvCsr,
    /// SpMV with the matrix in COO format (Table IV).
    SpmvCoo,
    /// SpMM: sparse `|N| x |N|` matrix times dense `|N| x k` matrix in CSR
    /// format (Table IV uses `k = 4` and `k = 256`).
    SpmmCsr {
        /// Number of dense right-hand-side columns.
        k: u32,
    },
    /// Column-tiled SpMV (the tiling optimization of the paper's §VII
    /// related work, \[21\]/\[38\]/\[40\]/\[43\]): the matrix is split into
    /// vertical tiles of `tile_cols` columns, each stored with its own
    /// row-offsets array, so the irregular `X` accesses are bounded to
    /// one tile's range at a time. Costs: per-tile offset arrays and
    /// re-walking `Y` every tile.
    SpmvCsrTiled {
        /// Columns per tile.
        tile_cols: u32,
    },
    /// Propagation-blocking SpMV (the blocking optimization of the
    /// paper's §VII related work, \[7\]/\[11\]/\[20\]/\[26\]): phase 1 streams
    /// the matrix in CSC order (so `X` is read sequentially) and appends
    /// `(row, partial)` pairs into `bins` bins by destination-row range;
    /// phase 2 drains each bin, accumulating into a `Y` range that fits
    /// in cache. Trades 4 extra streamed elements per non-zero for fully
    /// regular access.
    SpmvBlocked {
        /// Number of destination-row bins.
        bins: u32,
    },
}

impl Kernel {
    /// Number of column tiles a tiled kernel uses on an `n`-column matrix
    /// (1 for untiled kernels).
    #[must_use]
    pub fn tiles(&self, n: u64) -> u64 {
        match *self {
            Kernel::SpmvCsrTiled { tile_cols } => n.div_ceil(u64::from(tile_cols).max(1)),
            _ => 1,
        }
    }
}

impl Kernel {
    /// Short display name matching the paper's table headers.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Kernel::SpmvCsr => "SpMV-CSR".to_string(),
            Kernel::SpmvCoo => "SpMV-COO".to_string(),
            Kernel::SpmmCsr { k } => format!("SpMM-CSR-{k}"),
            Kernel::SpmvCsrTiled { tile_cols } => format!("SpMV-CSR-T{tile_cols}"),
            Kernel::SpmvBlocked { bins } => format!("SpMV-PB{bins}"),
        }
    }

    /// Compulsory DRAM traffic in bytes for an `n x n` matrix with `nnz`
    /// stored entries (§IV-B, extended per-kernel as Table IV requires:
    /// "the compulsory traffic is updated according to the kernel").
    ///
    /// * CSR SpMV: `X` + `Y` vectors (`2n`), `rowOffsets` (`n+1`),
    ///   `coords` + `values` (`2·nnz`).
    /// * COO SpMV: `X` + `Y` (`2n`), row + col + value triples (`3·nnz`).
    /// * CSR SpMM-k: dense input `B` and output `C` (`2·n·k`),
    ///   `rowOffsets` (`n+1`), `coords` + `values` (`2·nnz`).
    /// * Tiled SpMV: as CSR SpMV, but each of the `t` tiles carries its
    ///   own offsets array (`t·(n+1)`) — tiling's unavoidable metadata
    ///   cost even at perfect locality.
    /// * Blocked SpMV: phase 1 reads the CSC arrays (`(n+1) + 2·nnz`)
    ///   plus streaming `X` (`n`) and writes `2·nnz` bin elements;
    ///   phase 2 reads the `2·nnz` bin elements back and writes `Y`
    ///   (`n`) — blocking's 4·nnz streamed-element toll.
    #[must_use]
    pub fn compulsory_bytes(&self, n: u64, nnz: u64) -> u64 {
        match *self {
            Kernel::SpmvCsr => (2 * n + (n + 1) + 2 * nnz) * ELEM_BYTES,
            Kernel::SpmvCoo => (2 * n + 3 * nnz) * ELEM_BYTES,
            Kernel::SpmmCsr { k } => (2 * n * u64::from(k) + (n + 1) + 2 * nnz) * ELEM_BYTES,
            Kernel::SpmvCsrTiled { .. } => (2 * n + self.tiles(n) * (n + 1) + 2 * nnz) * ELEM_BYTES,
            Kernel::SpmvBlocked { .. } => (2 * n + (n + 1) + 2 * nnz + 4 * nnz) * ELEM_BYTES,
        }
    }

    /// Compulsory traffic for a concrete matrix.
    #[must_use]
    pub fn compulsory_bytes_for(&self, a: &CsrMatrix) -> u64 {
        self.compulsory_bytes(u64::from(a.n_rows()), a.nnz() as u64)
    }

    /// Floating-point operations performed (one multiply + one add per
    /// stored entry, per dense column).
    #[must_use]
    pub fn flops(&self, nnz: u64) -> u64 {
        match *self {
            Kernel::SpmvCsr
            | Kernel::SpmvCoo
            | Kernel::SpmvCsrTiled { .. }
            | Kernel::SpmvBlocked { .. } => 2 * nnz,
            Kernel::SpmmCsr { k } => 2 * nnz * u64::from(k),
        }
    }

    /// Upper bound on arithmetic intensity (FLOP per DRAM byte) at
    /// compulsory traffic. For SpMV this tends to the paper's 0.25
    /// theoretical bound as `nnz >> n`.
    #[must_use]
    pub fn peak_arithmetic_intensity(&self, n: u64, nnz: u64) -> f64 {
        self.flops(nnz) as f64 / self.compulsory_bytes(n, nnz) as f64
    }
}

/// All kernel configurations evaluated in the paper, in presentation order.
#[must_use]
pub fn paper_kernels() -> Vec<Kernel> {
    vec![
        Kernel::SpmvCsr,
        Kernel::SpmvCoo,
        Kernel::SpmmCsr { k: 4 },
        Kernel::SpmmCsr { k: 256 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_csr_formula_matches_paper() {
        // (2*N*4) + ((N+1+NZ+NZ)*4)
        let n = 1000u64;
        let nnz = 5000u64;
        assert_eq!(
            Kernel::SpmvCsr.compulsory_bytes(n, nnz),
            2 * n * 4 + (n + 1 + 2 * nnz) * 4
        );
    }

    #[test]
    fn coo_traffic_exceeds_csr_for_same_matrix() {
        // COO stores an explicit row index per nnz; once nnz > n+1 the COO
        // compulsory traffic is strictly larger.
        let (n, nnz) = (100u64, 500u64);
        assert!(
            Kernel::SpmvCoo.compulsory_bytes(n, nnz) > Kernel::SpmvCsr.compulsory_bytes(n, nnz)
        );
    }

    #[test]
    fn spmm_scales_vector_traffic_by_k() {
        let (n, nnz) = (100u64, 500u64);
        let t4 = Kernel::SpmmCsr { k: 4 }.compulsory_bytes(n, nnz);
        let t256 = Kernel::SpmmCsr { k: 256 }.compulsory_bytes(n, nnz);
        assert_eq!(t256 - t4, 2 * n * (256 - 4) * 4);
    }

    #[test]
    fn spmm_k1_equals_spmv_csr_with_k_dense_vectors() {
        let (n, nnz) = (100u64, 500u64);
        // k = 1 SpMM moves exactly what SpMV moves.
        assert_eq!(
            Kernel::SpmmCsr { k: 1 }.compulsory_bytes(n, nnz),
            Kernel::SpmvCsr.compulsory_bytes(n, nnz)
        );
    }

    #[test]
    fn arithmetic_intensity_approaches_quarter_flop_per_byte() {
        // nnz >> n: traffic per nnz -> 8B, flops per nnz = 2 => 0.25.
        let ai = Kernel::SpmvCsr.peak_arithmetic_intensity(1000, 1_000_000);
        assert!((ai - 0.25).abs() < 0.01, "ai = {ai}");
    }

    #[test]
    fn spmm_intensity_grows_with_k() {
        let ai4 = Kernel::SpmmCsr { k: 4 }.peak_arithmetic_intensity(1000, 100_000);
        let ai256 = Kernel::SpmmCsr { k: 256 }.peak_arithmetic_intensity(1000, 100_000);
        assert!(ai256 > ai4);
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Kernel::SpmvCsr.name(), "SpMV-CSR");
        assert_eq!(Kernel::SpmvCoo.name(), "SpMV-COO");
        assert_eq!(Kernel::SpmmCsr { k: 256 }.name(), "SpMM-CSR-256");
        assert_eq!(paper_kernels().len(), 4);
    }

    #[test]
    fn compulsory_bytes_for_uses_matrix_shape() {
        let m = CsrMatrix::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]).unwrap();
        assert_eq!(
            Kernel::SpmvCsr.compulsory_bytes_for(&m),
            Kernel::SpmvCsr.compulsory_bytes(2, 2)
        );
    }
}
