//! Community detection by incremental modularity-maximizing aggregation —
//! the algorithmic core of RABBIT (Arai et al., IPDPS'16; Newman–Girvan
//! modularity \[34\]).
//!
//! Vertices are visited in increasing-degree order; each vertex merges
//! into the neighbouring aggregate with the largest positive modularity
//! gain. Merges are recorded in a [`Dendrogram`], so the hierarchy of
//! communities ("people organized into cliques ... and, within each
//! group, sub-groups", §V-A) is preserved: a DFS of the dendrogram yields
//! an ordering in which every community *and every sub-community* is a
//! contiguous ID range. Additional sweeps over the surviving aggregates
//! (Louvain-style) continue until no merge improves modularity.

use std::collections::HashMap;

use commorder_obs as obs;
use commorder_sparse::{ops, CsrMatrix, SparseError};

const NONE: u32 = u32::MAX;

/// Merge forest produced by community detection.
///
/// Every original vertex is a node; a merge of `v` into `u` makes `v` a
/// child of `u`. The roots that survive are the detected top-level
/// communities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dendrogram {
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    roots: Vec<u32>,
}

impl Dendrogram {
    /// Number of original vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when there are no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The surviving top-level aggregates (one per detected community),
    /// in ascending vertex-ID order.
    #[must_use]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Number of detected communities.
    #[must_use]
    pub fn community_count(&self) -> usize {
        self.roots.len()
    }

    /// Community ID per vertex, compacted to `0..community_count()` in
    /// root order.
    #[must_use]
    pub fn assignment(&self) -> Vec<u32> {
        let mut comm = vec![NONE; self.parent.len()];
        for (cid, &root) in self.roots.iter().enumerate() {
            // Iterative subtree walk.
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                comm[v as usize] = cid as u32;
                stack.extend_from_slice(&self.children[v as usize]);
            }
        }
        debug_assert!(comm.iter().all(|&c| c != NONE));
        comm
    }

    /// Depth-first traversal: `order[k]` is the original vertex that
    /// receives new ID `k`. Each community — and, recursively, each
    /// sub-community absorbed during the hierarchy — occupies a
    /// contiguous range of new IDs.
    #[must_use]
    pub fn dfs_order(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.parent.len());
        for &root in &self.roots {
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                order.push(v);
                // Push children reversed so the earliest merge is visited
                // first (closest community member, deepest hierarchy).
                stack.extend(self.children[v as usize].iter().rev().copied());
            }
        }
        debug_assert_eq!(order.len(), self.parent.len());
        order
    }

    /// Depth of every vertex in the merge forest (roots are depth 0) —
    /// the paper's "hierarchical community" nesting level per vertex.
    #[must_use]
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.parent.len()];
        for &root in &self.roots {
            let mut stack = vec![(root, 0u32)];
            while let Some((v, d)) = stack.pop() {
                depth[v as usize] = d;
                stack.extend(
                    self.children[v as usize]
                        .iter()
                        .map(|&child| (child, d + 1)),
                );
            }
        }
        depth
    }

    /// Maximum nesting depth of the hierarchy (0 for singleton forests).
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Sizes of the detected communities (vertex counts), in root order.
    #[must_use]
    pub fn community_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.roots.len()];
        for &c in &self.assignment() {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Configuration for [`detect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionConfig {
    /// Resolution parameter γ of the modularity gain (1.0 = classic
    /// Newman–Girvan; larger values favour smaller communities).
    pub resolution: f64,
    /// Maximum number of aggregation sweeps (the first sweep is the
    /// RABBIT incremental pass; further sweeps merge surviving
    /// aggregates Louvain-style until quiescent).
    pub max_passes: u32,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            resolution: 1.0,
            max_passes: 16,
        }
    }
}

/// Runs community detection on the undirected view of `a`.
///
/// Self-loops are ignored; directed inputs are symmetrized. Edge values
/// are used as weights (pattern matrices weigh every edge 1.0).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
pub fn detect(a: &CsrMatrix, config: DetectionConfig) -> Result<Dendrogram, SparseError> {
    let _span = obs::span!("community.detect");
    let sym = ops::remove_self_loops(&ops::symmetrize(a)?);
    let n = sym.n_rows() as usize;
    let mut parent = vec![NONE; n];
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    if n == 0 {
        return Ok(Dendrogram {
            parent,
            children,
            roots: Vec::new(),
        });
    }

    // Aggregate state. `strength[v]` is the summed weight of edges
    // incident to aggregate v; `total_m` the summed weight of all edges
    // (each undirected edge once).
    let mut strength: Vec<f64> = (0..sym.n_rows())
        .map(|v| {
            let (_, vals) = sym.row(v);
            vals.iter().map(|&w| f64::from(w)).sum::<f64>()
        })
        .collect();
    let total_m: f64 = strength.iter().sum::<f64>() / 2.0;
    if total_m == 0.0 {
        // Edgeless graph: every vertex is its own community.
        return Ok(Dendrogram {
            parent,
            children,
            roots: (0..n as u32).collect(),
        });
    }

    // Lazily-consolidated adjacency per live aggregate.
    let mut adj: Vec<HashMap<u32, f64>> = (0..sym.n_rows())
        .map(|v| {
            let (cols, vals) = sym.row(v);
            cols.iter()
                .zip(vals)
                .map(|(&c, &w)| (c, f64::from(w)))
                .collect()
        })
        .collect();

    // Union-find "top" pointers: maps any vertex to its live aggregate.
    let mut top: Vec<u32> = (0..n as u32).collect();
    fn find(top: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while top[root as usize] != root {
            root = top[root as usize];
        }
        // Path compression.
        let mut cur = v;
        while top[cur as usize] != root {
            let next = top[cur as usize];
            top[cur as usize] = root;
            cur = next;
        }
        root
    }

    let mut alive: Vec<u32> = (0..n as u32).collect();
    let two_m_sq = 2.0 * total_m * total_m;
    for pass in 0..config.max_passes {
        let _pass_span = obs::span!("community.pass", "pass={pass}");
        let mut pass_merges = 0u64;
        // Sweep live aggregates in increasing-strength order (degree order
        // on the first pass — the RABBIT visit order).
        alive.sort_by(|&x, &y| {
            strength[x as usize]
                .partial_cmp(&strength[y as usize])
                .expect("strengths are finite")
                .then(x.cmp(&y))
        });
        let mut merged_any = false;
        let mut next_alive: Vec<u32> = Vec::with_capacity(alive.len());
        for &v in &alive {
            if top[v as usize] != v {
                continue; // absorbed earlier this pass
            }
            // Consolidate v's adjacency through the union-find.
            let old = std::mem::take(&mut adj[v as usize]);
            let mut merged: HashMap<u32, f64> = HashMap::with_capacity(old.len());
            for (nbr, w) in old {
                let r = find(&mut top, nbr);
                if r != v {
                    *merged.entry(r).or_insert(0.0) += w;
                }
            }
            adj[v as usize] = merged;
            // Best-gain neighbour. Ties break to the smallest vertex ID so
            // the result is independent of HashMap iteration order.
            let mut best: Option<(u32, f64)> = None;
            for (&u, &w_vu) in &adj[v as usize] {
                let gain = w_vu / total_m
                    - config.resolution * strength[v as usize] * strength[u as usize] / two_m_sq;
                let better = match best {
                    None => gain > 0.0,
                    Some((bu, bg)) => gain > bg || (gain == bg && u < bu),
                };
                if gain > 0.0 && better {
                    best = Some((u, gain));
                }
            }
            match best {
                Some((u, _)) => {
                    // Merge v into u.
                    let v_adj = std::mem::take(&mut adj[v as usize]);
                    for (nbr, w) in v_adj {
                        if nbr != u {
                            *adj[u as usize].entry(nbr).or_insert(0.0) += w;
                        }
                    }
                    adj[u as usize].remove(&v);
                    strength[u as usize] += strength[v as usize];
                    top[v as usize] = u;
                    parent[v as usize] = u;
                    children[u as usize].push(v);
                    merged_any = true;
                    pass_merges += 1;
                }
                None => next_alive.push(v),
            }
        }
        alive = next_alive;
        obs::counter!("reorder.community.passes", 1);
        obs::counter!("reorder.community.merges", pass_merges);
        if !merged_any {
            break;
        }
    }

    let mut roots: Vec<u32> = (0..n as u32)
        .filter(|&v| parent[v as usize] == NONE)
        .collect();
    roots.sort_unstable();
    Ok(Dendrogram {
        parent,
        children,
        roots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::CooMatrix;
    use commorder_synth::generators::PlantedPartition;

    /// Three 5-cliques linked in a chain by single inter-community edges —
    /// a scaled-up Fig.-1-style example with unambiguous communities.
    pub(crate) fn three_cliques() -> CsrMatrix {
        let mut entries = Vec::new();
        for block in 0..3u32 {
            let base = block * 5;
            for i in 0..5 {
                for j in (i + 1)..5 {
                    entries.push((base + i, base + j, 1.0));
                    entries.push((base + j, base + i, 1.0));
                }
            }
        }
        for &(u, v) in &[(4u32, 5u32), (9, 10)] {
            entries.push((u, v, 1.0));
            entries.push((v, u, 1.0));
        }
        CsrMatrix::try_from(CooMatrix::from_entries(15, 15, entries).unwrap()).unwrap()
    }

    #[test]
    fn detects_the_three_cliques() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let comm = d.assignment();
        for block in 0..3u32 {
            let base = (block * 5) as usize;
            for i in 1..5 {
                assert_eq!(comm[base], comm[base + i], "clique {block} split apart");
            }
        }
        assert_eq!(d.community_count(), 3, "cliques collapsed or fragmented");
    }

    #[test]
    fn dfs_order_makes_communities_contiguous() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let comm = d.assignment();
        let order = d.dfs_order();
        // Scanning the order, each community id must appear as one run.
        let mut seen = std::collections::HashSet::new();
        let mut prev = NONE;
        for &v in &order {
            let c = comm[v as usize];
            if c != prev {
                assert!(seen.insert(c), "community {c} split into multiple runs");
                prev = c;
            }
        }
    }

    #[test]
    fn dfs_order_is_a_permutation() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let mut order = d.dfs_order();
        order.sort_unstable();
        assert_eq!(order, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn planted_partition_recovers_most_blocks() {
        let g = PlantedPartition::uniform(800, 16, 10.0, 0.02)
            .generate(21)
            .unwrap();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let comm = d.assignment();
        // Measure agreement: fraction of planted-block pairs of adjacent
        // vertices that land in the same detected community.
        let block = |v: u32| v / 50;
        let mut same = 0usize;
        let mut total = 0usize;
        for (r, c, _) in g.iter() {
            if block(r) == block(c) {
                total += 1;
                if comm[r as usize] == comm[c as usize] {
                    same += 1;
                }
            }
        }
        let agree = same as f64 / total as f64;
        assert!(agree > 0.8, "intra-block agreement = {agree}");
    }

    #[test]
    fn edgeless_graph_yields_singletons() {
        let g = CsrMatrix::empty(5);
        let d = detect(&g, DetectionConfig::default()).unwrap();
        assert_eq!(d.community_count(), 5);
        assert_eq!(d.assignment(), vec![0, 1, 2, 3, 4]);
        assert_eq!(d.community_sizes(), vec![1; 5]);
    }

    #[test]
    fn empty_graph() {
        let d = detect(&CsrMatrix::empty(0), DetectionConfig::default()).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.community_count(), 0);
        assert!(d.dfs_order().is_empty());
    }

    #[test]
    fn higher_resolution_yields_more_communities() {
        let g = PlantedPartition::uniform(600, 12, 8.0, 0.1)
            .generate(22)
            .unwrap();
        let coarse = detect(
            &g,
            DetectionConfig {
                resolution: 0.5,
                max_passes: 16,
            },
        )
        .unwrap();
        let fine = detect(
            &g,
            DetectionConfig {
                resolution: 4.0,
                max_passes: 16,
            },
        )
        .unwrap();
        assert!(
            fine.community_count() >= coarse.community_count(),
            "fine {} vs coarse {}",
            fine.community_count(),
            coarse.community_count()
        );
    }

    #[test]
    fn depths_reflect_merge_nesting() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let depths = d.depths();
        // Roots are depth 0; every clique has at least one nested merge.
        for &root in d.roots() {
            assert_eq!(depths[root as usize], 0);
        }
        assert!(d.max_depth() >= 1, "cliques must nest at least one level");
        assert!(d.max_depth() < 15, "depth bounded by n");
        // Exactly one depth-0 vertex per community.
        let zero_count = depths.iter().filter(|&&x| x == 0).count();
        assert_eq!(zero_count, d.community_count());
    }

    #[test]
    fn community_sizes_sum_to_n() {
        let g = three_cliques();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let total: u32 = d.community_sizes().iter().sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn directed_input_is_symmetrized() {
        // Directed triangle: 0->1->2->0.
        let g = CsrMatrix::try_from(
            CooMatrix::from_entries(3, 3, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap(),
        )
        .unwrap();
        let d = detect(&g, DetectionConfig::default()).unwrap();
        let comm = d.assignment();
        assert_eq!(comm[0], comm[1]);
        assert_eq!(comm[1], comm[2]);
    }
}
