//! Findings and reports produced by the analysis passes.
//!
//! The JSON rendering is the contract checked by `commorder-check`'s
//! `CHK1101` validator and compared byte-for-byte against the golden
//! fixtures, so its field order, escaping, and layout are stable.

use std::fmt::Write as _;

use crate::model::{CallGraphReport, EffectsReport};

/// How bad a finding is. Errors fail the lint gate; warnings do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; reported but does not fail the gate.
    Warning,
    /// Policy violation; fails the gate.
    Error,
}

impl Severity {
    /// The lowercase JSON/text label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analysis finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable `XT` code from [`crate::codes`].
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line. File-scoped findings use line 1.
    pub line: u32,
    /// 1-based byte column of the anchor token's first byte.
    pub col_start: u32,
    /// 1-based byte column one past the anchor token on its first
    /// line; equals `col_start` for file-scoped findings.
    pub col_end: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// A finding scoped to a whole file rather than a token.
    #[must_use]
    pub fn file_scoped(
        code: &'static str,
        severity: Severity,
        file: &str,
        message: String,
    ) -> Self {
        Finding {
            code,
            severity,
            file: file.to_string(),
            line: 1,
            col_start: 1,
            col_end: 1,
            message,
        }
    }
}

/// An ordered collection of findings with stable rendering.
#[derive(Debug, Default, Clone)]
pub struct AnalysisReport {
    /// The findings, sorted by [`AnalysisReport::finish`].
    pub findings: Vec<Finding>,
    /// The call graph and seed/reachability sets; `None` renders as an
    /// empty graph so the JSON schema never changes shape.
    pub callgraph: Option<CallGraphReport>,
    /// The inferred effect lattice; `None` renders as an empty table
    /// so the JSON schema never changes shape.
    pub effects: Option<EffectsReport>,
}

impl AnalysisReport {
    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// Sorts findings into the canonical report order:
    /// (file, line, column, code, message).
    pub fn finish(&mut self) {
        self.findings.sort_by(|a, b| {
            (
                a.file.as_str(),
                a.line,
                a.col_start,
                a.code,
                a.message.as_str(),
            )
                .cmp(&(
                    b.file.as_str(),
                    b.line,
                    b.col_start,
                    b.code,
                    b.message.as_str(),
                ))
        });
    }

    /// Renders the human-readable report, one finding per line plus a
    /// summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}[{}] {}:{}:{}-{}: {}",
                f.severity.label(),
                f.code,
                f.file,
                f.line,
                f.col_start,
                f.col_end,
                f.message
            );
        }
        let _ = writeln!(
            out,
            "analyze: {} error(s), {} warning(s)",
            self.errors(),
            self.warnings()
        );
        out
    }

    /// Renders the machine-readable report: one finding per line so
    /// golden diffs stay reviewable, stable field order, trailing
    /// newline.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"errors\": {},", self.errors());
        let _ = writeln!(out, "  \"warnings\": {},", self.warnings());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"col_start\":{},\"col_end\":{},\"message\":\"{}\"}}",
                f.code,
                f.severity.label(),
                escape_json(&f.file),
                f.line,
                f.col_start,
                f.col_end,
                escape_json(&f.message)
            );
        }
        if self.findings.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        let empty = CallGraphReport::default();
        render_callgraph(&mut out, self.callgraph.as_ref().unwrap_or(&empty));
        let no_effects = EffectsReport::default();
        render_effects(&mut out, self.effects.as_ref().unwrap_or(&no_effects));
        out.push_str("}\n");
        out
    }
}

/// Renders the `"callgraph"` section: multi-line node and edge arrays
/// (one entry per line, like findings), single-line seed/SCC/stat
/// objects. Byte layout is frozen by the golden fixtures and checked
/// by `CHK1102`.
fn render_callgraph(out: &mut String, cg: &CallGraphReport) {
    out.push_str("  \"callgraph\": {\n");
    if cg.nodes.is_empty() {
        out.push_str("    \"nodes\": [],\n");
    } else {
        out.push_str("    \"nodes\": [\n");
        for (i, n) in cg.nodes.iter().enumerate() {
            let sep = if i + 1 == cg.nodes.len() { "" } else { "," };
            let _ = writeln!(out, "      \"{}\"{sep}", escape_json(n));
        }
        out.push_str("    ],\n");
    }
    if cg.edges.is_empty() {
        out.push_str("    \"edges\": [],\n");
    } else {
        out.push_str("    \"edges\": [\n");
        for (i, (a, b)) in cg.edges.iter().enumerate() {
            let sep = if i + 1 == cg.edges.len() { "" } else { "," };
            let _ = writeln!(out, "      [{a},{b}]{sep}");
        }
        out.push_str("    ],\n");
    }
    let list = |ids: &[u32]| {
        let mut s = String::new();
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{id}");
        }
        s
    };
    let _ = writeln!(
        out,
        "    \"seeds\": {{\"determinism\":[{}],\"hotpath\":[{}],\"worker\":[{}]}},",
        list(&cg.seeds_determinism),
        list(&cg.seeds_hotpath),
        list(&cg.seeds_worker)
    );
    let mut sccs = String::new();
    for (i, comp) in cg.sccs.iter().enumerate() {
        if i > 0 {
            sccs.push(',');
        }
        let _ = write!(sccs, "[{}]", list(comp));
    }
    let _ = writeln!(out, "    \"sccs\": [{sccs}],");
    let _ = writeln!(
        out,
        "    \"stats\": {{\"call_sites\":{},\"resolved\":{},\"external\":{},\"ambiguous\":{}}}",
        cg.call_sites, cg.resolved, cg.external, cg.ambiguous
    );
    out.push_str("  },\n");
}

/// Renders the `"effects"` section: the bit-name legend, one row per
/// effectful node, and the stats `CHK1103` re-derives. Byte layout is
/// frozen by the golden fixtures.
fn render_effects(out: &mut String, fx: &EffectsReport) {
    out.push_str("  \"effects\": {\n");
    // The legend matches the effect pass's BIT_NAMES; spelled out
    // literally so the rendering layer stays below the passes in the
    // module graph.
    out.push_str(
        "    \"bits\": [\"allocates\",\"locks\",\"panics\",\"does_io\",\
         \"nondeterministic\",\"unsafe\"],\n",
    );
    if fx.rows.is_empty() {
        out.push_str("    \"rows\": [],\n");
    } else {
        out.push_str("    \"rows\": [\n");
        for (i, r) in fx.rows.iter().enumerate() {
            let sep = if i + 1 == fx.rows.len() { "" } else { "," };
            let via: Vec<String> = r.via.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                out,
                "      {{\"node\":{},\"mask\":{},\"local\":{},\"via\":[{}]}}{sep}",
                r.node,
                r.mask,
                r.local,
                via.join(",")
            );
        }
        out.push_str("    ],\n");
    }
    let _ = writeln!(
        out,
        "    \"stats\": {{\"functions\":{},\"effectful\":{},\"local_bits\":{},\"propagated_bits\":{}}}",
        fx.functions,
        fx.rows.len(),
        fx.local_bits,
        fx.propagated_bits
    );
    out.push_str("  }\n");
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        let mut report = AnalysisReport::default();
        report.findings.push(Finding {
            code: "XT0002",
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col_start: 5,
            col_end: 11,
            message: "unwrap() in non-test library code".to_string(),
        });
        report.findings.push(Finding::file_scoped(
            "XT0202",
            Severity::Error,
            "Cargo.toml",
            "workspace manifest must declare the [workspace.lints] deny-list".to_string(),
        ));
        report.finish();
        report
    }

    #[test]
    fn finish_sorts_by_file_then_position() {
        let report = sample();
        assert_eq!(report.findings[0].file, "Cargo.toml");
        assert_eq!(report.findings[1].file, "crates/x/src/lib.rs");
        assert_eq!(report.errors(), 2);
        assert_eq!(report.warnings(), 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let empty = AnalysisReport::default();
        assert_eq!(
            empty.render_json(),
            concat!(
                "{\n  \"errors\": 0,\n  \"warnings\": 0,\n  \"findings\": [],\n",
                "  \"callgraph\": {\n",
                "    \"nodes\": [],\n",
                "    \"edges\": [],\n",
                "    \"seeds\": {\"determinism\":[],\"hotpath\":[],\"worker\":[]},\n",
                "    \"sccs\": [],\n",
                "    \"stats\": {\"call_sites\":0,\"resolved\":0,\"external\":0,\"ambiguous\":0}\n",
                "  },\n",
                "  \"effects\": {\n",
                "    \"bits\": [\"allocates\",\"locks\",\"panics\",\"does_io\",",
                "\"nondeterministic\",\"unsafe\"],\n",
                "    \"rows\": [],\n",
                "    \"stats\": {\"functions\":0,\"effectful\":0,\"local_bits\":0,",
                "\"propagated_bits\":0}\n",
                "  }\n}\n"
            )
        );
        let json = sample().render_json();
        assert!(json.contains("\"col_start\":5"));
        assert!(json.contains("\"col_end\":11"));
        assert!(json.contains("\n  ],\n  \"callgraph\": {\n"));
        assert!(json.ends_with("  }\n}\n"));
    }

    #[test]
    fn populated_callgraph_renders_one_entry_per_line() {
        let report = AnalysisReport {
            callgraph: Some(CallGraphReport {
                nodes: vec!["a.rs::f@1:1".to_string(), "a.rs::g@2:1".to_string()],
                edges: vec![(0, 1), (1, 0)],
                seeds_determinism: vec![0],
                seeds_hotpath: vec![1],
                seeds_worker: vec![0, 1],
                sccs: vec![vec![0, 1]],
                call_sites: 3,
                resolved: 2,
                external: 1,
                ambiguous: 1,
            }),
            ..AnalysisReport::default()
        };
        let json = report.render_json();
        assert!(json
            .contains("    \"nodes\": [\n      \"a.rs::f@1:1\",\n      \"a.rs::g@2:1\"\n    ],\n"));
        assert!(json.contains("    \"edges\": [\n      [0,1],\n      [1,0]\n    ],\n"));
        assert!(json
            .contains("    \"seeds\": {\"determinism\":[0],\"hotpath\":[1],\"worker\":[0,1]},\n"));
        assert!(json.contains("    \"sccs\": [[0,1]],\n"));
        assert!(json.contains(
            "    \"stats\": {\"call_sites\":3,\"resolved\":2,\"external\":1,\"ambiguous\":1}\n"
        ));
        assert!(json.contains("    \"stats\": {\"call_sites\":3,"));
        assert!(json.contains("\n  },\n  \"effects\": {\n"));
    }

    #[test]
    fn populated_effects_render_one_row_per_line() {
        let report = AnalysisReport {
            effects: Some(crate::model::EffectsReport {
                rows: vec![
                    crate::model::EffectRow {
                        node: 0,
                        mask: 5,
                        local: 4,
                        via: [1, -1, 0, -1, -1, -1],
                    },
                    crate::model::EffectRow {
                        node: 1,
                        mask: 1,
                        local: 1,
                        via: [1, -1, -1, -1, -1, -1],
                    },
                ],
                functions: 3,
                local_bits: 2,
                propagated_bits: 1,
            }),
            ..AnalysisReport::default()
        };
        let json = report.render_json();
        assert!(json.contains(
            "    \"rows\": [\n      {\"node\":0,\"mask\":5,\"local\":4,\"via\":[1,-1,0,-1,-1,-1]},\n      {\"node\":1,\"mask\":1,\"local\":1,\"via\":[1,-1,-1,-1,-1,-1]}\n    ],\n"
        ));
        assert!(json.contains(
            "    \"stats\": {\"functions\":3,\"effectful\":2,\"local_bits\":2,\"propagated_bits\":1}\n"
        ));
        assert!(json.ends_with("  }\n}\n"));
    }

    #[test]
    fn text_report_has_summary_line() {
        let text = sample().render_text();
        assert!(text.contains("error[XT0002] crates/x/src/lib.rs:3:5-11:"));
        assert!(text.ends_with("analyze: 2 error(s), 0 warning(s)\n"));
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
