//! Label-propagation ordering — a lightweight cousin of Boldi et al.'s
//! Layered Label Propagation (\[10\] in the paper, the algorithm behind
//! sk-2005's publisher ordering).
//!
//! Each vertex starts with its own label; for a fixed number of rounds
//! (or until quiescent) every vertex adopts the most frequent label among
//! its neighbours (ties broken toward the smallest label, updates applied
//! in-place in vertex order — fully deterministic). Vertices are then
//! ordered by `(label, original id)`, making each label class contiguous.
//!
//! Compared to RABBIT this finds flat communities without a modularity
//! objective or a hierarchy — a useful mid-point between degree-based
//! and modularity-based reordering in the experiment suite.

use std::collections::HashMap;

use commorder_sparse::{ops, CsrMatrix, Permutation, SparseError};

use crate::Reordering;

/// Label-propagation reordering configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelPropagation {
    /// Maximum propagation rounds (converges much earlier on most
    /// graphs; the reference uses tens of rounds).
    pub max_rounds: u32,
}

impl Default for LabelPropagation {
    fn default() -> Self {
        LabelPropagation { max_rounds: 16 }
    }
}

impl Reordering for LabelPropagation {
    fn name(&self) -> &str {
        "LABELPROP"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        let sym = ops::remove_self_loops(&ops::symmetrize(a)?);
        let n = sym.n_rows();
        let mut label: Vec<u32> = (0..n).collect();
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for _ in 0..self.max_rounds {
            let mut changed = false;
            for v in 0..n {
                let (neigh, _) = sym.row(v);
                if neigh.is_empty() {
                    continue;
                }
                counts.clear();
                for &u in neigh {
                    *counts.entry(label[u as usize]).or_insert(0) += 1;
                }
                // Most frequent label; ties toward the smallest label so
                // the result is independent of HashMap iteration order.
                let best = counts
                    .iter()
                    .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                    .max()
                    .map(|(_, std::cmp::Reverse(l))| l)
                    .expect("non-empty neighbourhood");
                if best != label[v as usize] {
                    label[v as usize] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by_key(|&v| (label[v as usize], v));
        Permutation::from_order(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::stats::mean_index_distance;
    use commorder_sparse::CooMatrix;
    use commorder_synth::generators::PlantedPartition;

    #[test]
    fn groups_two_cliques() {
        // Two 4-cliques joined by one edge.
        let mut entries = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    entries.push((base + i, base + j, 1.0));
                    entries.push((base + j, base + i, 1.0));
                }
            }
        }
        entries.push((3, 4, 1.0));
        entries.push((4, 3, 1.0));
        let g = CsrMatrix::try_from(CooMatrix::from_entries(8, 8, entries).unwrap()).unwrap();
        let p = LabelPropagation::default().reorder(&g).unwrap();
        // Each clique must occupy a contiguous ID block.
        let block = |v: u32| p.new_of(v) / 4;
        assert_eq!(block(0), block(1));
        assert_eq!(block(1), block(2));
        assert_eq!(block(5), block(6));
        assert_eq!(block(6), block(7));
    }

    #[test]
    fn restores_locality_on_scrambled_sbm() {
        let tidy = PlantedPartition::uniform(768, 12, 10.0, 0.02)
            .generate(15)
            .unwrap();
        let messy = tidy
            .permute_symmetric(&crate::RandomOrder::new(6).reorder(&tidy).unwrap())
            .unwrap();
        let p = LabelPropagation::default().reorder(&messy).unwrap();
        let fixed = messy.permute_symmetric(&p).unwrap();
        assert!(
            mean_index_distance(&fixed) < mean_index_distance(&messy) * 0.5,
            "label propagation should substantially localize: {} -> {}",
            mean_index_distance(&messy),
            mean_index_distance(&fixed)
        );
    }

    #[test]
    fn deterministic_and_total() {
        let g = PlantedPartition::uniform(256, 8, 6.0, 0.2)
            .generate(16)
            .unwrap();
        let a = LabelPropagation::default().reorder(&g).unwrap();
        let b = LabelPropagation::default().reorder(&g).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn handles_isolated_vertices_and_empty() {
        let p = LabelPropagation::default()
            .reorder(&CsrMatrix::empty(5))
            .unwrap();
        assert_eq!(p.len(), 5);
        assert!(LabelPropagation::default()
            .reorder(&CsrMatrix::empty(0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn zero_rounds_is_identity() {
        let g = PlantedPartition::uniform(64, 4, 4.0, 0.1)
            .generate(17)
            .unwrap();
        let p = LabelPropagation { max_rounds: 0 }.reorder(&g).unwrap();
        assert!(p.is_identity());
    }
}
