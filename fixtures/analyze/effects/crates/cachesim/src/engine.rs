//! A miniature job fan-out whose worker path panics and locks —
//! outside the sanctioned engine crate, so both effects are flagged.

use std::sync::Mutex;

/// Minimal stand-in for the parallel engine's facade.
pub struct Engine {
    /// Pending job ids, shared with the (imaginary) pool.
    pub queue: Mutex<Vec<u32>>,
}

impl Engine {
    /// Worker seed by name: dispatches each job to the helpers.
    pub fn map(&self, jobs: &[u32]) -> u32 {
        let mut acc = 0;
        for &j in jobs {
            acc += guarded(self, j);
        }
        acc
    }
}

/// Takes the queue lock on the worker path.
fn guarded(e: &Engine, j: u32) -> u32 {
    let Ok(mut q) = e.queue.lock() else {
        return 0;
    };
    q.push(j);
    fail_fast(j)
}

/// Panics on the worker path.
fn fail_fast(j: u32) -> u32 {
    if j == u32::MAX {
        unreachable!("saturated job id");
    }
    j
}
