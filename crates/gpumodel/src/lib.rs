//! Analytic performance model of the NVIDIA A6000 (§IV-B of the paper).
//!
//! The paper's hardware-limit methodology needs three quantities, all
//! provided here:
//!
//! 1. **Ideal run time** — compulsory DRAM traffic moved at the measured
//!    peak bandwidth ("672 GB/s as determined using BabelStream"):
//!    [`GpuSpec::ideal_time`].
//! 2. **Estimated run time** from simulated DRAM traffic:
//!    [`GpuSpec::estimate_time`]. SpMV is far below the A6000's
//!    compute roofline (arithmetic intensity ≤ 0.25 vs. the ~50 needed),
//!    so time is bandwidth-bound; non-compulsory transactions are
//!    dependent fine-grained fetches that achieve lower effective
//!    bandwidth, modelled by a linear penalty (see
//!    [`GpuSpec::fine_grain_penalty`]) calibrated against the paper's
//!    Fig. 2 means.
//! 3. **Pre-processing amortization** — how many kernel iterations pay
//!    for a reordering (§VI-C): [`GpuSpec::amortization_iterations`].
//!
//! # Example
//!
//! ```
//! use commorder_gpumodel::GpuSpec;
//! use commorder_sparse::traffic::Kernel;
//!
//! let gpu = GpuSpec::a6000();
//! let ideal = gpu.ideal_time(Kernel::SpmvCsr, 1_000_000, 10_000_000);
//! let measured = gpu.estimate_time(
//!     Kernel::SpmvCsr,
//!     1_000_000,
//!     10_000_000,
//!     2 * Kernel::SpmvCsr.compulsory_bytes(1_000_000, 10_000_000),
//! );
//! assert!(measured > ideal);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use commorder_cachesim::CacheConfig;
use commorder_sparse::traffic::Kernel;

/// GPU platform description (Table I) plus the run-time model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Platform name for report headers.
    pub name: &'static str,
    /// Theoretical peak DRAM bandwidth in bytes/second.
    pub peak_bandwidth: f64,
    /// Achievable bandwidth (BabelStream-measured) in bytes/second.
    pub measured_bandwidth: f64,
    /// Peak single-precision throughput in FLOP/s.
    pub peak_flops_sp: f64,
    /// Main-memory capacity in bytes.
    pub memory_capacity: u64,
    /// L2 geometry the cache simulator should use.
    pub l2: CacheConfig,
    /// Linear penalty for non-compulsory DRAM transactions: estimated
    /// normalized run time is `T + p·(T − 1)` where `T` is traffic
    /// normalized to compulsory. `p = 0.9` reproduces the paper's Fig. 2
    /// mean run-time ratios from its mean traffic ratios to within a few
    /// percent (RABBIT 1.27× traffic → 1.51× time vs. the paper's 1.54×).
    pub fine_grain_penalty: f64,
}

impl GpuSpec {
    /// The NVIDIA A6000 exactly as in Table I.
    #[must_use]
    pub fn a6000() -> Self {
        GpuSpec {
            name: "NVIDIA A6000",
            peak_bandwidth: 768.0e9,
            measured_bandwidth: 672.0e9,
            peak_flops_sp: 38.7e12,
            memory_capacity: 48 * 1024 * 1024 * 1024,
            l2: CacheConfig::a6000(),
            fine_grain_penalty: 0.9,
        }
    }

    /// The A6000 with its L2 scaled down 48x (128 KiB), matching the
    /// scaled synthetic corpus. Bandwidth constants are unchanged — every
    /// reported quantity is a ratio to ideal, so absolute bandwidth
    /// cancels.
    #[must_use]
    pub fn a6000_scaled() -> Self {
        GpuSpec {
            name: "NVIDIA A6000 (L2 scaled 1/48)",
            l2: CacheConfig::a6000_scaled(),
            ..GpuSpec::a6000()
        }
    }

    /// Tiny-L2 variant for unit tests and the mini corpus.
    #[must_use]
    pub fn test_scale() -> Self {
        GpuSpec {
            name: "test GPU (8 KiB L2)",
            l2: CacheConfig::test_scale(),
            ..GpuSpec::a6000()
        }
    }

    /// Arithmetic intensity (FLOP/byte) above which a kernel becomes
    /// compute-bound on this platform (~50 for the A6000, §IV-B).
    #[must_use]
    pub fn compute_bound_intensity(&self) -> f64 {
        self.peak_flops_sp / self.measured_bandwidth
    }

    /// `true` when the kernel is memory-bound at compulsory traffic
    /// (always the case for SpMV: intensity ≤ 0.25 « 50).
    #[must_use]
    pub fn is_memory_bound(&self, kernel: Kernel, n: u64, nnz: u64) -> bool {
        kernel.peak_arithmetic_intensity(n, nnz) < self.compute_bound_intensity()
    }

    /// Ideal (minimum) run time in seconds: compulsory traffic at
    /// measured bandwidth (§IV-B).
    #[must_use]
    pub fn ideal_time(&self, kernel: Kernel, n: u64, nnz: u64) -> f64 {
        self.ideal_time_from_compulsory(kernel.compulsory_bytes(n, nnz))
    }

    /// Ideal run time from a precomputed compulsory-traffic figure —
    /// the workload-agnostic core of [`GpuSpec::ideal_time`]. Two-operand
    /// kernels (SpGEMM) land here: their compulsory traffic depends on
    /// the operand pair ([`Kernel::compulsory_bytes_pair`]), not on
    /// `(n, nnz)` alone.
    ///
    /// [`Kernel::compulsory_bytes_pair`]:
    /// commorder_sparse::traffic::Kernel::compulsory_bytes_pair
    #[must_use]
    pub fn ideal_time_from_compulsory(&self, compulsory_bytes: u64) -> f64 {
        compulsory_bytes as f64 / self.measured_bandwidth
    }

    /// Estimated run time in seconds given simulated DRAM traffic.
    ///
    /// `T_norm = dram_bytes / compulsory`; estimated time is
    /// `ideal · (T_norm + p·(T_norm − 1))` (see
    /// [`GpuSpec::fine_grain_penalty`]). Traffic below compulsory (possible
    /// when many rows are empty — the paper's wiki-Talk footnote) is
    /// passed through without penalty.
    #[must_use]
    pub fn estimate_time(&self, kernel: Kernel, n: u64, nnz: u64, dram_bytes: u64) -> f64 {
        self.estimate_time_from_compulsory(kernel.compulsory_bytes(n, nnz), dram_bytes)
    }

    /// [`GpuSpec::estimate_time`] from a precomputed compulsory-traffic
    /// figure (see [`GpuSpec::ideal_time_from_compulsory`]).
    #[must_use]
    pub fn estimate_time_from_compulsory(&self, compulsory_bytes: u64, dram_bytes: u64) -> f64 {
        let ideal = self.ideal_time_from_compulsory(compulsory_bytes);
        let t_norm = dram_bytes as f64 / compulsory_bytes as f64;
        if t_norm <= 1.0 {
            return ideal * t_norm;
        }
        ideal * (t_norm + self.fine_grain_penalty * (t_norm - 1.0))
    }

    /// Run time normalized to ideal (the y-axis of Fig. 3, Tables II/IV).
    #[must_use]
    pub fn normalized_time(&self, kernel: Kernel, n: u64, nnz: u64, dram_bytes: u64) -> f64 {
        self.normalized_time_from_compulsory(kernel.compulsory_bytes(n, nnz), dram_bytes)
    }

    /// [`GpuSpec::normalized_time`] from a precomputed compulsory-traffic
    /// figure (see [`GpuSpec::ideal_time_from_compulsory`]).
    #[must_use]
    pub fn normalized_time_from_compulsory(&self, compulsory_bytes: u64, dram_bytes: u64) -> f64 {
        self.estimate_time_from_compulsory(compulsory_bytes, dram_bytes)
            / self.ideal_time_from_compulsory(compulsory_bytes)
    }

    /// Kernel iterations needed to amortize a reordering's pre-processing
    /// cost, taking the matrix to start in `baseline_bytes`-traffic order
    /// (§VI-C considers RANDOM the starting order). `None` when the
    /// reordering does not improve traffic (never amortizes).
    #[must_use]
    pub fn amortization_iterations(
        &self,
        kernel: Kernel,
        n: u64,
        nnz: u64,
        preprocess_seconds: f64,
        baseline_bytes: u64,
        reordered_bytes: u64,
    ) -> Option<f64> {
        let t_base = self.estimate_time(kernel, n, nnz, baseline_bytes);
        let t_new = self.estimate_time(kernel, n, nnz, reordered_bytes);
        let saving = t_base - t_new;
        if saving <= 0.0 {
            return None;
        }
        Some(preprocess_seconds / saving)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 1_000_000;
    const NNZ: u64 = 20_000_000;

    #[test]
    fn a6000_matches_table1() {
        let g = GpuSpec::a6000();
        assert_eq!(g.peak_bandwidth, 768.0e9);
        assert_eq!(g.measured_bandwidth, 672.0e9);
        assert_eq!(g.l2.capacity_bytes, 6 * 1024 * 1024);
        assert_eq!(g.memory_capacity, 48 << 30);
    }

    #[test]
    fn compute_bound_threshold_is_about_fifty() {
        let t = GpuSpec::a6000().compute_bound_intensity();
        assert!((50.0..=65.0).contains(&t), "threshold = {t}");
    }

    #[test]
    fn spmv_is_memory_bound() {
        let g = GpuSpec::a6000();
        assert!(g.is_memory_bound(Kernel::SpmvCsr, N, NNZ));
        // Even SpMM-256 stays memory-bound (intensity ~ a few FLOP/byte).
        assert!(g.is_memory_bound(Kernel::SpmmCsr { k: 256 }, N, NNZ));
    }

    #[test]
    fn ideal_time_is_compulsory_over_bandwidth() {
        let g = GpuSpec::a6000();
        let t = g.ideal_time(Kernel::SpmvCsr, N, NNZ);
        let expect = Kernel::SpmvCsr.compulsory_bytes(N, NNZ) as f64 / 672.0e9;
        assert!((t - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn estimate_at_compulsory_equals_ideal() {
        let g = GpuSpec::a6000();
        let compulsory = Kernel::SpmvCsr.compulsory_bytes(N, NNZ);
        let t = g.normalized_time(Kernel::SpmvCsr, N, NNZ, compulsory);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn model_reproduces_paper_fig2_means() {
        // Traffic means from Fig. 2 -> run-time means from its caption.
        let g = GpuSpec::a6000();
        let compulsory = Kernel::SpmvCsr.compulsory_bytes(N, NNZ) as f64;
        let check = |traffic_ratio: f64, paper_time_ratio: f64, tolerance: f64| {
            let t = g.normalized_time(Kernel::SpmvCsr, N, NNZ, (traffic_ratio * compulsory) as u64);
            assert!(
                (t - paper_time_ratio).abs() / paper_time_ratio < tolerance,
                "traffic {traffic_ratio} -> model {t} vs paper {paper_time_ratio}"
            );
        };
        check(1.27, 1.54, 0.05); // RABBIT
        check(1.29, 1.56, 0.05); // GORDER
        check(1.48, 1.94, 0.05); // DBG
        check(1.54, 1.96, 0.05); // ORIGINAL
        check(1.61, 2.17, 0.05); // DEGSORT
        check(3.36, 6.21, 0.15); // RANDOM (heaviest extrapolation)
    }

    #[test]
    fn sub_compulsory_traffic_passes_through() {
        // The wiki-Talk case: overestimated ideal -> ratio < 1.
        let g = GpuSpec::a6000();
        let compulsory = Kernel::SpmvCsr.compulsory_bytes(N, NNZ);
        let t = g.normalized_time(Kernel::SpmvCsr, N, NNZ, compulsory * 9 / 10);
        assert!((t - 0.9).abs() < 1e-6);
    }

    #[test]
    fn amortization_matches_hand_computation() {
        let g = GpuSpec::a6000();
        let compulsory = Kernel::SpmvCsr.compulsory_bytes(N, NNZ);
        let iters = g
            .amortization_iterations(
                Kernel::SpmvCsr,
                N,
                NNZ,
                1.0, // one second of pre-processing
                3 * compulsory,
                compulsory,
            )
            .unwrap();
        let t3 = g.estimate_time(Kernel::SpmvCsr, N, NNZ, 3 * compulsory);
        let t1 = g.estimate_time(Kernel::SpmvCsr, N, NNZ, compulsory);
        assert!((iters - 1.0 / (t3 - t1)).abs() < 1e-6);
        assert!(iters > 0.0);
    }

    #[test]
    fn no_improvement_never_amortizes() {
        let g = GpuSpec::a6000();
        let c = Kernel::SpmvCsr.compulsory_bytes(N, NNZ);
        assert_eq!(
            g.amortization_iterations(Kernel::SpmvCsr, N, NNZ, 1.0, c, c),
            None
        );
        assert_eq!(
            g.amortization_iterations(Kernel::SpmvCsr, N, NNZ, 1.0, c, 2 * c),
            None
        );
    }

    #[test]
    fn from_compulsory_variants_match_the_kernel_forms() {
        // The SpGEMM entry points are pure delegation targets: feeding
        // them a kernel's own compulsory figure reproduces the original
        // methods bit-for-bit (goldens depend on this).
        let g = GpuSpec::a6000();
        let c = Kernel::SpmvCsr.compulsory_bytes(N, NNZ);
        assert_eq!(
            g.ideal_time(Kernel::SpmvCsr, N, NNZ),
            g.ideal_time_from_compulsory(c)
        );
        assert_eq!(
            g.estimate_time(Kernel::SpmvCsr, N, NNZ, 3 * c),
            g.estimate_time_from_compulsory(c, 3 * c)
        );
        assert_eq!(
            g.normalized_time(Kernel::SpmvCsr, N, NNZ, 3 * c),
            g.normalized_time_from_compulsory(c, 3 * c)
        );
    }

    #[test]
    fn scaled_spec_only_changes_l2() {
        let full = GpuSpec::a6000();
        let scaled = GpuSpec::a6000_scaled();
        assert_eq!(full.measured_bandwidth, scaled.measured_bandwidth);
        assert_eq!(full.l2.capacity_bytes, scaled.l2.capacity_bytes * 48);
    }
}

/// Energy constants and accounting (architecture-paper style: DRAM
/// access energy dominates memory-bound kernels, so traffic reduction is
/// also energy reduction).
///
/// Defaults use round published figures for a GDDR6-class part: ~60 pJ
/// per DRAM byte (I/O + array), ~5 pJ per L2-SRAM byte, ~1 pJ per
/// single-precision FLOP. Absolute joules are indicative; *ratios*
/// between orderings are the meaningful output, mirroring the traffic
/// methodology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// DRAM energy per byte moved (J/B).
    pub dram_j_per_byte: f64,
    /// L2 energy per byte accessed (J/B).
    pub l2_j_per_byte: f64,
    /// Energy per floating-point operation (J).
    pub j_per_flop: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dram_j_per_byte: 60e-12,
            l2_j_per_byte: 5e-12,
            j_per_flop: 1e-12,
        }
    }
}

/// Energy breakdown of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM transfer energy (J).
    pub dram: f64,
    /// L2 access energy (J).
    pub l2: f64,
    /// Arithmetic energy (J).
    pub compute: f64,
}

impl EnergyBreakdown {
    /// Total energy (J).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dram + self.l2 + self.compute
    }

    /// Fraction of total energy spent on DRAM transfers.
    #[must_use]
    pub fn dram_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.dram / self.total()
        }
    }
}

impl EnergyModel {
    /// Energy for a kernel execution given its simulated DRAM traffic and
    /// L2 access count (`l2_accesses` x line bytes approximates L2-moved
    /// bytes; every access touches the L2 in this single-level model).
    #[must_use]
    pub fn energy(
        &self,
        kernel: Kernel,
        nnz: u64,
        dram_bytes: u64,
        l2_accesses: u64,
        line_bytes: u32,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            dram: dram_bytes as f64 * self.dram_j_per_byte,
            l2: (l2_accesses * u64::from(line_bytes)) as f64 * self.l2_j_per_byte,
            compute: kernel.flops(nnz) as f64 * self.j_per_flop,
        }
    }
}

#[cfg(test)]
mod energy_tests {
    use super::*;

    #[test]
    fn dram_dominates_memory_bound_kernels() {
        // SpMV at compulsory traffic: DRAM energy must dwarf compute.
        let (n, nnz) = (1_000_000u64, 20_000_000u64);
        let bytes = Kernel::SpmvCsr.compulsory_bytes(n, nnz);
        let e = EnergyModel::default().energy(Kernel::SpmvCsr, nnz, bytes, 4 * nnz, 32);
        assert!(
            e.dram > e.compute * 10.0,
            "dram {} vs compute {}",
            e.dram,
            e.compute
        );
        assert!(e.dram_fraction() > 0.3);
        assert!(e.total() > 0.0);
    }

    #[test]
    fn traffic_reduction_is_energy_reduction() {
        let (n, nnz) = (100_000u64, 1_000_000u64);
        let compulsory = Kernel::SpmvCsr.compulsory_bytes(n, nnz);
        let model = EnergyModel::default();
        let bad = model.energy(Kernel::SpmvCsr, nnz, 3 * compulsory, 4 * nnz, 32);
        let good = model.energy(Kernel::SpmvCsr, nnz, compulsory, 4 * nnz, 32);
        assert!(bad.total() > good.total());
        // L2 + compute identical; the whole difference is DRAM.
        assert!((bad.l2 - good.l2).abs() < 1e-15);
        assert!((bad.compute - good.compute).abs() < 1e-15);
    }

    #[test]
    fn zero_work_zero_energy() {
        let e = EnergyModel::default().energy(Kernel::SpmvCsr, 0, 0, 0, 32);
        assert_eq!(e.total(), 0.0);
        assert_eq!(e.dram_fraction(), 0.0);
    }
}
