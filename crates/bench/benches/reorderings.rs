//! Criterion microbenchmarks for the reordering techniques' own cost —
//! the pre-processing overhead axis of Fig. 9, at microbenchmark scale.

use commorder::prelude::*;
use commorder::reorder::{Bisection, FlatCommunity, LabelPropagation, SlashBurn};
use commorder::synth::generators::CommunityHub;
use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn fixture() -> CsrMatrix {
    CommunityHub {
        n: 4096,
        communities: 64,
        intra_degree: 10.0,
        hub_fraction: 0.02,
        hub_degree: 20.0,
        mixing: 0.08,
        scramble_ids: true,
    }
    .generate(88)
    .expect("valid generator config")
}

fn bench_reorderings(c: &mut Criterion) {
    let a = fixture();
    let techniques: Vec<Box<dyn Reordering>> = vec![
        Box::new(RandomOrder::new(1)),
        Box::new(DegSort),
        Box::new(Dbg::default()),
        Box::new(HubGroup),
        Box::new(Rcm),
        Box::new(Gorder::default()),
        Box::new(SlashBurn::default()),
        Box::new(Bisection::default()),
        Box::new(LabelPropagation::default()),
        Box::new(FlatCommunity::new(1)),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
    ];
    let mut group = c.benchmark_group("reorder");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(a.nnz() as u64));
    for technique in &techniques {
        group.bench_with_input(
            BenchmarkId::from_parameter(technique.name()),
            technique,
            |bench, t| {
                bench.iter(|| t.reorder(&a).expect("square fixture"));
            },
        );
    }
    group.finish();
}

fn bench_permute(c: &mut Criterion) {
    let a = fixture();
    let perm = Rabbit::new().reorder(&a).expect("square fixture");
    c.bench_function("permute_symmetric", |bench| {
        bench.iter(|| a.permute_symmetric(&perm).expect("validated"));
    });
}

criterion_group!(benches, bench_reorderings, bench_permute);
criterion_main!(benches);
