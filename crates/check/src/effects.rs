//! Validator for the analyzer report's effects section (`CHK1103`).
//!
//! `commorder-analyze` emits an `"effects"` object after the call
//! graph: the six-name bit legend, one row per node with a non-zero
//! inferred effect mask, and summary stats. The lattice carries three
//! machine-checkable invariants this validator replays against the
//! call graph parsed by `CHK1102`:
//!
//! 1. **Monotonicity** — effect masks only grow bottom-up: for every
//!    call edge `(a, b)`, `mask[a] ⊇ mask[b]`.
//! 2. **Witness well-formedness** — for each set bit, the `via` hop is
//!    the node itself when the bit is local; otherwise it names a real
//!    call edge whose target also carries the bit, and following the
//!    hops terminates at a local source without revisiting a node.
//! 3. **Stats arithmetic** — `functions` matches the declared node
//!    count, `effectful` matches the row count, and the local plus
//!    propagated bit totals match the rows' popcounts.
//!
//! Like `CHK1101`/`CHK1102` the parser is line-oriented and lenient:
//! every violation becomes a [`Diagnostic`] and validation continues
//! where the frame allows.

use std::collections::{BTreeMap, BTreeSet};

use crate::codes;
use crate::diag::{Diagnostic, Location};

/// The bit legend the analyzer renders, lowest bit first.
const BIT_NAMES: &str =
    "\"allocates\",\"locks\",\"panics\",\"does_io\",\"nondeterministic\",\"unsafe\"";

/// One parsed effects row.
struct Row {
    /// Report line the row came from (0-based).
    line: usize,
    /// Node index.
    node: u32,
    /// Fixed-point effect mask.
    mask: u32,
    /// Lexically-local subset of `mask`.
    local: u32,
    /// Per-bit witness next-hops (`-1` = bit unset).
    via: [i64; 6],
}

/// Validates the `"effects"` section that starts at `lines[start]`
/// (the `"effects": {` line), replaying the lattice invariants against
/// the `node_count` and `edges` parsed from the call-graph section.
/// Emits `CHK1103` diagnostics into `out` and returns the index one
/// past the section's closing brace — or `lines.len()` when the frame
/// is too broken to locate it.
#[must_use]
pub fn check_effects_section(
    lines: &[&str],
    start: usize,
    node_count: usize,
    edges: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
) -> usize {
    if lines.get(start).map(|l| l.trim()) != Some("\"effects\": {") {
        out.push(err(
            start,
            format!(
                "expected an '\"effects\": {{' section, found {:?}",
                lines.get(start).copied().unwrap_or("").trim()
            ),
        ));
        return lines.len();
    }
    let mut i = start + 1;
    check_bits(lines, &mut i, out);
    let rows = parse_rows(lines, &mut i, out);
    check_rows(&rows, node_count, edges, out);
    check_stats(lines, &mut i, node_count, &rows, out);
    if lines.get(i).copied() != Some("  }") {
        out.push(err(i, "effects section must close with '  }'".into()));
        return lines.len();
    }
    i + 1
}

/// Shared `CHK1103` constructor.
fn err(line: usize, message: String) -> Diagnostic {
    Diagnostic::error(
        codes::EFFECTS_SCHEMA,
        Location::at("report line", line as u64 + 1),
        message,
    )
}

/// The bit legend is part of the contract: a renamed or reordered bit
/// silently changes the meaning of every mask.
fn check_bits(lines: &[&str], i: &mut usize, out: &mut Vec<Diagnostic>) {
    let line = lines.get(*i).copied().unwrap_or("").trim().to_string();
    if line != format!("\"bits\": [{BIT_NAMES}],") {
        out.push(err(
            *i,
            format!("bit legend must be exactly [{BIT_NAMES}], found {line:?}"),
        ));
    }
    *i += 1;
}

/// Parses the `"rows"` array (one object per line). The `via` field is
/// a nested array, so rows get a hand-rolled parser rather than the
/// flat-object helper the other validators share.
fn parse_rows(lines: &[&str], i: &mut usize, out: &mut Vec<Diagnostic>) -> Vec<Row> {
    let open = lines.get(*i).copied().unwrap_or("").trim().to_string();
    if open == "\"rows\": []," {
        *i += 1;
        return Vec::new();
    }
    let mut rows = Vec::new();
    if open != "\"rows\": [" {
        out.push(err(*i, format!("expected a rows array, found {open:?}")));
        return rows;
    }
    *i += 1;
    while *i < lines.len() && lines[*i].trim() != "]," {
        let row = lines[*i].trim();
        let entry = row.strip_suffix(',').unwrap_or(row);
        match parse_row(entry) {
            Some((node, mask, local, via)) => rows.push(Row {
                line: *i,
                node,
                mask,
                local,
                via,
            }),
            None => out.push(err(
                *i,
                format!(
                    "row {entry:?} must look like \
                     {{\"node\":N,\"mask\":N,\"local\":N,\"via\":[v0,…,v5]}}"
                ),
            )),
        }
        *i += 1;
    }
    if lines.get(*i).map(|l| l.trim()) != Some("],") {
        out.push(err(*i, "rows array is not closed with '],'".into()));
    } else {
        *i += 1;
    }
    rows
}

/// Parses one `{"node":N,"mask":N,"local":N,"via":[…]}` object.
fn parse_row(entry: &str) -> Option<(u32, u32, u32, [i64; 6])> {
    let rest = entry.strip_prefix("{\"node\":")?;
    let (node, rest) = split_u32(rest)?;
    let rest = rest.strip_prefix(",\"mask\":")?;
    let (mask, rest) = split_u32(rest)?;
    let rest = rest.strip_prefix(",\"local\":")?;
    let (local, rest) = split_u32(rest)?;
    let body = rest.strip_prefix(",\"via\":[")?.strip_suffix("]}")?;
    let hops: Vec<i64> = body
        .split(',')
        .map(|v| v.parse::<i64>().ok())
        .collect::<Option<Vec<i64>>>()?;
    let via: [i64; 6] = hops.try_into().ok()?;
    Some((node, mask, local, via))
}

/// Splits a leading `u32` off `rest`.
fn split_u32(rest: &str) -> Option<(u32, &str)> {
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    Some((rest[..end].parse::<u32>().ok()?, &rest[end..]))
}

/// Replays the lattice invariants over the parsed rows.
fn check_rows(rows: &[Row], node_count: usize, edges: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    let masks: BTreeMap<u32, u32> = rows.iter().map(|r| (r.node, r.mask)).collect();
    let edge_set: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
    let mut prev: Option<u32> = None;
    for r in rows {
        if r.node as usize >= node_count {
            out.push(err(
                r.line,
                format!(
                    "row references node {} but only {node_count} are declared",
                    r.node
                ),
            ));
        }
        if prev.is_some_and(|p| p >= r.node) {
            out.push(err(
                r.line,
                "rows must be strictly ascending by node".into(),
            ));
        }
        prev = Some(r.node);
        if r.mask == 0 || r.mask > 63 {
            out.push(err(
                r.line,
                format!("mask {} is outside the six-bit lattice (1..=63)", r.mask),
            ));
        }
        if r.local & !r.mask != 0 {
            out.push(err(
                r.line,
                format!(
                    "local bits {} escape the effect mask {} (local must be a subset)",
                    r.local, r.mask
                ),
            ));
        }
        for (b, &hop) in r.via.iter().enumerate() {
            let bit = 1u32 << b;
            if r.mask & bit == 0 {
                if hop != -1 {
                    out.push(err(
                        r.line,
                        format!("via[{b}] must be -1 when bit {b} is unset, found {hop}"),
                    ));
                }
                continue;
            }
            if hop < 0 {
                out.push(err(
                    r.line,
                    format!("bit {b} is set but via[{b}] is {hop} (no witness)"),
                ));
                continue;
            }
            let hop = u32::try_from(hop).unwrap_or(u32::MAX);
            if r.local & bit != 0 {
                if hop != r.node {
                    out.push(err(
                        r.line,
                        format!(
                            "bit {b} is local to node {} so via[{b}] must point at \
                             itself, found {hop}",
                            r.node
                        ),
                    ));
                }
                continue;
            }
            if !edge_set.contains(&(r.node, hop)) {
                out.push(err(
                    r.line,
                    format!(
                        "witness hop {} -> {hop} for bit {b} is not a declared call edge",
                        r.node
                    ),
                ));
            }
            if masks.get(&hop).copied().unwrap_or(0) & bit == 0 {
                out.push(err(
                    r.line,
                    format!("witness hop target {hop} does not carry bit {b}"),
                ));
            }
        }
    }
    // Monotonicity: a caller's mask covers every callee's mask.
    for &(a, b) in edges {
        let ma = masks.get(&a).copied().unwrap_or(0);
        let mb = masks.get(&b).copied().unwrap_or(0);
        if ma & mb != mb {
            out.push(err(
                0,
                format!(
                    "effect mask shrinks over call edge {a} -> {b}: caller mask {ma} \
                     does not cover callee mask {mb}"
                ),
            ));
        }
    }
    // Witness chains terminate at a local source without revisiting.
    let by_node: BTreeMap<u32, &Row> = rows.iter().map(|r| (r.node, r)).collect();
    for r in rows {
        for b in 0..6 {
            let bit = 1u32 << b;
            if r.mask & bit == 0 || r.local & bit != 0 {
                continue;
            }
            let mut visited = BTreeSet::new();
            let mut cur = r.node;
            loop {
                if !visited.insert(cur) {
                    out.push(err(
                        r.line,
                        format!(
                            "witness chain for bit {b} from node {} revisits {cur}",
                            r.node
                        ),
                    ));
                    break;
                }
                let Some(row) = by_node.get(&cur) else {
                    out.push(err(
                        r.line,
                        format!(
                            "witness chain for bit {b} from node {} reaches {cur}, \
                             which has no row",
                            r.node
                        ),
                    ));
                    break;
                };
                if row.local & bit != 0 {
                    break; // reached a local source
                }
                let hop = row.via[b];
                if hop < 0 {
                    break; // already flagged above
                }
                cur = u32::try_from(hop).unwrap_or(u32::MAX);
            }
        }
    }
}

/// Validates the single-line `"stats"` object against the rows.
fn check_stats(
    lines: &[&str],
    i: &mut usize,
    node_count: usize,
    rows: &[Row],
    out: &mut Vec<Diagnostic>,
) {
    let line = lines.get(*i).copied().unwrap_or("").trim().to_string();
    let Some([functions, effectful, local_bits, propagated_bits]) = parse_stats(&line) else {
        out.push(err(
            *i,
            format!("expected a one-line stats object, found {line:?}"),
        ));
        return;
    };
    if functions != node_count as u64 {
        out.push(err(
            *i,
            format!(
                "stats declare {functions} functions but the call graph declares \
                 {node_count} nodes"
            ),
        ));
    }
    if effectful != rows.len() as u64 {
        out.push(err(
            *i,
            format!(
                "stats declare {effectful} effectful functions but {} rows are listed",
                rows.len()
            ),
        ));
    }
    let local_sum: u64 = rows.iter().map(|r| u64::from(r.local.count_ones())).sum();
    let total_sum: u64 = rows.iter().map(|r| u64::from(r.mask.count_ones())).sum();
    if local_bits != local_sum {
        out.push(err(
            *i,
            format!("stats declare {local_bits} local bits but the rows sum to {local_sum}"),
        ));
    }
    if propagated_bits != total_sum - local_sum {
        out.push(err(
            *i,
            format!(
                "stats declare {propagated_bits} propagated bits but the rows sum to {}",
                total_sum - local_sum
            ),
        ));
    }
    *i += 1;
}

/// Parses `"stats": {"functions":N,"effectful":N,"local_bits":N,"propagated_bits":N}`.
fn parse_stats(line: &str) -> Option<[u64; 4]> {
    let mut rest = line.strip_prefix("\"stats\": {")?.strip_suffix('}')?;
    let mut vals = [0u64; 4];
    for (slot, key) in
        vals.iter_mut()
            .zip(["functions", "effectful", "local_bits", "propagated_bits"])
    {
        rest = rest
            .trim_start_matches(',')
            .strip_prefix(&format!("\"{key}\":"))?;
        let end = rest.find(',').unwrap_or(rest.len());
        *slot = rest[..end].parse::<u64>().ok()?;
        rest = &rest[end..];
    }
    rest.is_empty().then_some(vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical empty section, exactly as the analyzer renders it.
    pub(crate) const EMPTY: &str = concat!(
        "  \"effects\": {\n",
        "    \"bits\": [\"allocates\",\"locks\",\"panics\",\"does_io\",",
        "\"nondeterministic\",\"unsafe\"],\n",
        "    \"rows\": [],\n",
        "    \"stats\": {\"functions\":0,\"effectful\":0,\"local_bits\":0,",
        "\"propagated_bits\":0}\n",
        "  }",
    );

    /// A populated, internally consistent section over the edge list
    /// `[(0,1),(1,2)]`: node 2 allocates locally, 1 and 0 inherit it,
    /// and node 1 additionally panics locally.
    fn populated() -> String {
        concat!(
            "  \"effects\": {\n",
            "    \"bits\": [\"allocates\",\"locks\",\"panics\",\"does_io\",",
            "\"nondeterministic\",\"unsafe\"],\n",
            "    \"rows\": [\n",
            "      {\"node\":0,\"mask\":5,\"local\":0,\"via\":[1,-1,1,-1,-1,-1]},\n",
            "      {\"node\":1,\"mask\":5,\"local\":4,\"via\":[2,-1,1,-1,-1,-1]},\n",
            "      {\"node\":2,\"mask\":1,\"local\":1,\"via\":[2,-1,-1,-1,-1,-1]}\n",
            "    ],\n",
            "    \"stats\": {\"functions\":3,\"effectful\":3,\"local_bits\":2,",
            "\"propagated_bits\":3}\n",
            "  }",
        )
        .to_string()
    }

    fn run(section: &str, node_count: usize, edges: &[(u32, u32)]) -> Vec<Diagnostic> {
        let lines: Vec<&str> = section.lines().collect();
        let mut out = Vec::new();
        let next = check_effects_section(&lines, 0, node_count, edges, &mut out);
        assert!(next == lines.len() || lines[next - 1] == "  }");
        out
    }

    const EDGES: &[(u32, u32)] = &[(0, 1), (1, 2)];

    #[test]
    fn empty_and_populated_sections_pass() {
        assert!(run(EMPTY, 0, &[]).is_empty());
        assert!(run(&populated(), 3, EDGES).is_empty());
    }

    #[test]
    fn wrong_bit_legend_is_flagged() {
        let bad = populated().replace("\"locks\"", "\"locking\"");
        let diags = run(&bad, 3, EDGES);
        assert!(diags.iter().any(|d| d.message.contains("bit legend")));
    }

    #[test]
    fn local_escaping_mask_is_flagged() {
        let bad = populated().replace("\"mask\":1,\"local\":1", "\"mask\":1,\"local\":3");
        let diags = run(&bad, 3, EDGES);
        assert!(diags.iter().any(|d| d.message.contains("escape")));
    }

    #[test]
    fn non_edge_witness_hop_is_flagged() {
        // Node 0's allocates-hop must be its callee 1, not 2.
        let bad = populated().replace(
            "{\"node\":0,\"mask\":5,\"local\":0,\"via\":[1,-1,1,-1,-1,-1]}",
            "{\"node\":0,\"mask\":5,\"local\":0,\"via\":[2,-1,1,-1,-1,-1]}",
        );
        let diags = run(&bad, 3, EDGES);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("not a declared call edge")));
    }

    #[test]
    fn monotonicity_violation_is_flagged() {
        // Dropping node 0's row makes its (implicit) mask 0, which no
        // longer covers callee 1's mask 5 over edge (0,1).
        let bad = populated()
            .replace(
                "      {\"node\":0,\"mask\":5,\"local\":0,\"via\":[1,-1,1,-1,-1,-1]},\n",
                "",
            )
            .replace("\"effectful\":3", "\"effectful\":2")
            .replace("\"propagated_bits\":3", "\"propagated_bits\":1");
        let diags = run(&bad, 3, EDGES);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("mask shrinks over call edge")));
    }

    #[test]
    fn nonterminating_witness_chain_is_flagged() {
        // 0 and 1 point at each other for a bit neither holds locally
        // (node 0's via[0] already names 1 in the populated report).
        let bad = populated().replace(
            "{\"node\":1,\"mask\":5,\"local\":4,\"via\":[2,-1,1,-1,-1,-1]}",
            "{\"node\":1,\"mask\":5,\"local\":4,\"via\":[0,-1,1,-1,-1,-1]}",
        );
        let diags = run(&bad, 3, EDGES);
        assert!(
            diags.iter().any(|d| d.message.contains("revisits"))
                || diags
                    .iter()
                    .any(|d| d.message.contains("not a declared call edge"))
        );
    }

    #[test]
    fn inconsistent_stats_are_flagged() {
        let bad = populated().replace("\"local_bits\":2", "\"local_bits\":5");
        let diags = run(&bad, 3, EDGES);
        assert!(diags.iter().any(|d| d.message.contains("local bits")));
        let bad = populated().replace("\"functions\":3", "\"functions\":9");
        let diags = run(&bad, 3, EDGES);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("the call graph declares")));
    }

    #[test]
    fn unsorted_rows_and_bad_masks_are_flagged() {
        let swapped = populated()
            .replace("{\"node\":1,", "{\"node\":9,")
            .replace("{\"node\":0,", "{\"node\":1,");
        let diags = run(&swapped, 3, EDGES);
        assert!(
            diags.iter().any(|d| d.message.contains("ascending"))
                || diags
                    .iter()
                    .any(|d| d.message.contains("only 3 are declared"))
        );
        let bad = populated().replace("\"mask\":1,\"local\":1", "\"mask\":64,\"local\":0");
        let diags = run(&bad, 3, EDGES);
        assert!(diags.iter().any(|d| d.message.contains("six-bit lattice")));
    }
}
