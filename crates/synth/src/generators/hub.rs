use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// Hub-and-spoke graph: a handful of mega-hubs attached to nearly every
/// vertex, plus a sparse random background.
///
/// Models the paper's **mawi** anomaly (§V-B): network-traffic traces
/// where a few monitoring points touch almost all flows. Modularity-based
/// community detection on such graphs tends to terminate early with one
/// community covering almost the whole matrix — insularity is high (~0.99)
/// yet reordering cannot help, the corner case the paper calls out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HubAndSpoke {
    /// Number of vertices (including hubs).
    pub n: u32,
    /// Number of mega-hubs.
    pub hubs: u32,
    /// Fraction of all vertices each hub attaches to.
    pub hub_coverage: f64,
    /// Average degree of the random background graph.
    pub background_degree: f64,
}

impl HubAndSpoke {
    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if `hubs == 0` or `hubs >= n`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(self.hubs > 0, "need at least one hub");
        assert!(self.hubs < self.n, "hubs must be < n");
        let mut rng = Rng::new(seed);
        let mut edges = Vec::new();
        // Spread hub IDs uniformly through the ID space so neither
        // ORIGINAL nor naive grouping accidentally co-locates them.
        let stride = self.n / self.hubs;
        let hub_ids: Vec<u32> = (0..self.hubs).map(|h| h * stride).collect();
        for &h in &hub_ids {
            for v in 0..self.n {
                if v != h && rng.gen_bool(self.hub_coverage) {
                    edges.push((h, v));
                }
            }
        }
        let background_edges = (f64::from(self.n) * self.background_degree / 2.0).round() as usize;
        for _ in 0..background_edges {
            let u = rng.gen_u32(self.n);
            let v = rng.gen_u32(self.n);
            if u != v {
                edges.push((u, v));
            }
        }
        undirected_csr(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;
    use commorder_sparse::stats::skew_top10;

    #[test]
    fn hubs_dominate_the_nnz() {
        let g = HubAndSpoke {
            n: 5000,
            hubs: 3,
            hub_coverage: 0.6,
            background_degree: 2.0,
        }
        .generate(1)
        .unwrap();
        assert_well_formed(&g);
        // Three hubs alone own most edges.
        let mut degrees = g.out_degrees();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let hub_nnz: u64 = degrees.iter().take(3).map(|&d| u64::from(d)).sum();
        // 3 hubs x 5000 x 0.6 coverage ~ 9000 hub-row entries out of
        // ~28000 total (hub rows + mirrored spokes + background).
        assert!(hub_nnz as f64 / g.nnz() as f64 > 0.25);
        assert!(skew_top10(&g) > 0.4);
    }

    #[test]
    fn background_keeps_everyone_connected_ish() {
        let g = HubAndSpoke {
            n: 2000,
            hubs: 2,
            hub_coverage: 0.8,
            background_degree: 2.0,
        }
        .generate(2)
        .unwrap();
        let isolated = g.out_degrees().iter().filter(|&&d| d == 0).count();
        assert!(isolated < 200, "isolated = {isolated}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = HubAndSpoke {
            n: 800,
            hubs: 2,
            hub_coverage: 0.3,
            background_degree: 1.5,
        };
        assert_eq!(cfg.generate(5).unwrap(), cfg.generate(5).unwrap());
        assert_ne!(cfg.generate(5).unwrap(), cfg.generate(6).unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one hub")]
    fn rejects_zero_hubs() {
        let _ = HubAndSpoke {
            n: 10,
            hubs: 0,
            hub_coverage: 0.5,
            background_degree: 1.0,
        }
        .generate(0);
    }
}
