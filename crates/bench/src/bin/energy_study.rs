//! **Extension**: energy accounting — DRAM transfer energy dominates
//! memory-bound kernels, so the paper's traffic reductions are also
//! energy reductions. This study prices each ordering's SpMV in joules
//! using round GDDR6-class constants (see `gpumodel::EnergyModel`).

use commorder::gpumodel::EnergyModel;
use commorder::prelude::*;
use commorder_bench::{figure2_techniques, Harness};

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let model = EnergyModel::default();

    let mut techniques = figure2_techniques(harness.random_seed);
    techniques.push(Box::new(RabbitPlusPlus::new()));
    let spec = harness.spec(techniques);
    let result = spec.run(&harness.engine()).expect("valid corpus grid");
    eprintln!("[energy] engine: {}", result.stats.summary());
    let kernel = result.kernels[0];

    let mut table = Table::new(
        "Mean SpMV energy per execution (GDDR6-class constants)",
        vec![
            "technique".into(),
            "total (mJ)".into(),
            "DRAM share".into(),
            "vs RABBIT++".into(),
        ],
    );
    let mut totals: Vec<f64> = Vec::new();
    let mut shares: Vec<f64> = Vec::new();
    for ti in 0..result.techniques.len() {
        let mut joules = Vec::new();
        let mut dram_share = Vec::new();
        for (mi, named) in spec.matrices.iter().enumerate() {
            let run = &result.run_for(mi, ti).run;
            let e = model.energy(
                kernel,
                named.matrix.nnz() as u64,
                run.dram_bytes,
                run.stats.accesses,
                harness.gpu.l2.line_bytes,
            );
            joules.push(e.total());
            dram_share.push(e.dram_fraction());
        }
        totals.push(arith_mean_ratio(&joules).unwrap_or(f64::NAN));
        shares.push(arith_mean_ratio(&dram_share).unwrap_or(f64::NAN));
    }
    let baseline = *totals.last().expect("non-empty technique list");
    for (ti, technique) in result.techniques.iter().enumerate() {
        table.add_row(vec![
            technique.clone(),
            format!("{:.3}", totals[ti] * 1e3),
            Table::percent(shares[ti]),
            Table::ratio(totals[ti] / baseline),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: the energy ranking mirrors the traffic ranking (DRAM transfers\n\
         carry most of the energy at SpMV's arithmetic intensity), so RABBIT++'s\n\
         traffic wins are equally energy wins — a free extra conclusion from the\n\
         paper's methodology."
    );
}
