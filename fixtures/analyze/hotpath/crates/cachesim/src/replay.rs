//! The `replay` seed: every flagged allocation shape in one loop.

/// Seed: its bare name is in the default hot-path seed set.
pub fn replay(trace: &[u32]) -> usize {
    let mut total = 0;
    for &t in trace {
        let scratch = vec![t; 4];
        let label = format!("acc-{t}");
        let mut line = String::with_capacity(8);
        let doubled = trace.iter().map(|x| x * 2).collect::<Vec<u32>>();
        line.push('x');
        total += scratch.len() + label.len() + line.len() + doubled.len();
        total += crate::helper::step(t);
    }
    total
}
