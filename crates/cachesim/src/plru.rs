//! Tree-PLRU (pseudo-LRU) replacement — what real hardware builds
//! instead of true LRU (true LRU needs `log2(ways!)` bits per set;
//! tree-PLRU needs `ways − 1`).
//!
//! The paper models the A6000 L2 as LRU ("closely models"); this module
//! lets the `ablation_cache` family check that conclusions survive the
//! difference between the model and a hardware-realistic policy.
//!
//! Statistics match [`LruCache`](crate::LruCache) field-for-field so the
//! two simulators are directly comparable.

use std::collections::HashSet;

use crate::trace::Access;
use crate::{CacheConfig, CacheStats};

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    dirty: bool,
    reuses: u32,
    valid: bool,
}

/// Set-associative cache with tree-PLRU replacement.
///
/// Associativity must be a power of two (the PLRU tree is complete).
#[derive(Debug, Clone)]
pub struct PlruCache {
    config: CacheConfig,
    ways: Vec<Way>,
    /// Per-set PLRU tree bits (`assoc - 1` internal nodes, bit = which
    /// half was used less recently: 0 = left half is colder).
    tree: Vec<bool>,
    assoc: usize,
    stats: CacheStats,
    seen: HashSet<u64>,
}

impl PlruCache {
    /// Creates an empty PLRU cache.
    ///
    /// # Panics
    ///
    /// Panics if associativity is not a power of two, or on a degenerate
    /// geometry (see [`CacheConfig::num_lines`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.associativity.is_power_of_two(),
            "tree-PLRU needs power-of-two associativity"
        );
        let lines = config.num_lines();
        let sets = config.num_sets();
        PlruCache {
            config,
            ways: vec![
                Way {
                    tag: 0,
                    dirty: false,
                    reuses: 0,
                    valid: false,
                };
                lines
            ],
            tree: vec![false; sets * (config.associativity as usize - 1).max(1)],
            assoc: config.associativity as usize,
            stats: CacheStats {
                line_bytes: config.line_bytes,
                ..CacheStats::default()
            },
            seen: HashSet::new(),
        }
    }

    /// Walks the PLRU tree toward the cold leaf of `set`.
    fn victim_of(&self, set: usize) -> usize {
        if self.assoc == 1 {
            return 0;
        }
        let bits = &self.tree[set * (self.assoc - 1)..(set + 1) * (self.assoc - 1)];
        let mut node = 0usize; // root
        loop {
            let go_right = bits[node];
            let child = 2 * node + 1 + usize::from(go_right);
            if child >= self.assoc - 1 {
                // Leaf level: leaf index = child - (assoc - 1).
                return child - (self.assoc - 1);
            }
            node = child;
        }
    }

    /// Flips the tree bits along `way`'s path so the path points *away*
    /// from it (marking it most-recently used).
    fn touch(&mut self, set: usize, way: usize) {
        if self.assoc == 1 {
            return;
        }
        let base = set * (self.assoc - 1);
        // Walk up from the leaf.
        let mut node = way + (self.assoc - 1); // leaf's tree index
        while node > 0 {
            let parent = (node - 1) / 2;
            let is_right_child = node == 2 * parent + 2;
            // Point the parent at the *other* half.
            self.tree[base + parent] = !is_right_child;
            node = parent;
        }
    }

    /// Simulates one access; returns `true` on a hit.
    pub fn access(&mut self, access: Access) -> bool {
        self.stats.accesses += 1;
        let (set, tag) = self.config.set_and_tag(access.addr());
        let base = set * self.assoc;
        if let Some(way) =
            (0..self.assoc).find(|&w| self.ways[base + w].valid && self.ways[base + w].tag == tag)
        {
            let slot = &mut self.ways[base + way];
            slot.reuses += 1;
            slot.dirty |= access.is_write();
            self.stats.hits += 1;
            self.touch(set, way);
            return true;
        }
        if self.seen.insert(tag) {
            self.stats.compulsory_misses += 1;
        }
        if access.is_write() {
            self.stats.write_alloc_misses += 1;
        } else {
            self.stats.fill_misses += 1;
        }
        self.stats.fills += 1;
        let way = match (0..self.assoc).find(|&w| !self.ways[base + w].valid) {
            Some(w) => w,
            None => {
                let w = self.victim_of(set);
                let victim = self.ways[base + w];
                self.stats.evictions += 1;
                if victim.reuses == 0 {
                    self.stats.dead_lines += 1;
                }
                if victim.dirty {
                    self.stats.writebacks += 1;
                }
                w
            }
        };
        self.ways[base + way] = Way {
            tag,
            dirty: access.is_write(),
            reuses: 0,
            valid: true,
        };
        self.touch(set, way);
        false
    }

    /// Streams every access of `source` through the cache (mirror of
    /// [`LruCache::consume`](crate::LruCache::consume)).
    pub fn consume<S: crate::source::TraceSource + ?Sized>(&mut self, source: &S) {
        source.replay(&mut |acc| {
            self.access(acc);
        });
    }

    /// Flushes and returns the statistics (mirror of
    /// [`LruCache::finish`](crate::LruCache::finish)).
    #[must_use]
    pub fn finish(mut self) -> CacheStats {
        for way in &self.ways {
            if way.valid {
                if way.dirty {
                    self.stats.writebacks += 1;
                }
                if way.reuses == 0 {
                    self.stats.dead_lines += 1;
                }
            }
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruCache;

    fn read(addr: u64) -> Access {
        Access::read(addr)
    }

    fn cfg(ways: u32) -> CacheConfig {
        CacheConfig {
            capacity_bytes: u64::from(ways) * 32,
            line_bytes: 32,
            associativity: ways,
        }
    }

    #[test]
    fn hits_on_resident_lines() {
        let mut c = PlruCache::new(cfg(4));
        assert!(!c.access(read(0)));
        assert!(c.access(read(0)));
        assert!(c.access(read(16)));
        let s = c.finish();
        assert_eq!(s.hits, 2);
        assert_eq!(s.fill_misses, 1);
    }

    #[test]
    fn plru_equals_lru_for_two_ways() {
        // With 2 ways tree-PLRU and true LRU are the same policy.
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let trace: Vec<Access> = (0..2000)
            .map(|_| Access::new((next() % 8) * 32, next() % 5 == 0))
            .collect();
        let mut plru = PlruCache::new(cfg(2));
        let mut lru = LruCache::new(cfg(2));
        for &a in &trace {
            assert_eq!(plru.access(a), lru.access(a));
        }
        assert_eq!(plru.finish(), lru.finish());
    }

    #[test]
    fn plru_misses_close_to_lru_for_wider_sets() {
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let trace: Vec<Access> = (0..20_000).map(|_| read((next() % 24) * 32)).collect();
        let mut plru = PlruCache::new(cfg(16));
        let mut lru = LruCache::new(cfg(16));
        for &a in &trace {
            plru.access(a);
            lru.access(a);
        }
        let (p, l) = (plru.finish(), lru.finish());
        let ratio = p.misses() as f64 / l.misses() as f64;
        assert!(
            (0.8..=1.3).contains(&ratio),
            "plru {} vs lru {} (ratio {ratio})",
            p.misses(),
            l.misses()
        );
    }

    #[test]
    fn victim_walk_covers_all_ways() {
        // Filling a set then repeatedly missing must cycle through
        // victims without panicking and keep exactly `ways` resident.
        let mut c = PlruCache::new(cfg(8));
        for i in 0..64u64 {
            c.access(read(i * 32));
        }
        let s = c.finish();
        assert_eq!(s.fills, 64);
        assert_eq!(s.evictions, 64 - 8);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let _ = PlruCache::new(CacheConfig {
            capacity_bytes: 96,
            line_bytes: 32,
            associativity: 3,
        });
    }
}
