//! Property tests for the lexer: lex → re-emit → lex is a fixed point.
//!
//! Sources are composed from fragments chosen to sit on the lexer's
//! edge cases (raw strings, nested block comments, lifetimes next to
//! char literals, byte strings, exponent-bearing numbers). For every
//! composition the token spans must partition the input exactly, the
//! re-emitted text (the concatenation of token texts) must equal the
//! input byte-for-byte, and re-lexing that text must reproduce the
//! same token stream — the lossless invariant every analysis pass
//! builds on.

use commorder_analyze::lexer::lex;
use commorder_check::propcheck::{run_cases, DEFAULT_CASES};
use commorder_synth::rng::Rng;

/// Fragments that exercise every tricky lexer path. Each is valid on
/// its own and stays valid under concatenation with the separators
/// below.
const FRAGMENTS: &[&str] = &[
    "let x = 1;",
    "r#\"raw \\ not an escape \"inner\" \"#",
    "r##\"double-hash \"# still inside\"##",
    "br#\"byte raw\"#",
    "b\"bytes \\x7f\"",
    "c\"c string\"",
    "/* outer /* nested */ still outer */",
    "/// doc comment\n",
    "//! inner doc\n",
    "//// plain, not doc\n",
    "/** block doc */",
    "/*** plain block ***/",
    "// line comment with \"quote\n",
    "'a'",
    "'\\''",
    "'\\n'",
    "b'x'",
    "&'static str",
    "fn f<'g>() {}",
    "1_000.25e-3",
    "0xFF_u8",
    "0b1010",
    "1.0e+9",
    "0.5.sqrt()",
    "ident_with_underscores",
    "r#match",
    "\"string with // comment and /* block */ inside\"",
    "\"escaped quote \\\" and backslash \\\\\"",
    "::<>",
    "#[cfg(test)]",
    "macro_rules! m { () => {} }",
];

/// Separators that keep adjacent fragments from gluing into different
/// tokens in ways that would change the partition (e.g. an ident
/// directly against a number).
const SEPARATORS: &[&str] = &[" ", "\n", "\t", " ; ", "\n\n"];

/// Asserts the lossless invariant for `src` and returns the re-lex of
/// the re-emitted text for stream comparison.
fn assert_lossless(src: &str) {
    let tokens = lex(src);
    // Spans partition 0..len.
    let mut pos = 0;
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap before {:?}", t.kind);
        assert!(t.end >= t.start);
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens do not cover the input");
    // Re-emit equals input.
    let reemitted: String = tokens.iter().map(|t| t.text(src)).collect();
    assert_eq!(reemitted, src, "concat of token texts must be the input");
    // Re-lex is a fixed point: same kinds and spans.
    let relexed = lex(&reemitted);
    assert_eq!(relexed.len(), tokens.len(), "token count changed on relex");
    for (a, b) in tokens.iter().zip(&relexed) {
        assert_eq!((a.kind, a.start, a.end), (b.kind, b.start, b.end));
    }
}

#[test]
fn composed_fragments_round_trip() {
    run_cases("lexer-round-trip", DEFAULT_CASES, |rng: &mut Rng| {
        let parts = 1 + rng.gen_range(12) as usize;
        let mut src = String::new();
        if rng.gen_bool(0.1) {
            src.push_str("#!/usr/bin/env rust\n");
        }
        for i in 0..parts {
            if i > 0 {
                let sep = SEPARATORS[rng.gen_range(SEPARATORS.len() as u64) as usize];
                src.push_str(sep);
            }
            let frag = FRAGMENTS[rng.gen_range(FRAGMENTS.len() as u64) as usize];
            src.push_str(frag);
        }
        assert_lossless(&src);
    });
}

#[test]
fn every_fragment_round_trips_alone() {
    for frag in FRAGMENTS {
        assert_lossless(frag);
    }
}

#[test]
fn random_byte_soup_stays_lossless() {
    // The lexer must never panic or lose bytes even on garbage: any
    // unrecognized byte becomes an Unknown token, and unterminated
    // literals extend to end of input.
    run_cases("lexer-byte-soup", DEFAULT_CASES, |rng: &mut Rng| {
        let len = rng.gen_range(64) as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            // Printable ASCII plus the quote/backslash/comment bytes
            // most likely to confuse a scanner.
            let b = match rng.gen_range(4) {
                0 => b'"',
                1 => b'\'',
                2 => *b"/*\\#r".get(rng.gen_range(5) as usize).unwrap_or(&b'/'),
                _ => 32 + rng.gen_u32(95) as u8,
            };
            bytes.push(b);
        }
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_lossless(&src);
    });
}
