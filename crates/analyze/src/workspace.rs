//! Workspace discovery and pass orchestration.
//!
//! [`analyze_workspace`] walks `crates/*/src` (plus the root package),
//! lexes every file once, derives the structural facts the passes
//! share (test regions, `use` paths, module roles), runs the four
//! analysis passes, applies the allowlist, and returns a sorted
//! [`AnalysisReport`].

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph;
use crate::codes;
use crate::concurrency;
use crate::determinism;
use crate::effects;
use crate::findings::{AnalysisReport, Finding, Severity};
use crate::hotpath;
use crate::items;
use crate::layering;
use crate::lexer;
use crate::source_rules::{self, SourceContext};
use crate::telemetry_names;

pub use crate::model::{
    CallGraphReport, CrateData, EdgeAnchor, EffectRow, EffectsReport, FileData, FileRole, ReachNode,
};

/// Analyzer configuration: the declared layer table, quiet-crate set,
/// and workspace-relative special paths.
pub struct AnalyzerConfig {
    /// Crate directory name → layer height. Every edge must go from a
    /// strictly higher layer to a strictly lower one.
    pub layers: BTreeMap<String, u32>,
    /// Crates whose library code must not print (`XT0006`).
    pub quiet_crates: BTreeSet<String>,
    /// Workspace-relative path of the allowlist file.
    pub allowlist_rel: String,
    /// Workspace-relative path of the telemetry-name registry.
    pub registry_rel: String,
    /// Crates audited by the concurrency pass (`XT09xx`).
    pub engine_crates: BTreeSet<String>,
    /// Bare function names whose reachability closure is the hot path
    /// for the allocation lint (`XT08xx`).
    pub hot_seed_fns: BTreeSet<String>,
    /// Display names (`Type::fn`) seeding the worker-reachability
    /// rules alongside every `spawn` closure.
    pub worker_seed_fns: BTreeSet<String>,
    /// Bare function names whose reachability closure is the
    /// per-access path for the inferred-allocation rule (`XT1002`) —
    /// the hot seeds minus `reorder`, whose amortized allocation the
    /// paper justifies.
    pub peraccess_seed_fns: BTreeSet<String>,
    /// Crates declared free of I/O effects (`XT1005`).
    pub pure_crates: BTreeSet<String>,
}

impl Default for AnalyzerConfig {
    /// The commorder workspace's declared architecture.
    fn default() -> Self {
        let layers = [
            ("analyze", 0),
            ("obs", 0),
            ("sparse", 0),
            ("cachesim", 1),
            ("exec", 1),
            ("reorder", 2),
            ("synth", 1),
            ("gpumodel", 2),
            ("check", 3),
            ("core", 4),
            ("bench", 5),
            ("root", 5),
            ("xtask", 5),
        ];
        let quiet = [
            "analyze", "cachesim", "exec", "gpumodel", "obs", "reorder", "sparse", "synth",
        ];
        let hot_seeds = [
            "consume",
            "reorder",
            "replay",
            "simulate",
            "simulate_belady",
        ];
        AnalyzerConfig {
            layers: layers.iter().map(|&(n, l)| (n.to_string(), l)).collect(),
            quiet_crates: quiet.iter().map(|&n| n.to_string()).collect(),
            allowlist_rel: "analyze-allowlist.txt".to_string(),
            registry_rel: "crates/obs/src/names.rs".to_string(),
            engine_crates: ["exec".to_string()].into_iter().collect(),
            hot_seed_fns: hot_seeds.iter().map(|&n| n.to_string()).collect(),
            worker_seed_fns: ["Engine::map".to_string()].into_iter().collect(),
            peraccess_seed_fns: ["consume", "replay", "simulate", "simulate_belady"]
                .iter()
                .map(|&n| n.to_string())
                .collect(),
            pure_crates: ["cachesim", "gpumodel", "reorder", "sparse"]
                .iter()
                .map(|&n| n.to_string())
                .collect(),
        }
    }
}

/// Runs all passes over the workspace rooted at `root` and returns the
/// sorted report. `Err` means the root is not an analyzable workspace
/// (unreadable root manifest or `crates/` directory).
pub fn analyze_workspace(root: &Path, config: &AnalyzerConfig) -> Result<AnalysisReport, String> {
    let root_manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read {}: {e}", root.join("Cargo.toml").display()))?;

    let mut findings = Vec::new();
    if !root_manifest.contains("[workspace.lints") {
        findings.push(Finding::file_scoped(
            codes::WORKSPACE_LINTS,
            Severity::Error,
            "Cargo.toml",
            "workspace manifest must declare the [workspace.lints] deny-list".to_string(),
        ));
    }

    let crates = discover(root, &root_manifest)?;

    // Manifest opt-ins and per-file source rules.
    for c in &crates {
        let manifest_text = fs::read_to_string(root.join(&c.manifest_rel)).unwrap_or_default();
        if !has_lints_opt_in(&manifest_text) {
            findings.push(Finding::file_scoped(
                codes::MANIFEST_LINTS,
                Severity::Error,
                &c.manifest_rel,
                "crate must opt into the workspace lint table ([lints] workspace = true)"
                    .to_string(),
            ));
        }
        let is_quiet_crate = config.quiet_crates.contains(&c.dir_name);
        for f in &c.files {
            findings.extend(source_rules::scan(&SourceContext {
                src: &f.src,
                tokens: &f.tokens,
                rel: &f.rel,
                is_bin: f.is_bin,
                is_quiet: is_quiet_crate && !f.is_bin,
                test_ranges: &f.test_ranges,
                macro_ranges: &f.macro_ranges,
            }));
            if f.rel.ends_with("/src/lib.rs") {
                findings.extend(source_rules::check_lib_header(&f.src, &f.tokens, &f.rel));
            }
        }
    }

    // Layering + cycles.
    let lib_index: BTreeMap<&str, usize> = crates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.lib_name.as_str(), i))
        .collect();
    let crate_edges = collect_crate_edges(&crates, &lib_index);
    findings.extend(layering::check_crates(
        &crates,
        &crate_edges,
        &config.layers,
    ));
    for c in &crates {
        let module_edges = collect_module_edges(c);
        let module_files: BTreeMap<String, String> = c
            .files
            .iter()
            .filter_map(|f| match &f.role {
                FileRole::Module(m) => Some((m.clone(), f.rel.clone())),
                _ => None,
            })
            .fold(BTreeMap::new(), |mut map, (m, rel)| {
                map.entry(m).or_insert(rel);
                map
            });
        findings.extend(layering::check_modules(
            &c.dir_name,
            &module_files,
            &module_edges,
        ));
    }

    // Determinism + telemetry.
    let reach_edges = collect_reach_edges(&crates, &lib_index);
    findings.extend(determinism::check(&crates, &reach_edges));
    findings.extend(telemetry_names::check(&crates, &config.registry_rel));

    // Semantic layer: call graph, hot-path allocations, concurrency,
    // and the interprocedural effect lattice.
    let graph = callgraph::build(&crates, &config.hot_seed_fns, &config.worker_seed_fns);
    findings.extend(hotpath::check(&crates, &graph));
    findings.extend(concurrency::check(&crates, &graph, &config.engine_crates));
    let fx = effects::compute(&crates, &graph);
    findings.extend(effects::check(
        &crates,
        &graph,
        &fx,
        &config.peraccess_seed_fns,
        &config.engine_crates,
        &config.pure_crates,
    ));

    // Allowlist: suppress justified findings, then report hygiene.
    findings = apply_allowlist(root, &config.allowlist_rel, findings);

    let mut report = AnalysisReport {
        findings,
        callgraph: Some(graph.to_report(&crates)),
        effects: Some(fx.to_report()),
    };
    report.finish();
    Ok(report)
}

/// Returns the allowlist text with the given 1-based lines removed —
/// the mechanical fix for `XT0702` (entries that suppressed nothing).
/// Line numbers come straight from the `XT0702` findings' `line`
/// fields; unknown numbers are ignored.
#[must_use]
pub fn prune_allowlist(text: &str, stale_lines: &BTreeSet<u32>) -> String {
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        let line_no = u32::try_from(i + 1).unwrap_or(u32::MAX);
        if stale_lines.contains(&line_no) {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Discovers and lexes the workspace crates without running any pass —
/// the entry point `xtask bench` uses to time the semantic passes in
/// isolation. `Err` mirrors [`analyze_workspace`]'s discovery errors.
pub fn load_crates(root: &Path) -> Result<Vec<CrateData>, String> {
    let root_manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read {}: {e}", root.join("Cargo.toml").display()))?;
    discover(root, &root_manifest)
}

/// `true` when a manifest opts into `[lints] workspace = true`.
fn has_lints_opt_in(manifest: &str) -> bool {
    manifest
        .split("[lints]")
        .nth(1)
        .is_some_and(|after| after.trim_start().starts_with("workspace = true"))
}

/// Discovers and loads every crate under `crates/`, plus the root
/// package when the root manifest declares one.
fn discover(root: &Path, root_manifest: &str) -> Result<Vec<CrateData>, String> {
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();

    let mut crates = Vec::new();
    for dir in &dirs {
        let dir_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest_rel = format!("crates/{dir_name}/Cargo.toml");
        let manifest_text = fs::read_to_string(dir.join("Cargo.toml")).unwrap_or_default();
        crates.push(load_crate(
            root,
            dir,
            dir_name,
            manifest_rel,
            &manifest_text,
        ));
    }
    if root_manifest.contains("[package]") {
        crates.push(load_crate(
            root,
            root,
            "root".to_string(),
            "Cargo.toml".to_string(),
            root_manifest,
        ));
    }
    Ok(crates)
}

/// Loads one crate: manifest names, sources, and derived structure.
fn load_crate(
    root: &Path,
    dir: &Path,
    dir_name: String,
    manifest_rel: String,
    manifest_text: &str,
) -> CrateData {
    let package = toml_name(manifest_text, "[package]").unwrap_or_else(|| dir_name.clone());
    let lib_name = toml_name(manifest_text, "[lib]").unwrap_or_else(|| package.replace('-', "_"));

    let mut files = Vec::new();
    for path in rust_sources(&dir.join("src")) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let tokens = lexer::lex(&src);
        let test_ranges = items::test_regions(&src, &tokens);
        let macro_ranges = items::macro_rules_regions(&src, &tokens);
        let uses = items::use_paths(&src, &tokens, &test_ranges);
        let skip: Vec<(usize, usize)> = test_ranges
            .iter()
            .chain(macro_ranges.iter())
            .copied()
            .collect();
        let refs = items::path_refs(&src, &tokens, &skip);
        let (role, is_bin, cycle_source) = classify(&rel);
        files.push(FileData {
            rel,
            role,
            is_bin,
            cycle_source,
            src,
            tokens,
            test_ranges,
            macro_ranges,
            uses,
            refs,
        });
    }

    let modules: BTreeSet<String> = files
        .iter()
        .filter_map(|f| match &f.role {
            FileRole::Module(m) => Some(m.clone()),
            _ => None,
        })
        .collect();
    let mut reexports = BTreeMap::new();
    for f in files.iter().filter(|f| f.role == FileRole::Facade) {
        for u in f.uses.iter().filter(|u| u.is_pub) {
            let segs = strip_crate_prefix(&u.segments);
            if segs.len() >= 2 && modules.contains(segs[0]) {
                if let Some(last) = segs.last() {
                    reexports.insert((*last).to_string(), segs[0].to_string());
                }
            }
        }
    }

    CrateData {
        dir_name,
        lib_name,
        manifest_rel,
        modules,
        reexports,
        files,
    }
}

/// First `name = "…"` value inside the given TOML section, if any.
fn toml_name(manifest: &str, section: &str) -> Option<String> {
    let after = manifest.split(section).nth(1)?;
    for line in after.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            return None; // next section
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                return Some(v.to_string());
            }
        }
    }
    None
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Role, bin-ness, and cycle-source-ness of a file from its path.
fn classify(rel: &str) -> (FileRole, bool, bool) {
    let under_src = rel.split_once("src/").map_or(rel, |(_, after)| after);
    let parts: Vec<&str> = under_src.split('/').collect();
    match parts.as_slice() {
        ["lib.rs"] => (FileRole::Facade, false, false),
        ["main.rs"] => (FileRole::Facade, true, false),
        ["bin", ..] => (FileRole::Bin, true, false),
        [file] => {
            let module = file.trim_end_matches(".rs").to_string();
            (FileRole::Module(module), false, true)
        }
        [dir, .., last] => {
            let cycle_source = *last != "mod.rs";
            (FileRole::Module((*dir).to_string()), false, cycle_source)
        }
        [] => (FileRole::Facade, false, false),
    }
}

/// Drops a leading `crate`/`self` segment.
fn strip_crate_prefix(segments: &[String]) -> Vec<&str> {
    let mut segs: Vec<&str> = segments.iter().map(String::as_str).collect();
    if matches!(segs.first(), Some(&"crate") | Some(&"self")) {
        segs.remove(0);
    }
    segs
}

/// Inter-crate edges from `use` paths and path chains, each with the
/// anchor of its first occurrence.
fn collect_crate_edges(
    crates: &[CrateData],
    lib_index: &BTreeMap<&str, usize>,
) -> BTreeMap<(usize, usize), EdgeAnchor> {
    let mut edges: BTreeMap<(usize, usize), EdgeAnchor> = BTreeMap::new();
    for (ci, c) in crates.iter().enumerate() {
        for f in &c.files {
            let mut note = |head: &str, line: u32, col: u32| {
                if let Some(&di) = lib_index.get(head) {
                    if di != ci {
                        edges.entry((ci, di)).or_insert(EdgeAnchor {
                            file: f.rel.clone(),
                            line,
                            col,
                        });
                    }
                }
            };
            for u in &f.uses {
                if let Some(head) = u.segments.first() {
                    note(head, u.line, u.col);
                }
            }
            for r in &f.refs {
                note(&r.head, r.line, r.col);
            }
        }
    }
    edges
}

/// Resolves an intra-crate reference (`crate::<second>…`) to a
/// top-level module, through the facade re-export map if needed.
fn resolve_module<'a>(c: &'a CrateData, second: Option<&str>) -> Option<&'a str> {
    let s = second?;
    if c.modules.contains(s) {
        return c.modules.get(s).map(String::as_str);
    }
    c.reexports.get(s).map(String::as_str)
}

/// Intra-crate module edges for the cycle graph: facade files are not
/// sources, bins are excluded entirely.
fn collect_module_edges(c: &CrateData) -> BTreeMap<(String, String), EdgeAnchor> {
    let mut edges: BTreeMap<(String, String), EdgeAnchor> = BTreeMap::new();
    for f in &c.files {
        let FileRole::Module(m) = &f.role else {
            continue;
        };
        if !f.cycle_source {
            continue;
        }
        for (segs, line, col) in intra_refs(f) {
            if let Some(target) = resolve_module(c, segs.first().copied()) {
                if target != m {
                    edges
                        .entry((m.clone(), target.to_string()))
                        .or_insert(EdgeAnchor {
                            file: f.rel.clone(),
                            line,
                            col,
                        });
                }
            }
        }
    }
    edges
}

/// `crate::`-rooted references of one file: (segments after `crate`,
/// line, col).
fn intra_refs(f: &FileData) -> Vec<(Vec<&str>, u32, u32)> {
    let mut out = Vec::new();
    for u in &f.uses {
        if matches!(
            u.segments.first().map(String::as_str),
            Some("crate") | Some("self")
        ) {
            let segs: Vec<&str> = u.segments[1..].iter().map(String::as_str).collect();
            if !segs.is_empty() {
                out.push((segs, u.line, u.col));
            }
        }
    }
    for r in &f.refs {
        if r.head == "crate" {
            if let Some(second) = &r.second {
                out.push((vec![second.as_str()], r.line, r.col));
            }
        }
    }
    out
}

/// The determinism reachability graph over `(crate, module)` nodes:
/// intra-crate edges (facades included as sources) plus cross-crate
/// edges resolved through the target's modules and re-exports.
fn collect_reach_edges(
    crates: &[CrateData],
    lib_index: &BTreeMap<&str, usize>,
) -> BTreeSet<(ReachNode, ReachNode)> {
    let mut edges = BTreeSet::new();
    for (ci, c) in crates.iter().enumerate() {
        for f in &c.files {
            if f.is_bin {
                continue;
            }
            let from: ReachNode = match &f.role {
                FileRole::Facade => (ci, None),
                FileRole::Module(m) => (ci, Some(m.clone())),
                FileRole::Bin => continue,
            };
            for (segs, _, _) in intra_refs(f) {
                if let Some(target) = resolve_module(c, segs.first().copied()) {
                    edges.insert((from.clone(), (ci, Some(target.to_string()))));
                }
            }
            let mut cross = |head: &str, second: Option<&str>| {
                if let Some(&di) = lib_index.get(head) {
                    if di != ci {
                        let to = match resolve_module(&crates[di], second) {
                            Some(m) => (di, Some(m.to_string())),
                            None => (di, None),
                        };
                        edges.insert((from.clone(), to));
                    }
                }
            };
            for u in &f.uses {
                if let Some(head) = u.segments.first() {
                    cross(head, u.segments.get(1).map(String::as_str));
                }
            }
            for r in &f.refs {
                cross(&r.head, r.second.as_deref());
            }
            // Crate roots may address their modules with uniform paths
            // (`pub use event::Event;`), so a head naming a module is
            // an intra-crate edge from the facade.
            if f.role == FileRole::Facade {
                for u in &f.uses {
                    if let Some(head) = u.segments.first() {
                        if c.modules.contains(head) {
                            edges.insert((from.clone(), (ci, Some(head.clone()))));
                        }
                    }
                }
                for r in &f.refs {
                    if c.modules.contains(&r.head) {
                        edges.insert((from.clone(), (ci, Some(r.head.clone()))));
                    }
                }
            }
        }
    }
    edges
}

/// Parses and applies the allowlist: findings matching a
/// `(code, file)` entry are suppressed; malformed entries are
/// `XT0701` errors and entries that suppressed nothing are `XT0702`
/// warnings.
fn apply_allowlist(root: &Path, allowlist_rel: &str, findings: Vec<Finding>) -> Vec<Finding> {
    let path = root.join(allowlist_rel);
    let Ok(text) = fs::read_to_string(&path) else {
        return findings; // no allowlist: nothing to apply
    };
    struct Entry {
        line_no: u32,
        code: String,
        file: String,
        used: bool,
    }
    let mut entries = Vec::new();
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = u32::try_from(i + 1).unwrap_or(u32::MAX);
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let code = words.next().unwrap_or_default();
        let file = words.next().unwrap_or_default();
        let justification = words.next();
        let code_ok = code.len() == 6
            && code.starts_with("XT")
            && code[2..].chars().all(|ch| ch.is_ascii_digit());
        if !code_ok || file.is_empty() || justification.is_none() {
            out.push(Finding {
                code: codes::ALLOWLIST_MALFORMED,
                severity: Severity::Error,
                file: allowlist_rel.to_string(),
                line: line_no,
                col_start: 1,
                col_end: 1,
                message: format!(
                    "malformed allowlist entry (want `XTnnnn <file> <justification…>`): {line}"
                ),
            });
            continue;
        }
        entries.push(Entry {
            line_no,
            code: code.to_string(),
            file: file.to_string(),
            used: false,
        });
    }
    for f in findings {
        let suppressed = entries
            .iter_mut()
            .find(|e| e.code == f.code && e.file == f.file);
        match suppressed {
            Some(e) => e.used = true,
            None => out.push(f),
        }
    }
    for e in &entries {
        if !e.used {
            out.push(Finding {
                code: codes::ALLOWLIST_UNUSED,
                severity: Severity::Warning,
                file: allowlist_rel.to_string(),
                line: e.line_no,
                col_start: 1,
                col_end: 1,
                message: format!(
                    "allowlist entry suppressed nothing; remove it: {} {}",
                    e.code, e.file
                ),
            });
        }
    }
    out
}
