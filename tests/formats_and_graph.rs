//! Integration tests spanning the format layer (ELL/SELL), the graph
//! kernels and the cache simulator: numerics agree across formats,
//! traces are consistent with kernel semantics, and reordering helps the
//! graph kernels just as it helps SpMV.

use commorder::cachesim::format_trace::{EllTrace, SellTrace};
use commorder::cachesim::graph_trace::{BfsTrace, PagerankTrace};
use commorder::prelude::*;
use commorder::sparse::graph::{bfs_levels, pagerank, UNREACHED};
use commorder::sparse::{kernels, EllMatrix, SellMatrix};
use commorder::synth::generators::{CommunityHub, PlantedPartition};

fn community_matrix() -> CsrMatrix {
    let tidy = PlantedPartition::uniform(2048, 32, 10.0, 0.05)
        .generate(71)
        .expect("valid generator config");
    let scramble = RandomOrder::new(5).reorder(&tidy).expect("square");
    tidy.permute_symmetric(&scramble).expect("validated")
}

#[test]
fn all_formats_compute_the_same_spmv() {
    let csr = community_matrix();
    let x: Vec<f32> = (0..csr.n_cols()).map(|i| ((i % 13) as f32) - 6.0).collect();
    let reference = kernels::spmv_csr(&csr, &x).expect("dims");
    let ell = EllMatrix::from_csr(&csr).expect("fits");
    let sell = SellMatrix::from_csr(&csr, 32, 128).expect("valid geometry");
    let coo = CooMatrix::from(&csr);
    for (name, result) in [
        ("ell", ell.spmv(&x).expect("dims")),
        ("sell", sell.spmv(&x).expect("dims")),
        ("coo", kernels::spmv_coo(&coo, &x).expect("dims")),
        (
            "tiled",
            kernels::spmv_csr_tiled(&csr, &x, 100).expect("dims"),
        ),
        ("blocked", kernels::spmv_blocked(&csr, &x, 8).expect("dims")),
    ] {
        for (got, want) in result.iter().zip(&reference) {
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "{name}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn sell_sigma_sort_reduces_padding_on_hubby_matrix() {
    let m = CommunityHub {
        n: 2048,
        communities: 32,
        intra_degree: 8.0,
        hub_fraction: 0.02,
        hub_degree: 30.0,
        mixing: 0.1,
        scramble_ids: true,
    }
    .generate(72)
    .expect("valid generator config");
    let ell = EllMatrix::from_csr(&m).expect("fits");
    let sell_sorted = SellMatrix::from_csr(&m, 32, 512).expect("valid");
    let sell_unsorted = SellMatrix::from_csr(&m, 32, 32).expect("valid");
    assert!(sell_sorted.padded_len() <= sell_unsorted.padded_len());
    assert!(sell_sorted.padded_len() < ell.padded_len());
}

#[test]
fn format_traffic_ordering_matches_padding_ordering() {
    // On a hub-heavy matrix the simulated traffic must rank
    // SELL(sorted) <= SELL(unsorted) <= ELL.
    let m = CommunityHub {
        n: 2048,
        communities: 32,
        intra_degree: 8.0,
        hub_fraction: 0.02,
        hub_degree: 24.0,
        mixing: 0.1,
        scramble_ids: true,
    }
    .generate(73)
    .expect("valid generator config");
    let gpu = GpuSpec::test_scale();
    let run = |source: &dyn TraceSource| {
        let mut cache = LruCache::new(gpu.l2);
        cache.consume(source);
        cache.finish().dram_traffic_bytes()
    };
    let ell = run(&EllTrace::new(&EllMatrix::from_csr(&m).expect("fits")));
    let sorted = run(&SellTrace::new(
        &SellMatrix::from_csr(&m, 32, 512).expect("valid"),
    ));
    let unsorted = run(&SellTrace::new(
        &SellMatrix::from_csr(&m, 32, 32).expect("valid"),
    ));
    assert!(sorted <= unsorted, "sorted {sorted} vs unsorted {unsorted}");
    assert!(unsorted <= ell, "unsorted {unsorted} vs ell {ell}");
}

#[test]
fn pagerank_is_invariant_under_reordering() {
    let m = community_matrix();
    let pr = pagerank(&m, 0.85, 10).expect("square");
    let perm = Rabbit::new().reorder(&m).expect("square");
    let rm = m.permute_symmetric(&perm).expect("validated");
    let pr_reordered = pagerank(&rm, 0.85, 10).expect("square");
    for v in 0..m.n_rows() {
        let moved = pr_reordered[perm.new_of(v) as usize];
        assert!(
            (pr[v as usize] - moved).abs() < 1e-5,
            "rank of vertex {v} changed under reordering"
        );
    }
}

#[test]
fn bfs_levels_are_invariant_under_reordering() {
    let m = community_matrix();
    let source = 17u32;
    let levels = bfs_levels(&m, source).expect("valid source");
    let perm = RabbitPlusPlus::new().reorder(&m).expect("square");
    let rm = m.permute_symmetric(&perm).expect("validated");
    let levels_reordered = bfs_levels(&rm, perm.new_of(source)).expect("valid source");
    for v in 0..m.n_rows() {
        assert_eq!(
            levels[v as usize],
            levels_reordered[perm.new_of(v) as usize],
            "distance of vertex {v} changed"
        );
    }
    assert!(levels.iter().filter(|&&l| l == UNREACHED).count() < m.n_rows() as usize);
}

#[test]
fn reordering_cuts_pagerank_traffic() {
    let m = community_matrix();
    let gpu = GpuSpec::test_scale();
    let run = |matrix: &CsrMatrix| {
        let mut cache = LruCache::new(gpu.l2);
        cache.consume(&PagerankTrace::new(matrix, 2));
        cache.finish().dram_traffic_bytes()
    };
    let random = run(&m);
    let reordered = run(&m
        .permute_symmetric(&Rabbit::new().reorder(&m).expect("square"))
        .expect("validated"));
    assert!(
        reordered * 3 < random * 2,
        "pagerank traffic should drop by >1/3: {random} -> {reordered}"
    );
}

#[test]
fn bfs_trace_writes_match_reachable_set() {
    let m = community_matrix();
    let levels = bfs_levels(&m, 0).expect("valid source");
    let reached = levels.iter().filter(|&&l| l != UNREACHED).count();
    let t = BfsTrace::new(&m, 0).collect_trace();
    // level writes (reached - 1 discoveries) + frontier writes (reached).
    assert_eq!(
        t.iter().filter(|a| a.is_write()).count(),
        (reached - 1) + reached
    );
}
