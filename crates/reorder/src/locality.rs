//! Reordering-quality metrics that need no cache simulation — the
//! "gap measure" style analysis of Barik et al. (IISWC'20) and Esfahani
//! et al. (IISWC'21), which the paper positions itself against in §VII.
//!
//! These are cheap, simulator-free predictors of the locality a given
//! ordering will achieve; the experiment binaries use them to sanity-check
//! simulator results, and downstream users can rank candidate orderings
//! without tracing.

use commorder_sparse::CsrMatrix;

/// Average gap between consecutive column indices within a row
/// (Barik et al.'s intra-row *gap measure*, lower = better spatial
/// locality of `X` accesses). 0 for matrices with no multi-entry rows.
#[must_use]
pub fn mean_intra_row_gap(a: &CsrMatrix) -> f64 {
    let mut total = 0u64;
    let mut count = 0u64;
    for r in 0..a.n_rows() {
        let (cols, _) = a.row(r);
        for w in cols.windows(2) {
            total += u64::from(w[1] - w[0]);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

/// Cache-line utilization of the input vector over a sliding window of
/// `window_rows` consecutive rows: the ratio of *touched elements* to
/// `elements spanned by touched lines` (1.0 = every fetched line fully
/// used). `line_elems` is the number of vector elements per cache line
/// (8 for 32-byte lines of f32).
///
/// This is the simulator-free analogue of Table III's dead-line metric.
///
/// # Panics
///
/// Panics if `window_rows == 0` or `line_elems == 0`.
#[must_use]
pub fn line_utilization(a: &CsrMatrix, window_rows: u32, line_elems: u32) -> f64 {
    assert!(window_rows > 0, "window must be positive");
    assert!(line_elems > 0, "line_elems must be positive");
    if a.n_rows() == 0 || a.nnz() == 0 {
        return 1.0;
    }
    let mut touched_total = 0u64;
    let mut line_elems_total = 0u64;
    let mut window_start = 0u32;
    let mut touched: std::collections::HashSet<u32> = std::collections::HashSet::new();
    while window_start < a.n_rows() {
        let window_end = window_start.saturating_add(window_rows).min(a.n_rows());
        touched.clear();
        for r in window_start..window_end {
            let (cols, _) = a.row(r);
            touched.extend(cols.iter().copied());
        }
        let lines: std::collections::HashSet<u32> =
            touched.iter().map(|&c| c / line_elems).collect();
        touched_total += touched.len() as u64;
        line_elems_total += lines.len() as u64 * u64::from(line_elems);
        window_start = window_end;
    }
    if line_elems_total == 0 {
        1.0
    } else {
        touched_total as f64 / line_elems_total as f64
    }
}

/// Windowed reuse score: fraction of `X` references inside a window of
/// `window_rows` rows that hit an element already referenced in the same
/// window (Esfahani et al.'s temporal-locality flavour; higher = better).
///
/// # Panics
///
/// Panics if `window_rows == 0`.
#[must_use]
pub fn windowed_reuse(a: &CsrMatrix, window_rows: u32) -> f64 {
    assert!(window_rows > 0, "window must be positive");
    if a.nnz() == 0 {
        return 0.0;
    }
    let mut reused = 0u64;
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut window_start = 0u32;
    while window_start < a.n_rows() {
        let window_end = window_start.saturating_add(window_rows).min(a.n_rows());
        seen.clear();
        for r in window_start..window_end {
            let (cols, _) = a.row(r);
            for &c in cols {
                if !seen.insert(c) {
                    reused += 1;
                }
            }
        }
        window_start = window_end;
    }
    reused as f64 / a.nnz() as f64
}

/// Combined scorecard for one ordering of one matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityScore {
    /// [`mean_intra_row_gap`].
    pub intra_row_gap: f64,
    /// [`line_utilization`] at the standard 32-byte/f32 geometry.
    pub line_utilization: f64,
    /// [`windowed_reuse`].
    pub windowed_reuse: f64,
    /// Mean |row − col| (diagonal concentration).
    pub mean_index_distance: f64,
}

impl LocalityScore {
    /// Computes all metrics with a `window_rows`-row window.
    ///
    /// # Panics
    ///
    /// Panics if `window_rows == 0`.
    #[must_use]
    pub fn measure(a: &CsrMatrix, window_rows: u32) -> LocalityScore {
        LocalityScore {
            intra_row_gap: mean_intra_row_gap(a),
            line_utilization: line_utilization(a, window_rows, 8),
            windowed_reuse: windowed_reuse(a, window_rows),
            mean_index_distance: commorder_sparse::stats::mean_index_distance(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomOrder, Reordering};
    use commorder_sparse::CooMatrix;
    use commorder_synth::generators::PlantedPartition;

    fn block_diag() -> CsrMatrix {
        // Two dense 4x4 blocks on the diagonal (no self loops).
        let mut entries = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        entries.push((base + i, base + j, 1.0));
                    }
                }
            }
        }
        CsrMatrix::try_from(CooMatrix::from_entries(8, 8, entries).unwrap()).unwrap()
    }

    #[test]
    fn intra_row_gap_of_dense_blocks_is_one() {
        let a = block_diag();
        // Per 4-row block the gap lists are (1,1), (2,1), (1,2), (1,1):
        // total 10 over 8 gaps -> mean 1.25.
        let gap = mean_intra_row_gap(&a);
        assert!((gap - 1.25).abs() < 1e-12, "gap = {gap}");
    }

    #[test]
    fn line_utilization_perfect_for_contiguous_blocks() {
        let a = block_diag();
        // Window of 4 rows touches exactly one 4-element "line".
        let util = line_utilization(&a, 4, 4);
        assert!((util - 1.0).abs() < 1e-12, "util = {util}");
    }

    #[test]
    fn scrambling_degrades_every_metric() {
        let tidy = PlantedPartition::uniform(512, 16, 8.0, 0.02)
            .generate(91)
            .unwrap();
        let messy = tidy
            .permute_symmetric(&RandomOrder::new(5).reorder(&tidy).unwrap())
            .unwrap();
        let a = LocalityScore::measure(&tidy, 32);
        let b = LocalityScore::measure(&messy, 32);
        assert!(a.intra_row_gap < b.intra_row_gap);
        assert!(a.line_utilization > b.line_utilization);
        assert!(a.mean_index_distance < b.mean_index_distance);
        assert!(a.windowed_reuse >= b.windowed_reuse * 0.9);
    }

    #[test]
    fn windowed_reuse_counts_repeats() {
        // Rows 0 and 1 both reference column 2: one reuse in a 2-row
        // window, 0 in 1-row windows.
        let a = CsrMatrix::try_from(
            CooMatrix::from_entries(3, 3, vec![(0, 2, 1.0), (1, 2, 1.0)]).unwrap(),
        )
        .unwrap();
        assert!((windowed_reuse(&a, 2) - 0.5).abs() < 1e-12);
        assert_eq!(windowed_reuse(&a, 1), 0.0);
    }

    #[test]
    fn empty_matrix_degenerate_values() {
        let a = CsrMatrix::empty(4);
        assert_eq!(mean_intra_row_gap(&a), 0.0);
        assert_eq!(line_utilization(&a, 8, 8), 1.0);
        assert_eq!(windowed_reuse(&a, 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = windowed_reuse(&CsrMatrix::empty(1), 0);
    }
}
