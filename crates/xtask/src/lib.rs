//! Library surface of the workspace-automation crate.
//!
//! The binary (`cargo run -p xtask -- <task>`) drives the offline lint
//! and the unified bench harness; this library holds the parts worth
//! testing in isolation: the [`bench`] report model (schema
//! `commorder-bench.v2`), its renderer/parsers (including the
//! one-release back-compat readers for the retired v1 artifacts), and
//! the tolerance-banded regression comparator behind
//! `xtask bench --compare`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
