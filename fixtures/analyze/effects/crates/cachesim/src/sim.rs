//! Per-access loop whose allocation hides one call away: the lexical
//! hot-path shapes see nothing, the inferred callee mask does.

/// Seed: replays the trace, allocating through `scratch` every access.
pub fn simulate(trace: &[u32]) -> usize {
    let mut hits = 0;
    for &t in trace {
        hits += scratch(t).len();
    }
    hits
}

/// Allocates on every call; it has no loop of its own, so only the
/// interprocedural closure attributes the cost to the caller's loop.
fn scratch(t: u32) -> Vec<u32> {
    vec![t; 8]
}
