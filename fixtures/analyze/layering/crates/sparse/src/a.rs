//! Module `a`: reaches up a layer and sideways into `b`.

use commorder::Experiment;

use crate::b::B;

/// Completes the a -> b -> a module cycle.
pub struct A {
    /// The upward reference.
    pub exp: Experiment,
    /// The sideways reference.
    pub b: B,
}
