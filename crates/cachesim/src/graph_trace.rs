//! Address traces for the graph-analytics kernels (PageRank, BFS) —
//! the "graph analytics" half of the paper's framing.
//!
//! * **PageRank** (pull): per iteration, per vertex — transpose offsets,
//!   in-neighbour coords, the irregular `pr[u]` and `outdeg[u]` gathers,
//!   and the streaming `pr'[v]` store. Rank buffers ping-pong between
//!   iterations, so cross-iteration reuse is visible to the cache.
//! * **BFS** (push, level-synchronous): follows the *actual* frontier —
//!   per frontier vertex, its offsets and neighbour list, the irregular
//!   `level[v]` probe per edge, and a store for each newly discovered
//!   vertex. Data-dependent and sparse per level, unlike SpMV's full
//!   sweeps.
//!
//! Both kernels are exposed as replayable [`TraceSource`]s
//! ([`PagerankTrace`], [`BfsTrace`]): the trace is regenerated per
//! replay, never materialized. [`PagerankTrace::new`] precomputes the
//! transpose once so repeated replays (two-pass Belady) don't redo the
//! O(nnz) transposition; BFS recomputes its frontier per replay, which is
//! deterministic by construction.

use commorder_sparse::{CsrMatrix, ELEM_BYTES};

use crate::source::TraceSource;
use crate::trace::Access;

struct GraphLayout {
    offsets: u64,
    coords: u64,
    rank_a: u64,
    rank_b: u64,
    outdeg: u64,
    level: u64,
    frontier: u64,
    /// Exclusive end of the operand address space (strict-checks bound).
    end: u64,
}

fn graph_layout(n: u64, nnz: u64, line_bytes: u64) -> GraphLayout {
    let align = |addr: u64| addr.div_ceil(line_bytes) * line_bytes;
    let mut cursor = 0u64;
    let mut region = |elems: u64| {
        let base = cursor;
        cursor = align(cursor + elems * ELEM_BYTES);
        base
    };
    let offsets = region(n + 1);
    let coords = region(nnz);
    let rank_a = region(n);
    let rank_b = region(n);
    let outdeg = region(n);
    let level = region(n);
    let frontier = region(n);
    GraphLayout {
        offsets,
        coords,
        rank_a,
        rank_b,
        outdeg,
        level,
        frontier,
        end: cursor,
    }
}

/// Strict-mode audit applied to each streamed access: element-aligned
/// and inside the operand address space.
fn audit_access(name: &str, acc: Access, layout: &GraphLayout) {
    commorder_sparse::debug_validate!(
        acc.addr().is_multiple_of(ELEM_BYTES) && acc.addr() + ELEM_BYTES <= layout.end,
        "{name}: access {:#x} escapes the operand address space (end {:#x})",
        acc.addr(),
        layout.end
    );
}

/// Replayable trace of pull-PageRank rounds over the transpose of the
/// matrix (for the symmetric corpus, `aᵀ = a`). The transpose is built
/// once at construction and shared by every replay.
pub struct PagerankTrace<'a> {
    a: &'a CsrMatrix,
    transpose: CsrMatrix,
    iterations: u32,
}

impl<'a> PagerankTrace<'a> {
    /// A source replaying `iterations` PageRank rounds on `a`.
    #[must_use]
    pub fn new(a: &'a CsrMatrix, iterations: u32) -> Self {
        PagerankTrace {
            a,
            transpose: a.transpose(),
            iterations,
        }
    }
}

impl TraceSource for PagerankTrace<'_> {
    fn len_hint(&self) -> Option<u64> {
        // Per iteration: 2 offset reads + 1 store per vertex, 3 reads per
        // edge entry.
        let n = u64::from(self.a.n_rows());
        let per_iter = 3 * n + 3 * self.a.nnz() as u64;
        Some(u64::from(self.iterations) * per_iter)
    }

    fn replay(&self, raw_sink: &mut dyn FnMut(Access)) {
        let a = self.a;
        let n = u64::from(a.n_rows());
        let layout = graph_layout(n, a.nnz() as u64, 32);
        let mut sink = |acc: Access| {
            audit_access("pagerank_trace", acc, &layout);
            raw_sink(acc);
        };
        for iter in 0..self.iterations {
            // Ping-pong: even iterations read rank_a / write rank_b.
            let (src, dst) = if iter % 2 == 0 {
                (layout.rank_a, layout.rank_b)
            } else {
                (layout.rank_b, layout.rank_a)
            };
            for v in 0..a.n_rows() {
                sink(Access::read(layout.offsets + u64::from(v) * ELEM_BYTES));
                sink(Access::read(
                    layout.offsets + (u64::from(v) + 1) * ELEM_BYTES,
                ));
                let (in_neighbours, _) = self.transpose.row(v);
                let base = self.transpose.row_offsets()[v as usize] as u64;
                for (k, &u) in in_neighbours.iter().enumerate() {
                    sink(Access::read(layout.coords + (base + k as u64) * ELEM_BYTES));
                    // Irregular gathers: pr[u] and outdeg[u].
                    sink(Access::read(src + u64::from(u) * ELEM_BYTES));
                    sink(Access::read(layout.outdeg + u64::from(u) * ELEM_BYTES));
                }
                sink(Access::write(dst + u64::from(v) * ELEM_BYTES));
            }
        }
    }
}

/// Replayable trace of a push BFS from a source vertex, following the
/// real frontier. Each replay re-runs the traversal (deterministic, so
/// every replay emits the identical stream).
pub struct BfsTrace<'a> {
    a: &'a CsrMatrix,
    source: u32,
}

impl<'a> BfsTrace<'a> {
    /// A source replaying a BFS on `a` from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n_rows`.
    #[must_use]
    pub fn new(a: &'a CsrMatrix, source: u32) -> Self {
        assert!(source < a.n_rows(), "source out of range");
        BfsTrace { a, source }
    }
}

impl TraceSource for BfsTrace<'_> {
    fn replay(&self, raw_sink: &mut dyn FnMut(Access)) {
        let a = self.a;
        let n = u64::from(a.n_rows());
        let layout = graph_layout(n, a.nnz() as u64, 32);
        let mut sink = |acc: Access| {
            audit_access("bfs_trace", acc, &layout);
            raw_sink(acc);
        };
        let mut visited = vec![false; a.n_rows() as usize];
        visited[self.source as usize] = true;
        let mut frontier = vec![self.source];
        let mut frontier_cursor = 0u64; // streaming frontier array writes
        sink(Access::write(layout.frontier));
        frontier_cursor += 1;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                sink(Access::read(layout.offsets + u64::from(u) * ELEM_BYTES));
                sink(Access::read(
                    layout.offsets + (u64::from(u) + 1) * ELEM_BYTES,
                ));
                let (neighbours, _) = a.row(u);
                let base = a.row_offsets()[u as usize] as u64;
                for (k, &v) in neighbours.iter().enumerate() {
                    sink(Access::read(layout.coords + (base + k as u64) * ELEM_BYTES));
                    // Irregular probe of level[v]; write on first discovery.
                    sink(Access::read(layout.level + u64::from(v) * ELEM_BYTES));
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        sink(Access::write(layout.level + u64::from(v) * ELEM_BYTES));
                        sink(Access::write(
                            layout.frontier + frontier_cursor * ELEM_BYTES,
                        ));
                        frontier_cursor += 1;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::CooMatrix;

    fn path4() -> CsrMatrix {
        let entries: Vec<_> = (0..3u32)
            .flat_map(|v| [(v, v + 1, 1.0), (v + 1, v, 1.0)])
            .collect();
        CsrMatrix::try_from(CooMatrix::from_entries(4, 4, entries).unwrap()).unwrap()
    }

    fn pagerank_trace(a: &CsrMatrix, iterations: u32) -> Vec<Access> {
        PagerankTrace::new(a, iterations).collect_trace()
    }

    fn bfs_trace(a: &CsrMatrix, source: u32) -> Vec<Access> {
        BfsTrace::new(a, source).collect_trace()
    }

    #[test]
    fn pagerank_trace_per_iteration_shape() {
        let a = path4();
        let one = pagerank_trace(&a, 1);
        let two = pagerank_trace(&a, 2);
        // Per iteration: 2 offset reads + 1 store per vertex, 3 reads per
        // edge entry.
        let per_iter = 4 * 3 + a.nnz() * 3;
        assert_eq!(one.len(), per_iter);
        assert_eq!(two.len(), 2 * per_iter);
        assert_eq!(one.iter().filter(|x| x.is_write()).count(), 4);
        // The hint is exact for PageRank.
        assert_eq!(PagerankTrace::new(&a, 2).len_hint(), Some(two.len() as u64));
    }

    #[test]
    fn pagerank_iterations_ping_pong_buffers() {
        let a = path4();
        let t = pagerank_trace(&a, 2);
        let writes: Vec<u64> = t
            .iter()
            .filter(|x| x.is_write())
            .map(|x| x.addr())
            .collect();
        // First iteration's 4 writes target one buffer, second's another.
        assert_eq!(writes.len(), 8);
        assert!(writes[..4]
            .iter()
            .all(|&w| w >= writes[0] && w < writes[0] + 16));
        assert!(writes[4] != writes[0]);
    }

    #[test]
    fn replays_are_deterministic() {
        let a = path4();
        let source = BfsTrace::new(&a, 0);
        assert_eq!(source.collect_trace(), source.collect_trace());
        let pr = PagerankTrace::new(&a, 3);
        assert_eq!(pr.collect_trace(), pr.collect_trace());
    }

    #[test]
    fn bfs_trace_discovers_every_vertex_once() {
        let a = path4();
        let t = bfs_trace(&a, 0);
        // Frontier writes = n (every vertex enters the frontier once on a
        // connected graph).
        let layout_frontier_writes = t.iter().filter(|x| x.is_write()).count();
        // level writes (3 discoveries) + frontier writes (4 including src).
        assert_eq!(layout_frontier_writes, 3 + 4);
    }

    #[test]
    fn bfs_trace_on_disconnected_graph_stays_in_component() {
        let a = CsrMatrix::try_from(
            CooMatrix::from_entries(4, 4, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap(),
        )
        .unwrap();
        let t = bfs_trace(&a, 0);
        // Only vertex 1 is discovered: 1 level write + 2 frontier writes.
        assert_eq!(t.iter().filter(|x| x.is_write()).count(), 3);
    }
}
