//! Validator for analyzer findings reports (`CHK1101`).
//!
//! `cargo run -p xtask -- lint --json` and `commorder-cli analyze
//! --source --json` emit a findings report with a fixed, line-oriented
//! shape (one finding object per line, sorted, with header counts).
//! CI pipes that report through this validator before trusting it, so
//! a half-written file, a schema drift between analyzer versions, or a
//! hand-edited report fails loudly instead of silently gating nothing.
//!
//! Like the other ingest paths the parser is deliberately lenient:
//! every violation becomes a [`Diagnostic`] and validation continues
//! where the frame allows, so one pass lists every problem.

use crate::codes;
use crate::diag::{Diagnostic, Location};
use crate::telemetry::{parse_flat_object, Json};

/// The exact key sequence of one finding object.
const FINDING_KEYS: [&str; 7] = [
    "code",
    "severity",
    "file",
    "line",
    "col_start",
    "col_end",
    "message",
];

/// Validates `contents` as an analyzer findings report; every schema
/// violation is reported as a `CHK1101` error.
#[must_use]
pub fn check_analyze_report(contents: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let lines: Vec<&str> = contents.lines().collect();
    let frame_error = |line: usize, message: String| {
        Diagnostic::error(
            codes::ANALYZE_SCHEMA,
            Location::at("report line", line as u64 + 1),
            message,
        )
    };

    if lines.first().map(|l| l.trim()) != Some("{") {
        out.push(frame_error(0, "report must open with a lone '{'".into()));
        return out;
    }
    let declared_errors = parse_count_line(lines.get(1).copied(), "errors", 1, &mut out);
    let declared_warnings = parse_count_line(lines.get(2).copied(), "warnings", 2, &mut out);

    let findings_open = lines.get(3).copied().unwrap_or("");
    let mut finding_rows: Vec<(usize, &str)> = Vec::new();
    let after_findings;
    if findings_open.trim() == "\"findings\": []," {
        after_findings = 4;
    } else if findings_open.trim() == "\"findings\": [" {
        let mut i = 4;
        while i < lines.len() && lines[i].trim() != "]," {
            finding_rows.push((i, lines[i]));
            i += 1;
        }
        if lines.get(i).map(|l| l.trim()) != Some("],") {
            out.push(frame_error(
                i,
                "findings array is not closed with '],'".into(),
            ));
        }
        after_findings = i + 1;
    } else {
        out.push(frame_error(
            3,
            format!(
                "expected a findings array, found {:?}",
                findings_open.trim()
            ),
        ));
        return out;
    }
    // The callgraph section follows the findings (violations are
    // CHK1102), the effects section follows the callgraph (CHK1103),
    // and the closing frame stays CHK1101.
    let (after_callgraph, node_count, edges) =
        crate::callgraph::check_callgraph_section(&lines, after_findings, &mut out);
    let after_effects = if after_callgraph < lines.len() {
        crate::effects::check_effects_section(&lines, after_callgraph, node_count, &edges, &mut out)
    } else {
        after_callgraph
    };
    if after_effects < lines.len() && lines.get(after_effects).map(|l| l.trim()) != Some("}") {
        out.push(frame_error(
            after_effects,
            "report must close with '}'".into(),
        ));
    }

    let mut tally_errors: u64 = 0;
    let mut tally_warnings: u64 = 0;
    // Sort key of the previous finding: (file, line, col_start, code, message).
    let mut prev_key: Option<(String, u64, u64, String, String)> = None;
    let last_row = finding_rows.len().saturating_sub(1);
    for (seq, &(line_no, raw)) in finding_rows.iter().enumerate() {
        let trimmed = raw.trim();
        let object = match (seq < last_row, trimmed.strip_suffix(',')) {
            (true, Some(stripped)) => stripped,
            (true, None) => {
                out.push(frame_error(
                    line_no,
                    "finding line is missing its trailing comma".into(),
                ));
                trimmed
            }
            (false, Some(_)) => {
                out.push(frame_error(
                    line_no,
                    "last finding line must not end with a comma".into(),
                ));
                trimmed.trim_end_matches(',')
            }
            (false, None) => trimmed,
        };
        let fields = match parse_flat_object(object) {
            Ok(fields) => fields,
            Err(e) => {
                out.push(frame_error(line_no, format!("unparsable finding: {e}")));
                continue;
            }
        };
        if let Some(key) = check_finding(&fields, line_no, &mut out) {
            match key.3.as_str() {
                "error" => tally_errors += 1,
                _ => tally_warnings += 1,
            }
            let order = (key.0, key.1, key.2, key.4, key.5);
            if let Some(prev) = &prev_key {
                if *prev > order {
                    out.push(frame_error(
                        line_no,
                        "findings are not sorted by (file, line, col_start, code, message)".into(),
                    ));
                }
            }
            prev_key = Some(order);
        }
    }

    if let Some(declared) = declared_errors {
        if declared != tally_errors {
            out.push(frame_error(
                1,
                format!("header declares {declared} error(s) but the list has {tally_errors}"),
            ));
        }
    }
    if let Some(declared) = declared_warnings {
        if declared != tally_warnings {
            out.push(frame_error(
                2,
                format!("header declares {declared} warning(s) but the list has {tally_warnings}"),
            ));
        }
    }
    out
}

/// Parses a `"name": N,` header line; reports and returns `None` when
/// malformed.
fn parse_count_line(
    line: Option<&str>,
    name: &str,
    line_no: usize,
    out: &mut Vec<Diagnostic>,
) -> Option<u64> {
    let fail = |out: &mut Vec<Diagnostic>| {
        out.push(Diagnostic::error(
            codes::ANALYZE_SCHEMA,
            Location::at("report line", line_no as u64 + 1),
            format!("expected a '\"{name}\": <count>,' header line"),
        ));
        None
    };
    let Some(line) = line else { return fail(out) };
    let rest = match line.trim().strip_prefix(&format!("\"{name}\": ")) {
        Some(rest) => rest,
        None => return fail(out),
    };
    match rest.strip_suffix(',').unwrap_or(rest).parse::<u64>() {
        Ok(n) => Some(n),
        Err(_) => fail(out),
    }
}

/// Validates one parsed finding object; returns its sort-relevant
/// fields `(file, line, col_start, severity, code, message)` when the
/// shape is usable, `None` when too broken to order.
fn check_finding(
    fields: &[(String, Json)],
    line_no: usize,
    out: &mut Vec<Diagnostic>,
) -> Option<(String, u64, u64, String, String, String)> {
    let loc = || Location::at("report line", line_no as u64 + 1);
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if keys != FINDING_KEYS {
        out.push(Diagnostic::error(
            codes::ANALYZE_SCHEMA,
            loc(),
            format!("finding keys must be exactly {FINDING_KEYS:?}, found {keys:?}"),
        ));
        return None;
    }
    let strs: Vec<Option<&str>> = fields
        .iter()
        .map(|(_, v)| match v {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let nums: Vec<Option<u64>> = fields
        .iter()
        .map(|(_, v)| match v {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 4_294_967_295.0 => {
                Some(*n as u64)
            }
            _ => None,
        })
        .collect();
    let mut broken = false;
    let bad = |message: String, out: &mut Vec<Diagnostic>| {
        out.push(Diagnostic::error(codes::ANALYZE_SCHEMA, loc(), message));
    };

    let code = strs[0].unwrap_or_default();
    if code.len() != 6 || !code.starts_with("XT") || !code[2..].bytes().all(|b| b.is_ascii_digit())
    {
        bad(format!("code {code:?} does not match XTnnnn"), out);
        broken = true;
    }
    let severity = strs[1].unwrap_or_default();
    if severity != "error" && severity != "warning" {
        bad(
            format!("severity {severity:?} must be \"error\" or \"warning\""),
            out,
        );
        broken = true;
    }
    let file = strs[2].unwrap_or_default();
    if file.is_empty() || file.contains('\\') {
        bad(
            format!("file {file:?} must be non-empty with '/' separators"),
            out,
        );
        broken = true;
    }
    let line = nums[3];
    let col_start = nums[4];
    let col_end = nums[5];
    if line.is_none_or(|n| n == 0) {
        bad("line must be a positive integer".into(), out);
        broken = true;
    }
    if col_start.is_none_or(|n| n == 0) {
        bad("col_start must be a positive integer".into(), out);
        broken = true;
    }
    match (col_start, col_end) {
        (Some(s), Some(e)) if e >= s => {}
        _ => {
            bad("col_end must be an integer >= col_start".into(), out);
            broken = true;
        }
    }
    let message = strs[6].unwrap_or_default();
    if message.is_empty() {
        bad("message must be non-empty".into(), out);
        broken = true;
    }
    if broken {
        return None;
    }
    Some((
        file.to_string(),
        line.unwrap_or(1),
        col_start.unwrap_or(1),
        severity.to_string(),
        code.to_string(),
        message.to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The empty callgraph + effects sections every report now carries.
    const SECTION: &str = concat!(
        "  \"callgraph\": {\n",
        "    \"nodes\": [],\n",
        "    \"edges\": [],\n",
        "    \"seeds\": {\"determinism\":[],\"hotpath\":[],\"worker\":[]},\n",
        "    \"sccs\": [],\n",
        "    \"stats\": {\"call_sites\":0,\"resolved\":0,\"external\":0,\"ambiguous\":0}\n",
        "  },\n",
        "  \"effects\": {\n",
        "    \"bits\": [\"allocates\",\"locks\",\"panics\",\"does_io\",",
        "\"nondeterministic\",\"unsafe\"],\n",
        "    \"rows\": [],\n",
        "    \"stats\": {\"functions\":0,\"effectful\":0,\"local_bits\":0,",
        "\"propagated_bits\":0}\n",
        "  }\n",
    );

    fn clean() -> String {
        format!("{{\n  \"errors\": 0,\n  \"warnings\": 0,\n  \"findings\": [],\n{SECTION}}}\n")
    }

    fn one_finding() -> String {
        format!(
            concat!(
                "{{\n  \"errors\": 1,\n  \"warnings\": 0,\n  \"findings\": [\n",
                "    {{\"code\":\"XT0002\",\"severity\":\"error\",\"file\":\"crates/a/src/lib.rs\",",
                "\"line\":3,\"col_start\":5,\"col_end\":11,\"message\":\"unwrap() in library code\"}}\n",
                "  ],\n{SECTION}}}\n"
            ),
            SECTION = SECTION
        )
    }

    #[test]
    fn clean_reports_pass() {
        assert!(check_analyze_report(&clean()).is_empty());
        assert!(check_analyze_report(&one_finding()).is_empty());
    }

    #[test]
    fn missing_callgraph_section_is_flagged() {
        let stream = clean().replace(SECTION, "");
        let diags = check_analyze_report(&stream);
        assert!(diags
            .iter()
            .any(|d| d.code == codes::CALLGRAPH_SCHEMA && d.message.contains("callgraph")));
    }

    #[test]
    fn header_count_mismatch_is_flagged() {
        let stream = one_finding().replace("\"errors\": 1", "\"errors\": 2");
        let diags = check_analyze_report(&stream);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::ANALYZE_SCHEMA);
        assert!(diags[0].message.contains("declares 2 error(s)"));
    }

    #[test]
    fn bad_code_severity_and_columns_are_flagged() {
        let stream = one_finding()
            .replace("XT0002", "CHK002")
            .replace("\"severity\":\"error\"", "\"severity\":\"fatal\"")
            .replace("\"col_end\":11", "\"col_end\":2");
        let diags = check_analyze_report(&stream);
        let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("does not match XTnnnn")));
        assert!(messages.iter().any(|m| m.contains("\"fatal\"")));
        assert!(messages.iter().any(|m| m.contains("col_end")));
        // The broken finding drops out of the tally, so the header
        // count disagrees too.
        assert!(messages.iter().any(|m| m.contains("declares 1 error(s)")));
    }

    #[test]
    fn unsorted_findings_are_flagged() {
        let second = "    {\"code\":\"XT0001\",\"severity\":\"error\",\"file\":\"crates/a/src/a.rs\",\"line\":1,\"col_start\":1,\"col_end\":2,\"message\":\"x\"}";
        let stream = one_finding()
            .replace("\"errors\": 1", "\"errors\": 2")
            .replace("\"}\n  ]", &format!("\"}},\n{second}\n  ]"));
        let diags = check_analyze_report(&stream);
        assert!(diags.iter().any(|d| d.message.contains("not sorted")));
    }

    #[test]
    fn truncated_frame_is_flagged() {
        let stream = "{\n  \"errors\": 0,\n";
        let diags = check_analyze_report(stream);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == codes::ANALYZE_SCHEMA));
    }
}
