//! The evaluation pipeline: matrix → reordering → kernel trace → cache
//! simulation → traffic and run-time metrics.
//!
//! This is the measurement loop behind every figure and table of the
//! paper, with the real GPU and Nsight Compute replaced by the validated
//! cache simulator (§VI-B) and the analytic A6000 model.
//!
//! A [`Pipeline`] is built through [`Pipeline::builder`], which validates
//! the whole configuration (cache geometry, kernel parameters, execution
//! model) up front, so a misconfigured experiment fails with a
//! [`SparseError::InvalidConfig`] at construction instead of panicking
//! thousands of accesses into a simulation. Wall-clock timing of the
//! reordering pre-processing lives in the execution engine's job wrapper
//! (see `commorder::experiment`), not here, so measured times never
//! include scheduler queue wait.

use commorder_cachesim::belady::simulate_belady;
use commorder_cachesim::source::KernelTrace;
use commorder_cachesim::trace::ExecutionModel;
use commorder_cachesim::{CacheStats, LruCache, TraceSource};
use commorder_gpumodel::GpuSpec;
use commorder_obs as obs;
use commorder_reorder::{ReorderContext, Reordering};
use commorder_sparse::traffic::Kernel;
use commorder_sparse::{CsrMatrix, Permutation, SparseError};

/// Cache replacement policy to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// True LRU ("closely models A6000's L2 cache").
    #[default]
    Lru,
    /// Belady's optimal policy (Fig. 8's idealized headroom analysis).
    Belady,
}

impl ReplacementPolicy {
    /// Lower-case stable name (report JSON, CLI parsing).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Belady => "belady",
        }
    }
}

/// Result of simulating one kernel execution on one (reordered) matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRun {
    /// Raw cache counters.
    pub stats: CacheStats,
    /// Simulated DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Compulsory traffic for this kernel/matrix (§IV-B).
    pub compulsory_bytes: u64,
    /// `dram_bytes / compulsory_bytes` — the y-axis of Figs. 2/6/7/8.
    pub traffic_ratio: f64,
    /// Estimated execution time in seconds.
    pub time_seconds: f64,
    /// Time normalized to ideal — the y-axis of Fig. 3, Tables II/IV.
    pub time_ratio: f64,
}

/// A [`KernelRun`] together with the reordering that produced it.
///
/// Pre-processing wall-clock time is *not* measured here: per-job
/// `reorder_seconds` is recorded by the experiment engine's job wrapper
/// (`commorder::experiment::RunRecord`), where it provably excludes
/// queue wait.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Display name of the technique.
    pub technique: String,
    /// The permutation the technique produced.
    pub permutation: Permutation,
    /// Simulation results on the reordered matrix.
    pub run: KernelRun,
}

/// Experiment configuration: platform, kernel, execution model and
/// replacement policy — validated at construction.
///
/// Build with [`Pipeline::builder`]; [`Pipeline::new`] is shorthand for
/// the all-defaults configuration (SpMV-CSR, sequential trace, LRU).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    gpu: GpuSpec,
    kernel: Kernel,
    model: ExecutionModel,
    policy: ReplacementPolicy,
}

/// Validating builder for [`Pipeline`]. Obtained from
/// [`Pipeline::builder`].
///
/// # Example
///
/// ```
/// use commorder::prelude::*;
///
/// let pipeline = Pipeline::builder(GpuSpec::test_scale())
///     .kernel(Kernel::SpmmCsr { k: 4 })
///     .policy(ReplacementPolicy::Belady)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(pipeline.kernel(), Kernel::SpmmCsr { k: 4 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "call .build() to obtain the validated Pipeline"]
pub struct PipelineBuilder {
    gpu: GpuSpec,
    kernel: Kernel,
    model: ExecutionModel,
    policy: ReplacementPolicy,
}

impl PipelineBuilder {
    /// Selects the kernel whose trace is simulated.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the trace linearization model.
    pub fn model(mut self, model: ExecutionModel) -> Self {
        self.model = model;
        self
    }

    /// Selects the cache replacement policy.
    pub fn policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Validates the configuration and produces the [`Pipeline`].
    ///
    /// # Errors
    ///
    /// [`SparseError::InvalidConfig`] when the cache geometry is
    /// degenerate (zero capacity/line/associativity, capacity not a whole
    /// number of sets), a bandwidth constant is non-positive, or a
    /// parameterized kernel/model has a zero parameter.
    pub fn build(self) -> Result<Pipeline, SparseError> {
        let invalid = |what: &str, message: String| {
            Err(SparseError::InvalidConfig {
                what: what.to_string(),
                message,
            })
        };
        let l2 = self.gpu.l2;
        if l2.capacity_bytes == 0 {
            return invalid(
                "l2.capacity_bytes",
                "cache capacity must be positive".into(),
            );
        }
        if l2.line_bytes == 0 {
            return invalid("l2.line_bytes", "cache line size must be positive".into());
        }
        if l2.associativity == 0 {
            return invalid("l2.associativity", "associativity must be positive".into());
        }
        let set_bytes = u64::from(l2.line_bytes) * u64::from(l2.associativity);
        if !l2.capacity_bytes.is_multiple_of(set_bytes) {
            return invalid(
                "l2.capacity_bytes",
                format!(
                    "capacity {} is not a whole number of {}-byte sets",
                    l2.capacity_bytes, set_bytes
                ),
            );
        }
        if !self.gpu.measured_bandwidth.is_finite() || self.gpu.measured_bandwidth <= 0.0 {
            return invalid(
                "gpu.measured_bandwidth",
                "measured bandwidth must be positive".into(),
            );
        }
        if !self.gpu.peak_bandwidth.is_finite() || self.gpu.peak_bandwidth <= 0.0 {
            return invalid(
                "gpu.peak_bandwidth",
                "peak bandwidth must be positive".into(),
            );
        }
        match self.kernel {
            Kernel::SpmmCsr { k: 0 } => {
                return invalid("kernel.k", "SpMM needs at least one dense column".into())
            }
            Kernel::SpmvCsrTiled { tile_cols: 0 } => {
                return invalid("kernel.tile_cols", "tile width must be positive".into())
            }
            Kernel::SpmvBlocked { bins: 0 } => {
                return invalid("kernel.bins", "blocking needs at least one bin".into())
            }
            _ => {}
        }
        if let ExecutionModel::Interleaved { streams: 0 } = self.model {
            return invalid(
                "model.streams",
                "interleaved execution needs at least one stream".into(),
            );
        }
        Ok(Pipeline {
            gpu: self.gpu,
            kernel: self.kernel,
            model: self.model,
            policy: self.policy,
        })
    }
}

impl Pipeline {
    /// Starts a builder with the given platform and the Fig. 2–7
    /// defaults: SpMV-CSR, sequential trace, LRU.
    pub fn builder(gpu: GpuSpec) -> PipelineBuilder {
        PipelineBuilder {
            gpu,
            kernel: Kernel::SpmvCsr,
            model: ExecutionModel::Sequential,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// SpMV-CSR, sequential trace, LRU — the default for Figs. 2–7.
    ///
    /// # Panics
    ///
    /// Panics when `gpu` fails builder validation (the built-in
    /// [`GpuSpec`] constructors never do); use [`Pipeline::builder`] for
    /// fallible construction of custom platforms.
    #[must_use]
    pub fn new(gpu: GpuSpec) -> Self {
        Pipeline::builder(gpu)
            .build()
            .expect("built-in GpuSpec configurations are valid")
    }

    /// Simulated platform (L2 geometry + bandwidth model).
    #[must_use]
    pub fn gpu(&self) -> GpuSpec {
        self.gpu
    }

    /// Kernel whose trace is simulated.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Trace linearization model.
    #[must_use]
    pub fn model(&self) -> ExecutionModel {
        self.model
    }

    /// Replacement policy.
    #[must_use]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Simulates the configured kernel on `matrix` as-is (no reordering).
    ///
    /// Both policies consume the kernel trace as a replayable stream
    /// ([`KernelTrace`]); no full `Vec<Access>` is ever materialized.
    /// With telemetry enabled an extra counting replay is timed under
    /// `pipeline.trace_gen` so trace generation and cache simulation
    /// still profile as separate phases — the replay feeds the simulator
    /// the identical access sequence either way, so `CacheStats` (and
    /// therefore the deterministic JSON report) is unchanged by
    /// telemetry (the workspace golden test enforces this).
    #[must_use]
    pub fn simulate(&self, matrix: &CsrMatrix) -> KernelRun {
        let source = KernelTrace::new(matrix, self.kernel, self.model);
        if obs::enabled() {
            let _span = obs::span!("pipeline.trace_gen");
            let mut generated = 0u64;
            source.replay(&mut |_| generated += 1);
            std::hint::black_box(generated);
        }
        let stats = {
            let _span = obs::span!("pipeline.simulate");
            match self.policy {
                ReplacementPolicy::Lru => {
                    let mut cache = LruCache::new(self.gpu.l2);
                    cache.consume(&source);
                    cache.finish()
                }
                ReplacementPolicy::Belady => simulate_belady(self.gpu.l2, &source),
            }
        };
        commorder_cachesim::telemetry::record_cache_stats(&stats);
        let _span = obs::span!("pipeline.model");
        self.run_from_stats(matrix, stats)
    }

    /// Wraps raw cache counters into traffic/time metrics for `matrix`.
    #[must_use]
    pub fn run_from_stats(&self, matrix: &CsrMatrix, stats: CacheStats) -> KernelRun {
        let n = u64::from(matrix.n_rows());
        let nnz = matrix.nnz() as u64;
        let dram_bytes = stats.dram_traffic_bytes();
        let compulsory_bytes = self.kernel.compulsory_bytes(n, nnz);
        commorder_sparse::debug_validate!(
            n == 0 || compulsory_bytes > 0,
            "compulsory traffic must be positive for a non-empty matrix (n = {n}, nnz = {nnz})"
        );
        KernelRun {
            stats,
            dram_bytes,
            compulsory_bytes,
            traffic_ratio: dram_bytes as f64 / compulsory_bytes as f64,
            time_seconds: self.gpu.estimate_time(self.kernel, n, nnz, dram_bytes),
            time_ratio: self.gpu.normalized_time(self.kernel, n, nnz, dram_bytes),
        }
    }

    /// Reorders `matrix` with `technique`, then simulates the kernel on
    /// the reordered matrix.
    ///
    /// # Errors
    ///
    /// Propagates reordering/permutation errors (non-square input).
    pub fn evaluate(
        &self,
        matrix: &CsrMatrix,
        technique: &dyn Reordering,
    ) -> Result<Evaluation, SparseError> {
        self.evaluate_with(matrix, technique, &ReorderContext::serial(0xC0DE))
    }

    /// [`Pipeline::evaluate`] with an execution context: techniques with
    /// parallel phases fan out on `cx.engine()`. The evaluation is
    /// byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates reordering/permutation errors (non-square input).
    pub fn evaluate_with(
        &self,
        matrix: &CsrMatrix,
        technique: &dyn Reordering,
        cx: &ReorderContext<'_>,
    ) -> Result<Evaluation, SparseError> {
        let permutation = technique.reorder_with(matrix, cx)?;
        commorder_sparse::debug_validate!(
            permutation.len() == matrix.n_rows() as usize,
            "{}: permutation length {} does not match n = {}",
            technique.name(),
            permutation.len(),
            matrix.n_rows()
        );
        let reordered = matrix.permute_symmetric(&permutation)?;
        commorder_sparse::debug_validate!(
            reordered.nnz() == matrix.nnz(),
            "{}: relabelling changed the entry count ({} -> {})",
            technique.name(),
            matrix.nnz(),
            reordered.nnz()
        );
        let run = self.simulate(&reordered);
        Ok(Evaluation {
            technique: technique.name().to_string(),
            permutation,
            run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_cachesim::CacheConfig;
    use commorder_reorder::{Original, Rabbit, RandomOrder};
    use commorder_synth::generators::PlantedPartition;

    fn strong_community_matrix() -> CsrMatrix {
        // Generated community-sorted, then scrambled: ORIGINAL is bad,
        // RABBIT should recover it.
        let g = PlantedPartition::uniform(2048, 32, 10.0, 0.03)
            .generate(51)
            .unwrap();
        let p = RandomOrder::new(9).reorder(&g).unwrap();
        g.permute_symmetric(&p).unwrap()
    }

    #[test]
    fn traffic_ratio_is_at_least_one_for_lru() {
        let m = strong_community_matrix();
        let run = Pipeline::new(GpuSpec::test_scale()).simulate(&m);
        assert!(run.traffic_ratio >= 0.99, "ratio = {}", run.traffic_ratio);
        assert!(run.time_ratio >= run.traffic_ratio * 0.99);
    }

    #[test]
    fn rabbit_beats_scrambled_original() {
        let m = strong_community_matrix();
        let pipeline = Pipeline::new(GpuSpec::test_scale());
        let original = pipeline.evaluate(&m, &Original).unwrap();
        let rabbit = pipeline.evaluate(&m, &Rabbit::new()).unwrap();
        assert!(
            rabbit.run.traffic_ratio < original.run.traffic_ratio,
            "rabbit {} vs original {}",
            rabbit.run.traffic_ratio,
            original.run.traffic_ratio
        );
        assert_eq!(rabbit.technique, "RABBIT");
    }

    #[test]
    fn belady_never_exceeds_lru_traffic() {
        let m = strong_community_matrix();
        let lru = Pipeline::new(GpuSpec::test_scale()).simulate(&m);
        let opt = Pipeline::builder(GpuSpec::test_scale())
            .policy(ReplacementPolicy::Belady)
            .build()
            .unwrap()
            .simulate(&m);
        assert!(opt.dram_bytes <= lru.dram_bytes);
    }

    #[test]
    fn kernel_builder_changes_compulsory() {
        let m = strong_community_matrix();
        let csr = Pipeline::new(GpuSpec::test_scale()).simulate(&m);
        let coo = Pipeline::builder(GpuSpec::test_scale())
            .kernel(Kernel::SpmvCoo)
            .build()
            .unwrap()
            .simulate(&m);
        assert!(coo.compulsory_bytes > csr.compulsory_bytes);
    }

    #[test]
    fn interleaved_model_runs() {
        let m = strong_community_matrix();
        let run = Pipeline::builder(GpuSpec::test_scale())
            .model(ExecutionModel::Interleaved { streams: 8 })
            .build()
            .unwrap()
            .simulate(&m);
        assert!(run.traffic_ratio >= 0.99);
    }

    #[test]
    fn builder_rejects_zero_capacity_cache() {
        let gpu = GpuSpec {
            l2: CacheConfig {
                capacity_bytes: 0,
                line_bytes: 32,
                associativity: 16,
            },
            ..GpuSpec::test_scale()
        };
        let err = Pipeline::builder(gpu).build().unwrap_err();
        assert!(
            matches!(err, SparseError::InvalidConfig { ref what, .. } if what == "l2.capacity_bytes")
        );
    }

    #[test]
    fn builder_rejects_ragged_capacity_and_zero_params() {
        let ragged = GpuSpec {
            l2: CacheConfig {
                capacity_bytes: 1000,
                line_bytes: 32,
                associativity: 16,
            },
            ..GpuSpec::test_scale()
        };
        assert!(Pipeline::builder(ragged).build().is_err());
        assert!(Pipeline::builder(GpuSpec::test_scale())
            .kernel(Kernel::SpmmCsr { k: 0 })
            .build()
            .is_err());
        assert!(Pipeline::builder(GpuSpec::test_scale())
            .kernel(Kernel::SpmvCsrTiled { tile_cols: 0 })
            .build()
            .is_err());
        assert!(Pipeline::builder(GpuSpec::test_scale())
            .model(ExecutionModel::Interleaved { streams: 0 })
            .build()
            .is_err());
    }

    #[test]
    fn builder_accepts_all_builtin_specs() {
        for gpu in [
            GpuSpec::a6000(),
            GpuSpec::a6000_scaled(),
            GpuSpec::test_scale(),
        ] {
            let p = Pipeline::builder(gpu).build().unwrap();
            assert_eq!(p.kernel(), Kernel::SpmvCsr);
            assert_eq!(p.policy(), ReplacementPolicy::Lru);
            assert_eq!(p.model(), ExecutionModel::Sequential);
            assert_eq!(p.gpu().l2, gpu.l2);
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(ReplacementPolicy::Lru.name(), "lru");
        assert_eq!(ReplacementPolicy::Belady.name(), "belady");
    }
}
