//! Two-level cache hierarchy (L1 → L2 → DRAM).
//!
//! RABBIT's design explicitly targets cache *hierarchies*: "the most
//! tightly-knit innermost communities mapped to the small, fast cache
//! closest to the processor and the looser, higher-level communities
//! assigned to the larger, on-chip cache" (§V-A). This module lets the
//! workspace test that claim: the `ablation_hierarchy` binary compares
//! hierarchical (dendrogram-DFS) orderings against flattened ones on an
//! L1+L2 stack.
//!
//! Semantics: every access goes to L1; L1 misses are forwarded to L2;
//! dirty L1 evictions are written through to L2. DRAM traffic is the
//! L2's fill misses plus L2 write-backs (same accounting as the
//! single-level simulator).

use crate::trace::Access;
use crate::{CacheConfig, CacheStats, LruCache};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// Hit in the first level.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both levels (serviced by DRAM).
    Dram,
}

/// Statistics for both levels of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyStats {
    /// First-level counters (its "DRAM traffic" is really L2 traffic).
    pub l1: CacheStats,
    /// Second-level counters; `l2.dram_traffic_bytes()` is the true DRAM
    /// traffic of the hierarchy.
    pub l2: CacheStats,
}

impl HierarchyStats {
    /// DRAM traffic of the whole hierarchy in bytes.
    #[must_use]
    pub fn dram_traffic_bytes(&self) -> u64 {
        self.l2.dram_traffic_bytes()
    }
}

/// An L1 + L2 stack of [`LruCache`]s.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: LruCache,
    l2: LruCache,
}

impl CacheHierarchy {
    /// Builds a hierarchy; both levels must share a line size.
    ///
    /// # Panics
    ///
    /// Panics if the line sizes differ or either geometry is degenerate.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        assert_eq!(
            l1.line_bytes, l2.line_bytes,
            "levels must share a line size"
        );
        CacheHierarchy {
            l1: LruCache::new(l1),
            l2: LruCache::new(l2),
        }
    }

    /// Simulates one access through the stack.
    pub fn access(&mut self, access: Access) -> ServicedBy {
        let l1_outcome = self.l1.access_detailed(access);
        // Dirty L1 victims are written back into L2.
        if let Some((victim_addr, dirty)) = l1_outcome.evicted {
            if dirty {
                self.l2.access(Access::write(victim_addr));
            }
        }
        if l1_outcome.hit {
            return ServicedBy::L1;
        }
        // The L1 miss itself goes to L2 (write misses allocate in L1, so
        // the L2 sees them as reads only when L1 must fetch — with
        // no-fetch write allocation the L2 is not consulted for writes).
        if access.is_write() {
            return ServicedBy::L2;
        }
        if self.l2.access(access) {
            ServicedBy::L2
        } else {
            ServicedBy::Dram
        }
    }

    /// Streams every access of `source` through the stack.
    pub fn consume<S: crate::source::TraceSource + ?Sized>(&mut self, source: &S) {
        source.replay(&mut |acc| {
            self.access(acc);
        });
    }

    /// Flushes both levels (L1 dirty lines drain into L2 first) and
    /// returns the statistics.
    #[must_use]
    pub fn finish(self) -> HierarchyStats {
        let CacheHierarchy { l1, mut l2 } = self;
        // Drain L1: every dirty resident is written back into L2 before
        // the L2 itself is flushed.
        for addr in l1.dirty_lines() {
            l2.access(Access::write(addr));
        }
        HierarchyStats {
            l1: l1.finish(),
            l2: l2.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(addr: u64) -> Access {
        Access::read(addr)
    }

    fn small(capacity: u64) -> CacheConfig {
        CacheConfig {
            capacity_bytes: capacity,
            line_bytes: 32,
            associativity: 2,
        }
    }

    #[test]
    fn l1_hit_does_not_touch_l2() {
        let mut h = CacheHierarchy::new(small(64), small(256));
        assert_eq!(h.access(read(0)), ServicedBy::Dram);
        assert_eq!(h.access(read(4)), ServicedBy::L1);
        let s = h.finish();
        assert_eq!(s.l1.accesses, 2);
        assert_eq!(s.l2.accesses, 1);
    }

    #[test]
    fn l2_catches_l1_capacity_misses() {
        // L1: 2 lines; L2: 8 lines. Cycle through 3 lines: L1 thrashes,
        // L2 holds all three.
        let mut h = CacheHierarchy::new(small(64), small(256));
        let lines = [0u64, 32, 64];
        for &l in &lines {
            h.access(read(l));
        }
        for _ in 0..3 {
            for &l in &lines {
                let serviced = h.access(read(l));
                assert_ne!(serviced, ServicedBy::Dram, "L2 must absorb the thrash");
            }
        }
        let s = h.finish();
        assert_eq!(s.l2.fill_misses, 3, "L2 sees only compulsory fills");
    }

    #[test]
    fn hierarchy_dram_traffic_not_below_single_l2() {
        // A hierarchy cannot fetch less from DRAM than its L2 alone
        // (inclusive forwarding preserves the L2's miss stream order).
        let trace: Vec<Access> = (0..200u64).map(|i| read((i * 7919) % 2048 * 32)).collect();
        let mut h = CacheHierarchy::new(small(64), small(512));
        for &a in &trace {
            h.access(a);
        }
        let hs = h.finish();
        assert!(hs.dram_traffic_bytes() > 0);
        assert_eq!(hs.l1.accesses, 200);
        assert!(hs.l2.accesses <= 200);
    }

    #[test]
    fn dirty_l1_eviction_reaches_l2() {
        let mut h = CacheHierarchy::new(small(64), small(256));
        // Write line 0 (allocates dirty in L1, L2 untouched for writes).
        h.access(Access::write(0));
        // Evict it from the 1-set x 2-way L1 by touching two more lines
        // that map to the same set (stride = sets * line = 32).
        h.access(read(32));
        h.access(read(64));
        let s = h.finish();
        // The dirty line was written back into L2 at eviction (plus the
        // L1 flush of remaining dirty lines, of which there are none
        // dirty besides it).
        assert!(s.l2.write_alloc_misses >= 1);
    }

    #[test]
    #[should_panic(expected = "share a line size")]
    fn mismatched_line_sizes_panic() {
        let _ = CacheHierarchy::new(
            small(64),
            CacheConfig {
                capacity_bytes: 256,
                line_bytes: 64,
                associativity: 2,
            },
        );
    }
}
