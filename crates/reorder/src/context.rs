//! Execution context threaded through [`crate::Reordering::reorder_with`].
//!
//! Before this context existed every technique was engine-blind: the
//! suite's work-stealing engine parallelized *across* grid cells, but a
//! single RABBIT run on a million-row matrix was a serial wall. The
//! context carries the suite's [`Engine`] (plus the run seed) down into
//! the techniques, which fan their internal phases out via
//! [`Engine::map`] while honouring the determinism contract: the
//! permutation a technique returns is a pure function of the matrix and
//! its configuration, never of `engine.threads()`.

use std::sync::OnceLock;

use commorder_exec::Engine;

/// Shared state a reordering technique may use while computing a
/// permutation: the engine to fan work out on and the run's seed.
///
/// Borrowed, not owned: callers (the pipeline, the experiment grid, the
/// benches) hold one engine for the whole run and lend it to every
/// technique invocation.
#[derive(Debug, Clone, Copy)]
pub struct ReorderContext<'a> {
    engine: &'a Engine,
    seed: u64,
}

impl<'a> ReorderContext<'a> {
    /// A context borrowing `engine`, with `seed` available to seeded
    /// techniques (RANDOM, RABBIT-FLAT).
    #[must_use]
    pub fn new(engine: &'a Engine, seed: u64) -> Self {
        ReorderContext { engine, seed }
    }

    /// The engine to fan parallel phases out on.
    #[must_use]
    pub fn engine(&self) -> &'a Engine {
        self.engine
    }

    /// The run seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl ReorderContext<'static> {
    /// A single-threaded context — the reference behaviour every
    /// parallel run must reproduce byte-for-byte.
    #[must_use]
    pub fn serial(seed: u64) -> Self {
        static SERIAL: OnceLock<Engine> = OnceLock::new();
        ReorderContext {
            engine: SERIAL.get_or_init(Engine::serial),
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_context_has_one_thread() {
        let cx = ReorderContext::serial(7);
        assert_eq!(cx.engine().threads(), 1);
        assert_eq!(cx.seed(), 7);
    }

    #[test]
    fn context_borrows_the_callers_engine() {
        let engine = Engine::new(4);
        let cx = ReorderContext::new(&engine, 1);
        assert_eq!(cx.engine().threads(), 4);
    }
}
