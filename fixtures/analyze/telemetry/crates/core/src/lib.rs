//! Fixture call sites for the telemetry-name cross-check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod run;
