//! Event sinks: where telemetry goes.
//!
//! * [`JsonlSink`] streams every event as one JSON line to any writer
//!   (the `suite --telemetry <path>` file sink),
//! * [`MemorySink`] buffers events for tests and the `profile`
//!   subcommand's post-run analysis.
//!
//! The aggregating [`crate::Registry`] is a third sink, in its own
//! module. Sinks are `Send + Sync` and handle their own locking: the
//! dispatcher calls [`Sink::record`] concurrently from worker threads.

use std::io::Write;
use std::sync::{Mutex, PoisonError};

use crate::event::Event;

/// A telemetry event consumer.
pub trait Sink: Send + Sync {
    /// Records one event. Must not panic; I/O errors are the sink's to
    /// swallow or surface through its own API (telemetry is a sidecar —
    /// it never aborts the measured computation).
    fn record(&self, event: &Event);
}

/// Streams events as JSON Lines to a writer.
///
/// Lines are buffered internally; call [`JsonlSink::flush`] (or drop the
/// sink) once the run completes. Write errors are latched and reported
/// by `flush` rather than panicking mid-run.
pub struct JsonlSink<W: Write + Send> {
    inner: Mutex<JsonlInner<W>>,
}

struct JsonlInner<W: Write + Send> {
    writer: W,
    error: Option<std::io::Error>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`; callers usually pass a `BufWriter<File>`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            inner: Mutex::new(JsonlInner {
                writer,
                error: None,
            }),
        }
    }

    /// Flushes the writer and returns the first I/O error encountered
    /// since the last call (subsequent events after an error are
    /// dropped).
    ///
    /// # Errors
    ///
    /// The latched write error, or the flush error itself.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = inner.error.take() {
            return Err(e);
        }
        inner.writer.flush()
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.error.is_some() {
            return;
        }
        let line = event.to_jsonl();
        if let Err(e) = writeln!(inner.writer, "{line}") {
            inner.error = Some(e);
        }
    }
}

/// Buffers every event in memory, in arrival order.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Snapshot of the captured events.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The captured stream rendered as JSON Lines (one event per line,
    /// trailing newline) — feed this to the `CHK09xx` validators.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for event in events.iter() {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&Event::Meta { version: 1 });
        sink.record(&Event::Counter {
            name: "exec.jobs",
            delta: 2,
        });
        sink.flush().expect("Vec<u8> writes cannot fail");
        let inner = sink.inner.lock().expect("no contention in tests");
        let text = String::from_utf8(inner.writer.clone()).expect("ASCII JSON");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"type\":\"meta\",\"version\":1}");
    }

    #[test]
    fn memory_sink_round_trips_jsonl() {
        let sink = MemorySink::new();
        sink.record(&Event::Gauge {
            name: "exec.utilization",
            value: 1.0,
        });
        assert_eq!(sink.events().len(), 1);
        assert_eq!(
            sink.to_jsonl(),
            "{\"type\":\"gauge\",\"name\":\"exec.utilization\",\"value\":1}\n"
        );
    }
}
