//! The allowlist suppresses this file's `panic!` finding; the same
//! rule still fires in `bad.rs`, so the golden proves both paths.

/// Allowlisted call site.
pub fn guarded(x: u32) -> u32 {
    if x == 0 {
        panic!("fixture: allowlisted");
    }
    x - 1
}
