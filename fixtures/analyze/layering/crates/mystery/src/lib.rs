//! Fixture crate absent from the declared layer table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Harmless.
pub fn nothing() {}
