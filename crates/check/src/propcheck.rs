//! Minimal deterministic property-test harness.
//!
//! The workspace runs offline, so instead of a registry dependency this
//! module drives the vendored [`commorder_synth::rng::Rng`] through a
//! fixed number of seeded cases. Failures panic with the case name and
//! seed, so any counterexample is reproducible with
//! `Rng::new(case_seed(name, seed))`.
//!
//! ```
//! use commorder_check::propcheck::{arb_perm, run_cases};
//!
//! run_cases("inverse-round-trips", 16, |rng| {
//!     let p = arb_perm(rng, 50);
//!     assert!(p.then(&p.inverse()).expect("same length").is_identity());
//! });
//! ```

use commorder_cachesim::Access;
use commorder_sparse::{CooMatrix, CsrMatrix, Permutation, ELEM_BYTES};
use commorder_synth::rng::Rng;

/// Number of cases the workspace property tests default to.
pub const DEFAULT_CASES: u64 = 64;

/// Deterministic per-case seed: FNV-1a over the case name mixed with the
/// case number, so distinct properties explore distinct streams.
#[must_use]
pub fn case_seed(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= case;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

/// Runs `property` against `cases` independently seeded RNGs.
///
/// # Panics
///
/// Re-panics any property failure, prefixed with the case name and seed
/// needed to reproduce it.
pub fn run_cases<F: FnMut(&mut Rng)>(name: &str, cases: u64, mut property: F) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            property(&mut rng);
        }));
        if let Err(payload) = result {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property {name:?} failed at case {case} (seed {seed:#x}): {detail}");
        }
    }
}

/// A random valid CSR matrix with up to `max_n` rows/columns and about
/// `avg_degree` entries per row (duplicates merged, so possibly fewer).
#[must_use]
pub fn arb_csr(rng: &mut Rng, max_n: u32, avg_degree: u32) -> CsrMatrix {
    let n = 1 + rng.gen_u32(max_n.max(1));
    let target = (u64::from(n) * u64::from(avg_degree.max(1))) as usize;
    let mut entries = Vec::with_capacity(target);
    for _ in 0..target {
        let r = rng.gen_u32(n);
        let c = rng.gen_u32(n);
        let v = (rng.next_f64() * 4.0 - 2.0) as f32;
        entries.push((r, c, v));
    }
    let coo = CooMatrix::from_entries(n, n, entries).expect("coords drawn in bounds");
    CsrMatrix::try_from(coo).expect("conversion preserves validity")
}

/// A random undirected (symmetric) graph as CSR, the input shape every
/// reordering technique expects.
#[must_use]
pub fn arb_graph(rng: &mut Rng, max_n: u32, avg_degree: u32) -> CsrMatrix {
    let n = 2 + rng.gen_u32(max_n.max(2));
    let target = (u64::from(n) * u64::from(avg_degree.max(1)) / 2) as usize;
    let mut entries = Vec::with_capacity(2 * target);
    for _ in 0..target {
        let u = rng.gen_u32(n);
        let v = rng.gen_u32(n);
        if u == v {
            continue;
        }
        entries.push((u, v, 1.0));
        entries.push((v, u, 1.0));
    }
    let coo = CooMatrix::from_entries(n, n, entries).expect("coords drawn in bounds");
    CsrMatrix::try_from(coo).expect("conversion preserves validity")
}

/// A uniformly random permutation of `0..n` (Fisher–Yates over the
/// identity).
#[must_use]
pub fn arb_perm(rng: &mut Rng, n: u32) -> Permutation {
    let mut ids: Vec<u32> = (0..n).collect();
    rng.shuffle(&mut ids);
    Permutation::from_new_ids(ids).expect("a shuffle of the identity is a bijection")
}

/// A random element-aligned trace over `[0, end)`.
#[must_use]
pub fn arb_trace(rng: &mut Rng, len: usize, end: u64) -> Vec<Access> {
    let elems = (end / ELEM_BYTES).max(1);
    (0..len)
        .map(|_| Access::new(rng.gen_range(elems) * ELEM_BYTES, rng.gen_bool(0.25)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::check_csr;
    use crate::perm::check_permutation;
    use crate::trace::check_trace;

    #[test]
    fn case_seeds_are_distinct_per_name_and_case() {
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
    }

    #[test]
    fn generators_produce_valid_objects() {
        run_cases("generators-valid", 16, |rng| {
            let m = arb_csr(rng, 40, 4);
            assert!(check_csr(&m).is_empty());
            let g = arb_graph(rng, 40, 4);
            assert!(g.is_symmetric());
            let p = arb_perm(rng, g.n_rows());
            assert!(check_permutation(&p, Some(u64::from(g.n_rows()))).is_empty());
            let t = arb_trace(rng, 50, 4096);
            assert!(check_trace(&t, Some(4096), 32).is_empty());
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_carry_name_and_seed() {
        run_cases("always-fails", 4, |_| panic!("boom"));
    }
}
