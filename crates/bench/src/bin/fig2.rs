//! **Figure 2**: SpMV-CSR DRAM traffic (normalized to compulsory traffic)
//! for RANDOM / ORIGINAL / DEGSORT / DBG / GORDER / RABBIT across the
//! corpus, plus the run-time means from the figure's caption and the
//! paper's Observations 1–5.

use commorder::prelude::*;
use commorder::sparse::stats::pearson;
use commorder_bench::{figure2_techniques, Harness};

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let spec = harness.spec(figure2_techniques(harness.random_seed));
    let result = spec.run(&harness.engine()).expect("valid corpus grid");
    eprintln!("[fig2] engine: {}", result.stats.summary());

    let mut headers = vec!["matrix".to_string(), "domain".to_string()];
    headers.extend(result.techniques.iter().cloned());
    let mut traffic_table = Table::new(
        "Fig. 2: SpMV DRAM traffic normalized to compulsory",
        headers,
    );

    let mut within_10pct = 0usize;
    let mut best_counts = vec![0usize; result.techniques.len()];
    let mut sizes: Vec<f64> = Vec::new();
    let mut best_ratios: Vec<f64> = Vec::new();

    for (mi, (name, group)) in result.matrices.iter().enumerate() {
        let mut row = vec![name.clone(), group.clone()];
        let ratios: Vec<f64> = (0..result.techniques.len())
            .map(|ti| result.run_for(mi, ti).run.traffic_ratio)
            .collect();
        for &ratio in &ratios {
            row.push(Table::ratio(ratio));
        }
        traffic_table.add_row(row);
        // Observation 1: best technique within 10% of ideal traffic?
        let best = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        if best <= 1.10 {
            within_10pct += 1;
        }
        sizes.push(spec.matrices[mi].matrix.nnz() as f64);
        best_ratios.push(best);
        // Observation 4: which technique wins this matrix (RANDOM and
        // ORIGINAL included for completeness)?
        let winner = ratios
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0;
        best_counts[winner] += 1;
    }

    let mut mean_row = vec!["MEAN (traffic)".to_string(), String::new()];
    let mut time_row = vec!["MEAN (run time)".to_string(), String::new()];
    for ti in 0..result.techniques.len() {
        mean_row.push(Table::ratio(
            arith_mean_ratio(&result.traffic_ratios(ti)).unwrap_or(f64::NAN),
        ));
        time_row.push(Table::ratio(
            arith_mean_ratio(&result.time_ratios(ti)).unwrap_or(f64::NAN),
        ));
    }
    traffic_table.add_row(mean_row);
    traffic_table.add_row(time_row);
    if let Ok(Some(path)) = traffic_table.save_csv_if_configured() {
        eprintln!("[fig2] csv -> {}", path.display());
    }
    println!("{traffic_table}");

    println!(
        "Observation 1: best-technique traffic within 10% of ideal for {}/{} matrices",
        within_10pct,
        result.matrices.len()
    );
    print!("Observation 4: per-matrix winners —");
    for (ti, technique) in result.techniques.iter().enumerate() {
        print!(" {technique}:{}", best_counts[ti]);
    }
    println!();
    if let Some(c) = pearson(&sizes, &best_ratios) {
        println!(
            "Observation 2: Pearson(matrix nnz, best traffic ratio) = {c:.3} \
             (paper: reaching ideal is unrelated to size; expect |r| small)"
        );
    }
    println!(
        "Paper reference means — traffic: RANDOM 3.36x ORIGINAL 1.54x DEGSORT 1.61x \
         DBG 1.48x GORDER 1.29x RABBIT 1.27x; run time: 6.21x / 1.96x / 2.17x / 1.94x / 1.56x / 1.54x"
    );
}
