//! Helpers for the `commorder-cli` binary: technique/kernel name parsing
//! and the analyze/reorder/simulate entry points, kept in the library so
//! they are unit-testable.

use commorder_reorder::{technique_by_name, Reordering};
use commorder_sparse::traffic::Kernel;

/// Names accepted by [`parse_technique`], for help text. Re-exported
/// from the technique registry so CLI help always matches what resolves.
pub use commorder_reorder::TECHNIQUE_NAMES;

/// Names accepted by [`parse_kernel`], for help text. Re-exported from
/// the kernel registry so CLI help always matches what resolves.
pub use commorder_sparse::traffic::KERNEL_NAMES;

/// Resolves a (case-insensitive) technique name to an instance, via the
/// technique registry with the CLI's fixed `0xC0DE` seed.
///
/// Returns `None` for unknown names. `"rabbitpp"`, `"rcmpp"` and
/// `"rabbitflat"` are accepted as aliases.
#[must_use]
pub fn parse_technique(name: &str) -> Option<Box<dyn Reordering>> {
    technique_by_name(name, 0xC0DE)
}

/// Resolves a kernel name (`spmv-csr`, `spgemm`, `spgemm-cluster`,
/// `spmm-<k>`, `spmv-tiled-<w>`, `spmv-blocked-<b>`) through the kernel
/// registry ([`commorder_sparse::traffic::kernel_by_name`]); returns
/// `None` for unknown names.
#[must_use]
pub fn parse_kernel(name: &str) -> Option<Kernel> {
    commorder_sparse::traffic::kernel_by_name(name)
}

/// Options of the `commorder-cli suite` subcommand (the full paper-suite
/// grid run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteOptions {
    /// Worker threads (`--threads N`); `None` = available parallelism.
    pub threads: Option<usize>,
    /// Corpus name (`--corpus mini|standard|mega`); `None` = honour the
    /// `COMMORDER_CORPUS` environment variable, defaulting to `standard`.
    pub corpus: Option<String>,
    /// Comma-separated technique list (`--techniques rabbit++,boba`);
    /// `None` = the paper suite. Resolved through the technique
    /// registry, so every registered name and alias is accepted.
    pub techniques: Option<String>,
    /// Comma-separated kernel list (`--kernels spgemm,spgemm-cluster`);
    /// `None` = SpMV-CSR only. Resolved through the kernel registry, so
    /// every registered spelling and alias is accepted.
    pub kernels: Option<String>,
    /// Truncate the corpus (`--max-matrices N`).
    pub max_matrices: Option<usize>,
    /// Keep only corpus entries whose name contains this substring
    /// (`--only NAME`). Applied before `--max-matrices`; CI uses it to
    /// pin the streaming-memory tripwire to the largest synth matrix.
    pub only: Option<String>,
    /// Write the deterministic report JSON here (`--json PATH`, `-` for
    /// stdout).
    pub json: Option<String>,
    /// Stream telemetry events as JSON Lines to this file
    /// (`--telemetry PATH`). The JSON report is byte-identical with or
    /// without this flag — telemetry is a sidecar stream.
    pub telemetry: Option<String>,
    /// Print the resolved corpus grid (matrices after `--only` /
    /// `--max-matrices`, techniques, kernel, job count) and exit
    /// without generating or running anything (`--list`).
    pub list: bool,
}

impl SuiteOptions {
    /// Parses `suite` flags. Unknown flags and malformed values are
    /// errors (returned as the usage message).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending flag.
    pub fn parse(args: &[String]) -> Result<SuiteOptions, String> {
        let mut options = SuiteOptions {
            threads: None,
            corpus: None,
            techniques: None,
            kernels: None,
            max_matrices: None,
            only: None,
            json: None,
            telemetry: None,
            list: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value_of = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--threads" => {
                    let v = value_of("--threads")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--threads expects a positive integer, got {v:?}"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    options.threads = Some(n);
                }
                "--corpus" => {
                    let v = value_of("--corpus")?;
                    if v != "mini" && v != "standard" && v != "mega" {
                        return Err(format!("--corpus expects mini|standard|mega, got {v:?}"));
                    }
                    options.corpus = Some(v);
                }
                "--techniques" => {
                    let v = value_of("--techniques")?;
                    // Validate eagerly so a typo fails at parse time, not
                    // after corpus generation.
                    commorder_reorder::parse_technique_list(&v, 0xC0DE)?;
                    options.techniques = Some(v);
                }
                "--kernels" => {
                    let v = value_of("--kernels")?;
                    commorder_sparse::traffic::parse_kernel_list(&v)?;
                    options.kernels = Some(v);
                }
                "--max-matrices" => {
                    let v = value_of("--max-matrices")?;
                    options.max_matrices = Some(v.parse().map_err(|_| {
                        format!("--max-matrices expects a non-negative integer, got {v:?}")
                    })?);
                }
                "--only" => options.only = Some(value_of("--only")?),
                "--json" => options.json = Some(value_of("--json")?),
                "--telemetry" => options.telemetry = Some(value_of("--telemetry")?),
                "--list" => options.list = true,
                other => return Err(format!("unknown suite flag {other:?}")),
            }
        }
        Ok(options)
    }
}

/// Options of the `commorder-cli profile` subcommand: a suite grid run
/// under the aggregating telemetry registry, reporting the phase tree
/// and the hottest (matrix, technique) cells instead of the result
/// table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileOptions {
    /// The underlying grid configuration (same flags as `suite`).
    pub grid: SuiteOptions,
    /// How many hottest cells to report (`--top N`, default 5).
    pub top: usize,
    /// Where to write the collapsed-stack (folded) flamegraph export
    /// (`--flame PATH`); deterministic, so goldenable across runs.
    pub flame: Option<String>,
}

impl ProfileOptions {
    /// Parses `profile` flags: `--top N` and `--flame PATH` plus every
    /// `suite` flag.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending flag.
    pub fn parse(args: &[String]) -> Result<ProfileOptions, String> {
        let mut top = 5usize;
        let mut flame = None;
        let mut grid_args = Vec::with_capacity(args.len());
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if flag == "--top" {
                let v = it
                    .next()
                    .ok_or_else(|| "--top requires a value".to_string())?;
                top = v
                    .parse()
                    .map_err(|_| format!("--top expects a positive integer, got {v:?}"))?;
                if top == 0 {
                    return Err("--top must be at least 1".to_string());
                }
            } else if flag == "--flame" {
                let v = it
                    .next()
                    .ok_or_else(|| "--flame requires a path".to_string())?;
                flame = Some(v.clone());
            } else {
                grid_args.push(flag.clone());
            }
        }
        let grid =
            SuiteOptions::parse(&grid_args).map_err(|e| e.replace("suite flag", "profile flag"))?;
        Ok(ProfileOptions { grid, top, flame })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_advertised_technique_names_parse() {
        for name in TECHNIQUE_NAMES {
            assert!(parse_technique(name).is_some(), "{name} must parse");
        }
    }

    #[test]
    fn technique_parsing_is_case_insensitive_with_alias() {
        assert_eq!(parse_technique("RABBIT").unwrap().name(), "RABBIT");
        assert_eq!(parse_technique("rabbitpp").unwrap().name(), "RABBIT++");
        assert!(parse_technique("metis").is_none());
    }

    #[test]
    fn suite_options_parse() {
        let args: Vec<String> = [
            "--threads",
            "4",
            "--corpus",
            "mini",
            "--json",
            "-",
            "--telemetry",
            "out.jsonl",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let options = SuiteOptions::parse(&args).unwrap();
        assert_eq!(options.threads, Some(4));
        assert_eq!(options.corpus.as_deref(), Some("mini"));
        assert_eq!(options.json.as_deref(), Some("-"));
        assert_eq!(options.max_matrices, None);
        assert_eq!(options.only, None);
        assert_eq!(options.telemetry.as_deref(), Some("out.jsonl"));
        assert!(!options.list);
    }

    #[test]
    fn suite_list_flag_parses() {
        let options = SuiteOptions::parse(&["--list".to_string()]).unwrap();
        assert!(options.list);
        assert_eq!(options.threads, None);
    }

    #[test]
    fn suite_only_filter_parses() {
        let args: Vec<String> = ["--only", "soc-rmat-xl"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let options = SuiteOptions::parse(&args).unwrap();
        assert_eq!(options.only.as_deref(), Some("soc-rmat-xl"));
        let err = SuiteOptions::parse(&["--only".to_string()]).unwrap_err();
        assert!(err.contains("--only"));
    }

    #[test]
    fn profile_options_extract_top_and_delegate() {
        let args: Vec<String> = [
            "--top",
            "3",
            "--flame",
            "out.folded",
            "--corpus",
            "mini",
            "--threads",
            "2",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let options = ProfileOptions::parse(&args).unwrap();
        assert_eq!(options.top, 3);
        assert_eq!(options.flame.as_deref(), Some("out.folded"));
        assert_eq!(options.grid.corpus.as_deref(), Some("mini"));
        assert_eq!(options.grid.threads, Some(2));
        // Defaults.
        let defaults = ProfileOptions::parse(&[]).unwrap();
        assert_eq!(defaults.top, 5);
        assert_eq!(defaults.flame, None);
        let bad = |args: &[&str]| {
            ProfileOptions::parse(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
                .unwrap_err()
        };
        assert!(bad(&["--top"]).contains("--top"));
        assert!(bad(&["--top", "0"]).contains("at least 1"));
        assert!(bad(&["--flame"]).contains("--flame"));
        assert!(bad(&["--frobnicate"]).contains("profile flag"));
    }

    #[test]
    fn suite_options_reject_bad_values() {
        let bad = |args: &[&str]| {
            SuiteOptions::parse(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
                .unwrap_err()
        };
        assert!(bad(&["--threads"]).contains("--threads"));
        assert!(bad(&["--threads", "zero"]).contains("--threads"));
        assert!(bad(&["--threads", "0"]).contains("at least 1"));
        assert!(bad(&["--corpus", "huge"]).contains("--corpus"));
        assert!(bad(&["--frobnicate"]).contains("unknown"));
    }

    #[test]
    fn kernel_names_parse() {
        assert_eq!(parse_kernel("spmv"), Some(Kernel::SpmvCsr));
        assert_eq!(parse_kernel("SPMV-COO"), Some(Kernel::SpmvCoo));
        assert_eq!(parse_kernel("spmm-4"), Some(Kernel::SpmmCsr { k: 4 }));
        assert_eq!(parse_kernel("spmm-256"), Some(Kernel::SpmmCsr { k: 256 }));
        assert_eq!(
            parse_kernel("spmv-tiled-4096"),
            Some(Kernel::SpmvCsrTiled { tile_cols: 4096 })
        );
        assert_eq!(parse_kernel("spgemm"), Some(Kernel::SpGemmGustavson));
        assert_eq!(
            parse_kernel("spgemm-cluster"),
            Some(Kernel::SpGemmClusterWise)
        );
        assert_eq!(parse_kernel("spmm-0"), None);
        assert_eq!(parse_kernel("gemm"), None);
    }

    #[test]
    fn suite_kernels_flag_parses_and_validates_eagerly() {
        let args: Vec<String> = ["--kernels", "spgemm,spgemm-cluster"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let options = SuiteOptions::parse(&args).unwrap();
        assert_eq!(options.kernels.as_deref(), Some("spgemm,spgemm-cluster"));
        let bad = SuiteOptions::parse(&["--kernels".into(), "gemm".into()]).unwrap_err();
        assert!(bad.contains("unknown kernel"), "{bad}");
        assert!(bad.contains("spgemm-cluster"), "error lists spellings");
    }
}
