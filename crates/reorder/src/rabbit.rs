//! RABBIT: community-based matrix reordering (Arai et al., IPDPS'16).
//!
//! Community detection by incremental modularity-maximizing aggregation
//! (see [`crate::community`]) followed by a depth-first traversal of the
//! merge dendrogram, so that every community — and every nested
//! sub-community — receives a contiguous ID range. The paper maps this
//! hierarchy onto the cache hierarchy: innermost communities to the
//! closest cache, outer levels to larger caches (§V-A).

use commorder_exec::Engine;
use commorder_obs as obs;
use commorder_sparse::{CsrMatrix, Permutation, SparseError};

use crate::community::{self, Dendrogram, DetectionConfig};
use crate::{ReorderContext, Reordering};

/// The RABBIT reordering technique.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Rabbit {
    /// Community-detection configuration (resolution, pass limit).
    pub detection: DetectionConfig,
}

/// Full output of a RABBIT run: the permutation plus everything §V's
/// analysis needs (dendrogram, community assignment).
#[derive(Debug, Clone, PartialEq)]
pub struct RabbitResult {
    /// Old-ID → new-ID permutation.
    pub permutation: Permutation,
    /// Merge dendrogram from community detection.
    pub dendrogram: Dendrogram,
    /// Community ID per (old) vertex.
    pub assignment: Vec<u32>,
}

impl Rabbit {
    /// RABBIT with default detection parameters.
    #[must_use]
    pub fn new() -> Self {
        Rabbit::default()
    }

    /// Runs detection and ordering, exposing the intermediate community
    /// structure (C-INTERMEDIATE: Fig. 3–7 all need the assignment, not
    /// just the permutation).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
    pub fn run(&self, a: &CsrMatrix) -> Result<RabbitResult, SparseError> {
        self.run_with(a, &Engine::serial())
    }

    /// [`Rabbit::run`] with both phases fanned out on `engine`:
    /// community detection shards by island and the dendrogram DFS walks
    /// root chunks in parallel. Byte-identical to the serial run at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
    pub fn run_with(&self, a: &CsrMatrix, engine: &Engine) -> Result<RabbitResult, SparseError> {
        let _span = obs::span!("reorder.rabbit");
        let dendrogram = community::detect_with(a, self.detection, engine)?;
        let (permutation, assignment) = {
            let _order_span = obs::span!("rabbit.order");
            let order = dendrogram.dfs_order_with(engine);
            (Permutation::from_order(&order)?, dendrogram.assignment())
        };
        Ok(RabbitResult {
            permutation,
            dendrogram,
            assignment,
        })
    }
}

impl Reordering for Rabbit {
    fn name(&self) -> &str {
        "RABBIT"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        Ok(self.run(a)?.permutation)
    }

    fn reorder_with(
        &self,
        a: &CsrMatrix,
        cx: &ReorderContext<'_>,
    ) -> Result<Permutation, SparseError> {
        Ok(self.run_with(a, cx.engine())?.permutation)
    }
}

/// RABBIT-FLAT: RABBIT's community detection with the *hierarchy thrown
/// away* — communities are still contiguous ID ranges, but members are
/// shuffled within each range.
///
/// This ablation isolates the value of the dendrogram DFS: the paper's
/// §V-A claims the nested sub-community order maps onto the cache
/// hierarchy, so RABBIT should beat RABBIT-FLAT wherever hierarchy
/// matters (see the `ablation_hierarchy` experiment binary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatCommunity {
    /// Shuffle seed (deterministic).
    pub seed: u64,
    /// Underlying RABBIT configuration.
    pub rabbit: Rabbit,
}

impl FlatCommunity {
    /// RABBIT-FLAT with default detection and a fixed seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FlatCommunity {
            seed,
            rabbit: Rabbit::new(),
        }
    }
}

impl FlatCommunity {
    /// Shuffles members within each community run of `result`'s order.
    fn shuffled_order(&self, result: &RabbitResult) -> Result<Permutation, SparseError> {
        let mut order = result.dendrogram.dfs_order();
        // SplitMix64-driven Fisher–Yates within each community run.
        let mut state = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut start = 0usize;
        while start < order.len() {
            let community = result.assignment[order[start] as usize];
            let mut end = start + 1;
            while end < order.len() && result.assignment[order[end] as usize] == community {
                end += 1;
            }
            let run = &mut order[start..end];
            for i in (1..run.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                run.swap(i, j);
            }
            start = end;
        }
        Permutation::from_order(&order)
    }
}

impl Reordering for FlatCommunity {
    fn name(&self) -> &str {
        "RABBIT-FLAT"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        self.shuffled_order(&self.rabbit.run(a)?)
    }

    fn reorder_with(
        &self,
        a: &CsrMatrix,
        cx: &ReorderContext<'_>,
    ) -> Result<Permutation, SparseError> {
        self.shuffled_order(&self.rabbit.run_with(a, cx.engine())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;
    use commorder_sparse::stats::mean_index_distance;
    use commorder_synth::generators::{HubAndSpoke, PlantedPartition};

    fn scrambled_sbm() -> CsrMatrix {
        let g = PlantedPartition::uniform(1024, 16, 10.0, 0.03)
            .generate(31)
            .unwrap();
        let scramble = crate::RandomOrder::new(17).reorder(&g).unwrap();
        g.permute_symmetric(&scramble).unwrap()
    }

    #[test]
    fn rabbit_restores_locality_on_scrambled_communities() {
        let messy = scrambled_sbm();
        let p = Rabbit::new().reorder(&messy).unwrap();
        let fixed = messy.permute_symmetric(&p).unwrap();
        assert!(
            mean_index_distance(&fixed) < mean_index_distance(&messy) * 0.3,
            "rabbit should strongly reduce index distance: {} -> {}",
            mean_index_distance(&messy),
            mean_index_distance(&fixed)
        );
    }

    #[test]
    fn run_exposes_consistent_intermediates() {
        let messy = scrambled_sbm();
        let r = Rabbit::new().run(&messy).unwrap();
        assert_eq!(r.permutation.len(), 1024);
        assert_eq!(r.assignment.len(), 1024);
        assert_eq!(r.dendrogram.len(), 1024);
        // Assignment matches the dendrogram's own.
        assert_eq!(r.assignment, r.dendrogram.assignment());
        // Detected insularity should be high on a strong-community graph.
        let ins = quality::insularity(&messy, &r.assignment).unwrap();
        assert!(ins > 0.85, "insularity = {ins}");
    }

    #[test]
    fn communities_are_contiguous_in_the_new_order() {
        let messy = scrambled_sbm();
        let r = Rabbit::new().run(&messy).unwrap();
        // Map each new ID back to its community; every community must be
        // one contiguous run.
        let inv = r.permutation.inverse();
        let mut prev = u32::MAX;
        let mut seen = std::collections::HashSet::new();
        for new_id in 0..1024u32 {
            let old = inv.new_of(new_id);
            let c = r.assignment[old as usize];
            if c != prev {
                assert!(seen.insert(c), "community {c} fragmented");
                prev = c;
            }
        }
    }

    #[test]
    fn hub_dominated_graph_degenerates_to_giant_community() {
        // The mawi corner case (§V-B): a mega-hub touching most of the
        // graph forces aggregation to terminate with one community
        // spanning most of the matrix — while insularity stays high, the
        // paper's "misleading metric" anomaly.
        let g = HubAndSpoke {
            n: 2048,
            hubs: 1,
            hub_coverage: 0.85,
            background_degree: 0.3,
        }
        .generate(33)
        .unwrap();
        let r = Rabbit::new().run(&g).unwrap();
        let stats = quality::CommunityStats::from_sizes(&r.dendrogram.community_sizes());
        assert!(
            stats.max_size_fraction > 0.5,
            "expected a giant community, got max fraction {}",
            stats.max_size_fraction
        );
        let ins = quality::insularity(&g, &r.assignment).unwrap();
        assert!(ins > 0.7, "insularity = {ins}");
    }

    #[test]
    fn flat_community_keeps_communities_contiguous_but_shuffles_inside() {
        let messy = scrambled_sbm();
        let rabbit = Rabbit::new().run(&messy).unwrap();
        let flat = FlatCommunity::new(3).reorder(&messy).unwrap();
        assert_ne!(flat, rabbit.permutation, "shuffle must change the order");
        // Communities still form contiguous runs.
        let inv = flat.inverse();
        let mut seen = std::collections::HashSet::new();
        let mut prev = u32::MAX;
        for new_id in 0..1024u32 {
            let c = rabbit.assignment[inv.new_of(new_id) as usize];
            if c != prev {
                assert!(seen.insert(c), "community {c} fragmented by FLAT");
                prev = c;
            }
        }
        // Deterministic per seed.
        assert_eq!(flat, FlatCommunity::new(3).reorder(&messy).unwrap());
        assert_ne!(flat, FlatCommunity::new(4).reorder(&messy).unwrap());
    }

    #[test]
    fn rabbit_emits_phase_spans_and_counters() {
        // The only telemetry-installing test in this binary (the obs
        // dispatcher is process-global).
        let _serial = obs::tests_serial();
        let messy = scrambled_sbm();
        let baseline = Rabbit::new().run(&messy).unwrap();
        let registry = std::sync::Arc::new(obs::Registry::new());
        let guard = obs::install(registry.clone());
        let observed = Rabbit::new().run(&messy).unwrap();
        drop(guard);
        assert_eq!(
            observed, baseline,
            "telemetry must not change the reordering"
        );
        assert_eq!(
            registry.span("reorder.rabbit").map(|s| s.count),
            Some(1),
            "root span"
        );
        let detect = registry
            .span("reorder.rabbit/community.detect")
            .expect("detect nests under rabbit");
        assert_eq!(detect.count, 1);
        let passes = registry.counter("reorder.community.passes");
        assert!(passes >= 1, "at least one aggregation sweep");
        assert_eq!(
            registry
                .span("reorder.rabbit/community.detect/community.pass")
                .map(|s| s.count),
            Some(passes),
            "one pass span per counted pass"
        );
        assert!(registry.counter("reorder.community.merges") > 0);
        assert_eq!(
            registry
                .span("reorder.rabbit/rabbit.order")
                .map(|s| s.count),
            Some(1)
        );
    }

    #[test]
    fn rabbit_name_and_determinism() {
        let messy = scrambled_sbm();
        let r1 = Rabbit::new().reorder(&messy).unwrap();
        let r2 = Rabbit::new().reorder(&messy).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(Rabbit::new().name(), "RABBIT");
    }
}
