use crate::{CsrMatrix, SparseError};

/// A sparse matrix in Compressed Sparse Column format.
///
/// CSC is the column-major dual of [`CsrMatrix`]: `col_offsets` has length
/// `n_cols + 1` and `row_indices`/`values` hold the entries of each column
/// with row indices strictly increasing. It is used where column-wise
/// traversal is natural (in-neighbour scans in GORDER, pull-style kernels).
///
/// # Example
///
/// ```
/// use commorder_sparse::{CscMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), commorder_sparse::SparseError> {
/// let csr = CsrMatrix::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![5.0, 7.0])?;
/// let csc = CscMatrix::from(&csr);
/// assert_eq!(csc.col(0), (&[1u32][..], &[7.0f32][..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    n_rows: u32,
    n_cols: u32,
    col_offsets: Vec<u32>,
    row_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Constructs a CSC matrix after validating structural invariants
    /// (mirror of [`CsrMatrix::new`]).
    ///
    /// # Errors
    ///
    /// See [`CsrMatrix::new`]; identical checks with rows and columns
    /// exchanged.
    pub fn new(
        n_rows: u32,
        n_cols: u32,
        col_offsets: Vec<u32>,
        row_indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        // Validate by constructing the transposed CSR with the same arrays.
        let as_csr = CsrMatrix::new(n_cols, n_rows, col_offsets, row_indices, values)?;
        let (n_rows_chk, n_cols_chk) = (as_csr.n_cols(), as_csr.n_rows());
        debug_assert_eq!((n_rows_chk, n_cols_chk), (n_rows, n_cols));
        Ok(CscMatrix {
            n_rows,
            n_cols,
            col_offsets: as_csr.row_offsets().to_vec(),
            row_indices: as_csr.col_indices().to_vec(),
            values: as_csr.values().to_vec(),
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.row_indices.len()
    }

    /// The `col_offsets` array (length `n_cols + 1`).
    #[must_use]
    pub fn col_offsets(&self) -> &[u32] {
        &self.col_offsets
    }

    /// The row-index array.
    #[must_use]
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// The stored values.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Row indices and values of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_cols`.
    #[must_use]
    pub fn col(&self, c: u32) -> (&[u32], &[f32]) {
        let lo = self.col_offsets[c as usize] as usize;
        let hi = self.col_offsets[c as usize + 1] as usize;
        (&self.row_indices[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in column `c` (the column's in-degree).
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_cols`.
    #[must_use]
    pub fn col_degree(&self, c: u32) -> u32 {
        self.col_offsets[c as usize + 1] - self.col_offsets[c as usize]
    }

    /// Converts back to CSR (`O(nnz + n)`).
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        // CSC of A has the same arrays as CSR of Aᵀ; transposing that CSR
        // yields CSR of A.
        CsrMatrix::new(
            self.n_cols,
            self.n_rows,
            self.col_offsets.clone(),
            self.row_indices.clone(),
            self.values.clone(),
        )
        .expect("internal arrays are valid by construction")
        .transpose()
    }
}

impl From<&CsrMatrix> for CscMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        let t = csr.transpose();
        CscMatrix {
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            col_offsets: t.row_offsets().to_vec(),
            row_indices: t.col_indices().to_vec(),
            values: t.values().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 2, 0],
        //  [0, 0, 3]]
        CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 1, 2], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn from_csr_builds_column_view() {
        let csc = CscMatrix::from(&sample());
        assert_eq!(csc.n_rows(), 2);
        assert_eq!(csc.n_cols(), 3);
        assert_eq!(csc.nnz(), 3);
        assert_eq!(csc.col(0), (&[0u32][..], &[1.0f32][..]));
        assert_eq!(csc.col(1), (&[0u32][..], &[2.0f32][..]));
        assert_eq!(csc.col(2), (&[1u32][..], &[3.0f32][..]));
        assert_eq!(csc.col_degree(2), 1);
    }

    #[test]
    fn csc_round_trips_to_csr() {
        let csr = sample();
        let csc = CscMatrix::from(&csr);
        assert_eq!(csc.to_csr(), csr);
    }

    #[test]
    fn new_validates() {
        // Offsets wrong length for 2 columns.
        assert!(CscMatrix::new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Row index out of bounds.
        assert!(CscMatrix::new(2, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Good.
        assert!(CscMatrix::new(2, 1, vec![0, 1], vec![1], vec![1.0]).is_ok());
    }
}
