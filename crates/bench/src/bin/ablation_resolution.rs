//! **Ablation**: the modularity resolution parameter γ of RABBIT's
//! community detection (DESIGN.md design choice).
//!
//! Higher γ favours smaller communities. The paper's analysis (§V) links
//! performance to community sizes fitting in the L2; this sweep makes
//! the trade-off measurable: γ too low merges past the cache capacity,
//! γ too high fragments real communities and loses hierarchy.

use commorder::prelude::*;
use commorder::reorder::community::DetectionConfig;
use commorder::reorder::quality::{self, CommunityStats};
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let subset: Vec<&str> = if harness.entries.len() <= 8 {
        vec!["mini-sbm", "mini-webhub"]
    } else {
        vec!["opt-block-512", "web-stackex", "soc-rmat-65k"]
    };
    let cases = harness.load_subset(&subset);
    let pipeline = Pipeline::new(harness.gpu);
    let gammas = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

    for case in &cases {
        eprintln!("[ablation_resolution] {}", case.entry.name);
        let mut table = Table::new(
            format!("{}: RABBIT quality vs resolution γ", case.entry.name),
            vec![
                "γ".into(),
                "communities".into(),
                "mean size".into(),
                "insularity".into(),
                "traffic/compulsory".into(),
            ],
        );
        let rows = harness.engine().map(&gammas, |_, &gamma| {
            let rabbit = Rabbit {
                detection: DetectionConfig {
                    resolution: gamma,
                    ..DetectionConfig::default()
                },
            };
            let r = rabbit.run(&case.matrix).expect("square corpus matrix");
            let stats = CommunityStats::from_sizes(&r.dendrogram.community_sizes());
            let ins = quality::insularity(&case.matrix, &r.assignment).expect("validated");
            let run = pipeline.simulate(
                &case
                    .matrix
                    .permute_symmetric(&r.permutation)
                    .expect("validated"),
            );
            vec![
                format!("{gamma:.2}"),
                stats.count.to_string(),
                format!("{:.1}", stats.mean_size),
                format!("{ins:.3}"),
                Table::ratio(run.traffic_ratio),
            ]
        });
        for row in rows {
            table.add_row(row);
        }
        println!("{table}");
    }
    println!(
        "Expected: traffic is flat near γ = 1 (the default) and degrades at the\n\
         extremes — γ is not a hidden tuning knob behind the headline results."
    );
}
