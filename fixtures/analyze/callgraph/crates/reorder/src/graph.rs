//! Shapes the graph builder must classify correctly.

/// First community weigher.
pub struct Alpha;

/// Second community weigher.
pub struct Beta;

impl Alpha {
    /// Same method name as `Beta::weigh`; a *typed* receiver pins
    /// this impl alone.
    pub fn weigh(&self, n: usize) -> usize {
        n + 1
    }
}

impl Beta {
    /// Same method name as `Alpha::weigh`; only untyped receivers
    /// reach it through the CHA fallback.
    pub fn weigh(&self, n: usize) -> usize {
        n + 2
    }
}

/// Dispatch trait over the weighers.
pub trait Weigher {
    /// Scales a weight.
    fn scale(&self, n: usize) -> usize;
}

impl Weigher for Alpha {
    fn scale(&self, n: usize) -> usize {
        n * 2
    }
}

impl Weigher for Beta {
    fn scale(&self, n: usize) -> usize {
        n * 3
    }
}

/// Untypeable producer: calls through its return value resolve by
/// name only (CHA), so `pick().weigh(…)` links both impls.
fn pick() -> Alpha {
    Alpha
}

/// Hot-path seed (`reorder` is in the default seed set); no loops, so
/// the allocation lint stays silent.
pub fn reorder(xs: &[usize]) -> usize {
    let alpha = Alpha;
    // Typed local receiver: resolves to `Alpha::weigh` alone.
    let w = alpha.weigh(xs.len());
    // Chain-tail receiver: ambiguous, edges to both `weigh` impls.
    let v = pick().weigh(w);
    apply(&Alpha, v) + ping(v) + total(xs)
}

/// `dyn`-trait parameter: `w.scale(…)` dispatches CHA-style to every
/// `Weigher` implementor.
fn apply(w: &dyn Weigher, n: usize) -> usize {
    w.scale(n)
}

/// Mutually recursive with `pong`: one cyclic SCC of two nodes.
pub fn ping(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        pong(n - 1)
    }
}

/// Mutually recursive with `ping`.
pub fn pong(n: usize) -> usize {
    if n == 0 {
        1
    } else {
        ping(n - 1)
    }
}

/// Only external calls here: `iter`, `copied`, and `sum` resolve to
/// nothing in the workspace and are counted, never guessed.
fn total(xs: &[usize]) -> usize {
    xs.iter().copied().sum::<usize>()
}
