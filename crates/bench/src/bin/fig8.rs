//! **Figure 8**: headroom analysis — SpMV DRAM traffic under the real
//! LRU L2 versus an idealized L2 with Belady's optimal replacement, per
//! reordering technique. The paper finds the LRU↔Belady gap smallest for
//! RABBIT++ (7.6%), evidence that RABBIT++ is close to the best
//! achievable locality.

use commorder::prelude::*;
use commorder_bench::{figure2_techniques, Harness};

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();

    let mut techniques = figure2_techniques(harness.random_seed);
    techniques.push(Box::new(RabbitPlusPlus::new()));
    let spec = harness
        .spec(techniques)
        .policies(vec![ReplacementPolicy::Lru, ReplacementPolicy::Belady]);
    let result = spec.run(&harness.engine()).expect("valid corpus grid");
    eprintln!("[fig8] engine: {}", result.stats.summary());

    let mut table = Table::new(
        "Fig. 8: mean SpMV traffic (normalized to compulsory), LRU vs Belady",
        vec![
            "technique".into(),
            "LRU".into(),
            "Belady".into(),
            "gap".into(),
        ],
    );
    for (ti, technique) in result.techniques.iter().enumerate() {
        let column = |policy: usize| -> Vec<f64> {
            (0..result.matrices.len())
                .map(|mi| result.record(mi, ti, 0, 0, policy).run.traffic_ratio)
                .collect()
        };
        let l = arith_mean_ratio(&column(0)).unwrap_or(f64::NAN);
        let o = arith_mean_ratio(&column(1)).unwrap_or(f64::NAN);
        table.add_row(vec![
            technique.clone(),
            Table::ratio(l),
            Table::ratio(o),
            Table::percent(l / o - 1.0),
        ]);
    }
    println!("{table}");
    println!(
        "Paper shape: Belady <= LRU everywhere; the gap is smallest for RABBIT++ (7.6%), \
         so RABBIT++ already extracts most of the achievable locality"
    );
}
