//! Interprocedural effect inference (`XT1001`–`XT1005`).
//!
//! Every function node of the [`CallGraph`] gets a six-bit effect mask
//! — `allocates`, `locks`, `panics`, `does_io`, `nondeterministic`,
//! `unsafe` — computed in two steps:
//!
//! 1. **Local sources.** Each body is scanned for lexical effect
//!    sources: container constructors and `.collect()`/`.clone()`
//!    (allocation), `.lock()`/`.try_lock()` (locking), the
//!    panic-family macros (`panic!`, `unreachable!`, `todo!`,
//!    `unimplemented!` — asserts and `unwrap` stay with `XT0904`),
//!    filesystem/stream access and the print macros (I/O), hash-order
//!    iteration, clocks, environment reads and thread identity
//!    (nondeterminism), and `unsafe` tokens.
//! 2. **Fixed point.** Masks propagate bottom-up over the SCC
//!    condensation of the call graph: Tarjan emits components
//!    callees-first, every member of a component takes the union of
//!    the component's local bits and all callee masks, so
//!    `mask[caller] ⊇ mask[callee]` holds over every edge — the
//!    monotonicity invariant `commorder-check`'s `CHK1103` replays.
//!
//! Each inherited bit carries provenance: `via[u][b]` is the first
//! callee on a *shortest* path from `u` to a local source of bit `b`
//! (the node itself for local bits, `-1` for unset bits), computed by
//! a per-bit multi-source BFS over the reversed graph. Following the
//! `via` next-hops therefore terminates at a local source, which is
//! how [`Effects::witness_path`] prints explanations.
//!
//! The findings replace the seed-closure heuristics with inference:
//!
//! * `XT1001` — a hash-iteration or thread-identity source in a
//!   function reachable from a determinism seed (clock and
//!   environment sources stay with the audited `XT0502`/`XT0503`);
//! * `XT1002` — a call inside a loop of a per-access function whose
//!   callee's inferred mask allocates;
//! * `XT1003` — a panic-family macro in a worker-reachable function;
//! * `XT1004` — a lock acquired outside the engine crates in a
//!   worker-reachable function;
//! * `XT1005` — an I/O effect inside (or called into) a crate the
//!   configuration declares pure.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::CallGraph;
use crate::codes;
use crate::findings::{Finding, Severity};
use crate::hotpath::loop_bodies;
use crate::items::{code_indices, in_ranges};
use crate::lexer::{Token, TokenKind};
use crate::model::{CrateData, EffectRow, EffectsReport};

/// Effect bit: constructs containers or duplicates buffers.
pub const ALLOCATES: u32 = 1;
/// Effect bit: acquires a lock.
pub const LOCKS: u32 = 2;
/// Effect bit: reaches an explicit panic-family macro.
pub const PANICS: u32 = 4;
/// Effect bit: touches the filesystem or the standard streams.
pub const DOES_IO: u32 = 8;
/// Effect bit: observes nondeterministic state (hash iteration order,
/// clocks, the environment, thread identity).
pub const NONDET: u32 = 16;
/// Effect bit: contains an `unsafe` token.
pub const UNSAFE: u32 = 32;

/// JSON names of the six bits, lowest bit first — the `"bits"` array
/// of the report's `"effects"` section.
pub const BIT_NAMES: [&str; 6] = [
    "allocates",
    "locks",
    "panics",
    "does_io",
    "nondeterministic",
    "unsafe",
];

/// Container types whose associated constructors allocate.
const CONTAINERS: &[&str] = &[
    "BTreeMap", "BTreeSet", "Box", "HashMap", "HashSet", "String", "Vec", "VecDeque",
];

/// Allocating associated-function names on [`CONTAINERS`].
const CONSTRUCTORS: &[&str] = &["from", "new", "with_capacity"];

/// What kind of lexical effect source a token matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Container construction, `vec!`/`format!`, `.collect()`,
    /// `.to_vec()`, `.clone()`, `.to_owned()`, `.to_string()`.
    Alloc,
    /// `.lock()` / `.try_lock()` acquisition.
    Lock,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// Filesystem access, standard streams, or a print-family macro.
    Io,
    /// Iteration over a `HashMap`/`HashSet` binding (order leaks).
    HashIter,
    /// `Instant::now` / `SystemTime::now`.
    Clock,
    /// `env::var*` / `available_parallelism`.
    EnvRead,
    /// `thread::current`.
    ThreadId,
    /// An `unsafe` token.
    Unsafe,
}

impl SourceKind {
    /// The lattice bit this source sets.
    #[must_use]
    pub fn bit(self) -> u32 {
        match self {
            SourceKind::Alloc => ALLOCATES,
            SourceKind::Lock => LOCKS,
            SourceKind::PanicMacro => PANICS,
            SourceKind::Io => DOES_IO,
            SourceKind::HashIter
            | SourceKind::Clock
            | SourceKind::EnvRead
            | SourceKind::ThreadId => NONDET,
            SourceKind::Unsafe => UNSAFE,
        }
    }
}

/// One lexical effect source inside a function body.
#[derive(Debug, Clone)]
pub struct EffectSource {
    /// What matched.
    pub kind: SourceKind,
    /// 1-based line of the anchor token.
    pub line: u32,
    /// 1-based column of the anchor token.
    pub col: u32,
    /// Column one past the anchor token.
    pub col_end: u32,
    /// Human-readable description of the match.
    pub what: String,
}

/// The inferred effect lattice over one call graph.
pub struct Effects {
    /// Lexically-present effect bits per node.
    pub local: Vec<u32>,
    /// Fixed-point effect bits per node (`local` closed over calls).
    pub mask: Vec<u32>,
    /// Witness next-hop per node and bit: the node itself for local
    /// bits, the first callee of a shortest path to a local source for
    /// inherited bits, `-1` for unset bits.
    pub via: Vec<[i32; 6]>,
    /// The local sources per node, in body order.
    pub sources: Vec<Vec<EffectSource>>,
}

fn is_punct(tok: &Token, src: &str, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text(src).len() == 1 && tok.text(src).starts_with(c)
}

fn ident_is(tok: &Token, src: &str, word: &str) -> bool {
    tok.kind == TokenKind::Ident && tok.text(src) == word
}

fn ident_in(tok: &Token, src: &str, words: &[&str]) -> bool {
    tok.kind == TokenKind::Ident && words.contains(&tok.text(src))
}

/// Computes the effect lattice: scans every node body for local
/// sources, then closes the masks over the call edges and derives the
/// per-bit witness next-hops.
#[must_use]
pub fn compute(crates: &[CrateData], graph: &CallGraph) -> Effects {
    let n = graph.nodes.len();
    let mut sources: Vec<Vec<EffectSource>> = vec![Vec::new(); n];
    let files: BTreeSet<(usize, usize)> = graph
        .nodes
        .iter()
        .map(|node| (node.crate_idx, node.file_idx))
        .collect();
    for (ci, fi) in files {
        scan_file(crates, graph, ci, fi, &mut sources);
    }
    let local: Vec<u32> = sources
        .iter()
        .map(|list| list.iter().fold(0, |m, s| m | s.kind.bit()))
        .collect();
    let mask = propagate(&local, &graph.adj);
    let via = witnesses(&local, &mask, &graph.adj);
    Effects {
        local,
        mask,
        via,
        sources,
    }
}

impl Effects {
    /// The serializable projection consumed by `render_json`: one row
    /// per effectful node plus the stats `CHK1103` re-derives.
    #[must_use]
    pub fn to_report(&self) -> EffectsReport {
        let mut rows = Vec::new();
        let mut local_bits = 0u32;
        let mut total_bits = 0u32;
        for u in 0..self.mask.len() {
            local_bits += self.local[u].count_ones();
            total_bits += self.mask[u].count_ones();
            if self.mask[u] != 0 {
                rows.push(EffectRow {
                    node: u32::try_from(u).unwrap_or(u32::MAX),
                    mask: self.mask[u],
                    local: self.local[u],
                    via: self.via[u],
                });
            }
        }
        EffectsReport {
            rows,
            functions: u32::try_from(self.mask.len()).unwrap_or(u32::MAX),
            local_bits,
            propagated_bits: total_bits - local_bits,
        }
    }

    /// Node sequence of the shortest witness path from `start` to a
    /// local source of `bit`, following the `via` next-hops. The last
    /// node carries the bit locally.
    #[must_use]
    pub fn witness_path(&self, start: usize, bit: u32) -> Vec<usize> {
        let b = bit.trailing_zeros() as usize;
        let mut path = vec![start];
        let mut u = start;
        // Shortest-path distances strictly decrease along `via`, so the
        // walk is bounded by the node count even on a malformed table.
        for _ in 0..self.mask.len() {
            let v = self.via[u].get(b).copied().unwrap_or(-1);
            if v < 0 || v as usize == u {
                break;
            }
            u = v as usize;
            path.push(u);
        }
        path
    }
}

/// Scans one file's code tokens and attributes every local effect
/// source to its innermost owning node.
fn scan_file(
    crates: &[CrateData],
    graph: &CallGraph,
    ci: usize,
    fi: usize,
    sources: &mut [Vec<EffectSource>],
) {
    let f = &crates[ci].files[fi];
    let src = &f.src;
    let tokens = &f.tokens;
    let code = code_indices(tokens);
    // `let`-bound `HashMap`/`HashSet` variables per owner, recorded as
    // the scan passes their bindings (bindings precede uses).
    let mut hash_vars: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();

    for (k, &idx) in code.iter().enumerate() {
        let t = &tokens[idx];
        if t.kind != TokenKind::Ident
            || in_ranges(t.start, &f.test_ranges)
            || in_ranges(t.start, &f.macro_ranges)
        {
            continue;
        }
        let Some(owner) = graph.owner(ci, fi, t.start) else {
            continue;
        };
        let word = t.text(src);
        let push =
            |sources: &mut [Vec<EffectSource>], kind: SourceKind, at: &Token, what: String| {
                sources[owner].push(EffectSource {
                    kind,
                    line: at.line,
                    col: at.col,
                    col_end: at.col + u32::try_from(at.end - at.start).unwrap_or(0),
                    what,
                });
            };
        let next_bang = code
            .get(k + 1)
            .is_some_and(|&m| is_punct(&tokens[m], src, '!'));
        if next_bang {
            match word {
                "vec" => push(sources, SourceKind::Alloc, t, "`vec!` construction".into()),
                "format" => push(sources, SourceKind::Alloc, t, "`format!`".into()),
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    push(sources, SourceKind::PanicMacro, t, format!("`{word}!`"));
                }
                "print" | "println" | "eprint" | "eprintln" => {
                    push(sources, SourceKind::Io, t, format!("`{word}!`"));
                }
                _ => {}
            }
            continue;
        }
        if word == "unsafe" {
            push(sources, SourceKind::Unsafe, t, "`unsafe` block".into());
            continue;
        }
        // Path-shaped sources: `Qual::assoc(…)`.
        if double_colon_then(src, tokens, &code, k) {
            let assoc_tok = &tokens[code[k + 3]];
            let assoc = assoc_tok.text(src);
            let opens = call_opens(src, tokens, &code, k + 4);
            if opens {
                let what = format!("`{word}::{assoc}`");
                if CONTAINERS.contains(&word) && CONSTRUCTORS.contains(&assoc) {
                    push(sources, SourceKind::Alloc, t, what);
                } else if matches!(word, "Instant" | "SystemTime") && assoc == "now" {
                    push(sources, SourceKind::Clock, t, what);
                } else if (word == "File" && matches!(assoc, "open" | "create"))
                    || (word == "OpenOptions" && assoc == "new")
                    || word == "fs"
                {
                    push(sources, SourceKind::Io, t, what);
                } else if word == "env" && matches!(assoc, "var" | "var_os" | "vars" | "vars_os") {
                    push(sources, SourceKind::EnvRead, t, what);
                } else if word == "thread" && assoc == "current" {
                    push(sources, SourceKind::ThreadId, t, what);
                }
            }
        }
        let after_dot = k >= 1 && is_punct(&tokens[code[k - 1]], src, '.');
        let opens_call = call_opens(src, tokens, &code, k + 1);
        if after_dot && opens_call {
            match word {
                "collect" | "to_vec" | "clone" | "to_owned" | "to_string" => {
                    push(sources, SourceKind::Alloc, t, format!("`.{word}()`"));
                }
                "lock" | "try_lock" => {
                    push(sources, SourceKind::Lock, t, format!("`.{word}()`"));
                }
                _ => {}
            }
            continue;
        }
        if !after_dot && opens_call && word == "available_parallelism" {
            push(
                sources,
                SourceKind::EnvRead,
                t,
                "`available_parallelism`".into(),
            );
            continue;
        }
        if word == "let" {
            if let Some(name) = hash_let_binding(src, tokens, &code, k) {
                hash_vars.entry(owner).or_default().insert(name);
            }
            continue;
        }
        if word == "for" {
            if let Some(vars) = hash_vars.get(&owner) {
                if let Some(var_tok) = for_iterates_hash(src, tokens, &code, k, vars) {
                    let what = format!("`for` iteration over hash-ordered `{}`", var_tok.text(src));
                    push(sources, SourceKind::HashIter, var_tok, what);
                }
            }
        }
    }
}

/// If the `let` at code index `k` binds a `HashMap`/`HashSet` —
/// `let [mut] x: HashMap<…>` or `let [mut] x = HashMap::…` — returns
/// the bound variable name.
fn hash_let_binding(src: &str, tokens: &[Token], code: &[usize], k: usize) -> Option<String> {
    let mut j = k + 1;
    if code
        .get(j)
        .is_some_and(|&m| ident_is(&tokens[m], src, "mut"))
    {
        j += 1;
    }
    let name_tok = &tokens[*code.get(j)?];
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let after = &tokens[*code.get(j + 1)?];
    let ty_at = if is_punct(after, src, ':') {
        // `let x: HashMap<…>` — a single colon, not a `::` path.
        let double = code
            .get(j + 2)
            .is_some_and(|&m| is_punct(&tokens[m], src, ':') && after.end == tokens[m].start);
        if double {
            return None;
        }
        j + 2
    } else if is_punct(after, src, '=') {
        j + 2
    } else {
        return None;
    };
    let head = &tokens[*code.get(ty_at)?];
    ident_in(head, src, &["HashMap", "HashSet"]).then(|| name_tok.text(src).to_string())
}

/// If the `for` loop at code index `k` iterates an expression naming
/// one of `vars` (a hash-bound variable), returns that variable's
/// token. Sorted-drain patterns iterate a `Vec` bound from
/// `.keys().collect()` + `sort`, so they never match here.
fn for_iterates_hash<'a>(
    src: &str,
    tokens: &'a [Token],
    code: &[usize],
    k: usize,
    vars: &BTreeSet<String>,
) -> Option<&'a Token> {
    let mut depth = 0i64;
    let mut j = k + 1;
    let mut saw_in = false;
    while j < code.len() {
        let t = &tokens[code[j]];
        if is_punct(t, src, '(') || is_punct(t, src, '[') {
            depth += 1;
        } else if is_punct(t, src, ')') || is_punct(t, src, ']') {
            depth -= 1;
        } else if depth == 0 {
            if is_punct(t, src, '{') || is_punct(t, src, ';') {
                return None;
            }
            if ident_is(t, src, "in") {
                saw_in = true;
            } else if saw_in && t.kind == TokenKind::Ident && vars.contains(t.text(src)) {
                return Some(t);
            }
        } else if saw_in && t.kind == TokenKind::Ident && vars.contains(t.text(src)) {
            return Some(t);
        }
        j += 1;
    }
    None
}

/// `true` when code index `k` is followed by `::` and an identifier.
fn double_colon_then(src: &str, tokens: &[Token], code: &[usize], k: usize) -> bool {
    let (Some(&a), Some(&b), Some(&c)) = (code.get(k + 1), code.get(k + 2), code.get(k + 3)) else {
        return false;
    };
    is_punct(&tokens[a], src, ':')
        && is_punct(&tokens[b], src, ':')
        && tokens[a].end == tokens[b].start
        && tokens[c].kind == TokenKind::Ident
}

/// `true` when the code tokens at `at` open a call — `(` directly or a
/// `::<…>` turbofish then `(`.
fn call_opens(src: &str, tokens: &[Token], code: &[usize], at: usize) -> bool {
    let Some(&k) = code.get(at) else { return false };
    if is_punct(&tokens[k], src, '(') {
        return true;
    }
    let (Some(&a), Some(&b), Some(&c)) = (code.get(at), code.get(at + 1), code.get(at + 2)) else {
        return false;
    };
    if !(is_punct(&tokens[a], src, ':')
        && is_punct(&tokens[b], src, ':')
        && tokens[a].end == tokens[b].start
        && is_punct(&tokens[c], src, '<'))
    {
        return false;
    }
    let mut depth = 0i64;
    let mut j = at + 2;
    while j < code.len() {
        let t = &tokens[code[j]];
        if is_punct(t, src, '<') {
            depth += 1;
        } else if is_punct(t, src, '>') {
            let arrow = j > 0 && is_punct(&tokens[code[j - 1]], src, '-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return code
                        .get(j + 1)
                        .is_some_and(|&m| is_punct(&tokens[m], src, '('));
                }
            }
        }
        j += 1;
    }
    false
}

/// Closes the local masks over the call edges: Tarjan emits SCCs in
/// reverse topological order (callees before callers), so one bottom-up
/// sweep — every member of a component takes the union of the
/// component's bits and all callee masks — reaches the fixed point.
fn propagate(local: &[u32], adj: &[Vec<usize>]) -> Vec<u32> {
    let mut mask = local.to_vec();
    for comp in all_sccs(local.len(), adj) {
        let mut acc = 0u32;
        for &u in &comp {
            acc |= mask[u];
            for &v in &adj[u] {
                acc |= mask[v];
            }
        }
        for &u in &comp {
            mask[u] = acc;
        }
    }
    mask
}

/// Iterative Tarjan over the whole graph, singletons included, in
/// emission order (each component's callees precede it).
fn all_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        low: u32,
        on_stack: bool,
        visited: bool,
    }
    let mut state = vec![
        NodeState {
            index: 0,
            low: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut next_index = 0u32;
    let mut stack = Vec::new();
    let mut sccs = Vec::new();
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if state[start].visited {
            continue;
        }
        frames.push((start, 0));
        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            if frame.1 == 0 {
                state[v].visited = true;
                state[v].index = next_index;
                state[v].low = next_index;
                next_index += 1;
                state[v].on_stack = true;
                stack.push(v);
            }
            if let Some(&w) = adj[v].get(frame.1) {
                frame.1 += 1;
                if !state[w].visited {
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].low = state[v].low.min(state[w].index);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let low = state[v].low;
                    state[parent].low = state[parent].low.min(low);
                }
                if state[v].low == state[v].index {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        state[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// Derives the witness next-hops: for each bit, a multi-source BFS
/// over the reversed graph measures the distance of every node to the
/// nearest local source, and `via[u]` picks the smallest-indexed
/// callee one step closer — so `via` chains strictly descend and
/// terminate at a local source.
fn witnesses(local: &[u32], mask: &[u32], adj: &[Vec<usize>]) -> Vec<[i32; 6]> {
    let n = local.len();
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, outs) in adj.iter().enumerate() {
        for &v in outs {
            radj[v].push(u);
        }
    }
    let mut via = vec![[-1i32; 6]; n];
    for (b, row) in BIT_NAMES.iter().enumerate() {
        let _ = row;
        let bit = 1u32 << b;
        let mut dist: Vec<Option<u32>> = vec![None; n];
        let mut queue = VecDeque::new();
        for u in 0..n {
            if local[u] & bit != 0 {
                dist[u] = Some(0);
                queue.push_back(u);
            }
        }
        while let Some(u) = queue.pop_front() {
            let next = dist[u].unwrap_or(0) + 1;
            for &c in &radj[u] {
                if dist[c].is_none() {
                    dist[c] = Some(next);
                    queue.push_back(c);
                }
            }
        }
        for u in 0..n {
            if mask[u] & bit == 0 {
                continue;
            }
            if local[u] & bit != 0 {
                via[u][b] = i32::try_from(u).unwrap_or(-1);
                continue;
            }
            let du = dist[u];
            let hop = adj[u]
                .iter()
                .copied()
                .find(|&v| mask[v] & bit != 0 && dist[v].map(|d| d + 1) == du);
            via[u][b] = hop.map_or(-1, |v| i32::try_from(v).unwrap_or(-1));
        }
    }
    via
}

/// Runs the effect-driven findings over the inferred lattice.
#[must_use]
pub fn check(
    crates: &[CrateData],
    graph: &CallGraph,
    effects: &Effects,
    peraccess_seed_fns: &BTreeSet<String>,
    engine_crates: &BTreeSet<String>,
    pure_crates: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    nondet_on_report_paths(crates, graph, effects, &mut findings);
    alloc_in_peraccess_loops(
        crates,
        graph,
        effects,
        peraccess_seed_fns,
        engine_crates,
        &mut findings,
    );
    worker_effects(crates, graph, effects, engine_crates, &mut findings);
    pure_crate_io(crates, graph, effects, pure_crates, &mut findings);
    findings
}

/// Source-anchored finding constructor shared by the rules here.
fn at(code: &'static str, file: &str, s: &EffectSource, message: String) -> Finding {
    Finding {
        code,
        severity: Severity::Error,
        file: file.to_string(),
        line: s.line,
        col_start: s.col,
        col_end: s.col_end,
        message,
    }
}

/// `XT1001`: hash-iteration and thread-identity sources in functions
/// reachable from a determinism seed. Clock and environment sources
/// stay with the module-level `XT0502`/`XT0503` rules.
fn nondet_on_report_paths(
    crates: &[CrateData],
    graph: &CallGraph,
    effects: &Effects,
    findings: &mut Vec<Finding>,
) {
    let reached = graph.reachable(&graph.seeds_determinism);
    for (ni, node) in graph.nodes.iter().enumerate() {
        let Some(seed) = reached[ni] else { continue };
        let file = &crates[node.crate_idx].files[node.file_idx].rel;
        for s in &effects.sources[ni] {
            if !matches!(s.kind, SourceKind::HashIter | SourceKind::ThreadId) {
                continue;
            }
            findings.push(at(
                codes::NONDET_EFFECT,
                file,
                s,
                format!(
                    "{} in `{}`, reachable from determinism seed `{}`: inferred \
                     nondeterministic effect on a report path",
                    s.what, node.name, graph.nodes[seed].name
                ),
            ));
        }
    }
}

/// `XT1002`: a call site inside a loop of a function reachable from a
/// per-access seed whose callee's inferred mask allocates. The direct
/// lexical shapes are `XT0801`–`XT0804`; this rule is the
/// interprocedural closure over them. Sites whose caller or callee
/// lives in an engine crate are excluded: the engine's job-marshaling
/// buffers are the sanctioned allocation surface of the parallel path,
/// audited separately by the `XT09xx` pass.
fn alloc_in_peraccess_loops(
    crates: &[CrateData],
    graph: &CallGraph,
    effects: &Effects,
    peraccess_seed_fns: &BTreeSet<String>,
    engine_crates: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let seeds: BTreeSet<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.is_closure && peraccess_seed_fns.contains(&n.simple))
        .map(|(i, _)| i)
        .collect();
    let reached = graph.reachable(&seeds);
    let mut loops_of: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &(u, v, pos, line, col) in &graph.site_edges {
        let Some(seed) = reached[u] else { continue };
        if u == v || effects.mask[v] & ALLOCATES == 0 {
            continue;
        }
        if engine_crates.contains(&crates[graph.nodes[u].crate_idx].dir_name)
            || engine_crates.contains(&crates[graph.nodes[v].crate_idx].dir_name)
        {
            continue;
        }
        let node = &graph.nodes[u];
        let f = &crates[node.crate_idx].files[node.file_idx];
        let loops = loops_of
            .entry(u)
            .or_insert_with(|| loop_bodies(&f.src, &f.tokens, node.body.0, node.body.1));
        if !in_ranges(pos, loops) || !seen.insert((u, pos)) {
            continue;
        }
        let callee = &graph.nodes[v];
        let path = effects.witness_path(v, ALLOCATES);
        let names: Vec<&str> = path.iter().map(|&i| graph.nodes[i].name.as_str()).collect();
        findings.push(Finding {
            code: codes::HOT_ALLOC_EFFECT,
            severity: Severity::Error,
            file: f.rel.clone(),
            line,
            col_start: col,
            col_end: col + u32::try_from(callee.simple.len()).unwrap_or(0),
            message: format!(
                "call to `{}` (inferred allocation effect; witness: {}) in a loop of `{}`, \
                 reachable from per-access seed `{}`",
                callee.name,
                names.join(" -> "),
                node.name,
                graph.nodes[seed].name
            ),
        });
    }
}

/// `XT1003`/`XT1004`: panic-macro and lock sources in functions
/// reachable from a worker seed, outside the engine crates — the
/// engine's own panic-propagation boundary and queue locks are its
/// documented contract, audited by the `XT09xx` pass.
fn worker_effects(
    crates: &[CrateData],
    graph: &CallGraph,
    effects: &Effects,
    engine_crates: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let reached = graph.reachable(&graph.seeds_worker);
    for (ni, node) in graph.nodes.iter().enumerate() {
        let Some(seed) = reached[ni] else { continue };
        let crate_name = &crates[node.crate_idx].dir_name;
        let file = &crates[node.crate_idx].files[node.file_idx].rel;
        if engine_crates.contains(crate_name) {
            continue;
        }
        for s in &effects.sources[ni] {
            match s.kind {
                SourceKind::PanicMacro => findings.push(at(
                    codes::WORKER_PANIC_EFFECT,
                    file,
                    s,
                    format!(
                        "{} in `{}`, reachable from worker seed `{}`: a panicking worker \
                         breaks the engine contract",
                        s.what, node.name, graph.nodes[seed].name
                    ),
                )),
                SourceKind::Lock => findings.push(at(
                    codes::WORKER_LOCK_EFFECT,
                    file,
                    s,
                    format!(
                        "{} in `{}` (crate `{crate_name}`), reachable from worker seed \
                         `{}`: locks outside the engine risk deadlock under the pool",
                        s.what, node.name, graph.nodes[seed].name
                    ),
                )),
                _ => {}
            }
        }
    }
}

/// `XT1005`: an I/O effect inside a declared-pure crate — either a
/// local source, or a cross-crate call whose callee's inferred mask
/// does I/O (the witness path names the chain to the source).
fn pure_crate_io(
    crates: &[CrateData],
    graph: &CallGraph,
    effects: &Effects,
    pure_crates: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for (ni, node) in graph.nodes.iter().enumerate() {
        let crate_name = &crates[node.crate_idx].dir_name;
        if !pure_crates.contains(crate_name) {
            continue;
        }
        let file = &crates[node.crate_idx].files[node.file_idx].rel;
        for s in &effects.sources[ni] {
            if s.kind != SourceKind::Io {
                continue;
            }
            findings.push(at(
                codes::PURE_CRATE_IO_EFFECT,
                file,
                s,
                format!(
                    "{} in `{}`: crate `{crate_name}` is declared free of I/O effects",
                    s.what, node.name
                ),
            ));
        }
    }
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &(u, v, pos, line, col) in &graph.site_edges {
        let caller = &graph.nodes[u];
        let crate_name = &crates[caller.crate_idx].dir_name;
        if !pure_crates.contains(crate_name)
            || graph.nodes[v].crate_idx == caller.crate_idx
            || effects.mask[v] & DOES_IO == 0
            || !seen.insert((u, pos))
        {
            continue;
        }
        let callee = &graph.nodes[v];
        let path = effects.witness_path(v, DOES_IO);
        let names: Vec<&str> = path.iter().map(|&i| graph.nodes[i].name.as_str()).collect();
        findings.push(Finding {
            code: codes::PURE_CRATE_IO_EFFECT,
            severity: Severity::Error,
            file: crates[caller.crate_idx].files[caller.file_idx].rel.clone(),
            line,
            col_start: col,
            col_end: col + u32::try_from(callee.simple.len()).unwrap_or(0),
            message: format!(
                "call to `{}` carries an I/O effect into declared-pure crate \
                 `{crate_name}` (witness: {})",
                callee.name,
                names.join(" -> ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagate_closes_over_a_chain() {
        // 0 -> 1 -> 2; only 2 has a local bit.
        let local = vec![0, 0, ALLOCATES];
        let adj = vec![vec![1], vec![2], vec![]];
        let mask = propagate(&local, &adj);
        assert_eq!(mask, vec![ALLOCATES; 3]);
    }

    #[test]
    fn propagate_unions_inside_an_scc() {
        // 0 <-> 1 cycle; 0 locks, 1 panics; 2 calls into the cycle.
        let local = vec![LOCKS, PANICS, 0];
        let adj = vec![vec![1], vec![0], vec![0]];
        let mask = propagate(&local, &adj);
        assert_eq!(mask[0], LOCKS | PANICS);
        assert_eq!(mask[1], LOCKS | PANICS);
        assert_eq!(mask[2], LOCKS | PANICS);
    }

    #[test]
    fn witnesses_pick_the_shortest_hop() {
        // 0 -> 1 -> 3 (source), 0 -> 2 -> 3; both hops are one step
        // from a source at distance 1, so 0 picks the smaller index 1.
        let local = vec![0, 0, 0, DOES_IO];
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let mask = propagate(&local, &adj);
        let via = witnesses(&local, &mask, &adj);
        let b = DOES_IO.trailing_zeros() as usize;
        assert_eq!(via[3][b], 3); // local source points at itself
        assert_eq!(via[1][b], 3);
        assert_eq!(via[0][b], 1);
        // Unset bits stay -1.
        assert_eq!(via[0][LOCKS.trailing_zeros() as usize], -1);
    }

    #[test]
    fn witness_chains_terminate_through_cycles() {
        // 0 <-> 1 cycle, 1 is the source: 0's chain must end at 1.
        let local = vec![0, NONDET];
        let adj = vec![vec![1], vec![0]];
        let mask = propagate(&local, &adj);
        let via = witnesses(&local, &mask, &adj);
        let effects = Effects {
            local,
            mask,
            via,
            sources: vec![Vec::new(), Vec::new()],
        };
        assert_eq!(effects.witness_path(0, NONDET), vec![0, 1]);
        assert_eq!(effects.witness_path(1, NONDET), vec![1]);
    }

    #[test]
    fn report_stats_add_up() {
        let local = vec![0, ALLOCATES, 0];
        let adj = vec![vec![1], vec![], vec![]];
        let mask = propagate(&local, &adj);
        let via = witnesses(&local, &mask, &adj);
        let effects = Effects {
            local,
            mask,
            via,
            sources: vec![Vec::new(), Vec::new(), Vec::new()],
        };
        let report = effects.to_report();
        assert_eq!(report.functions, 3);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.local_bits, 1);
        assert_eq!(report.propagated_bits, 1);
        assert!(report.rows.windows(2).all(|w| w[0].node < w[1].node));
    }
}
