//! The hot-path allocation lint (`XT0801`–`XT0804`).
//!
//! The paper's economic argument only holds if preprocessing stays
//! near-linear, so the loops of every function reachable from a
//! hot-path seed (`replay`, `consume`, `simulate`, `simulate_belady`,
//! `reorder` — see `AnalyzerConfig::hot_seed_fns`) must not allocate
//! per iteration. Four shapes are flagged inside loop bodies:
//!
//! * `XT0801` — container construction: `Vec::new`,
//!   `with_capacity`, `from`, `Box::new`, `vec!`, and friends;
//! * `XT0802` — iterator materialization: `.collect()`, `.to_vec()`;
//! * `XT0803` — duplication: `.clone()`, `.to_owned()`,
//!   `.to_string()`;
//! * `XT0804` — `format!`.
//!
//! Amortized growth (`push`, `extend`) is deliberately not flagged.
//! Justified exceptions go through the same allowlist as every other
//! code family.

use crate::callgraph::CallGraph;
use crate::codes;
use crate::findings::{Finding, Severity};
use crate::items::{code_indices, in_ranges};
use crate::lexer::{Token, TokenKind};
use crate::model::CrateData;

/// Container types whose associated constructors allocate.
const CONTAINERS: &[&str] = &[
    "BTreeMap", "BTreeSet", "Box", "HashMap", "HashSet", "String", "Vec", "VecDeque",
];

/// Allocating associated-function names on [`CONTAINERS`].
const CONSTRUCTORS: &[&str] = &["from", "new", "with_capacity"];

fn is_punct(tok: &Token, src: &str, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text(src).len() == 1 && tok.text(src).starts_with(c)
}

fn ident_in(tok: &Token, src: &str, words: &[&str]) -> bool {
    tok.kind == TokenKind::Ident && words.contains(&tok.text(src))
}

/// Byte ranges of `for`/`while`/`loop` bodies within `(start, end)`.
/// Nested loop bodies produce overlapping ranges; membership is what
/// matters, so overlap is harmless.
#[must_use]
pub fn loop_bodies(src: &str, tokens: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let code: Vec<usize> = code_indices(tokens)
        .into_iter()
        .filter(|&i| tokens[i].start >= start && tokens[i].start < end)
        .collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let t = &tokens[code[i]];
        if !ident_in(t, src, &["for", "loop", "while"]) {
            i += 1;
            continue;
        }
        // The body is the next `{` at paren/bracket depth 0 (closure
        // braces inside iterator arguments sit behind a paren).
        let mut depth = 0i64;
        let mut j = i + 1;
        let mut open = None;
        while j < code.len() {
            let n = &tokens[code[j]];
            if is_punct(n, src, '(') || is_punct(n, src, '[') {
                depth += 1;
            } else if is_punct(n, src, ')') || is_punct(n, src, ']') {
                depth -= 1;
            } else if depth == 0 {
                if is_punct(n, src, '{') {
                    open = Some(j);
                    break;
                }
                if is_punct(n, src, ';') {
                    break; // `for` in a doc example gone wrong; bail
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let mut brace = 0i64;
        let mut k = open;
        let mut body_end = end;
        while k < code.len() {
            let n = &tokens[code[k]];
            if is_punct(n, src, '{') {
                brace += 1;
            } else if is_punct(n, src, '}') {
                brace -= 1;
                if brace == 0 {
                    body_end = n.end;
                    break;
                }
            }
            k += 1;
        }
        out.push((tokens[code[open]].start, body_end));
        i = open + 1; // descend: nested loops get their own ranges
    }
    out
}

/// Runs the lint over every function reachable from a hot-path seed.
#[must_use]
pub fn check(crates: &[CrateData], graph: &CallGraph) -> Vec<Finding> {
    let reached = graph.reachable(&graph.seeds_hotpath);
    let mut findings = Vec::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        let Some(seed) = reached[ni] else { continue };
        let seed_name = &graph.nodes[seed].name;
        let f = &crates[node.crate_idx].files[node.file_idx];
        let src = &f.src;
        let tokens = &f.tokens;
        let loops = loop_bodies(src, tokens, node.body.0, node.body.1);
        if loops.is_empty() {
            continue;
        }
        let code = code_indices(tokens);
        let push = |findings: &mut Vec<Finding>, code: &'static str, t: &Token, what: &str| {
            findings.push(Finding {
                code,
                severity: Severity::Error,
                file: f.rel.clone(),
                line: t.line,
                col_start: t.col,
                col_end: t.col + u32::try_from(t.end - t.start).unwrap_or(0),
                message: format!(
                    "{what} in a loop of `{}`, reachable from hot-path seed `{seed_name}`",
                    node.name
                ),
            });
        };
        for (ci, &idx) in code.iter().enumerate() {
            let t = &tokens[idx];
            if t.kind != TokenKind::Ident
                || t.start < node.body.0
                || t.start >= node.body.1
                || !in_ranges(t.start, &loops)
                || in_ranges(t.start, &f.test_ranges)
                || in_ranges(t.start, &f.macro_ranges)
                || graph.owner(node.crate_idx, node.file_idx, t.start) != Some(ni)
            {
                continue;
            }
            let prev = ci.checked_sub(1).map(|p| &tokens[code[p]]);
            let next = code.get(ci + 1).map(|&k| &tokens[k]);
            let next_bang = next.is_some_and(|n| is_punct(n, src, '!'));
            let word = t.text(src);
            if next_bang {
                if word == "vec" {
                    push(&mut findings, codes::HOT_ALLOC, t, "`vec!` construction");
                } else if word == "format" {
                    push(&mut findings, codes::HOT_FORMAT, t, "`format!`");
                }
                continue;
            }
            if CONTAINERS.contains(&word) && double_colon_then(src, tokens, &code, ci) {
                let assoc = &tokens[code[ci + 3]];
                if ident_in(assoc, src, CONSTRUCTORS) && call_opens(src, tokens, &code, ci + 4) {
                    let what = format!("`{}::{}`", word, assoc.text(src));
                    push(&mut findings, codes::HOT_ALLOC, t, &what);
                }
                continue;
            }
            let after_dot = prev.is_some_and(|p| is_punct(p, src, '.'));
            if after_dot && call_opens(src, tokens, &code, ci + 1) {
                match word {
                    "collect" | "to_vec" => {
                        let what = format!("`.{word}()`");
                        push(&mut findings, codes::HOT_COLLECT, t, &what);
                    }
                    "clone" | "to_owned" | "to_string" => {
                        let what = format!("`.{word}()`");
                        push(&mut findings, codes::HOT_CLONE, t, &what);
                    }
                    _ => {}
                }
            }
        }
    }
    findings
}

/// `true` when code index `ci` is followed by `::` and an identifier.
fn double_colon_then(src: &str, tokens: &[Token], code: &[usize], ci: usize) -> bool {
    let (Some(&a), Some(&b), Some(&c)) = (code.get(ci + 1), code.get(ci + 2), code.get(ci + 3))
    else {
        return false;
    };
    is_punct(&tokens[a], src, ':')
        && is_punct(&tokens[b], src, ':')
        && tokens[a].end == tokens[b].start
        && tokens[c].kind == TokenKind::Ident
}

/// `true` when the code tokens at `at` open a call — `(` directly or
/// `::<…>` then `(`.
fn call_opens(src: &str, tokens: &[Token], code: &[usize], at: usize) -> bool {
    let Some(&k) = code.get(at) else { return false };
    if is_punct(&tokens[k], src, '(') {
        return true;
    }
    // Turbofish: `::` `<` … `>` `(`.
    let (Some(&a), Some(&b), Some(&c)) = (code.get(at), code.get(at + 1), code.get(at + 2)) else {
        return false;
    };
    if !(is_punct(&tokens[a], src, ':')
        && is_punct(&tokens[b], src, ':')
        && tokens[a].end == tokens[b].start
        && is_punct(&tokens[c], src, '<'))
    {
        return false;
    }
    let mut depth = 0i64;
    let mut j = at + 2;
    while j < code.len() {
        let t = &tokens[code[j]];
        if is_punct(t, src, '<') {
            depth += 1;
        } else if is_punct(t, src, '>') {
            let arrow = j > 0 && is_punct(&tokens[code[j - 1]], src, '-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return code
                        .get(j + 1)
                        .is_some_and(|&k| is_punct(&tokens[k], src, '('));
                }
            }
        }
        j += 1;
    }
    false
}
