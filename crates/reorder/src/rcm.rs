//! Reverse Cuthill–McKee ordering, plus the RCM++ bi-criteria variant.
//!
//! RCM is the classic bandwidth/profile-minimizing ordering the paper
//! cites among RABBIT's outperformed baselines (\[23\], Karantasis et al.).
//! Included as a reference point for the analysis extensions: BFS levels
//! from a pseudo-peripheral start vertex, neighbours visited in increasing
//! degree order, final order reversed.
//!
//! [`RcmPlusPlus`] swaps the George–Liu starting-node heuristic for the
//! bi-criteria node finder of RCM++ (Hou et al., arXiv 2409.04171):
//! instead of chasing BFS height alone, each round profiles a small set
//! of last-level candidates and keeps the one with the lexicographically
//! best *(height max, width min)* level structure — a narrow, deep BFS
//! tree is what actually minimizes the reordered bandwidth.

use std::collections::VecDeque;

use commorder_sparse::{ops, CsrMatrix, Permutation, SparseError};

use crate::Reordering;

/// Reverse Cuthill–McKee reordering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rcm;

/// Level structure of one BFS: its height (eccentricity), maximum level
/// width, and the minimum-degree vertices of the last level (the next
/// round's candidates).
struct BfsProfile {
    height: u32,
    width: u32,
    last_level: Vec<u32>,
}

/// BFS from `start` over unvisited vertices, recording the level
/// structure.
fn bfs_profile(sym: &CsrMatrix, start: u32, visited: &[bool]) -> BfsProfile {
    let n = sym.n_rows() as usize;
    let mut dist = vec![u32::MAX; n];
    dist[start as usize] = 0;
    let mut queue = VecDeque::from([start]);
    let mut last_level: Vec<u32> = vec![start];
    let mut height = 0u32;
    let mut width = 1u32;
    let mut level_count = 0u32;
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d > height {
            height = d;
            width = width.max(level_count);
            level_count = 0;
            last_level.clear();
        }
        level_count += 1;
        if d == height {
            last_level.push(v);
        }
        let (cols, _) = sym.row(v);
        for &c in cols {
            if dist[c as usize] == u32::MAX && !visited[c as usize] {
                dist[c as usize] = d + 1;
                queue.push_back(c);
            }
        }
    }
    width = width.max(level_count);
    BfsProfile {
        height,
        width,
        last_level,
    }
}

impl Rcm {
    /// Finds a pseudo-peripheral vertex of `start`'s component: repeat BFS
    /// from the farthest minimum-degree vertex until eccentricity stops
    /// growing (George–Liu heuristic, capped at a few rounds).
    fn pseudo_peripheral(sym: &CsrMatrix, start: u32, visited: &[bool]) -> u32 {
        let mut current = start;
        let mut best_ecc = 0u32;
        for _ in 0..4 {
            let (far, ecc) = Self::bfs_farthest(sym, current, visited);
            if ecc <= best_ecc {
                break;
            }
            best_ecc = ecc;
            current = far;
        }
        current
    }

    /// BFS from `start` over unvisited vertices; returns the farthest
    /// minimum-degree vertex in the last level and the eccentricity.
    fn bfs_farthest(sym: &CsrMatrix, start: u32, visited: &[bool]) -> (u32, u32) {
        let profile = bfs_profile(sym, start, visited);
        let far = profile
            .last_level
            .into_iter()
            .min_by_key(|&v| sym.row_degree(v))
            .unwrap_or(start);
        (far, profile.height)
    }
}

/// The shared Cuthill–McKee body: BFS each component from
/// `pick_start(component seed)`, neighbours in increasing degree order,
/// final order reversed.
fn rcm_order(
    a: &CsrMatrix,
    pick_start: impl Fn(&CsrMatrix, u32, &[bool]) -> u32,
) -> Result<Permutation, SparseError> {
    let sym = ops::symmetrize(a)?;
    let n = sym.n_rows();
    let degrees: Vec<u32> = (0..n).map(|v| sym.row_degree(v)).collect();
    let mut visited = vec![false; n as usize];
    let mut order: Vec<u32> = Vec::with_capacity(n as usize);
    let mut scratch: Vec<u32> = Vec::new();
    // Iterate components in order of their minimum-degree member.
    let mut by_degree: Vec<u32> = (0..n).collect();
    by_degree.sort_by_key(|&v| degrees[v as usize]);
    for &seed in &by_degree {
        if visited[seed as usize] {
            continue;
        }
        let start = pick_start(&sym, seed, &visited);
        visited[start as usize] = true;
        let mut queue = VecDeque::from([start]);
        order.push(start);
        while let Some(v) = queue.pop_front() {
            let (cols, _) = sym.row(v);
            scratch.clear();
            scratch.extend(cols.iter().copied().filter(|&c| !visited[c as usize]));
            scratch.sort_by_key(|&c| degrees[c as usize]);
            for &c in &scratch {
                if !visited[c as usize] {
                    visited[c as usize] = true;
                    order.push(c);
                    queue.push_back(c);
                }
            }
        }
    }
    order.reverse();
    Permutation::from_order(&order)
}

impl Reordering for Rcm {
    fn name(&self) -> &str {
        "RCM"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        rcm_order(a, Rcm::pseudo_peripheral)
    }
}

/// RCM with the bi-criteria starting-node finder of RCM++ (Hou et al.,
/// arXiv 2409.04171).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcmPlusPlus {
    /// Last-level candidates profiled per refinement round (the paper's
    /// bounded candidate set; each costs one BFS).
    pub candidates: u32,
    /// Refinement rounds before settling on a start vertex.
    pub rounds: u32,
}

impl Default for RcmPlusPlus {
    fn default() -> Self {
        RcmPlusPlus {
            candidates: 8,
            rounds: 4,
        }
    }
}

impl RcmPlusPlus {
    /// Bi-criteria starting-node finder: from `seed`'s level structure,
    /// repeatedly profile up to `candidates` minimum-degree last-level
    /// vertices and move to the one with the lexicographically best
    /// *(height desc, width asc, id asc)* BFS profile, stopping when no
    /// candidate improves on the incumbent.
    fn bi_criteria_start(&self, sym: &CsrMatrix, seed: u32, visited: &[bool]) -> u32 {
        let mut current = seed;
        let profile = bfs_profile(sym, current, visited);
        let mut best_key = (profile.height, profile.width);
        let mut frontier = profile.last_level;
        for _ in 0..self.rounds {
            frontier.sort_by_key(|&v| (sym.row_degree(v), v));
            frontier.truncate(self.candidates as usize);
            let mut improved: Option<(u32, (u32, u32), Vec<u32>)> = None;
            for &cand in &frontier {
                if cand == current {
                    continue;
                }
                let p = bfs_profile(sym, cand, visited);
                let key = (p.height, p.width);
                // Better: strictly taller, or equally tall and narrower.
                let beats_incumbent =
                    key.0 > best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1);
                let beats_round = improved.as_ref().is_none_or(|(bc, bk, _)| {
                    key.0 > bk.0
                        || (key.0 == bk.0 && (key.1 < bk.1 || (key.1 == bk.1 && cand < *bc)))
                });
                if beats_incumbent && beats_round {
                    improved = Some((cand, key, p.last_level));
                }
            }
            match improved {
                Some((cand, key, last_level)) => {
                    current = cand;
                    best_key = key;
                    frontier = last_level;
                }
                None => break,
            }
        }
        current
    }
}

impl Reordering for RcmPlusPlus {
    fn name(&self) -> &str {
        "RCM++"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        rcm_order(a, |sym, seed, visited| {
            self.bi_criteria_start(sym, seed, visited)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::stats::bandwidth;
    use commorder_sparse::CooMatrix;

    fn path(n: u32) -> CsrMatrix {
        let entries: Vec<_> = (0..n - 1)
            .flat_map(|v| [(v, v + 1, 1.0), (v + 1, v, 1.0)])
            .collect();
        CsrMatrix::try_from(CooMatrix::from_entries(n, n, entries).unwrap()).unwrap()
    }

    #[test]
    fn rcm_recovers_path_bandwidth_after_scrambling() {
        let tidy = path(64);
        // Scramble with a fixed permutation.
        let scramble = crate::RandomOrder::new(9).reorder(&tidy).unwrap();
        let messy = tidy.permute_symmetric(&scramble).unwrap();
        assert!(bandwidth(&messy) > 10);
        let p = Rcm.reorder(&messy).unwrap();
        let fixed = messy.permute_symmetric(&p).unwrap();
        assert_eq!(bandwidth(&fixed), 1, "path must reorder to bandwidth 1");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // Two separate edges + an isolated vertex.
        let m = CsrMatrix::try_from(
            CooMatrix::from_entries(
                5,
                5,
                vec![(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)],
            )
            .unwrap(),
        )
        .unwrap();
        let p = Rcm.reorder(&m).unwrap();
        assert_eq!(p.len(), 5);
        let r = m.permute_symmetric(&p).unwrap();
        assert_eq!(r.nnz(), 4);
    }

    #[test]
    fn rcm_reduces_grid_bandwidth_versus_random() {
        use commorder_synth::generators::Grid2d;
        let g = Grid2d {
            width: 20,
            height: 20,
            diagonals: false,
            shortcut_p: 0.0,
            scramble_ids: true,
        }
        .generate(4)
        .unwrap();
        let before = bandwidth(&g);
        let p = Rcm.reorder(&g).unwrap();
        let after = bandwidth(&g.permute_symmetric(&p).unwrap());
        assert!(
            after * 3 < before,
            "bandwidth should drop sharply: {before} -> {after}"
        );
    }

    #[test]
    fn rcm_works_on_directed_input() {
        // Directed cycle — symmetrized internally.
        let m = CsrMatrix::try_from(
            CooMatrix::from_entries(
                4,
                4,
                vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)],
            )
            .unwrap(),
        )
        .unwrap();
        let p = Rcm.reorder(&m).unwrap();
        assert_eq!(p.len(), 4);
    }
}
