//! Validators for unified bench artifacts and profile invariants
//! (`CHK12xx`).
//!
//! `xtask bench` writes one `BENCH_<name>.json` artifact per bench at
//! the repository root with a fixed, line-oriented shape (schema
//! `commorder-bench.v2`): header lines, a one-line machine object,
//! then `fingerprints` and `metrics` arrays with one object per line.
//! CI pipes every artifact through [`check_bench_artifact`] before the
//! regression gate trusts it, so a half-written file or a schema drift
//! fails loudly instead of silently gating nothing.
//!
//! The module also carries [`check_histogram_shape`] (`CHK1204` —
//! bucket totals and quantiles of a `commorder-obs` histogram must be
//! mutually consistent). Its sibling invariant, the `CHK1203`
//! self-time audit, lives in [`crate::telemetry::check_self_time`]
//! next to the span aggregation that feeds it.

use crate::codes;
use crate::diag::{Diagnostic, Location};
use crate::telemetry::{parse_flat_object, Json};

/// The schema discriminator every v2 artifact declares on line 2.
pub const SCHEMA_V2: &str = "commorder-bench.v2";

/// The exact key sequence of the one-line machine object.
const MACHINE_KEYS: [&str; 4] = ["cpu", "threads", "mem_total_kb", "fingerprint"];
/// The exact key sequence of one fingerprint row.
const FINGERPRINT_KEYS: [&str; 2] = ["name", "value"];
/// The exact key sequence of one metric row.
const METRIC_KEYS: [&str; 4] = ["name", "value", "unit", "higher_is_better"];

fn frame_error(line: usize, message: String) -> Diagnostic {
    Diagnostic::error(
        codes::BENCH_SCHEMA,
        Location::at("artifact line", line as u64 + 1),
        message,
    )
}

fn metric_error(line: usize, message: String) -> Diagnostic {
    Diagnostic::error(
        codes::BENCH_METRIC,
        Location::at("artifact line", line as u64 + 1),
        message,
    )
}

/// A 16-digit lowercase hex string (the FNV-1a fingerprint encoding).
fn is_hex16(s: &str) -> bool {
    s.len() == 16
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// Parses a `"key": "<string>",` header line; reports and returns
/// `None` when malformed.
fn parse_header_str(
    lines: &[&str],
    idx: usize,
    key: &str,
    out: &mut Vec<Diagnostic>,
) -> Option<String> {
    let fail = |out: &mut Vec<Diagnostic>| {
        out.push(frame_error(
            idx,
            format!("expected a '\"{key}\": \"<value>\",' header line"),
        ));
        None
    };
    let Some(body) = lines
        .get(idx)
        .map(|l| l.trim())
        .and_then(|l| l.strip_suffix(','))
    else {
        return fail(out);
    };
    match parse_flat_object(&format!("{{{body}}}")) {
        Ok(fields) => match fields.as_slice() {
            [(k, Json::Str(v))] if k == key => Some(v.clone()),
            _ => fail(out),
        },
        Err(_) => fail(out),
    }
}

/// Validates the one-line `"machine": {...},` object on line 4.
fn check_machine_line(lines: &[&str], idx: usize, out: &mut Vec<Diagnostic>) {
    let Some(body) = lines
        .get(idx)
        .map(|l| l.trim())
        .and_then(|l| l.strip_prefix("\"machine\": "))
        .and_then(|l| l.strip_suffix(','))
    else {
        out.push(frame_error(
            idx,
            "expected a one-line '\"machine\": {...},' object".into(),
        ));
        return;
    };
    let fields = match parse_flat_object(body) {
        Ok(fields) => fields,
        Err(e) => {
            out.push(frame_error(idx, format!("unparsable machine object: {e}")));
            return;
        }
    };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if keys != MACHINE_KEYS {
        out.push(frame_error(
            idx,
            format!("machine keys must be exactly {MACHINE_KEYS:?}, found {keys:?}"),
        ));
        return;
    }
    if !matches!(&fields[0].1, Json::Str(s) if !s.is_empty()) {
        out.push(frame_error(
            idx,
            "machine cpu must be a non-empty string".into(),
        ));
    }
    for slot in [1usize, 2] {
        let (name, value) = &fields[slot];
        let ok = matches!(value, Json::Num(v) if v.fract() == 0.0 && *v >= 1.0 && v.is_finite());
        if !ok {
            out.push(frame_error(
                idx,
                format!("machine {name} must be a positive integer, got {value:?}"),
            ));
        }
    }
    if !matches!(&fields[3].1, Json::Str(s) if is_hex16(s)) {
        out.push(frame_error(
            idx,
            "machine fingerprint must be 16 lowercase hex digits".into(),
        ));
    }
}

/// Collects the rows of a `"name": [` ... `]` section opening at
/// `start`; returns `(rows, line index after the section)`. The close
/// bracket carries a trailing comma iff `trailing_comma` (the metrics
/// array is the last section of the artifact and has none).
fn parse_array_section<'a>(
    lines: &[&'a str],
    start: usize,
    name: &str,
    trailing_comma: bool,
    out: &mut Vec<Diagnostic>,
) -> (Vec<(usize, &'a str)>, usize) {
    let comma = if trailing_comma { "," } else { "" };
    let open = lines.get(start).map(|l| l.trim()).unwrap_or("");
    if open == format!("\"{name}\": []{comma}") {
        return (Vec::new(), start + 1);
    }
    if open != format!("\"{name}\": [") {
        out.push(frame_error(
            start,
            format!("expected a {name} array, found {open:?}"),
        ));
        return (Vec::new(), start);
    }
    let close = format!("]{comma}");
    let mut rows = Vec::new();
    let mut i = start + 1;
    while i < lines.len() && lines[i].trim() != close {
        rows.push((i, lines[i]));
        i += 1;
    }
    if lines.get(i).map(|l| l.trim()) != Some(close.as_str()) {
        out.push(frame_error(
            i,
            format!("{name} array is not closed with '{close}'"),
        ));
    }
    (rows, i + 1)
}

/// Strips the row-separating comma (present on every row but the last)
/// and parses the remaining object; `None` when unparsable.
fn parse_row(
    seq: usize,
    last: usize,
    line_no: usize,
    raw: &str,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<(String, Json)>> {
    let trimmed = raw.trim();
    let object = match (seq < last, trimmed.strip_suffix(',')) {
        (true, Some(stripped)) => stripped,
        (true, None) => {
            out.push(frame_error(
                line_no,
                "row is missing its trailing comma".into(),
            ));
            trimmed
        }
        (false, Some(_)) => {
            out.push(frame_error(
                line_no,
                "last row must not end with a comma".into(),
            ));
            trimmed.trim_end_matches(',')
        }
        (false, None) => trimmed,
    };
    match parse_flat_object(object) {
        Ok(fields) => Some(fields),
        Err(e) => {
            out.push(frame_error(line_no, format!("unparsable row: {e}")));
            None
        }
    }
}

/// Validates one `{"name":..., "value":"<hex16>"}` fingerprint row;
/// returns the name when usable for the sortedness check.
fn check_fingerprint_row(
    fields: &[(String, Json)],
    line_no: usize,
    out: &mut Vec<Diagnostic>,
) -> Option<String> {
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if keys != FINGERPRINT_KEYS {
        out.push(frame_error(
            line_no,
            format!("fingerprint keys must be exactly {FINGERPRINT_KEYS:?}, found {keys:?}"),
        ));
        return None;
    }
    let name = match &fields[0].1 {
        Json::Str(s) if !s.is_empty() => s.clone(),
        other => {
            out.push(frame_error(
                line_no,
                format!("fingerprint name must be a non-empty string, got {other:?}"),
            ));
            return None;
        }
    };
    if !matches!(&fields[1].1, Json::Str(s) if is_hex16(s)) {
        out.push(frame_error(
            line_no,
            format!("fingerprint {name:?} value must be 16 lowercase hex digits"),
        ));
    }
    Some(name)
}

/// Validates one metric row; returns the name when usable for the
/// sortedness check.
fn check_metric_row(
    fields: &[(String, Json)],
    line_no: usize,
    out: &mut Vec<Diagnostic>,
) -> Option<String> {
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if keys != METRIC_KEYS {
        out.push(metric_error(
            line_no,
            format!("metric keys must be exactly {METRIC_KEYS:?}, found {keys:?}"),
        ));
        return None;
    }
    let name = match &fields[0].1 {
        Json::Str(s) if !s.is_empty() => s.clone(),
        other => {
            out.push(metric_error(
                line_no,
                format!("metric name must be a non-empty string, got {other:?}"),
            ));
            return None;
        }
    };
    if !matches!(&fields[1].1, Json::Num(v) if v.is_finite()) {
        out.push(metric_error(
            line_no,
            format!("metric {name:?} value must be a finite number"),
        ));
    }
    if !matches!(&fields[2].1, Json::Str(s) if !s.is_empty()) {
        out.push(metric_error(
            line_no,
            format!("metric {name:?} unit must be a non-empty string"),
        ));
    }
    if !matches!(&fields[3].1, Json::Bool(_)) {
        out.push(metric_error(
            line_no,
            format!("metric {name:?} higher_is_better must be a boolean"),
        ));
    }
    Some(name)
}

/// Reports rows whose names are not strictly increasing (which also
/// catches duplicates); `code` distinguishes fingerprint (`CHK1201`)
/// from metric (`CHK1202`) rows.
fn check_sorted_unique(names: &[(usize, String)], code: &'static str, out: &mut Vec<Diagnostic>) {
    for w in names.windows(2) {
        if w[0].1 >= w[1].1 {
            out.push(Diagnostic::error(
                code,
                Location::at("artifact line", w[1].0 as u64 + 1),
                format!(
                    "row names must be sorted and unique: {:?} follows {:?}",
                    w[1].1, w[0].1
                ),
            ));
        }
    }
}

/// Validates `contents` as a `commorder-bench.v2` artifact; framing and
/// fingerprint violations are `CHK1201` errors, metric-row violations
/// are `CHK1202`.
#[must_use]
pub fn check_bench_artifact(contents: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let lines: Vec<&str> = contents.lines().collect();
    if lines.first().map(|l| l.trim()) != Some("{") {
        out.push(frame_error(0, "artifact must open with a lone '{'".into()));
        return out;
    }
    if let Some(schema) = parse_header_str(&lines, 1, "schema", &mut out) {
        if schema != SCHEMA_V2 {
            out.push(frame_error(
                1,
                format!("schema must be {SCHEMA_V2:?}, found {schema:?}"),
            ));
        }
    }
    if let Some(bench) = parse_header_str(&lines, 2, "bench", &mut out) {
        if bench.is_empty() {
            out.push(frame_error(2, "bench name must be non-empty".into()));
        }
    }
    check_machine_line(&lines, 3, &mut out);

    let (fp_rows, after_fp) = parse_array_section(&lines, 4, "fingerprints", true, &mut out);
    let mut fp_names = Vec::new();
    let fp_last = fp_rows.len().saturating_sub(1);
    for (seq, &(line_no, raw)) in fp_rows.iter().enumerate() {
        if let Some(fields) = parse_row(seq, fp_last, line_no, raw, &mut out) {
            if let Some(name) = check_fingerprint_row(&fields, line_no, &mut out) {
                fp_names.push((line_no, name));
            }
        }
    }
    check_sorted_unique(&fp_names, codes::BENCH_SCHEMA, &mut out);

    let (metric_rows, after_metrics) =
        parse_array_section(&lines, after_fp, "metrics", false, &mut out);
    if metric_rows.is_empty() {
        out.push(frame_error(
            after_fp,
            "metrics list is empty — an artifact must report at least one metric".into(),
        ));
    }
    let mut metric_names = Vec::new();
    let metric_last = metric_rows.len().saturating_sub(1);
    for (seq, &(line_no, raw)) in metric_rows.iter().enumerate() {
        if let Some(fields) = parse_row(seq, metric_last, line_no, raw, &mut out) {
            if let Some(name) = check_metric_row(&fields, line_no, &mut out) {
                metric_names.push((line_no, name));
            }
        }
    }
    check_sorted_unique(&metric_names, codes::BENCH_METRIC, &mut out);

    if lines.get(after_metrics).map(|l| l.trim()) != Some("}") {
        out.push(frame_error(
            after_metrics,
            "artifact must close with '}'".into(),
        ));
    } else if lines.len() > after_metrics + 1 {
        out.push(frame_error(
            after_metrics + 1,
            "trailing lines after the closing '}'".into(),
        ));
    }
    out
}

/// Audits the internal consistency of one `commorder-obs` histogram
/// (`CHK1204`): bucket counts must sum to the declared total (skipped
/// once any counter has saturated at `u64::MAX`), `min`/`max` must be
/// finite and ordered while non-empty, and the exported quantiles must
/// be monotone within `[min, max]`.
#[must_use]
pub fn check_histogram_shape(name: &str, hist: &commorder_obs::Histogram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let saturated = hist.count == u64::MAX || hist.buckets.contains(&u64::MAX);
    if !saturated {
        let sum: u128 = hist.buckets.iter().map(|&b| u128::from(b)).sum();
        if sum != u128::from(hist.count) {
            out.push(Diagnostic::error(
                codes::HIST_SHAPE,
                Location::whole(name),
                format!(
                    "bucket counts sum to {sum} but the histogram declares {} observation(s)",
                    hist.count
                ),
            ));
        }
    }
    if hist.count == 0 {
        return out;
    }
    if !hist.min.is_finite() || !hist.max.is_finite() || hist.min > hist.max {
        out.push(Diagnostic::error(
            codes::HIST_SHAPE,
            Location::whole(name),
            format!(
                "non-empty histogram must have finite min <= max, got [{}, {}]",
                hist.min, hist.max
            ),
        ));
        return out;
    }
    let (p50, p95, p99) = (hist.p50(), hist.p95(), hist.p99());
    if p50 > p95 || p95 > p99 {
        out.push(Diagnostic::error(
            codes::HIST_SHAPE,
            Location::whole(name),
            format!("quantiles are not monotone: p50={p50} p95={p95} p99={p99}"),
        ));
    }
    if p50 < hist.min || p99 > hist.max {
        out.push(Diagnostic::error(
            codes::HIST_SHAPE,
            Location::whole(name),
            format!(
                "quantiles escape the observed range: p50={p50} p99={p99} \
                 outside [{}, {}]",
                hist.min, hist.max
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::CheckReport;

    fn report(contents: &str) -> CheckReport {
        let mut r = CheckReport::new();
        r.extend(check_bench_artifact(contents));
        r
    }

    fn clean() -> String {
        concat!(
            "{\n",
            "  \"schema\": \"commorder-bench.v2\",\n",
            "  \"bench\": \"pipeline\",\n",
            "  \"machine\": {\"cpu\":\"Test CPU\",\"threads\":8,\"mem_total_kb\":16000000,",
            "\"fingerprint\":\"00112233aabbccdd\"},\n",
            "  \"fingerprints\": [\n",
            "    {\"name\":\"cache.lru\",\"value\":\"0123456789abcdef\"},\n",
            "    {\"name\":\"cache.plru\",\"value\":\"fedcba9876543210\"}\n",
            "  ],\n",
            "  \"metrics\": [\n",
            "    {\"name\":\"pipeline.lru_accesses_per_second\",\"value\":1.5e8,",
            "\"unit\":\"accesses/s\",\"higher_is_better\":true},\n",
            "    {\"name\":\"pipeline.suite_wall_seconds\",\"value\":1.25,",
            "\"unit\":\"seconds\",\"higher_is_better\":false}\n",
            "  ]\n",
            "}\n",
        )
        .to_string()
    }

    #[test]
    fn clean_artifacts_pass() {
        let r = report(&clean());
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
        let empty_fp = clean().replace(
            concat!(
                "  \"fingerprints\": [\n",
                "    {\"name\":\"cache.lru\",\"value\":\"0123456789abcdef\"},\n",
                "    {\"name\":\"cache.plru\",\"value\":\"fedcba9876543210\"}\n",
                "  ],\n",
            ),
            "  \"fingerprints\": [],\n",
        );
        let r = report(&empty_fp);
        assert!(r.diagnostics.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn wrong_schema_is_chk1201() {
        let r = report(&clean().replace("commorder-bench.v2", "commorder-bench.v9"));
        assert_eq!(r.codes(), vec![codes::BENCH_SCHEMA]);
    }

    #[test]
    fn bad_machine_object_is_chk1201() {
        let missing_key = clean().replace("\"threads\":8,", "");
        let r = report(&missing_key);
        assert!(
            r.codes().contains(&codes::BENCH_SCHEMA),
            "{}",
            r.render_text()
        );
        let bad_fp = clean().replace("00112233aabbccdd", "NOT-HEX");
        let r = report(&bad_fp);
        assert!(
            r.codes().contains(&codes::BENCH_SCHEMA),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn unsorted_fingerprints_are_chk1201() {
        let swapped = clean()
            .replace("cache.lru", "zz.tmp")
            .replace("cache.plru", "cache.lru")
            .replace("zz.tmp", "cache.plru");
        let r = report(&swapped);
        assert_eq!(r.codes(), vec![codes::BENCH_SCHEMA]);
        assert!(r.render_text().contains("sorted and unique"));
    }

    #[test]
    fn invalid_metric_rows_are_chk1202() {
        let bad_value = clean().replace("\"value\":1.25", "\"value\":null");
        let r = report(&bad_value);
        assert_eq!(r.codes(), vec![codes::BENCH_METRIC]);
        let bad_flag = clean().replace("\"higher_is_better\":true", "\"higher_is_better\":1");
        let r = report(&bad_flag);
        assert_eq!(r.codes(), vec![codes::BENCH_METRIC]);
        let empty_unit = clean().replace("\"unit\":\"seconds\"", "\"unit\":\"\"");
        let r = report(&empty_unit);
        assert_eq!(r.codes(), vec![codes::BENCH_METRIC]);
    }

    #[test]
    fn duplicate_metric_names_are_chk1202() {
        let dup = clean().replace(
            "pipeline.suite_wall_seconds",
            "pipeline.lru_accesses_per_second",
        );
        let r = report(&dup);
        assert_eq!(r.codes(), vec![codes::BENCH_METRIC]);
        assert!(r.render_text().contains("sorted and unique"));
    }

    #[test]
    fn empty_metrics_are_chk1201() {
        let empty = clean().replace(
            concat!(
                "  \"metrics\": [\n",
                "    {\"name\":\"pipeline.lru_accesses_per_second\",\"value\":1.5e8,",
                "\"unit\":\"accesses/s\",\"higher_is_better\":true},\n",
                "    {\"name\":\"pipeline.suite_wall_seconds\",\"value\":1.25,",
                "\"unit\":\"seconds\",\"higher_is_better\":false}\n",
                "  ]\n",
            ),
            "  \"metrics\": []\n",
        );
        let r = report(&empty);
        assert_eq!(r.codes(), vec![codes::BENCH_SCHEMA]);
        assert!(r.render_text().contains("at least one metric"));
    }

    #[test]
    fn truncated_frame_is_flagged() {
        let r = report("{\n  \"schema\": \"commorder-bench.v2\",\n");
        assert!(!r.is_clean());
        assert!(r.codes().contains(&codes::BENCH_SCHEMA));
    }

    #[test]
    fn real_histograms_pass_the_shape_check() {
        use commorder_obs::Sink as _;
        let registry = commorder_obs::Registry::new();
        // Drive through the public sink API to aggregate real values.
        for i in 1..=100 {
            registry.record(&commorder_obs::Event::Observe {
                name: "exec.queue_wait_seconds",
                value: f64::from(i) * 1e-6,
            });
        }
        let hist = registry
            .histogram("exec.queue_wait_seconds")
            .expect("observations were recorded");
        assert_eq!(hist.count, 100);
        let diags = check_histogram_shape("exec.queue_wait_seconds", &hist);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn corrupted_histograms_are_chk1204() {
        let mut hist = commorder_obs::Histogram {
            count: 5,
            sum: 5.0,
            min: 1.0,
            max: 1.0,
            buckets: [0; 64],
        };
        hist.buckets[30] = 4; // sum 4 != count 5
        let diags = check_histogram_shape("h", &hist);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::HIST_SHAPE);

        let inverted = commorder_obs::Histogram {
            count: 1,
            sum: 1.0,
            min: 2.0,
            max: 1.0,
            buckets: {
                let mut b = [0; 64];
                b[30] = 1;
                b
            },
        };
        let diags = check_histogram_shape("h", &inverted);
        assert!(diags.iter().any(|d| d.message.contains("min <= max")));
    }

    #[test]
    fn saturated_histograms_skip_the_sum_check() {
        let mut hist = commorder_obs::Histogram {
            count: u64::MAX,
            sum: 1.0,
            min: 1e-9,
            max: 1.0,
            buckets: [0; 64],
        };
        hist.buckets[0] = u64::MAX;
        hist.buckets[30] = 7;
        let diags = check_histogram_shape("h", &hist);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
