//! SlashBurn ordering (Lim, Kang, Faloutsos — TKDE'14, the paper's \[31\]).
//!
//! A community-based baseline that RABBIT was shown to outperform:
//! repeatedly *slash* the `k` highest-degree hubs (assigning them the
//! lowest free IDs), then *burn* the shattered remainder — non-giant
//! connected components are packed at the high end of the ID space
//! (largest first), and the procedure recurses on the giant connected
//! component until it fits in one slash.
//!
//! The result concentrates hubs at the front and peels the graph's
//! "caveman" periphery to the back, which is effective on power-law
//! graphs but ignores flat community structure — exactly the contrast
//! the paper draws against RABBIT.

use std::collections::VecDeque;

use commorder_sparse::{ops, CsrMatrix, Permutation, SparseError};

use crate::Reordering;

/// SlashBurn configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlashBurn {
    /// Fraction of the (remaining) vertices slashed per iteration; the
    /// original paper recommends 0.5–2%.
    pub hub_fraction: f64,
}

impl Default for SlashBurn {
    fn default() -> Self {
        SlashBurn { hub_fraction: 0.01 }
    }
}

impl Reordering for SlashBurn {
    fn name(&self) -> &str {
        "SLASHBURN"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<Permutation, SparseError> {
        if !(0.0..=1.0).contains(&self.hub_fraction) || self.hub_fraction == 0.0 {
            return Err(SparseError::DimensionMismatch {
                expected: "hub_fraction in (0, 1]".to_string(),
                found: format!("hub_fraction == {}", self.hub_fraction),
            });
        }
        let sym = ops::symmetrize(a)?;
        let n = sym.n_rows();
        let mut new_ids = vec![u32::MAX; n as usize];
        // `active[v]`: still part of the graph under consideration.
        let mut active = vec![true; n as usize];
        let mut degrees: Vec<u32> = (0..n).map(|v| sym.row_degree(v)).collect();
        let mut front = 0u32; // next low ID (hubs)
        let mut back = n; // next high ID + 1 (peeled components)
        let mut working: Vec<u32> = (0..n).collect();

        while !working.is_empty() {
            let k = ((working.len() as f64 * self.hub_fraction).ceil() as usize)
                .clamp(1, working.len());
            // Slash: k highest-degree active vertices -> lowest free IDs.
            working.sort_by_key(|&v| (std::cmp::Reverse(degrees[v as usize]), v));
            for &hub in working.iter().take(k) {
                new_ids[hub as usize] = front;
                front += 1;
                active[hub as usize] = false;
                let (cols, _) = sym.row(hub);
                for &c in cols {
                    degrees[c as usize] = degrees[c as usize].saturating_sub(1);
                }
            }
            working.drain(..k);
            if working.is_empty() {
                break;
            }

            // Burn: connected components of the remainder.
            let mut comp_of = vec![u32::MAX; n as usize];
            let mut comps: Vec<Vec<u32>> = Vec::new();
            for &start in &working {
                if comp_of[start as usize] != u32::MAX {
                    continue;
                }
                let id = comps.len() as u32;
                let mut members = vec![start];
                comp_of[start as usize] = id;
                let mut queue = VecDeque::from([start]);
                while let Some(v) = queue.pop_front() {
                    let (cols, _) = sym.row(v);
                    for &c in cols {
                        if active[c as usize] && comp_of[c as usize] == u32::MAX {
                            comp_of[c as usize] = id;
                            members.push(c);
                            queue.push_back(c);
                        }
                    }
                }
                comps.push(members);
            }
            // Giant component keeps being worked on; the rest are packed
            // at the back, largest-first so bigger fragments sit closer to
            // the still-active region.
            let giant = comps
                .iter()
                .enumerate()
                .max_by_key(|(_, m)| m.len())
                .map(|(i, _)| i)
                .expect("at least one component");
            let mut rest: Vec<usize> = (0..comps.len()).filter(|&i| i != giant).collect();
            rest.sort_by_key(|&i| std::cmp::Reverse(comps[i].len()));
            for &ci in rest.iter().rev() {
                // Assign from the very back, so after the loop the
                // largest component ends up with the lowest of the high
                // IDs (closest to the hubs).
                for &v in comps[ci].iter().rev() {
                    back -= 1;
                    new_ids[v as usize] = back;
                    active[v as usize] = false;
                }
            }
            working = comps.swap_remove(giant);
            // Degrees within the giant component are already maintained
            // incrementally by the slashing loop.
        }
        debug_assert_eq!(front, back);
        Permutation::from_new_ids(new_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_sparse::CooMatrix;
    use commorder_synth::generators::{BarabasiAlbert, PlantedPartition};

    #[test]
    fn produces_valid_permutation_on_power_law_graph() {
        let g = BarabasiAlbert {
            n: 500,
            m: 4,
            scramble_ids: true,
        }
        .generate(71)
        .unwrap();
        let p = SlashBurn::default().reorder(&g).unwrap();
        assert_eq!(p.len(), 500);
        let r = g.permute_symmetric(&p).unwrap();
        assert_eq!(r.nnz(), g.nnz());
    }

    #[test]
    fn hubs_land_at_the_front() {
        // A star: the hub must receive ID 0.
        let mut entries = Vec::new();
        for v in 1..20u32 {
            entries.push((0, v, 1.0));
            entries.push((v, 0, 1.0));
        }
        let g = CsrMatrix::try_from(CooMatrix::from_entries(20, 20, entries).unwrap()).unwrap();
        let p = SlashBurn::default().reorder(&g).unwrap();
        assert_eq!(p.new_of(0), 0);
    }

    #[test]
    fn concentrates_top_hubs_in_the_low_id_range() {
        let g = BarabasiAlbert {
            n: 1000,
            m: 6,
            scramble_ids: true,
        }
        .generate(72)
        .unwrap();
        let p = SlashBurn::default().reorder(&g).unwrap();
        // The 10 highest-degree vertices must land in the first 10% of
        // the ID space (they are slashed in the first iterations).
        let mut by_degree: Vec<u32> = (0..1000).collect();
        let degrees = g.out_degrees();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
        for &hub in by_degree.iter().take(10) {
            assert!(
                p.new_of(hub) < 100,
                "hub {hub} (degree {}) got id {}",
                degrees[hub as usize],
                p.new_of(hub)
            );
        }
    }

    #[test]
    fn rejects_degenerate_fraction() {
        let g = CsrMatrix::empty(4);
        assert!(SlashBurn { hub_fraction: 0.0 }.reorder(&g).is_err());
        assert!(SlashBurn { hub_fraction: 1.5 }.reorder(&g).is_err());
    }

    #[test]
    fn handles_disconnected_and_empty() {
        let p = SlashBurn::default().reorder(&CsrMatrix::empty(5)).unwrap();
        assert_eq!(p.len(), 5);
        let p = SlashBurn::default().reorder(&CsrMatrix::empty(0)).unwrap();
        assert!(p.is_empty());
        let g = PlantedPartition::uniform(128, 16, 4.0, 0.0)
            .generate(73)
            .unwrap();
        let p = SlashBurn::default().reorder(&g).unwrap();
        assert_eq!(p.len(), 128);
    }

    #[test]
    fn deterministic() {
        let g = BarabasiAlbert {
            n: 300,
            m: 3,
            scramble_ids: true,
        }
        .generate(74)
        .unwrap();
        assert_eq!(
            SlashBurn::default().reorder(&g).unwrap(),
            SlashBurn::default().reorder(&g).unwrap()
        );
    }
}
