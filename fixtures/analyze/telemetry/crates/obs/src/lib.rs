//! Fixture telemetry crate: the registry lives in [`names`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod names;
