//! **Ablation**: robustness of the conclusions to the execution model.
//!
//! All headline experiments linearize the kernel trace row-sequentially.
//! A real GPU interleaves thousands of threads; this ablation re-runs the
//! RANDOM / RABBIT / RABBIT++ comparison with a round-robin window of
//! concurrent row streams and checks that the *ordering* of techniques —
//! the thing the paper's claims rest on — is unchanged.

use commorder::prelude::*;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let subset: Vec<&str> = if harness.entries.len() <= 8 {
        vec!["mini-sbm", "mini-webhub", "mini-rmat"]
    } else {
        vec![
            "opt-block-512",
            "web-stackex",
            "soc-rmat-65k",
            "road-grid-messy",
        ]
    };
    let cases: Vec<_> = harness
        .load()
        .into_iter()
        .filter(|c| subset.contains(&c.entry.name))
        .collect();

    let stream_counts = [1u32, 4, 16, 64];
    for case in &cases {
        eprintln!("[ablation_interleave] {}", case.entry.name);
        let mut table = Table::new(
            format!(
                "{}: traffic/compulsory vs concurrent row streams",
                case.entry.name
            ),
            {
                let mut h = vec!["ordering".into()];
                h.extend(stream_counts.iter().map(|s| format!("{s} streams")));
                h
            },
        );
        let orderings: Vec<Box<dyn Reordering>> = vec![
            Box::new(RandomOrder::new(harness.random_seed)),
            Box::new(Rabbit::new()),
            Box::new(RabbitPlusPlus::new()),
        ];
        let mut per_stream_order: Vec<Vec<f64>> = vec![Vec::new(); stream_counts.len()];
        for ordering in &orderings {
            let perm = ordering
                .reorder(&case.matrix)
                .expect("square corpus matrix");
            let reordered = case.matrix.permute_symmetric(&perm).expect("validated");
            let mut row = vec![ordering.name().to_string()];
            for (si, &streams) in stream_counts.iter().enumerate() {
                let model = if streams == 1 {
                    ExecutionModel::Sequential
                } else {
                    ExecutionModel::Interleaved { streams }
                };
                let run = Pipeline::new(harness.gpu)
                    .with_model(model)
                    .simulate(&reordered);
                row.push(Table::ratio(run.traffic_ratio));
                per_stream_order[si].push(run.traffic_ratio);
            }
            table.add_row(row);
        }
        println!("{table}");
        // The invariant the paper's claims need: RABBIT and RABBIT++ beat
        // RANDOM at every interleaving level.
        for (si, ratios) in per_stream_order.iter().enumerate() {
            let (random, rabbit, rpp) = (ratios[0], ratios[1], ratios[2]);
            let ok = rabbit < random && rpp < random;
            println!(
                "  {} streams: RABBIT/RABBIT++ < RANDOM ? {}",
                stream_counts[si],
                if ok { "yes" } else { "NO (!)" },
            );
        }
        println!();
    }
}
