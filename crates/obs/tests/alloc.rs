//! End-to-end `obs-alloc` validation: installs [`CountingAlloc`] as
//! this test binary's real global allocator and checks that heap
//! activity inside a span is attributed to the span's path.
//!
//! Runs only under `--features obs-alloc` (the whole file compiles away
//! otherwise, so the default workspace test pass is unaffected).
#![cfg(feature = "obs-alloc")]

use std::sync::Arc;

use commorder_obs as obs;
use obs::alloc::CountingAlloc;
use obs::Registry;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn allocations_are_attributed_to_span_paths() {
    let _serial = obs::tests_serial();
    let registry = Arc::new(Registry::new());
    let _guard = obs::install(registry.clone());
    {
        let _outer = obs::span!("suite");
        // One unambiguous allocation: 10_000 * 8 bytes, exact-size
        // collect.
        let v: Vec<u64> = (0..10_000).collect();
        assert_eq!(v.len(), 10_000);
        {
            let _inner = obs::span!("suite.generate");
            let w: Vec<u64> = (0..2_000).collect();
            assert_eq!(w.len(), 2_000);
        }
    }
    let outer = registry.alloc("suite").expect("outer span allocated");
    assert!(outer.count >= 2, "count = {}", outer.count);
    // Outer attribution is inclusive of the nested span's allocations.
    assert!(outer.bytes >= 12_000 * 8, "bytes = {}", outer.bytes);
    let inner = registry
        .alloc("suite/suite.generate")
        .expect("inner span allocated");
    assert!(inner.bytes >= 2_000 * 8 && inner.bytes <= outer.bytes);
    // The alloc section shows up in the rendered profile.
    assert!(registry
        .render_tree()
        .contains("allocations (by span path)"));
}

#[test]
fn spanless_allocations_emit_nothing() {
    let _serial = obs::tests_serial();
    let registry = Arc::new(Registry::new());
    let _guard = obs::install(registry.clone());
    let v: Vec<u64> = (0..4_096).collect();
    assert_eq!(v.len(), 4_096);
    assert!(registry.allocs().is_empty());
}
