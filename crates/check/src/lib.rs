//! Invariant auditing for the `commorder` workspace.
//!
//! Every data object the reproduction pipeline moves between stages —
//! sparse matrices, permutations, community assignments, address traces,
//! cache and GPU configurations — has structural invariants that the
//! typed constructors enforce at build time. This crate re-derives those
//! invariants as *composable validators* that never panic: each check
//! walks the object and emits [`Diagnostic`] records with stable `CHK`
//! codes (see [`codes`]), collected into a [`CheckReport`] that renders
//! as human-readable text or stable-key JSON.
//!
//! The crate has three consumers:
//!
//! 1. **`commorder-cli check <file>`** audits on-disk fixtures through
//!    the lenient parsers in [`ingest`] — a corrupted file produces the
//!    full finding list, not a single parse abort.
//! 2. **Golden and unit tests** assert that pipelines keep objects well
//!    formed and that each corruption is flagged with the expected code.
//! 3. **Property tests** use [`propcheck`], the vendored deterministic
//!    harness (no registry dependencies), to drive validators and
//!    library invariants over random inputs.
//!
//! # Example
//!
//! ```
//! use commorder_check::{check_csr_parts, CheckReport};
//!
//! let mut report = CheckReport::new();
//! // Offsets decrease at index 2: CHK0103.
//! report.extend(check_csr_parts("csr", 2, 3, &[0, 2, 1], &[0, 1], None));
//! assert!(!report.is_clean());
//! assert_eq!(report.codes(), vec!["CHK0103", "CHK0104"]);
//! println!("{}", report.render_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod bench;
pub mod callgraph;
pub mod codes;
pub mod diag;
pub mod effects;
pub mod ingest;
pub mod matrix;
pub mod perm;
pub mod propcheck;
pub mod stream;
pub mod telemetry;
pub mod trace;

pub use analyze::check_analyze_report;
pub use bench::{check_bench_artifact, check_histogram_shape};
pub use diag::{CheckReport, Diagnostic, Location, Severity};
pub use ingest::check_file_contents;
pub use matrix::{
    check_coo, check_coo_parts, check_csc, check_csr, check_csr_parts, check_ell, check_sell,
};
pub use perm::{check_assignment, check_permutation, check_permutation_parts};
pub use stream::{check_next_use, check_stream_equivalence};
pub use telemetry::{check_self_time, check_telemetry};
pub use trace::{check_cache_config, check_gpu_spec, check_trace};
