//! The 50-matrix evaluation corpus.
//!
//! The paper (§III) curates 50 matrices from SuiteSparse, Konect and Web
//! Data Commons with a bias-free selection process, spanning social
//! networks, hyperlink graphs, circuit simulation, non-linear
//! optimization, CFD, road networks, protein k-mers, knowledge bases,
//! electromagnetics and DNA electrophoresis. We mirror that *structural*
//! diversity with deterministic synthetic generators (see
//! [`crate::generators`]); each entry names the paper-corpus family it
//! stands in for.
//!
//! Sizes are scaled down by the same factor as the simulated L2 cache
//! (`commorder-gpumodel` scales the A6000's 6 MB L2 to 128 KiB, factor 48)
//! so the input-vector-footprint : cache-capacity ratio — the quantity
//! that makes reordering matter (§II) — stays in the paper's regime:
//! the paper's 1.5 M-row minimum becomes a 32 K-row minimum here.
//!
//! The **publish order** models the paper's Observation 3 ("ORIGINAL
//! ordering can be a misleading baseline"): for some entries the ORIGINAL
//! order is whatever the generator emits (community-sorted for SBM —
//! the sk-2005 case), for others the IDs are scrambled at publish time
//! (the pld-arc case).

use commorder_sparse::{CsrMatrix, Permutation, SparseError};

use crate::generators::{
    Banded, BarabasiAlbert, CommunityHub, ErdosRenyi, Grid2d, Grid3d, HubAndSpoke, KmerChain,
    PlantedPartition, Rmat, WattsStrogatz,
};
use crate::rng::Rng;
use crate::stream::{stream_undirected_csr, StreamedCommunity, StreamedKmerChain, StreamedRmat};

/// The application domain a corpus entry stands in for (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Domain {
    /// Social networks (com-LiveJournal, com-Orkut, twitter, ...).
    Social,
    /// Web / hyperlink crawls (sk-2005, pld-arc, ...).
    Web,
    /// Road networks (road_usa, europe_osm, ...).
    Road,
    /// Circuit simulation (circuit5M, Freescale, ...).
    Circuit,
    /// Computational fluid dynamics meshes (HV15R, ...).
    Cfd,
    /// Non-linear optimization (nlpkkt, ...).
    Optimization,
    /// Protein k-mer / DNA assembly graphs (kmer_V1r, ...).
    Kmer,
    /// Knowledge bases / citation graphs (wikipedia, patents, ...).
    Knowledge,
    /// Network traffic traces (mawi).
    NetworkTrace,
    /// Electromagnetics / DNA electrophoresis (banded physics).
    Physics,
    /// Small-world networks.
    SmallWorld,
    /// Pure random control (no exploitable structure).
    Random,
}

impl Domain {
    /// Short lowercase label used in table output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Domain::Social => "social",
            Domain::Web => "web",
            Domain::Road => "road",
            Domain::Circuit => "circuit",
            Domain::Cfd => "cfd",
            Domain::Optimization => "optim",
            Domain::Kmer => "kmer",
            Domain::Knowledge => "knowledge",
            Domain::NetworkTrace => "nettrace",
            Domain::Physics => "physics",
            Domain::SmallWorld => "smallworld",
            Domain::Random => "random",
        }
    }
}

/// How the "publisher" of the dataset ordered the vertex IDs
/// (Observation 3: this is an arbitrary choice, not a matrix property).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOrder {
    /// IDs exactly as the generator emitted them (for SBM-like generators
    /// this is community-sorted — the sk-2005 "publisher already reordered
    /// it" case).
    AsGenerated,
    /// IDs scrambled with a random permutation at publish time (the
    /// pld-arc case).
    Scrambled,
}

/// One generator configuration (sum type over every generator family).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum GeneratorSpec {
    /// Erdős–Rényi random graph.
    ErdosRenyi(ErdosRenyi),
    /// R-MAT power-law graph.
    Rmat(Rmat),
    /// Planted-partition community graph.
    PlantedPartition(PlantedPartition),
    /// Community-plus-hubs hybrid.
    CommunityHub(CommunityHub),
    /// Watts–Strogatz small world.
    WattsStrogatz(WattsStrogatz),
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert(BarabasiAlbert),
    /// 2D mesh.
    Grid2d(Grid2d),
    /// 3D mesh.
    Grid3d(Grid3d),
    /// Banded matrix.
    Banded(Banded),
    /// Hub-and-spoke trace graph.
    HubAndSpoke(HubAndSpoke),
    /// Near-degree-2 chain graph.
    KmerChain(KmerChain),
    /// Streamed R-MAT (mega tier; never materializes the edge list).
    StreamedRmat(StreamedRmat),
    /// Streamed planted-community graph (mega tier).
    StreamedCommunity(StreamedCommunity),
    /// Streamed k-mer chain graph (mega tier).
    StreamedKmerChain(StreamedKmerChain),
}

impl GeneratorSpec {
    /// Runs the wrapped generator.
    ///
    /// # Errors
    ///
    /// Propagates the generator's construction errors.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        match self {
            GeneratorSpec::ErdosRenyi(g) => g.generate(seed),
            GeneratorSpec::Rmat(g) => g.generate(seed),
            GeneratorSpec::PlantedPartition(g) => g.generate(seed),
            GeneratorSpec::CommunityHub(g) => g.generate(seed),
            GeneratorSpec::WattsStrogatz(g) => g.generate(seed),
            GeneratorSpec::BarabasiAlbert(g) => g.generate(seed),
            GeneratorSpec::Grid2d(g) => g.generate(seed),
            GeneratorSpec::Grid3d(g) => g.generate(seed),
            GeneratorSpec::Banded(g) => g.generate(seed),
            GeneratorSpec::HubAndSpoke(g) => g.generate(seed),
            GeneratorSpec::KmerChain(g) => g.generate(seed),
            GeneratorSpec::StreamedRmat(g) => stream_undirected_csr(g, seed),
            GeneratorSpec::StreamedCommunity(g) => stream_undirected_csr(g, seed),
            GeneratorSpec::StreamedKmerChain(g) => stream_undirected_csr(g, seed),
        }
    }
}

/// One matrix of the evaluation corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Unique name (mirrors the naming style of the repositories).
    pub name: &'static str,
    /// Domain the entry stands in for.
    pub domain: Domain,
    /// Generator configuration.
    pub spec: GeneratorSpec,
    /// Generation seed (fixed per entry; the corpus is deterministic).
    pub seed: u64,
    /// Publisher's ID ordering.
    pub publish: PublishOrder,
}

impl CorpusEntry {
    /// Generates the matrix in its published (ORIGINAL) order.
    ///
    /// # Errors
    ///
    /// Propagates generator/permutation errors (unreachable for the
    /// built-in corpus, which is covered by tests).
    pub fn generate(&self) -> Result<CsrMatrix, SparseError> {
        let m = self.spec.generate(self.seed)?;
        match self.publish {
            PublishOrder::AsGenerated => Ok(m),
            PublishOrder::Scrambled => {
                let mut rng = Rng::new(self.seed ^ 0xC0FF_EE00_D15E_A5E5);
                let mut ids: Vec<u32> = (0..m.n_rows()).collect();
                rng.shuffle(&mut ids);
                let perm = Permutation::from_new_ids(ids)?;
                m.permute_symmetric(&perm)
            }
        }
    }
}

/// Returns the standard 50-entry corpus, in a fixed order.
///
/// Entry names, domains and seeds are stable; regenerating the corpus
/// always produces bit-identical matrices.
#[must_use]
pub fn standard() -> Vec<CorpusEntry> {
    use GeneratorSpec as S;
    use PublishOrder::{AsGenerated, Scrambled};
    let mut v = Vec::with_capacity(50);
    let mut push = |name: &'static str,
                    domain: Domain,
                    spec: GeneratorSpec,
                    seed: u64,
                    publish: PublishOrder| {
        v.push(CorpusEntry {
            name,
            domain,
            spec,
            seed,
            publish,
        });
    };

    // --- Social networks: R-MAT, heavy skew (5) -------------------------
    push(
        "soc-rmat-32k",
        Domain::Social,
        S::Rmat(Rmat::graph500(15, 16.0)),
        101,
        AsGenerated,
    );
    push(
        "soc-rmat-65k",
        Domain::Social,
        S::Rmat(Rmat::graph500(16, 16.0)),
        102,
        AsGenerated,
    );
    push(
        "soc-rmat-131k",
        Domain::Social,
        S::Rmat(Rmat::graph500(17, 12.0)),
        103,
        AsGenerated,
    );
    push(
        "soc-rmat-dense",
        Domain::Social,
        S::Rmat(Rmat::graph500(15, 32.0)),
        104,
        AsGenerated,
    );
    push(
        "soc-rmat-mild",
        Domain::Social,
        S::Rmat(Rmat::mild(16, 14.0)),
        105,
        AsGenerated,
    );

    // --- Social networks: preferential attachment (3) -------------------
    push(
        "soc-pa-65k",
        Domain::Social,
        S::BarabasiAlbert(BarabasiAlbert {
            n: 65_536,
            m: 8,
            scramble_ids: true,
        }),
        111,
        AsGenerated,
    );
    push(
        "soc-pa-100k",
        Domain::Social,
        S::BarabasiAlbert(BarabasiAlbert {
            n: 100_000,
            m: 6,
            scramble_ids: true,
        }),
        112,
        AsGenerated,
    );
    push(
        "soc-pa-heavy",
        Domain::Social,
        S::BarabasiAlbert(BarabasiAlbert {
            n: 49_152,
            m: 16,
            scramble_ids: true,
        }),
        113,
        AsGenerated,
    );

    // --- Web crawls: communities + hubs (6) ------------------------------
    // "sk-2005": publisher shipped it already community-ordered.
    push(
        "web-sk-like",
        Domain::Web,
        S::CommunityHub(CommunityHub {
            n: 98_304,
            communities: 768,
            intra_degree: 12.0,
            hub_fraction: 0.01,
            hub_degree: 24.0,
            mixing: 0.04,
            scramble_ids: false,
        }),
        121,
        AsGenerated,
    );
    // "pld-arc": same structure, carelessly published.
    push(
        "web-pld-like",
        Domain::Web,
        S::CommunityHub(CommunityHub {
            n: 98_304,
            communities: 768,
            intra_degree: 12.0,
            hub_fraction: 0.01,
            hub_degree: 24.0,
            mixing: 0.04,
            scramble_ids: false,
        }),
        121,
        Scrambled,
    );
    push(
        "web-stackex",
        Domain::Web,
        S::CommunityHub(CommunityHub {
            n: 65_536,
            communities: 512,
            intra_degree: 8.0,
            hub_fraction: 0.05,
            hub_degree: 20.0,
            mixing: 0.10,
            scramble_ids: true,
        }),
        123,
        AsGenerated,
    );
    push(
        "web-portal",
        Domain::Web,
        S::CommunityHub(CommunityHub {
            n: 81_920,
            communities: 320,
            intra_degree: 10.0,
            hub_fraction: 0.03,
            hub_degree: 40.0,
            mixing: 0.08,
            scramble_ids: true,
        }),
        124,
        AsGenerated,
    );
    push(
        "web-forum",
        Domain::Web,
        S::CommunityHub(CommunityHub {
            n: 49_152,
            communities: 384,
            intra_degree: 14.0,
            hub_fraction: 0.02,
            hub_degree: 16.0,
            mixing: 0.15,
            scramble_ids: true,
        }),
        125,
        AsGenerated,
    );
    push(
        "web-deep",
        Domain::Web,
        S::CommunityHub(CommunityHub {
            n: 131_072,
            communities: 1024,
            intra_degree: 6.0,
            hub_fraction: 0.008,
            hub_degree: 32.0,
            mixing: 0.05,
            scramble_ids: true,
        }),
        126,
        AsGenerated,
    );

    // --- Optimization / strongly clustered (6) ---------------------------
    push(
        "opt-block-512",
        Domain::Optimization,
        S::PlantedPartition(PlantedPartition::uniform(65_536, 512, 12.0, 0.02)),
        131,
        Scrambled,
    );
    push(
        "opt-block-256",
        Domain::Optimization,
        S::PlantedPartition(PlantedPartition::uniform(65_536, 256, 16.0, 0.01)),
        132,
        Scrambled,
    );
    push(
        "opt-block-1k",
        Domain::Optimization,
        S::PlantedPartition(PlantedPartition::uniform(98_304, 1024, 10.0, 0.03)),
        133,
        Scrambled,
    );
    push(
        "opt-clean",
        Domain::Optimization,
        S::PlantedPartition(PlantedPartition::uniform(49_152, 768, 14.0, 0.005)),
        134,
        AsGenerated,
    );
    push(
        "opt-plaw-sizes",
        Domain::Optimization,
        S::PlantedPartition(PlantedPartition {
            n: 65_536,
            communities: 400,
            intra_degree: 10.0,
            mixing: 0.05,
            size_alpha: Some(1.8),
        }),
        135,
        Scrambled,
    );
    push(
        "opt-mixed",
        Domain::Optimization,
        S::PlantedPartition(PlantedPartition::uniform(81_920, 640, 8.0, 0.20)),
        136,
        Scrambled,
    );

    // --- Road networks (4) ------------------------------------------------
    push(
        "road-grid-64k",
        Domain::Road,
        S::Grid2d(Grid2d {
            width: 320,
            height: 205,
            diagonals: false,
            shortcut_p: 0.02,
            scramble_ids: false,
        }),
        141,
        AsGenerated,
    );
    push(
        "road-grid-messy",
        Domain::Road,
        S::Grid2d(Grid2d {
            width: 320,
            height: 205,
            diagonals: false,
            shortcut_p: 0.02,
            scramble_ids: false,
        }),
        141,
        Scrambled,
    );
    push(
        "road-grid-131k",
        Domain::Road,
        S::Grid2d(Grid2d {
            width: 512,
            height: 256,
            diagonals: false,
            shortcut_p: 0.01,
            scramble_ids: false,
        }),
        143,
        Scrambled,
    );
    push(
        "road-bridges",
        Domain::Road,
        S::Grid2d(Grid2d {
            width: 400,
            height: 240,
            diagonals: false,
            shortcut_p: 0.08,
            scramble_ids: false,
        }),
        144,
        Scrambled,
    );

    // --- CFD meshes (4) ----------------------------------------------------
    push(
        "cfd-cube-40",
        Domain::Cfd,
        S::Grid3d(Grid3d {
            nx: 40,
            ny: 40,
            nz: 40,
            scramble_ids: false,
        }),
        151,
        AsGenerated,
    );
    push(
        "cfd-slab",
        Domain::Cfd,
        S::Grid3d(Grid3d {
            nx: 128,
            ny: 64,
            nz: 12,
            scramble_ids: false,
        }),
        152,
        Scrambled,
    );
    push(
        "cfd-stencil9",
        Domain::Cfd,
        S::Grid2d(Grid2d {
            width: 300,
            height: 220,
            diagonals: true,
            shortcut_p: 0.0,
            scramble_ids: false,
        }),
        153,
        AsGenerated,
    );
    push(
        "cfd-stencil9-messy",
        Domain::Cfd,
        S::Grid2d(Grid2d {
            width: 300,
            height: 220,
            diagonals: true,
            shortcut_p: 0.0,
            scramble_ids: false,
        }),
        153,
        Scrambled,
    );

    // --- Circuit simulation (4) --------------------------------------------
    push(
        "circuit-40k",
        Domain::Circuit,
        S::Banded(Banded {
            n: 40_960,
            band: 48,
            fill_degree: 6.0,
            long_range_p: 0.08,
            scramble_ids: false,
        }),
        161,
        AsGenerated,
    );
    push(
        "circuit-80k",
        Domain::Circuit,
        S::Banded(Banded {
            n: 81_920,
            band: 64,
            fill_degree: 5.0,
            long_range_p: 0.12,
            scramble_ids: false,
        }),
        162,
        AsGenerated,
    );
    push(
        "circuit-messy",
        Domain::Circuit,
        S::Banded(Banded {
            n: 65_536,
            band: 48,
            fill_degree: 6.0,
            long_range_p: 0.10,
            scramble_ids: false,
        }),
        163,
        Scrambled,
    );
    push(
        "circuit-global",
        Domain::Circuit,
        S::Banded(Banded {
            n: 49_152,
            band: 32,
            fill_degree: 5.0,
            long_range_p: 0.30,
            scramble_ids: false,
        }),
        164,
        AsGenerated,
    );

    // --- Electromagnetics / DNA electrophoresis (2) --------------------------
    push(
        "em-wideband",
        Domain::Physics,
        S::Banded(Banded {
            n: 65_536,
            band: 256,
            fill_degree: 10.0,
            long_range_p: 0.02,
            scramble_ids: false,
        }),
        171,
        AsGenerated,
    );
    push(
        "dna-electro",
        Domain::Physics,
        S::Banded(Banded {
            n: 98_304,
            band: 96,
            fill_degree: 7.0,
            long_range_p: 0.01,
            scramble_ids: false,
        }),
        172,
        Scrambled,
    );

    // --- Protein k-mer / DNA assembly (4) -------------------------------------
    push(
        "kmer-65k",
        Domain::Kmer,
        S::KmerChain(KmerChain {
            n: 65_536,
            chains: 64,
            branch_p: 0.05,
            cross_p: 0.01,
            scramble_ids: false,
        }),
        181,
        Scrambled,
    );
    push(
        "kmer-131k",
        Domain::Kmer,
        S::KmerChain(KmerChain {
            n: 131_072,
            chains: 128,
            branch_p: 0.04,
            cross_p: 0.01,
            scramble_ids: false,
        }),
        182,
        Scrambled,
    );
    push(
        "kmer-branchy",
        Domain::Kmer,
        S::KmerChain(KmerChain {
            n: 81_920,
            chains: 80,
            branch_p: 0.15,
            cross_p: 0.02,
            scramble_ids: false,
        }),
        183,
        Scrambled,
    );
    push(
        "kmer-tidy",
        Domain::Kmer,
        S::KmerChain(KmerChain {
            n: 65_536,
            chains: 64,
            branch_p: 0.05,
            cross_p: 0.01,
            scramble_ids: false,
        }),
        184,
        AsGenerated,
    );

    // --- Knowledge bases / citation (3) -----------------------------------------
    push(
        "kb-cite",
        Domain::Knowledge,
        S::BarabasiAlbert(BarabasiAlbert {
            n: 81_920,
            m: 10,
            scramble_ids: true,
        }),
        191,
        AsGenerated,
    );
    push(
        "kb-wiki-like",
        Domain::Knowledge,
        S::CommunityHub(CommunityHub {
            n: 98_304,
            communities: 256,
            intra_degree: 7.0,
            hub_fraction: 0.04,
            hub_degree: 28.0,
            mixing: 0.25,
            scramble_ids: true,
        }),
        192,
        AsGenerated,
    );
    push(
        "kb-patents",
        Domain::Knowledge,
        S::BarabasiAlbert(BarabasiAlbert {
            n: 131_072,
            m: 5,
            scramble_ids: true,
        }),
        193,
        AsGenerated,
    );

    // --- Network traces: the mawi anomaly (2) --------------------------------------
    push(
        "trace-mawi-like",
        Domain::NetworkTrace,
        S::HubAndSpoke(HubAndSpoke {
            n: 65_536,
            hubs: 1,
            hub_coverage: 0.85,
            background_degree: 0.3,
        }),
        201,
        AsGenerated,
    );
    push(
        "trace-sensors",
        Domain::NetworkTrace,
        S::HubAndSpoke(HubAndSpoke {
            n: 49_152,
            hubs: 8,
            hub_coverage: 0.20,
            background_degree: 2.0,
        }),
        202,
        Scrambled,
    );

    // --- Small world (3) --------------------------------------------------------------
    push(
        "sw-ring-65k",
        Domain::SmallWorld,
        S::WattsStrogatz(WattsStrogatz {
            n: 65_536,
            k: 12,
            rewire_p: 0.05,
        }),
        211,
        Scrambled,
    );
    push(
        "sw-ring-100k",
        Domain::SmallWorld,
        S::WattsStrogatz(WattsStrogatz {
            n: 100_000,
            k: 8,
            rewire_p: 0.10,
        }),
        212,
        Scrambled,
    );
    push(
        "sw-chaotic",
        Domain::SmallWorld,
        S::WattsStrogatz(WattsStrogatz {
            n: 49_152,
            k: 16,
            rewire_p: 0.35,
        }),
        213,
        Scrambled,
    );

    // --- Random controls (2) -------------------------------------------------------------
    push(
        "rnd-er-49k",
        Domain::Random,
        S::ErdosRenyi(ErdosRenyi {
            n: 49_152,
            avg_degree: 12.0,
        }),
        221,
        AsGenerated,
    );
    push(
        "rnd-er-sparse",
        Domain::Random,
        S::ErdosRenyi(ErdosRenyi {
            n: 81_920,
            avg_degree: 4.0,
        }),
        222,
        AsGenerated,
    );

    // --- Additional diversity to reach 50 ---------------------------------------------------
    push(
        "soc-rmat-xl",
        Domain::Social,
        S::Rmat(Rmat::graph500(17, 16.0)),
        231,
        AsGenerated,
    );
    push(
        "web-crawl-frontier",
        Domain::Web,
        S::CommunityHub(CommunityHub {
            n: 114_688,
            communities: 896,
            intra_degree: 9.0,
            hub_fraction: 0.015,
            hub_degree: 36.0,
            mixing: 0.06,
            scramble_ids: true,
        }),
        232,
        AsGenerated,
    );
    assert_eq!(v.len(), 50, "standard corpus must have exactly 50 entries");
    v
}

/// A small 8-entry corpus (~2-4 K vertices each) for tests, examples and
/// fast iteration; pair it with `GpuSpec::test_scale()` so the
/// footprint:cache ratio still matches the paper's regime.
#[must_use]
pub fn mini() -> Vec<CorpusEntry> {
    use GeneratorSpec as S;
    use PublishOrder::{AsGenerated, Scrambled};
    vec![
        CorpusEntry {
            name: "mini-rmat",
            domain: Domain::Social,
            spec: S::Rmat(Rmat::graph500(11, 12.0)),
            seed: 301,
            publish: AsGenerated,
        },
        CorpusEntry {
            name: "mini-sbm",
            domain: Domain::Optimization,
            spec: S::PlantedPartition(PlantedPartition::uniform(2048, 32, 10.0, 0.02)),
            seed: 302,
            publish: Scrambled,
        },
        CorpusEntry {
            name: "mini-webhub",
            domain: Domain::Web,
            spec: S::CommunityHub(CommunityHub {
                n: 3072,
                communities: 48,
                intra_degree: 10.0,
                hub_fraction: 0.03,
                hub_degree: 20.0,
                mixing: 0.08,
                scramble_ids: true,
            }),
            seed: 303,
            publish: AsGenerated,
        },
        CorpusEntry {
            name: "mini-grid",
            domain: Domain::Road,
            spec: S::Grid2d(Grid2d {
                width: 64,
                height: 48,
                diagonals: false,
                shortcut_p: 0.02,
                scramble_ids: false,
            }),
            seed: 304,
            publish: Scrambled,
        },
        CorpusEntry {
            name: "mini-banded",
            domain: Domain::Circuit,
            spec: S::Banded(Banded {
                n: 2560,
                band: 24,
                fill_degree: 6.0,
                long_range_p: 0.1,
                scramble_ids: false,
            }),
            seed: 305,
            publish: AsGenerated,
        },
        CorpusEntry {
            name: "mini-kmer",
            domain: Domain::Kmer,
            spec: S::KmerChain(KmerChain {
                n: 4096,
                chains: 16,
                branch_p: 0.05,
                cross_p: 0.01,
                scramble_ids: false,
            }),
            seed: 306,
            publish: Scrambled,
        },
        CorpusEntry {
            name: "mini-mawi",
            domain: Domain::NetworkTrace,
            spec: S::HubAndSpoke(HubAndSpoke {
                n: 3072,
                hubs: 1,
                hub_coverage: 0.85,
                background_degree: 0.3,
            }),
            seed: 307,
            publish: AsGenerated,
        },
        CorpusEntry {
            name: "mini-er",
            domain: Domain::Random,
            spec: S::ErdosRenyi(ErdosRenyi {
                n: 2048,
                avg_degree: 10.0,
            }),
            seed: 308,
            publish: AsGenerated,
        },
    ]
}

/// Returns the mega corpus tier: 1M–4M-row entries generated through
/// the streamed builder ([`crate::stream`]), never materializing an
/// edge list. These approach the paper's real corpus scale (§III tops
/// out at 226M rows) far closer than the 131k-row `standard()` ceiling
/// and are the substrate for the parallel-reordering scaling study.
///
/// All entries publish `AsGenerated`: scrambling happens inside the
/// stream (via a seed-keyed relabel table) because a publish-time
/// permutation would materialize a second full CSR.
#[must_use]
pub fn mega() -> Vec<CorpusEntry> {
    use GeneratorSpec as S;
    use PublishOrder::AsGenerated;
    vec![
        CorpusEntry {
            name: "mega-soc-rmat-1m",
            domain: Domain::Social,
            spec: S::StreamedRmat(StreamedRmat::graph500(20, 8.0)),
            seed: 701,
            publish: AsGenerated,
        },
        CorpusEntry {
            name: "mega-web-comm-2m",
            domain: Domain::Web,
            spec: S::StreamedCommunity(StreamedCommunity {
                n: 1 << 21,
                communities: 8192,
                intra_degree: 6.0,
                mixing: 0.05,
            }),
            seed: 702,
            publish: AsGenerated,
        },
        CorpusEntry {
            name: "mega-kmer-chain-4m",
            domain: Domain::Kmer,
            // A few long contigs among many short fragments, like real
            // assembly graphs: 128 chains of 4096 plus ~57k chains of
            // 64. The mix is also what sharded detection exploits —
            // short islands quiesce early while the serial sweep walks
            // all 4M vertices until the 4096-chains converge.
            spec: S::StreamedKmerChain(StreamedKmerChain {
                n: 1 << 22,
                chain_len: 4096,
                short_len: 64,
                long_vertices: 1 << 19,
                branch_p: 0.05,
            }),
            seed: 703,
            publish: AsGenerated,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn standard_has_exactly_fifty_unique_names() {
        let corpus = standard();
        assert_eq!(corpus.len(), 50);
        let names: HashSet<_> = corpus.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 50, "duplicate corpus names");
    }

    #[test]
    fn standard_spans_many_domains() {
        let corpus = standard();
        let domains: HashSet<_> = corpus.iter().map(|e| e.domain).collect();
        assert!(domains.len() >= 10, "domains = {}", domains.len());
    }

    #[test]
    fn mini_generates_and_is_deterministic() {
        for entry in mini() {
            let a = entry.generate().unwrap();
            let b = entry.generate().unwrap();
            assert_eq!(a, b, "{} not deterministic", entry.name);
            assert!(a.n_rows() >= 1024, "{} too small", entry.name);
            assert!(a.is_symmetric(), "{} not symmetric", entry.name);
        }
    }

    #[test]
    fn scrambled_twin_differs_from_as_generated() {
        // web-sk-like and web-pld-like share spec and seed; only the
        // publish order differs (Observation 3's sk-2005 vs pld-arc pair).
        let corpus = standard();
        let sk = corpus.iter().find(|e| e.name == "web-sk-like").unwrap();
        let pld = corpus.iter().find(|e| e.name == "web-pld-like").unwrap();
        assert_eq!(sk.spec, pld.spec);
        assert_eq!(sk.seed, pld.seed);
        assert_ne!(sk.publish, pld.publish);
    }

    #[test]
    fn corpus_sizes_respect_scaled_cache_floor() {
        // Paper floor: 1.5M rows against a 6MB L2. Scaled by 48 the floor
        // is 32768 rows — every standard entry must meet it.
        for entry in standard() {
            let n = match &entry.spec {
                GeneratorSpec::ErdosRenyi(g) => g.n,
                GeneratorSpec::Rmat(g) => 1 << g.scale,
                GeneratorSpec::PlantedPartition(g) => g.n,
                GeneratorSpec::CommunityHub(g) => g.n,
                GeneratorSpec::WattsStrogatz(g) => g.n,
                GeneratorSpec::BarabasiAlbert(g) => g.n,
                GeneratorSpec::Grid2d(g) => g.width * g.height,
                GeneratorSpec::Grid3d(g) => g.nx * g.ny * g.nz,
                GeneratorSpec::Banded(g) => g.n,
                GeneratorSpec::HubAndSpoke(g) => g.n,
                GeneratorSpec::KmerChain(g) => g.n,
                GeneratorSpec::StreamedRmat(g) => 1 << g.scale,
                GeneratorSpec::StreamedCommunity(g) => g.n,
                GeneratorSpec::StreamedKmerChain(g) => g.n,
            };
            assert!(
                n >= 32_768,
                "{}: n = {n} below the scaled 32768 floor",
                entry.name
            );
        }
    }

    #[test]
    fn mega_tier_is_streamed_and_million_row() {
        // Generation itself is covered by the release-mode bench and the
        // CI tripwire; the unit suite only pins the tier's shape.
        let tier = mega();
        assert!(!tier.is_empty());
        for entry in &tier {
            let n = match &entry.spec {
                GeneratorSpec::StreamedRmat(g) => 1u32 << g.scale,
                GeneratorSpec::StreamedCommunity(g) => g.n,
                GeneratorSpec::StreamedKmerChain(g) => g.n,
                other => panic!("{}: mega entries must stream, got {other:?}", entry.name),
            };
            assert!(n >= 1 << 20, "{}: n = {n} below 1M", entry.name);
            assert_eq!(entry.publish, PublishOrder::AsGenerated, "{}", entry.name);
        }
        let names: HashSet<_> = tier.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), tier.len());
    }

    #[test]
    fn a_sample_of_standard_entries_generates() {
        // Generating all 50 here would slow the unit suite; the full pass
        // is covered by integration tests and the bench harness.
        let corpus = standard();
        for name in ["soc-rmat-32k", "opt-block-512", "trace-mawi-like"] {
            let entry = corpus.iter().find(|e| e.name == name).unwrap();
            let m = entry.generate().unwrap();
            assert!(m.nnz() > 10_000, "{name} suspiciously sparse");
        }
    }
}

/// An externally supplied matrix usable alongside the synthetic corpus:
/// a name plus the loaded matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalCase {
    /// File stem of the source `.mtx` file.
    pub name: String,
    /// The loaded matrix.
    pub matrix: CsrMatrix,
}

/// Loads every `.mtx` file in `dir` (non-recursive, sorted by file name)
/// — the drop-in path for users with real SuiteSparse downloads.
///
/// # Errors
///
/// Returns [`SparseError::Io`] for directory/read failures and
/// [`SparseError::Parse`] for malformed files (the offending file's name
/// is included in the message).
pub fn from_directory(dir: &std::path::Path) -> Result<Vec<ExternalCase>, SparseError> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| SparseError::Io(format!("{}: {e}", dir.display())))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "mtx"))
        .collect();
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for path in paths {
        let file = std::fs::File::open(&path)
            .map_err(|e| SparseError::Io(format!("{}: {e}", path.display())))?;
        let coo = commorder_sparse::io::read_matrix_market(file).map_err(|e| match e {
            SparseError::Parse { line, message } => SparseError::Parse {
                line,
                message: format!("{}: {message}", path.display()),
            },
            other => other,
        })?;
        cases.push(ExternalCase {
            name: path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unnamed")
                .to_string(),
            matrix: CsrMatrix::try_from(coo)?,
        });
    }
    Ok(cases)
}

/// Writes every entry of `entries` into `dir` as Matrix Market files
/// (`<name>.mtx`) — exporting the synthetic corpus for use with external
/// tools. Returns the number of files written.
///
/// # Errors
///
/// Returns [`SparseError::Io`] on directory/write failures and
/// propagates generation errors.
pub fn export_to_directory(
    entries: &[CorpusEntry],
    dir: &std::path::Path,
) -> Result<usize, SparseError> {
    std::fs::create_dir_all(dir).map_err(|e| SparseError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let matrix = entry.generate()?;
        let path = dir.join(format!("{}.mtx", entry.name));
        let file = std::fs::File::create(&path)
            .map_err(|e| SparseError::Io(format!("{}: {e}", path.display())))?;
        commorder_sparse::io::write_matrix_market(file, &matrix)?;
    }
    Ok(entries.len())
}

#[cfg(test)]
mod io_tests {
    use super::*;

    #[test]
    fn export_and_reload_round_trips() {
        let dir = std::env::temp_dir().join("commorder_corpus_io_test");
        let _ = std::fs::remove_dir_all(&dir);
        let entries: Vec<CorpusEntry> = mini().into_iter().take(2).collect();
        let written = export_to_directory(&entries, &dir).unwrap();
        assert_eq!(written, 2);
        let cases = from_directory(&dir).unwrap();
        assert_eq!(cases.len(), 2);
        for entry in &entries {
            let case = cases.iter().find(|c| c.name == entry.name).unwrap();
            assert_eq!(case.matrix, entry.generate().unwrap());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_missing_directory_errors() {
        let err = from_directory(std::path::Path::new("/nonexistent/commorder")).unwrap_err();
        assert!(matches!(err, SparseError::Io(_)));
    }

    #[test]
    fn non_mtx_files_are_ignored() {
        let dir = std::env::temp_dir().join("commorder_corpus_ignore_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), "not a matrix").unwrap();
        assert!(from_directory(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
