//! Thread-count invariance at corpus scale: the engine-parallel
//! reorder paths ([`Reordering::reorder_with`]) must emit permutations
//! byte-identical to the serial ones on real 131k-row corpus entries,
//! at every thread count.
//!
//! Two entries are chosen deliberately: `soc-rmat-131k` is one giant
//! component (the sharded detection path collapses to the inline serial
//! sweep; parallelism lives in dendrogram flattening and the insular
//! scan), while `kmer-131k` splits into many chain islands (the
//! connectivity-sharded detection path runs for real). A golden
//! fingerprint test pins the serial permutations themselves so a silent
//! algorithm change cannot hide behind self-consistent parallel runs.

use commorder_exec::Engine;
use commorder_reorder::{Boba, Rabbit, RabbitPlusPlus, ReorderContext, Reordering};
use commorder_sparse::CsrMatrix;
use commorder_synth::corpus;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SEED: u64 = 0xC0DE;

fn corpus_matrix(name: &str) -> CsrMatrix {
    corpus::standard()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("{name} must exist in the standard corpus"))
        .generate()
        .expect("corpus entries generate")
}

fn techniques() -> Vec<Box<dyn Reordering>> {
    vec![
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
        Box::new(Boba),
    ]
}

/// FNV-1a over the permutation's new-id array, little-endian — the same
/// fingerprint `xtask bench` publishes in BENCH_reorder.json.
fn fnv1a(ids: &[u32]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for id in ids {
        for b in id.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn assert_invariant_on(name: &str) {
    let m = corpus_matrix(name);
    for technique in techniques() {
        let serial = technique.reorder(&m).expect("square corpus matrix");
        for threads in THREAD_COUNTS {
            let engine = Engine::new(threads);
            let cx = ReorderContext::new(&engine, SEED);
            let parallel = technique.reorder_with(&m, &cx).expect("square");
            assert_eq!(
                serial,
                parallel,
                "{} must be thread-count-invariant on {name} at {threads} threads",
                technique.name()
            );
        }
    }
}

#[test]
fn parallel_permutations_match_serial_on_single_component_entry() {
    assert_invariant_on("soc-rmat-131k");
}

#[test]
fn parallel_permutations_match_serial_on_island_entry() {
    assert_invariant_on("kmer-131k");
}

/// Golden serial fingerprints on `kmer-131k`. These pin the algorithms,
/// not just serial/parallel agreement: a change to merge order, insular
/// handling or first-touch traversal shifts the hash and must be an
/// intentional, reviewed update of these constants.
#[test]
fn golden_serial_fingerprints_on_kmer_131k() {
    let m = corpus_matrix("kmer-131k");
    let expect: &[(&str, u64)] = &[
        ("RABBIT", 0x83E8_7365_0BAB_E161),
        ("RABBIT++", 0xB872_E892_D992_B8E1),
        ("BOBA", 0xD78D_8BE1_A162_9F6D),
    ];
    for (technique, want) in expect {
        let t = commorder_reorder::technique_by_name(technique, SEED)
            .unwrap_or_else(|| panic!("{technique} is registered"));
        let p = t.reorder(&m).expect("square");
        let got = fnv1a(p.as_slice());
        assert_eq!(
            got, *want,
            "{technique} serial permutation fingerprint drifted on kmer-131k \
             (got {got:#018x})"
        );
    }
}
