//! Fixture: hot-path allocation lint — loop allocations reachable
//! from a `replay` seed, with an unreachable control function.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod helper;
pub mod replay;
