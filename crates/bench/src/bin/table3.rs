//! **Table III**: average percentage of dead lines (cache lines filled
//! but never reused \[18\], \[25\]) inserted into the L2 during SpMV, per
//! reordering technique — the mechanism behind RABBIT++'s traffic wins.

use commorder::prelude::*;
use commorder_bench::{figure2_techniques, Harness};

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();

    let mut techniques = figure2_techniques(harness.random_seed);
    techniques.push(Box::new(RabbitPlusPlus::new()));
    let result = harness
        .spec(techniques)
        .run(&harness.engine())
        .expect("valid corpus grid");
    eprintln!("[table3] engine: {}", result.stats.summary());

    let mut table = Table::new(
        "Table III: average % of dead lines inserted into the L2 (SpMV)",
        vec!["technique".into(), "% dead lines".into()],
    );
    for (ti, technique) in result.techniques.iter().enumerate() {
        let fractions: Vec<f64> = (0..result.matrices.len())
            .map(|mi| result.run_for(mi, ti).run.stats.dead_line_fraction())
            .collect();
        table.add_row(vec![
            technique.clone(),
            Table::percent(arith_mean_ratio(&fractions).unwrap_or(f64::NAN)),
        ]);
    }
    println!("{table}");
    println!(
        "Paper reference: RANDOM 63.31% ORIGINAL 25.08% DEGSORT 26.88% DBG 25.23% \
         GORDER 17.73% RABBIT 22.25% RABBIT++ 16.37% — RABBIT++ lowest"
    );
}
