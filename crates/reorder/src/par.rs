//! Data-driven chunking for the engine-parallel reordering phases.
//!
//! Every nested fan-out in this crate (shard aggregation, label-prop
//! sweeps, dendrogram flattening, insular scans, first-touch streams)
//! derives its chunk count from the *input size alone* — never from
//! `Engine::threads()`. Two properties follow:
//!
//! 1. **Thread-invariant telemetry.** The number of nested `exec.job`
//!    spans (and any spans opened inside chunk closures) is a pure
//!    function of the data, so a folded-flamegraph export of the same
//!    run is byte-identical at any thread count.
//! 2. **Chunk-boundary-independent results.** All five call sites merge
//!    chunk outputs with boundary-insensitive logic (order-preserving
//!    concatenation or commutative/idempotent clears), so moving the
//!    policy off the thread count cannot change a permutation.
//!
//! Work-stealing smooths uneven chunks; [`FAN_OUT`] caps the fixed
//! oversubscription, and each site sets a minimum chunk size so small
//! inputs collapse to a single chunk and stay on the inline path.

/// Fixed chunk-count target for every nested parallel phase.
pub(crate) const FAN_OUT: usize = 16;

/// Splits `0..len` into at most [`FAN_OUT`] contiguous ranges of at
/// least `min_chunk` elements each (one possibly-shorter tail range).
/// Returns a single range covering everything when `len <= min_chunk`,
/// and an empty vector when `len == 0`.
pub(crate) fn fixed_chunks(len: usize, min_chunk: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let target = len.div_ceil(min_chunk.max(1)).clamp(1, FAN_OUT);
    let chunk = len.div_ceil(target).max(1);
    (0..len)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(len)))
        .collect()
}

/// [`fixed_chunks`] with `u32` endpoints for vertex-range sweeps.
pub(crate) fn fixed_chunks_u32(len: usize, min_chunk: usize) -> Vec<(u32, u32)> {
    fixed_chunks(len, min_chunk)
        .into_iter()
        .map(|(s, e)| (s as u32, e as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_no_chunks() {
        assert!(fixed_chunks(0, 128).is_empty());
    }

    #[test]
    fn small_input_collapses_to_one_chunk() {
        assert_eq!(fixed_chunks(100, 128), vec![(0, 100)]);
        assert_eq!(fixed_chunks(128, 128), vec![(0, 128)]);
    }

    #[test]
    fn chunks_cover_the_range_without_gaps() {
        for len in [1usize, 7, 129, 4096, 100_000] {
            let chunks = fixed_chunks(len, 128);
            assert!(chunks.len() <= FAN_OUT);
            assert_eq!(chunks.first().map(|c| c.0), Some(0));
            assert_eq!(chunks.last().map(|c| c.1), Some(len));
            for pair in chunks.windows(2) {
                assert_eq!(pair[0].1, pair[1].0);
            }
        }
    }

    #[test]
    fn chunk_count_is_a_function_of_len_only() {
        // The invariant the folded-flamegraph golden test relies on:
        // nothing about the machine or engine reaches the chunk count.
        let a = fixed_chunks(1_000_000, 4096);
        let b = fixed_chunks(1_000_000, 4096);
        assert_eq!(a, b);
        assert_eq!(a.len(), FAN_OUT);
    }
}
