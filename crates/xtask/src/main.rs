//! Workspace automation tasks.
//!
//! `cargo run -p xtask -- lint` runs the offline static-analysis pass
//! over every crate: it needs no network, no rustc invocation, and no
//! third-party dependencies, so it works in the most restricted CI
//! sandbox. Since PR 5 the backend is `commorder-analyze`: a lossless
//! token-stream lexer plus layering/determinism/telemetry-name passes,
//! replacing the old line-regex scan. It complements (not replaces)
//! `cargo clippy` with the workspace deny-list: clippy enforces
//! expression-level lints, the analyzer enforces the *policy*
//! invariants a lint pass can't express — crate-header pragmas,
//! manifest opt-ins, the panic-free-library rule with its documented
//! allowlist, the layering DAG, and report-path determinism.
//!
//! `cargo run -p xtask -- lint --fix-allowlist` mechanically removes
//! allowlist entries the analyzer reports as unused (`XT0702`) before
//! printing the report, so the allowlist never accretes dead rows.
//!
//! `cargo run -p xtask -- bench` is the unified bench driver
//! (subsuming the retired `bench-analyze`/`bench-reorder` tasks): it
//! measures the analyzer (lexer throughput, self-host wall time), the
//! engine-parallel reorderers (Medges/s at several thread counts, peak
//! RSS, permutation fingerprints), and the full simulation pipeline
//! (trace-generation and LRU/PLRU/Belady simulated accesses/s,
//! end-to-end suite wall time), writing one schema-versioned
//! `BENCH_<name>.json` artifact per bench at the repository root
//! (schema `commorder-bench.v2`, validated by `commorder-cli check`).
//! `--compare OLD_DIR` re-reads baseline artifacts (v2, or the
//! retired v1 formats for one release) and fails the process when a
//! metric drifts beyond the tolerance band or a result fingerprint
//! changes at all.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use commorder_analyze::workspace::prune_allowlist;
use commorder_analyze::{analyze_workspace, codes, lex, AnalyzerConfig};
use xtask::bench::{self, BenchReport};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(
            &workspace_root(),
            args.iter().any(|a| a == "--json"),
            args.iter().any(|a| a == "--fix-allowlist"),
        ),
        Some("bench") => run_bench_task(&workspace_root(), &args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <task>");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint [--json] [--fix-allowlist]");
            eprintln!("          offline static-analysis pass over all workspace crates;");
            eprintln!("          --fix-allowlist prunes XT0702-unused allowlist entries first");
            eprintln!("  bench [--quick] [--no-run] [--compare OLD_DIR] [--tolerance F]");
            eprintln!("          unified bench driver: analyzer, reorder, and pipeline benches");
            eprintln!("          write BENCH_analyze/BENCH_reorder/BENCH_pipeline.json at the");
            eprintln!("          repo root (schema commorder-bench.v2). --quick uses smaller");
            eprintln!("          inputs for CI; --no-run skips measurement and only compares;");
            eprintln!("          --compare gates against baseline artifacts in OLD_DIR with a");
            eprintln!("          relative tolerance band (default 0.30)");
            ExitCode::FAILURE
        }
    }
}

/// Runs the analyzer over the workspace and prints the report; the
/// process fails when any error-severity finding is present. With
/// `fix_allowlist`, stale (`XT0702`) allowlist entries are pruned from
/// the allowlist file before the reported run.
fn lint(root: &Path, json: bool, fix_allowlist: bool) -> ExitCode {
    if fix_allowlist {
        match prune_stale_allowlist_entries(root) {
            Ok(0) => eprintln!("xtask lint: allowlist has no unused entries"),
            Ok(n) => eprintln!("xtask lint: pruned {n} unused allowlist entr{}", plural(n)),
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match analyze_workspace(root, &AnalyzerConfig::default()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the analyzer once to locate `XT0702` findings, then rewrites
/// the allowlist file with those lines removed. Returns the number of
/// pruned entries.
fn prune_stale_allowlist_entries(root: &Path) -> Result<usize, String> {
    let config = AnalyzerConfig::default();
    let report = analyze_workspace(root, &config)?;
    let stale: BTreeSet<u32> = report
        .findings
        .iter()
        .filter(|f| f.code == codes::ALLOWLIST_UNUSED && f.file == config.allowlist_rel)
        .map(|f| f.line)
        .collect();
    if stale.is_empty() {
        return Ok(0);
    }
    let path = root.join(&config.allowlist_rel);
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    fs::write(&path, prune_allowlist(&text, &stale))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(stale.len())
}

/// "y"/"ies" suffix for the prune message.
fn plural(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

/// The three benches the unified driver runs, in execution order. The
/// cheap analyzer bench goes first so a broken workspace fails fast.
const BENCH_NAMES: [&str; 3] = ["analyze", "pipeline", "reorder"];

/// The `bench` task: run the benches (unless `--no-run`), write one
/// v2 artifact per bench at the repo root, then optionally gate
/// against a baseline directory.
fn run_bench_task(root: &Path, args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut no_run = false;
    let mut compare_dir: Option<PathBuf> = None;
    let mut tolerance = 0.30f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--no-run" => no_run = true,
            "--compare" => match args.get(i + 1) {
                Some(dir) => {
                    compare_dir = Some(PathBuf::from(dir));
                    i += 1;
                }
                None => {
                    eprintln!("xtask bench: --compare needs a baseline directory");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match args.get(i + 1).and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t.is_finite() && t >= 0.0 => {
                    tolerance = t;
                    i += 1;
                }
                _ => {
                    eprintln!("xtask bench: --tolerance needs a non-negative number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask bench: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if !no_run {
        for (name, result) in [
            ("analyze", run_bench_analyze(root)),
            ("pipeline", run_bench_pipeline(quick)),
            ("reorder", run_bench_reorder(quick)),
        ] {
            let report = match result {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("xtask bench: {name}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let path = root.join(format!("BENCH_{name}.json"));
            if let Err(e) = fs::write(&path, report.render_json()) {
                eprintln!("xtask bench: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("xtask bench: wrote {}", path.display());
        }
    }

    match compare_dir {
        Some(dir) => compare_gate(root, &dir, tolerance),
        None => ExitCode::SUCCESS,
    }
}

/// Gates the repo-root artifacts against baselines in `old_dir`
/// (either at its top level or under a legacy `results/` subdirectory)
/// and fails on any regression. Comparing nothing at all also fails —
/// a gate that silently gates nothing is worse than no gate.
fn compare_gate(root: &Path, old_dir: &Path, tolerance: f64) -> ExitCode {
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for name in BENCH_NAMES {
        let file = format!("BENCH_{name}.json");
        let Some(old_path) = [old_dir.join(&file), old_dir.join("results").join(&file)]
            .into_iter()
            .find(|p| p.is_file())
        else {
            eprintln!(
                "xtask bench: no baseline for {name} in {}; skipped",
                old_dir.display()
            );
            continue;
        };
        let new_path = root.join(&file);
        let pair = fs::read_to_string(&old_path)
            .and_then(|old| fs::read_to_string(&new_path).map(|new| (old, new)));
        let (old_text, new_text) = match pair {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("xtask bench: REGRESSION {name}: cannot read artifact pair: {e}");
                regressions += 1;
                continue;
            }
        };
        let reports = BenchReport::parse(&old_text)
            .map_err(|e| format!("baseline {}: {e}", old_path.display()))
            .and_then(|old| {
                BenchReport::parse(&new_text)
                    .map_err(|e| format!("new {}: {e}", new_path.display()))
                    .map(|new| (old, new))
            });
        let (old, new) = match reports {
            Ok(reports) => reports,
            Err(e) => {
                eprintln!("xtask bench: REGRESSION {name}: {e}");
                regressions += 1;
                continue;
            }
        };
        let outcome = bench::compare(&old, &new, tolerance);
        for w in &outcome.warnings {
            eprintln!("xtask bench: warning: {w}");
        }
        for r in &outcome.regressions {
            eprintln!("xtask bench: REGRESSION: {r}");
        }
        regressions += outcome.regressions.len();
        compared += 1;
    }
    if compared == 0 {
        eprintln!(
            "xtask bench: no baseline artifacts found in {} — nothing was gated",
            old_dir.display()
        );
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!("xtask bench: {regressions} regression(s) against the baseline");
        ExitCode::FAILURE
    } else {
        eprintln!("xtask bench: no regressions ({compared} bench(es) compared)");
        ExitCode::SUCCESS
    }
}

/// Benchmarks the analyzer over the live workspace: raw lexer
/// throughput (tokens/s over every `crates/**/*.rs` file) and the wall
/// time of a full self-host `analyze_workspace` run.
fn run_bench_analyze(root: &Path) -> Result<BenchReport, String> {
    let mut sources = Vec::new();
    collect_rs_files(&root.join("crates"), &mut sources)?;
    sources.sort();

    let mut bytes: u64 = 0;
    let mut tokens: u64 = 0;
    let lex_start = Instant::now();
    for path in &sources {
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        bytes += src.len() as u64;
        tokens += lex(&src).len() as u64;
    }
    let lex_seconds = lex_start.elapsed().as_secs_f64();

    let selfhost_start = Instant::now();
    analyze_workspace(root, &AnalyzerConfig::default())?;
    let selfhost_seconds = selfhost_start.elapsed().as_secs_f64();
    let tokens_per_second = if lex_seconds > 0.0 {
        tokens as f64 / lex_seconds
    } else {
        0.0
    };

    // Effect-pass throughput in isolation: the crates and the call
    // graph are prebuilt so the timer covers only the local scan, the
    // fixed-point propagation, and the witness indexing.
    let config = AnalyzerConfig::default();
    let crates = commorder_analyze::workspace::load_crates(root)?;
    let graph =
        commorder_analyze::callgraph::build(&crates, &config.hot_seed_fns, &config.worker_seed_fns);
    let functions = graph.nodes.len() as f64;
    let effects_start = Instant::now();
    let fx = commorder_analyze::effects::compute(&crates, &graph);
    let effects_seconds = effects_start.elapsed().as_secs_f64();
    let effectful = fx.to_report().rows.len();
    let effect_functions_per_second = if effects_seconds > 0.0 {
        functions / effects_seconds
    } else {
        0.0
    };

    eprintln!(
        "xtask bench: analyze: {} files ({bytes} bytes), {tokens} tokens, \
         {tokens_per_second:.0} tokens/s lex, {selfhost_seconds:.3}s self-host, \
         {effect_functions_per_second:.0} fns/s effects ({effectful} effectful)",
        sources.len(),
    );
    let mut report = BenchReport::new("analyze");
    report.metric(
        "analyze.effect_functions_per_second",
        effect_functions_per_second,
        "functions/s",
        true,
    );
    report.metric(
        "analyze.lex_tokens_per_second",
        tokens_per_second,
        "tokens/s",
        true,
    );
    report.metric(
        "analyze.selfhost_seconds",
        selfhost_seconds,
        "seconds",
        false,
    );
    Ok(report)
}

/// Benchmarks the engine-parallel reorderers on a streamed corpus
/// entry (`--quick`: a standard-tier social graph at 1/2 threads;
/// full: the mega-tier k-mer chain at 1/2/8 threads). Permutations
/// must be byte-identical across thread counts; their FNV-1a hashes
/// become the report's result fingerprints.
fn run_bench_reorder(quick: bool) -> Result<BenchReport, String> {
    use commorder_exec::Engine;
    use commorder_reorder::{Boba, Rabbit, RabbitPlusPlus, ReorderContext, Reordering};
    use commorder_synth::corpus;

    let entry_name = if quick {
        "soc-rmat-131k"
    } else {
        "mega-kmer-chain-4m"
    };
    let entry = corpus::mega()
        .into_iter()
        .chain(corpus::standard())
        .find(|e| e.name == entry_name)
        .ok_or_else(|| format!("no corpus entry named {entry_name:?}"))?;

    let gen_start = Instant::now();
    let matrix = entry
        .generate()
        .map_err(|e| format!("generating {entry_name}: {e}"))?;
    let gen_seconds = gen_start.elapsed().as_secs_f64();
    eprintln!(
        "xtask bench: reorder: {entry_name} = {} rows, {} nnz ({gen_seconds:.2}s to stream)",
        matrix.n_rows(),
        matrix.nnz()
    );

    let techniques: Vec<(&str, Box<dyn Reordering>)> = vec![
        ("rabbit", Box::new(Rabbit::new())),
        ("rabbit++", Box::new(RabbitPlusPlus::new())),
        ("boba", Box::new(Boba)),
    ];
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 8] };
    let repetitions = if quick { 2 } else { 3 };
    let nnz = matrix.nnz() as f64;

    // Untimed warmup: fault the matrix and allocator pools in once so
    // the first timed run is not charged for first-touch page faults.
    let warmup = Engine::new(1);
    Rabbit::new()
        .reorder_with(&matrix, &ReorderContext::new(&warmup, 0xC0DE))
        .map_err(|e| format!("warmup: {e}"))?;

    let mut report = BenchReport::new("reorder");
    report.metric("reorder.generate_seconds", gen_seconds, "seconds", false);
    for (name, technique) in &techniques {
        let mut reference_hash: Option<u64> = None;
        let mut seconds_per_run = Vec::with_capacity(thread_counts.len());
        for &threads in thread_counts {
            let engine = Engine::new(threads);
            let cx = ReorderContext::new(&engine, 0xC0DE);
            // Best-of-N: repetitions absorb scheduler noise, which on a
            // loaded host can otherwise exceed the sharding speedup.
            let mut seconds = f64::INFINITY;
            let mut hwm_kb = 0u64;
            let mut last = None;
            for _ in 0..repetitions {
                reset_peak_rss();
                let start = Instant::now();
                let permutation = technique
                    .reorder_with(&matrix, &cx)
                    .map_err(|e| format!("{name} at {threads} threads: {e}"))?;
                seconds = seconds.min(start.elapsed().as_secs_f64());
                hwm_kb = hwm_kb.max(peak_rss_kb());
                last = Some(permutation);
            }
            let permutation = match last {
                Some(p) => p,
                None => unreachable!("loop runs at least once"),
            };
            let hash = bench::fnv1a_u32s(permutation.as_slice());
            match reference_hash {
                None => reference_hash = Some(hash),
                Some(reference) if reference != hash => {
                    return Err(format!(
                        "{name} permutation drifted at {threads} threads \
                         ({reference:016x} -> {hash:016x})"
                    ));
                }
                Some(_) => {}
            }
            let medges_per_s = if seconds > 0.0 {
                nnz / seconds / 1e6
            } else {
                0.0
            };
            eprintln!(
                "xtask bench: reorder: {name:<9} {threads} thread(s): {seconds:.3}s \
                 ({medges_per_s:.1} Medges/s, hwm {hwm_kb} kB)"
            );
            report.metric(
                &format!("reorder.{name}.t{threads}.medges_per_second"),
                medges_per_s,
                "Medges/s",
                true,
            );
            report.metric(
                &format!("reorder.{name}.t{threads}.peak_rss_kb"),
                hwm_kb as f64,
                "kB",
                false,
            );
            seconds_per_run.push(seconds);
        }
        // Speedup of the widest run over serial — the scaling headline.
        let speedup = match (seconds_per_run.first(), seconds_per_run.last()) {
            (Some(&serial), Some(&widest)) if widest > 0.0 => serial / widest,
            _ => 0.0,
        };
        report.metric(
            &format!("reorder.{name}.speedup_widest_vs_serial"),
            speedup,
            "ratio",
            true,
        );
        report.fingerprint(&format!("permutation.{name}"), reference_hash.unwrap_or(0));
    }
    Ok(report)
}

/// FNV-1a over the full counter vector of a cache simulation — any
/// behavioural drift in the simulator or its input trace changes it.
fn stats_fingerprint(s: &commorder::cachesim::CacheStats) -> u64 {
    bench::fnv1a_u64s(&[
        s.accesses,
        s.hits,
        s.fill_misses,
        s.write_alloc_misses,
        s.compulsory_misses,
        s.evictions,
        s.dead_lines,
        s.writebacks,
        s.fills,
        u64::from(s.line_bytes),
    ])
}

/// Benchmarks the simulation pipeline end to end: trace-generation
/// throughput, LRU/PLRU/Belady simulated accesses/s (each
/// fingerprinted by its counter vector), the wall time of a small
/// experiment suite, and the peak RSS of the whole bench.
fn run_bench_pipeline(quick: bool) -> Result<BenchReport, String> {
    use commorder::cachesim::belady::simulate_belady;
    use commorder::cachesim::plru::PlruCache;
    use commorder::cachesim::source::{simulate_lru, KernelTrace};
    use commorder::cachesim::trace::ExecutionModel;
    use commorder::cachesim::{CacheConfig, TraceSource};
    use commorder::gpumodel::GpuSpec;
    use commorder::ExperimentSpec;
    use commorder_exec::Engine;
    use commorder_reorder::paper_suite;
    use commorder_sparse::traffic::Kernel;
    use commorder_synth::corpus;

    reset_peak_rss();
    let entry_name = if quick { "mini-rmat" } else { "soc-rmat-xl" };
    let entry = corpus::mini()
        .into_iter()
        .chain(corpus::standard())
        .find(|e| e.name == entry_name)
        .ok_or_else(|| format!("no corpus entry named {entry_name:?}"))?;
    let matrix = entry
        .generate()
        .map_err(|e| format!("generating {entry_name}: {e}"))?;
    let config = if quick {
        CacheConfig::test_scale()
    } else {
        CacheConfig::a6000_scaled()
    };
    let source = KernelTrace::new(&matrix, Kernel::SpmvCsr, ExecutionModel::Sequential);

    let mut report = BenchReport::new("pipeline");
    let per_second = |n: u64, seconds: f64| {
        if seconds > 0.0 {
            n as f64 / seconds
        } else {
            0.0
        }
    };

    let start = Instant::now();
    let mut accesses: u64 = 0;
    source.replay(&mut |_| accesses += 1);
    let gen_aps = per_second(accesses, start.elapsed().as_secs_f64());
    report.metric(
        "pipeline.trace_gen_accesses_per_second",
        gen_aps,
        "accesses/s",
        true,
    );

    let start = Instant::now();
    let lru = simulate_lru(config, &source);
    let lru_aps = per_second(lru.accesses, start.elapsed().as_secs_f64());
    report.metric(
        "pipeline.lru_accesses_per_second",
        lru_aps,
        "accesses/s",
        true,
    );
    report.fingerprint("cache.lru", stats_fingerprint(&lru));

    let start = Instant::now();
    let mut plru_cache = PlruCache::new(config);
    plru_cache.consume(&source);
    let plru = plru_cache.finish();
    let plru_aps = per_second(plru.accesses, start.elapsed().as_secs_f64());
    report.metric(
        "pipeline.plru_accesses_per_second",
        plru_aps,
        "accesses/s",
        true,
    );
    report.fingerprint("cache.plru", stats_fingerprint(&plru));

    let start = Instant::now();
    let belady = simulate_belady(config, &source);
    let belady_aps = per_second(belady.accesses, start.elapsed().as_secs_f64());
    report.metric(
        "pipeline.belady_accesses_per_second",
        belady_aps,
        "accesses/s",
        true,
    );
    report.fingerprint("cache.belady", stats_fingerprint(&belady));
    eprintln!(
        "xtask bench: pipeline: {entry_name} trace = {accesses} accesses; \
         {gen_aps:.0} gen/s, {lru_aps:.0} LRU/s, {plru_aps:.0} PLRU/s, {belady_aps:.0} Belady/s"
    );

    // SpGEMM leg: Gustavson and cluster-wise self-multiply over a
    // community-structured matrix (cluster-wise is the interesting case
    // there), streaming straight into the LRU simulator. Throughput is
    // timed; the counter vectors and accumulator peaks are exact.
    {
        use commorder::cachesim::SpGemmTrace;
        use commorder_reorder::Rabbit;

        let spgemm_name = if quick { "mini-sbm" } else { "opt-block-512" };
        let spgemm_entry = corpus::mini()
            .into_iter()
            .chain(corpus::standard())
            .find(|e| e.name == spgemm_name)
            .ok_or_else(|| format!("no corpus entry named {spgemm_name:?}"))?;
        let spgemm_matrix = spgemm_entry
            .generate()
            .map_err(|e| format!("generating {spgemm_name}: {e}"))?;
        let gustavson = SpGemmTrace::self_multiply(&spgemm_matrix, Kernel::SpGemmGustavson)
            .map_err(|e| format!("SpGEMM trace over {spgemm_name}: {e}"))?;

        let start = Instant::now();
        let mut spgemm_accesses: u64 = 0;
        gustavson.replay(&mut |_| spgemm_accesses += 1);
        let spgemm_gen_aps = per_second(spgemm_accesses, start.elapsed().as_secs_f64());
        report.metric(
            "pipeline.spgemm_trace_gen_accesses_per_second",
            spgemm_gen_aps,
            "accesses/s",
            true,
        );

        let start = Instant::now();
        let spgemm_lru = simulate_lru(config, &gustavson);
        let spgemm_lru_aps = per_second(spgemm_lru.accesses, start.elapsed().as_secs_f64());
        report.metric(
            "pipeline.spgemm_lru_accesses_per_second",
            spgemm_lru_aps,
            "accesses/s",
            true,
        );
        report.fingerprint("cache.spgemm_lru", stats_fingerprint(&spgemm_lru));

        let assignment = Rabbit::new()
            .run(&spgemm_matrix)
            .map_err(|e| format!("rabbit over {spgemm_name}: {e}"))?
            .assignment;
        let clustered = SpGemmTrace::new(
            &spgemm_matrix,
            &spgemm_matrix,
            Kernel::SpGemmClusterWise,
            Some(&assignment),
        )
        .map_err(|e| format!("cluster-wise SpGEMM trace over {spgemm_name}: {e}"))?;
        let cluster_lru = simulate_lru(config, &clustered);
        report.fingerprint("cache.spgemm_cluster_lru", stats_fingerprint(&cluster_lru));
        report.metric(
            "pipeline.spgemm_row_acc_peak_elements",
            gustavson.accumulator_peak() as f64,
            "elements",
            false,
        );
        report.metric(
            "pipeline.spgemm_cluster_acc_peak_elements",
            clustered.accumulator_peak() as f64,
            "elements",
            false,
        );
        eprintln!(
            "xtask bench: pipeline: SpGEMM {spgemm_name} trace = {spgemm_accesses} accesses; \
             {spgemm_gen_aps:.0} gen/s, {spgemm_lru_aps:.0} LRU/s, acc peak {} row / {} cluster",
            gustavson.accumulator_peak(),
            clustered.accumulator_peak()
        );
    }

    // A small end-to-end suite: mini matrices through the full paper
    // technique set. Its rendered report is deterministic across thread
    // counts and machines, so its hash doubles as a result fingerprint.
    let gpu = if quick {
        GpuSpec::test_scale()
    } else {
        GpuSpec::a6000_scaled()
    };
    let mut spec = ExperimentSpec::new(gpu).techniques(paper_suite(0xC0DE));
    let suite_matrices = if quick { 2 } else { 4 };
    for entry in corpus::mini().into_iter().take(suite_matrices) {
        let m = entry
            .generate()
            .map_err(|e| format!("generating {}: {e}", entry.name))?;
        spec = spec.matrix(entry.name, m);
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);
    let engine = Engine::new(threads);
    let start = Instant::now();
    let result = spec.run(&engine).map_err(|e| format!("suite run: {e}"))?;
    let suite_seconds = start.elapsed().as_secs_f64();
    report.metric(
        "pipeline.suite_wall_seconds",
        suite_seconds,
        "seconds",
        false,
    );
    report.fingerprint(
        "suite.report",
        bench::fnv1a_bytes(result.render_json().as_bytes()),
    );
    let hwm_kb = peak_rss_kb();
    report.metric("pipeline.peak_rss_kb", hwm_kb as f64, "kB", false);
    eprintln!(
        "xtask bench: pipeline: suite of {suite_matrices} mini matrices in {suite_seconds:.2}s \
         at {threads} thread(s), hwm {hwm_kb} kB"
    );
    Ok(report)
}

/// Resets the kernel's peak-RSS watermark for this process (Linux
/// `/proc/self/clear_refs`); silently a no-op where unsupported.
fn reset_peak_rss() {
    let _ = fs::write("/proc/self/clear_refs", "5");
}

/// Reads the peak RSS (`VmHWM`, in kB) of this process; 0 where
/// `/proc` is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Recursively collects every `.rs` file under `dir`, skipping
/// `target/` build directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}
