use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// Banded matrix with random fill inside the band plus occasional
/// long-range couplings.
///
/// Stands in for circuit-simulation and DNA-electrophoresis matrices:
/// non-zeros concentrated near the diagonal in the natural order (so
/// ORIGINAL is already good), with a sparse scattering of off-band entries
/// (global nets / boundary conditions) that keep it from being trivially
/// cache-resident.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Banded {
    /// Number of vertices.
    pub n: u32,
    /// Half-bandwidth: neighbours are drawn from `[-band, +band]` around
    /// the diagonal.
    pub band: u32,
    /// Average number of in-band neighbours per vertex.
    pub fill_degree: f64,
    /// Probability per vertex of one uniformly random long-range edge.
    pub long_range_p: f64,
    /// Shuffle vertex IDs after generation (publish-order scrambling).
    pub scramble_ids: bool,
}

impl Banded {
    /// Generates the matrix.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if `band == 0` or `n < 2`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(self.band > 0, "band must be positive");
        assert!(self.n >= 2, "need at least two vertices");
        let mut rng = Rng::new(seed);
        let mut edges = Vec::new();
        let per_vertex = self.fill_degree / 2.0;
        for u in 0..self.n {
            // Expected `per_vertex` in-band edges via a whole + fractional draw.
            let mut count = per_vertex.floor() as u32;
            if rng.gen_bool(per_vertex.fract()) {
                count += 1;
            }
            for _ in 0..count {
                let offset = 1 + rng.gen_u32(self.band);
                let v = if rng.gen_bool(0.5) {
                    u.saturating_sub(offset)
                } else {
                    (u + offset).min(self.n - 1)
                };
                if v != u {
                    edges.push((u, v));
                }
            }
            if self.long_range_p > 0.0 && rng.gen_bool(self.long_range_p) {
                let v = rng.gen_u32(self.n);
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        if self.scramble_ids {
            let mut relabel: Vec<u32> = (0..self.n).collect();
            rng.shuffle(&mut relabel);
            for e in &mut edges {
                e.0 = relabel[e.0 as usize];
                e.1 = relabel[e.1 as usize];
            }
        }
        undirected_csr(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;
    use commorder_sparse::stats::{bandwidth, mean_index_distance};

    #[test]
    fn stays_in_band_without_long_range() {
        let g = Banded {
            n: 2000,
            band: 16,
            fill_degree: 6.0,
            long_range_p: 0.0,
            scramble_ids: false,
        }
        .generate(1)
        .unwrap();
        assert_well_formed(&g);
        assert!(bandwidth(&g) <= 16);
    }

    #[test]
    fn long_range_escapes_band() {
        let g = Banded {
            n: 2000,
            band: 16,
            fill_degree: 6.0,
            long_range_p: 0.2,
            scramble_ids: false,
        }
        .generate(1)
        .unwrap();
        assert!(bandwidth(&g) > 16);
        // But the bulk stays near the diagonal.
        assert!(mean_index_distance(&g) < 100.0);
    }

    #[test]
    fn density_close_to_requested() {
        let g = Banded {
            n: 4000,
            band: 32,
            fill_degree: 8.0,
            long_range_p: 0.0,
            scramble_ids: false,
        }
        .generate(2)
        .unwrap();
        let avg = g.nnz() as f64 / 4000.0;
        // Dedup and edge clamping at the boundary eat a little density.
        assert!((5.5..=8.5).contains(&avg), "avg degree = {avg}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = Banded {
            n: 300,
            band: 8,
            fill_degree: 4.0,
            long_range_p: 0.1,
            scramble_ids: true,
        };
        assert_eq!(cfg.generate(3).unwrap(), cfg.generate(3).unwrap());
        assert_ne!(cfg.generate(3).unwrap(), cfg.generate(4).unwrap());
    }
}
