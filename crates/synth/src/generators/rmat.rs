use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// Recursive-MATrix (R-MAT / stochastic Kronecker) generator.
///
/// Each edge recursively descends into one of the four adjacency-matrix
/// quadrants with probabilities `(a, b, c, 1-a-b-c)`. The Graph500 default
/// `(0.57, 0.19, 0.19, 0.05)` yields the heavy power-law skew of social
/// networks — the regime where the paper shows RABBIT's community
/// detection degrades (§V-B: skew vs. insularity correlation −0.721).
///
/// Vertex IDs are scrambled before emission so that the generated order
/// carries no locality (R-MAT's raw IDs leak quadrant structure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rmat {
    /// log2 of the vertex count (`n = 2^scale`).
    pub scale: u32,
    /// Target average degree.
    pub avg_degree: f64,
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// When `true`, vertex IDs are randomly relabelled (recommended; see
    /// struct docs).
    pub scramble_ids: bool,
}

impl Rmat {
    /// Graph500-style defaults at a given scale and degree.
    #[must_use]
    pub fn graph500(scale: u32, avg_degree: f64) -> Self {
        Rmat {
            scale,
            avg_degree,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            scramble_ids: true,
        }
    }

    /// A milder parameterization (less skew, more symmetric quadrants).
    #[must_use]
    pub fn mild(scale: u32, avg_degree: f64) -> Self {
        Rmat {
            scale,
            avg_degree,
            a: 0.45,
            b: 0.22,
            c: 0.22,
            scramble_ids: true,
        }
    }

    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if the quadrant probabilities are not a sub-distribution
    /// (`a + b + c >= 1` or any negative) or `scale >= 31`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(self.scale < 31, "scale must keep n within u32");
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.a + self.b + self.c < 1.0,
            "quadrant probabilities must form a sub-distribution"
        );
        let n = 1u32 << self.scale;
        let m = (f64::from(n) * self.avg_degree / 2.0).round() as usize;
        let mut rng = Rng::new(seed);
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let (mut u, mut v) = (0u32, 0u32);
            for _ in 0..self.scale {
                u <<= 1;
                v <<= 1;
                let x = rng.next_f64();
                if x < self.a {
                    // top-left: both bits 0
                } else if x < self.a + self.b {
                    v |= 1;
                } else if x < self.a + self.b + self.c {
                    u |= 1;
                } else {
                    u |= 1;
                    v |= 1;
                }
            }
            edges.push((u, v));
        }
        if self.scramble_ids {
            let mut relabel: Vec<u32> = (0..n).collect();
            rng.shuffle(&mut relabel);
            for e in &mut edges {
                e.0 = relabel[e.0 as usize];
                e.1 = relabel[e.1 as usize];
            }
        }
        undirected_csr(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;
    use commorder_sparse::stats::skew_top10;

    #[test]
    fn graph500_is_heavily_skewed() {
        let g = Rmat::graph500(12, 16.0).generate(1).unwrap();
        assert_well_formed(&g);
        let skew = skew_top10(&g);
        assert!(skew > 0.35, "graph500 skew should be heavy, got {skew}");
    }

    #[test]
    fn mild_is_less_skewed_than_graph500() {
        let heavy = skew_top10(&Rmat::graph500(11, 8.0).generate(2).unwrap());
        let mild = skew_top10(&Rmat::mild(11, 8.0).generate(2).unwrap());
        assert!(mild < heavy, "mild {mild} vs heavy {heavy}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = Rmat::graph500(8, 4.0);
        assert_eq!(cfg.generate(5).unwrap(), cfg.generate(5).unwrap());
        assert_ne!(cfg.generate(5).unwrap(), cfg.generate(6).unwrap());
    }

    #[test]
    #[should_panic(expected = "sub-distribution")]
    fn rejects_bad_probabilities() {
        let _ = Rmat {
            scale: 4,
            avg_degree: 2.0,
            a: 0.6,
            b: 0.3,
            c: 0.2,
            scramble_ids: false,
        }
        .generate(0);
    }

    #[test]
    fn scrambling_changes_layout_not_shape() {
        let mut cfg = Rmat::graph500(9, 6.0);
        cfg.scramble_ids = false;
        let raw = cfg.generate(3).unwrap();
        cfg.scramble_ids = true;
        let scr = cfg.generate(3).unwrap();
        assert_eq!(raw.n_rows(), scr.n_rows());
        // Same edge-generation stream, so nnz matches up to dedup noise.
        let ratio = raw.nnz() as f64 / scr.nnz() as f64;
        assert!((0.95..=1.05).contains(&ratio));
        // Scrambled layout should be much less diagonal-concentrated.
        assert!(
            commorder_sparse::stats::mean_index_distance(&scr)
                > commorder_sparse::stats::mean_index_distance(&raw) * 0.5
        );
    }
}
