//! Helpers for the `commorder-cli` binary: technique/kernel name parsing
//! and the analyze/reorder/simulate entry points, kept in the library so
//! they are unit-testable.

use commorder_reorder::{
    Bisection, Dbg, DegSort, Gorder, HubGroup, HubSort, LabelPropagation, Original, Rabbit,
    RabbitPlusPlus, RandomOrder, Rcm, Reordering, SlashBurn,
};
use commorder_sparse::traffic::Kernel;

/// Names accepted by [`parse_technique`], for help text.
pub const TECHNIQUE_NAMES: &[&str] = &[
    "original",
    "random",
    "degsort",
    "dbg",
    "hubsort",
    "hubgroup",
    "rcm",
    "gorder",
    "rabbit",
    "rabbit++",
    "slashburn",
    "bisection",
    "labelprop",
];

/// Resolves a (case-insensitive) technique name to an instance.
///
/// Returns `None` for unknown names. `"rabbitpp"` is accepted as an
/// alias for `"rabbit++"`.
#[must_use]
pub fn parse_technique(name: &str) -> Option<Box<dyn Reordering>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "original" => Box::new(Original),
        "random" => Box::new(RandomOrder::new(0xC0DE)),
        "degsort" => Box::new(DegSort),
        "dbg" => Box::new(Dbg::default()),
        "hubsort" => Box::new(HubSort),
        "hubgroup" => Box::new(HubGroup),
        "rcm" => Box::new(Rcm),
        "gorder" => Box::new(Gorder::default()),
        "rabbit" => Box::new(Rabbit::new()),
        "rabbit++" | "rabbitpp" => Box::new(RabbitPlusPlus::new()),
        "slashburn" => Box::new(SlashBurn::default()),
        "bisection" => Box::new(Bisection::default()),
        "labelprop" => Box::new(LabelPropagation::default()),
        _ => return None,
    })
}

/// Resolves a kernel name (`spmv-csr`, `spmv-coo`, `spmm-4`, `spmm-256`,
/// `spmv-tiled-<w>`); returns `None` for unknown names.
#[must_use]
pub fn parse_kernel(name: &str) -> Option<Kernel> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "spmv" | "spmv-csr" => Some(Kernel::SpmvCsr),
        "spmv-coo" => Some(Kernel::SpmvCoo),
        _ => {
            if let Some(k) = lower.strip_prefix("spmm-") {
                k.parse::<u32>()
                    .ok()
                    .filter(|&k| k > 0)
                    .map(|k| Kernel::SpmmCsr { k })
            } else if let Some(w) = lower.strip_prefix("spmv-tiled-") {
                w.parse::<u32>()
                    .ok()
                    .filter(|&w| w > 0)
                    .map(|tile_cols| Kernel::SpmvCsrTiled { tile_cols })
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_advertised_technique_names_parse() {
        for name in TECHNIQUE_NAMES {
            assert!(parse_technique(name).is_some(), "{name} must parse");
        }
    }

    #[test]
    fn technique_parsing_is_case_insensitive_with_alias() {
        assert_eq!(parse_technique("RABBIT").unwrap().name(), "RABBIT");
        assert_eq!(parse_technique("rabbitpp").unwrap().name(), "RABBIT++");
        assert!(parse_technique("metis").is_none());
    }

    #[test]
    fn kernel_names_parse() {
        assert_eq!(parse_kernel("spmv"), Some(Kernel::SpmvCsr));
        assert_eq!(parse_kernel("SPMV-COO"), Some(Kernel::SpmvCoo));
        assert_eq!(parse_kernel("spmm-4"), Some(Kernel::SpmmCsr { k: 4 }));
        assert_eq!(parse_kernel("spmm-256"), Some(Kernel::SpmmCsr { k: 256 }));
        assert_eq!(
            parse_kernel("spmv-tiled-4096"),
            Some(Kernel::SpmvCsrTiled { tile_cols: 4096 })
        );
        assert_eq!(parse_kernel("spmm-0"), None);
        assert_eq!(parse_kernel("gemm"), None);
    }
}
