//! Token-stream re-implementation of the call-site and header rules
//! (`XT0001`–`XT0007`, `XT0101`/`XT0102`, `XT0301`).
//!
//! Matching on identifier tokens instead of raw lines eliminates both
//! false-positive classes of the old line-regex lint: occurrences
//! inside string literals and comments never match (they are `StrLit`
//! or comment tokens), and a rule's own description can no longer trip
//! the rule.

use crate::codes;
use crate::findings::{Finding, Severity};
use crate::items::{code_indices, in_ranges};
use crate::lexer::{Token, TokenKind};

/// Per-file context for the source-rule scan.
pub struct SourceContext<'a> {
    /// The file's text.
    pub src: &'a str,
    /// Its token stream.
    pub tokens: &'a [Token],
    /// Workspace-relative path with `/` separators.
    pub rel: &'a str,
    /// Binary targets may abort on a broken environment, so the
    /// `expect`/`panic!` rules do not apply.
    pub is_bin: bool,
    /// Library crates whose code must stay silent on stdout/stderr.
    pub is_quiet: bool,
    /// `#[cfg(test)]` byte ranges (exempt from call-site rules).
    pub test_ranges: &'a [(usize, usize)],
    /// `macro_rules!` body ranges (exempt from the doc rule).
    pub macro_ranges: &'a [(usize, usize)],
}

impl SourceContext<'_> {
    fn ident_at(&self, code: &[usize], at: usize, word: &str) -> bool {
        code.get(at)
            .map(|&i| &self.tokens[i])
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(self.src) == word)
    }

    fn punct_at(&self, code: &[usize], at: usize, c: char) -> bool {
        code.get(at)
            .map(|&i| &self.tokens[i])
            .is_some_and(|t| t.kind == TokenKind::Punct && self.src[t.start..t.end].starts_with(c))
    }

    fn anchor(&self, code: &[usize], at: usize) -> &Token {
        &self.tokens[code[at]]
    }

    fn finding(
        &self,
        code: &'static str,
        severity: Severity,
        tok: &Token,
        message: &str,
    ) -> Finding {
        Finding {
            code,
            severity,
            file: self.rel.to_string(),
            line: tok.line,
            col_start: tok.col,
            col_end: tok.col + u32::try_from(tok.len()).unwrap_or(0),
            message: message.to_string(),
        }
    }
}

/// Runs the call-site rules over one file. `allow_trace_buffer` is set
/// for files carrying an `XT0007` allowlist entry (checked by the
/// caller so unused-entry tracking stays in one place).
#[must_use]
pub fn scan(ctx: &SourceContext<'_>) -> Vec<Finding> {
    let code = code_indices(ctx.tokens);
    let mut out = Vec::new();
    let mut doc_ready = false;
    let mut ci = 0;
    while ci < code.len() {
        let tok = ctx.anchor(&code, ci);
        // Doc comments in the trivia since the previous code token arm
        // the readiness flag consumed by the `pub` rule below.
        let prev_end = if ci == 0 { 0 } else { code[ci - 1] + 1 };
        if ctx.tokens[prev_end..code[ci]]
            .iter()
            .any(|t| t.kind.is_doc_comment())
        {
            doc_ready = true;
        }
        let in_test = in_ranges(tok.start, ctx.test_ranges);
        let word = if tok.kind == TokenKind::Ident {
            tok.text(ctx.src)
        } else {
            ""
        };

        if !in_test {
            if word == "unsafe" {
                out.push(ctx.finding(
                    codes::UNSAFE_TOKEN,
                    Severity::Error,
                    tok,
                    "unsafe code is forbidden across the workspace",
                ));
            }
            if word == "unwrap"
                && ci >= 1
                && ctx.punct_at(&code, ci - 1, '.')
                && ctx.punct_at(&code, ci + 1, '(')
                && ctx.punct_at(&code, ci + 2, ')')
            {
                out.push(ctx.finding(
                    codes::UNWRAP_CALL,
                    Severity::Error,
                    tok,
                    "library code must not unwrap(); return a SparseError or use expect with a proof",
                ));
            }
            if !ctx.is_bin
                && word == "expect"
                && ci >= 1
                && ctx.punct_at(&code, ci - 1, '.')
                && ctx.punct_at(&code, ci + 1, '(')
            {
                out.push(ctx.finding(
                    codes::EXPECT_CALL,
                    Severity::Warning,
                    tok,
                    "expect() in library code: the message must state why it cannot fail",
                ));
            }
            if !ctx.is_bin && word == "panic" && ctx.punct_at(&code, ci + 1, '!') {
                out.push(ctx.finding(
                    codes::PANIC_CALL,
                    Severity::Warning,
                    tok,
                    "panic! in library code: prefer a structured error",
                ));
            }
            if (word == "todo" || word == "unimplemented") && ctx.punct_at(&code, ci + 1, '!') {
                out.push(ctx.finding(
                    codes::TODO_CALL,
                    Severity::Error,
                    tok,
                    "todo!/unimplemented! must not ship",
                ));
            }
            if ctx.is_quiet
                && (word == "println" || word == "eprintln")
                && ctx.punct_at(&code, ci + 1, '!')
            {
                out.push(ctx.finding(
                    codes::PRINT_CALL,
                    Severity::Error,
                    tok,
                    "quiet library crates must not print; emit through commorder-obs or return the text",
                ));
            }
            if word == "collect_trace" && ctx.punct_at(&code, ci + 1, '(') {
                out.push(ctx.finding(
                    codes::TRACE_BUFFER,
                    Severity::Error,
                    tok,
                    "non-test code must stream traces through TraceSource, never materialize them",
                ));
            }
            if word == "Vec"
                && ctx.punct_at(&code, ci + 1, '<')
                && ctx.ident_at(&code, ci + 2, "Access")
                && ctx.punct_at(&code, ci + 3, '>')
            {
                out.push(ctx.finding(
                    codes::TRACE_BUFFER,
                    Severity::Error,
                    tok,
                    "non-test code must stream traces through TraceSource, never materialize them",
                ));
            }
            if word == "pub"
                && !doc_ready
                && !in_ranges(tok.start, ctx.macro_ranges)
                && documented_pub_item(ctx, &code, ci)
            {
                out.push(ctx.finding(
                    codes::UNDOCUMENTED_PUB,
                    Severity::Warning,
                    tok,
                    "public item without a doc comment",
                ));
            }
        }

        // Whitespace and plain comments preserve readiness (they never
        // reach this loop); attribute tokens preserve it; any other
        // code token disarms it.
        if !attribute_token(ctx, &code, ci) {
            doc_ready = false;
        }
        ci += 1;
    }
    out
}

/// `true` when code token `ci` is part of an attribute (`#`, `[`, the
/// bracket contents, or `]`). Detected cheaply: a `#` directly followed
/// by `[` (or `![`) starts one; we remember bracket depth in a thread
/// of calls by re-deriving it — instead, approximate: any token between
/// a `#`-`[` pair and its matching `]` in the code stream.
fn attribute_token(ctx: &SourceContext<'_>, code: &[usize], ci: usize) -> bool {
    // Walk back to find an unmatched `[` whose opener is `#[`/`#![`.
    let mut depth = 0i64;
    let mut k = ci;
    loop {
        let tok = &ctx.tokens[code[k]];
        if tok.kind == TokenKind::Punct {
            match tok.text(ctx.src) {
                "]" if k != ci => depth += 1,
                "[" => {
                    if depth == 0 {
                        // Opener: is it preceded by `#` or `#!`?
                        let before = k.checked_sub(1).map(|b| ctx.anchor(code, b));
                        let before2 = k.checked_sub(2).map(|b| ctx.anchor(code, b));
                        let hash = |t: Option<&Token>| {
                            t.is_some_and(|t| t.kind == TokenKind::Punct && t.text(ctx.src) == "#")
                        };
                        let bang = |t: Option<&Token>| {
                            t.is_some_and(|t| t.kind == TokenKind::Punct && t.text(ctx.src) == "!")
                        };
                        return hash(before) || (bang(before) && hash(before2));
                    }
                    depth -= 1;
                }
                "#" if k == ci => {
                    // A `#` that begins an attribute counts as one.
                    return ctx.punct_at(code, ci + 1, '[')
                        || (ctx.punct_at(code, ci + 1, '!') && ctx.punct_at(code, ci + 2, '['));
                }
                "!" if k == ci => {
                    return ci >= 1
                        && ctx.punct_at(code, ci - 1, '#')
                        && ctx.punct_at(code, ci + 1, '[');
                }
                _ => {}
            }
        }
        if k == 0 {
            return false;
        }
        // Give up after a bounded look-back: attributes are short.
        if ci - k > 256 {
            return false;
        }
        k -= 1;
    }
}

/// `true` when the `pub` at code index `ci` introduces an item that
/// policy requires to be documented. `pub(crate)`/`pub(super)` items
/// are not public API; `pub mod`/`pub use` are satisfied by the
/// target's own docs.
fn documented_pub_item(ctx: &SourceContext<'_>, code: &[usize], ci: usize) -> bool {
    let mut k = ci + 1;
    if ctx.punct_at(code, k, '(') {
        return false; // restricted visibility
    }
    if ctx.ident_at(code, k, "async") || ctx.ident_at(code, k, "unsafe") {
        k += 1;
    }
    [
        "fn", "struct", "enum", "trait", "const", "static", "type", "macro",
    ]
    .iter()
    .any(|kw| ctx.ident_at(code, k, kw))
}

/// Checks a library root (`lib.rs`) for the required inner attributes,
/// matching attribute *tokens* so a mention in a doc comment no longer
/// satisfies the rule.
#[must_use]
pub fn check_lib_header(src: &str, tokens: &[Token], rel: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    if !has_inner_lint_attr(src, tokens, &["forbid"], "unsafe_code") {
        out.push(Finding::file_scoped(
            codes::MISSING_FORBID_UNSAFE,
            Severity::Error,
            rel,
            "library crate must declare #![forbid(unsafe_code)]".to_string(),
        ));
    }
    if !has_inner_lint_attr(src, tokens, &["warn", "deny"], "missing_docs") {
        out.push(Finding::file_scoped(
            codes::MISSING_DOCS_LINT,
            Severity::Error,
            rel,
            "library crate must enable the missing_docs lint".to_string(),
        ));
    }
    out
}

/// `true` when the stream contains `#![level(lint)]` for one of the
/// given levels.
fn has_inner_lint_attr(src: &str, tokens: &[Token], levels: &[&str], lint: &str) -> bool {
    let code = code_indices(tokens);
    let text = |at: usize| code.get(at).map(|&i| tokens[i].text(src));
    (0..code.len()).any(|i| {
        text(i) == Some("#")
            && text(i + 1) == Some("!")
            && text(i + 2) == Some("[")
            && text(i + 3).is_some_and(|w| levels.contains(&w))
            && text(i + 4) == Some("(")
            && text(i + 5) == Some(lint)
            && text(i + 6) == Some(")")
            && text(i + 7) == Some("]")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{macro_rules_regions, test_regions};
    use crate::lexer::lex;

    fn scan_src(src: &str, is_bin: bool, is_quiet: bool) -> Vec<Finding> {
        let tokens = lex(src);
        let test_ranges = test_regions(src, &tokens);
        let macro_ranges = macro_rules_regions(src, &tokens);
        scan(&SourceContext {
            src,
            tokens: &tokens,
            rel: "crates/x/src/f.rs",
            is_bin,
            is_quiet,
            test_ranges: &test_ranges,
            macro_ranges: &macro_ranges,
        })
    }

    fn codes_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn unwrap_in_code_fires_with_span() {
        let f = scan_src("fn f() { val.unwrap(); }\n", false, false);
        assert_eq!(codes_of(&f), vec![codes::UNWRAP_CALL]);
        assert_eq!((f[0].line, f[0].col_start, f[0].col_end), (1, 14, 20));
    }

    #[test]
    fn unwrap_in_string_comment_and_tests_is_silent() {
        let src = "\
// describing .unwrap() here is fine\n\
fn f() { log(\"never .unwrap() in prod\"); }\n\
#[cfg(test)]\nmod tests {\n    fn g() { v.unwrap(); }\n}\n";
        assert!(scan_src(src, false, false).is_empty());
    }

    #[test]
    fn expect_and_panic_exempt_in_bins() {
        let src = "fn main() { x.expect(\"why\"); panic!(\"boom\"); }\n";
        assert!(scan_src(src, true, false).is_empty());
        let f = scan_src(src, false, false);
        assert_eq!(codes_of(&f), vec![codes::EXPECT_CALL, codes::PANIC_CALL]);
    }

    #[test]
    fn quiet_crate_print_rule() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert!(scan_src(src, false, false).is_empty());
        assert_eq!(
            codes_of(&scan_src(src, false, true)),
            vec![codes::PRINT_CALL]
        );
    }

    #[test]
    fn trace_buffer_patterns() {
        let f = scan_src(
            "fn f(v: Vec<Access>) { src.collect_trace(); }\n",
            false,
            false,
        );
        assert_eq!(codes_of(&f), vec![codes::TRACE_BUFFER, codes::TRACE_BUFFER]);
    }

    #[test]
    fn undocumented_pub_item_and_exemptions() {
        assert_eq!(
            codes_of(&scan_src("pub fn f() {}\n", false, false)),
            vec![codes::UNDOCUMENTED_PUB]
        );
        assert!(scan_src("/// Doc.\npub fn f() {}\n", false, false).is_empty());
        assert!(scan_src("/// Doc.\n#[inline]\npub fn f() {}\n", false, false).is_empty());
        assert!(scan_src("pub(crate) fn f() {}\n", false, false).is_empty());
        assert!(scan_src("pub mod x;\n", false, false).is_empty());
        assert!(scan_src("pub use crate::x::Y;\n", false, false).is_empty());
    }

    #[test]
    fn doc_does_not_leak_past_an_item() {
        let src = "/// Doc for A.\npub struct A;\npub struct B;\n";
        let f = scan_src(src, false, false);
        assert_eq!(codes_of(&f), vec![codes::UNDOCUMENTED_PUB]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn lib_header_attrs_must_be_real_tokens() {
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
        let toks = lex(good);
        assert!(check_lib_header(good, &toks, "crates/x/src/lib.rs").is_empty());

        let fake = "//! mentions #![forbid(unsafe_code)] and #![warn(missing_docs)] in docs\n";
        let toks = lex(fake);
        let f = check_lib_header(fake, &toks, "crates/x/src/lib.rs");
        assert_eq!(
            codes_of(&f),
            vec![codes::MISSING_FORBID_UNSAFE, codes::MISSING_DOCS_LINT]
        );
    }

    #[test]
    fn deny_missing_docs_also_satisfies() {
        let src = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";
        let toks = lex(src);
        assert!(check_lib_header(src, &toks, "crates/x/src/lib.rs").is_empty());
    }
}
