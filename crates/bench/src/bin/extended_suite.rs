//! **Extension**: the full technique zoo — every reordering implemented
//! in this workspace (the paper's six plus the §VII-referenced baselines
//! RCM, SlashBurn, label propagation, recursive bisection and the
//! RABBIT-FLAT hierarchy ablation) on the corpus, with the simulator-free
//! locality scorecard alongside simulated traffic.

use commorder::prelude::*;
use commorder::reorder::locality::LocalityScore;
use commorder::reorder::{Bisection, FlatCommunity, LabelPropagation, SlashBurn};
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();

    let techniques: Vec<Box<dyn Reordering>> = vec![
        Box::new(RandomOrder::new(harness.random_seed)),
        Box::new(Original),
        Box::new(DegSort),
        Box::new(Dbg::default()),
        Box::new(HubSort),
        Box::new(HubGroup),
        Box::new(Rcm),
        Box::new(SlashBurn::default()),
        Box::new(Bisection::default()),
        Box::new(LabelPropagation::default()),
        Box::new(Gorder::default()),
        Box::new(FlatCommunity::new(harness.random_seed)),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
    ];
    let spec = harness.spec(techniques);
    let engine = harness.engine();
    let result = spec.run(&engine).expect("valid corpus grid");
    eprintln!("[extended] engine: {}", result.stats.summary());

    // Simulator-free locality scorecard on the reordered matrices, from
    // the permutations the grid run already computed.
    let pairs: Vec<(usize, usize)> = (0..result.matrices.len())
        .flat_map(|mi| (0..result.techniques.len()).map(move |ti| (mi, ti)))
        .collect();
    let scores: Vec<LocalityScore> = engine.map(&pairs, |_, &(mi, ti)| {
        let reordered = spec.matrices[mi]
            .matrix
            .permute_symmetric(&result.permutations[mi][ti])
            .expect("validated");
        LocalityScore::measure(&reordered, 64)
    });

    let mut table = Table::new(
        "Extended suite: mean SpMV traffic + locality scorecard across the corpus",
        vec![
            "technique".into(),
            "traffic/compulsory".into(),
            "time/ideal".into(),
            "line util".into(),
            "windowed reuse".into(),
            "reorder time (mean)".into(),
        ],
    );
    for (ti, technique) in result.techniques.iter().enumerate() {
        let mut util = Vec::new();
        let mut reuse = Vec::new();
        let mut seconds = Vec::new();
        for mi in 0..result.matrices.len() {
            let score = &scores[mi * result.techniques.len() + ti];
            util.push(score.line_utilization);
            reuse.push(score.windowed_reuse);
            seconds.push(result.run_for(mi, ti).reorder_seconds);
        }
        table.add_row(vec![
            technique.clone(),
            Table::ratio(arith_mean_ratio(&result.traffic_ratios(ti)).unwrap_or(f64::NAN)),
            Table::ratio(arith_mean_ratio(&result.time_ratios(ti)).unwrap_or(f64::NAN)),
            Table::percent(arith_mean_ratio(&util).unwrap_or(f64::NAN)),
            Table::percent(arith_mean_ratio(&reuse).unwrap_or(f64::NAN)),
            Table::seconds(arith_mean_ratio(&seconds).unwrap_or(f64::NAN)),
        ]);
    }
    if let Ok(Some(path)) = table.save_csv_if_configured() {
        eprintln!("[extended] csv -> {}", path.display());
    }
    println!("{table}");
    println!(
        "Extension figure (not in the paper): community-based techniques\n\
         (RABBIT/RABBIT++/LABELPROP/BISECTION) should cluster at the low-traffic\n\
         end; the simulator-free locality columns should rank them the same way\n\
         the simulator does — a consistency check between the two methodologies."
    );
}
