use crate::SparseError;

/// A validated bijection on `0..len`, mapping **old** vertex/row IDs to
/// **new** IDs.
///
/// Every reordering technique in the workspace produces a `Permutation`;
/// applying it to a matrix with [`CsrMatrix::permute_symmetric`] relabels
/// rows *and* columns so vertex `v` of the original graph becomes vertex
/// `perm.new_of(v)` of the reordered graph.
///
/// [`CsrMatrix::permute_symmetric`]: crate::CsrMatrix::permute_symmetric
///
/// # Example
///
/// ```
/// use commorder_sparse::Permutation;
///
/// # fn main() -> Result<(), commorder_sparse::SparseError> {
/// let p = Permutation::from_new_ids(vec![2, 0, 1])?; // old 0 -> new 2, ...
/// assert_eq!(p.new_of(0), 2);
/// assert_eq!(p.old_of(2), 0);
/// assert_eq!(p.inverse().new_of(2), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    /// `new_ids[old] == new`.
    new_ids: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `0..len`.
    ///
    /// This is the paper's ORIGINAL ordering: IDs are left exactly as the
    /// dataset publisher assigned them.
    #[must_use]
    pub fn identity(len: usize) -> Self {
        Permutation {
            new_ids: (0..len as u32).collect(),
        }
    }

    /// Builds a permutation from a mapping `new_ids[old] = new`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if the mapping is not a
    /// bijection on `0..new_ids.len()`, and [`SparseError::TooLarge`] if the
    /// length exceeds `u32::MAX`.
    pub fn from_new_ids(new_ids: Vec<u32>) -> Result<Self, SparseError> {
        if new_ids.len() > u32::MAX as usize {
            return Err(SparseError::TooLarge(format!(
                "permutation of length {} exceeds u32 indexing",
                new_ids.len()
            )));
        }
        let n = new_ids.len() as u32;
        let mut seen = vec![false; new_ids.len()];
        for (old, &new) in new_ids.iter().enumerate() {
            if new >= n {
                return Err(SparseError::InvalidPermutation {
                    index: old,
                    value: new,
                    message: format!("entry must be < length {n}"),
                });
            }
            if seen[new as usize] {
                return Err(SparseError::InvalidPermutation {
                    index: old,
                    value: new,
                    message: "target id appears more than once".to_string(),
                });
            }
            seen[new as usize] = true;
        }
        Ok(Permutation { new_ids })
    }

    /// Builds a permutation from the *rank order* `order`, where `order[k]`
    /// is the **old** ID that should receive **new** ID `k`.
    ///
    /// This is the natural output of "sort the vertices by X and assign IDs
    /// in that order" style reorderings (DEGSORT, RCM, GORDER, ...).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if `order` is not a
    /// bijection on `0..order.len()`.
    pub fn from_order(order: &[u32]) -> Result<Self, SparseError> {
        if order.len() > u32::MAX as usize {
            return Err(SparseError::TooLarge(format!(
                "order of length {} exceeds u32 indexing",
                order.len()
            )));
        }
        let n = order.len() as u32;
        let mut new_ids = vec![u32::MAX; order.len()];
        for (new, &old) in order.iter().enumerate() {
            if old >= n {
                return Err(SparseError::InvalidPermutation {
                    index: new,
                    value: old,
                    message: format!("order entry must be < length {n}"),
                });
            }
            if new_ids[old as usize] != u32::MAX {
                return Err(SparseError::InvalidPermutation {
                    index: new,
                    value: old,
                    message: "old id appears more than once in order".to_string(),
                });
            }
            new_ids[old as usize] = new as u32;
        }
        Ok(Permutation { new_ids })
    }

    /// Number of elements the permutation acts on.
    #[must_use]
    pub fn len(&self) -> usize {
        self.new_ids.len()
    }

    /// `true` when the permutation acts on zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.new_ids.is_empty()
    }

    /// New ID assigned to `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old as usize >= self.len()`.
    #[must_use]
    pub fn new_of(&self, old: u32) -> u32 {
        self.new_ids[old as usize]
    }

    /// Old ID that was assigned new ID `new` (linear in `len`; prefer
    /// [`Permutation::inverse`] for repeated queries).
    ///
    /// # Panics
    ///
    /// Panics if `new as usize >= self.len()`.
    #[must_use]
    pub fn old_of(&self, new: u32) -> u32 {
        assert!(
            (new as usize) < self.new_ids.len(),
            "new id {new} out of range"
        );
        self.new_ids
            .iter()
            .position(|&x| x == new)
            .expect("validated permutation is a bijection") as u32
    }

    /// The inverse permutation (maps new IDs back to old IDs).
    #[must_use]
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.new_ids.len()];
        for (old, &new) in self.new_ids.iter().enumerate() {
            crate::debug_validate!(
                (new as usize) < inv.len(),
                "inverse: entry {new} at {old} escapes 0..{}",
                inv.len()
            );
            inv[new as usize] = old as u32;
        }
        Permutation { new_ids: inv }
    }

    /// Composition: applies `self` first, then `then`, i.e.
    /// `result.new_of(v) == then.new_of(self.new_of(v))`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the two permutations
    /// have different lengths.
    pub fn then(&self, then: &Permutation) -> Result<Permutation, SparseError> {
        if self.len() != then.len() {
            return Err(SparseError::DimensionMismatch {
                expected: format!("permutation of length {}", self.len()),
                found: format!("permutation of length {}", then.len()),
            });
        }
        let new_ids = self
            .new_ids
            .iter()
            .map(|&mid| then.new_ids[mid as usize])
            .collect();
        Ok(Permutation { new_ids })
    }

    /// `true` if this is the identity mapping.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.new_ids
            .iter()
            .enumerate()
            .all(|(old, &new)| old as u32 == new)
    }

    /// Read-only view of the `old -> new` mapping.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.new_ids
    }

    /// Consumes the permutation, returning the `old -> new` mapping.
    #[must_use]
    pub fn into_inner(self) -> Vec<u32> {
        self.new_ids
    }

    /// Applies the permutation to a data vector indexed by old IDs,
    /// producing the vector indexed by new IDs
    /// (`out[new_of(i)] = data[i]`).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `data.len() != self.len()`.
    pub fn apply_to_vec<T: Clone + Default>(&self, data: &[T]) -> Result<Vec<T>, SparseError> {
        if data.len() != self.len() {
            return Err(SparseError::DimensionMismatch {
                expected: format!("data of length {}", self.len()),
                found: format!("data of length {}", data.len()),
            });
        }
        let mut out = vec![T::default(); data.len()];
        for (old, item) in data.iter().enumerate() {
            crate::debug_validate!(
                (self.new_ids[old] as usize) < out.len(),
                "apply_to_vec: target slot {} for old id {old} escapes 0..{}",
                self.new_ids[old],
                out.len()
            );
            out[self.new_ids[old] as usize] = item.clone();
        }
        Ok(out)
    }
}

impl Default for Permutation {
    fn default() -> Self {
        Permutation::identity(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
        for v in 0..5 {
            assert_eq!(p.new_of(v), v);
        }
    }

    #[test]
    fn from_new_ids_rejects_out_of_range() {
        let err = Permutation::from_new_ids(vec![0, 3]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidPermutation { .. }));
    }

    #[test]
    fn from_new_ids_rejects_duplicates() {
        let err = Permutation::from_new_ids(vec![1, 1, 0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidPermutation { .. }));
    }

    #[test]
    fn from_order_inverts_semantics() {
        // order says: new id 0 goes to old vertex 2, etc.
        let p = Permutation::from_order(&[2, 0, 1]).unwrap();
        assert_eq!(p.new_of(2), 0);
        assert_eq!(p.new_of(0), 1);
        assert_eq!(p.new_of(1), 2);
    }

    #[test]
    fn from_order_rejects_duplicates() {
        assert!(Permutation::from_order(&[0, 0, 1]).is_err());
        assert!(Permutation::from_order(&[0, 5, 1]).is_err());
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_new_ids(vec![3, 1, 0, 2]).unwrap();
        let inv = p.inverse();
        for old in 0..4 {
            assert_eq!(inv.new_of(p.new_of(old)), old);
        }
        assert!(p.then(&inv).unwrap().is_identity());
    }

    #[test]
    fn old_of_matches_inverse() {
        let p = Permutation::from_new_ids(vec![3, 1, 0, 2]).unwrap();
        let inv = p.inverse();
        for new in 0..4 {
            assert_eq!(p.old_of(new), inv.new_of(new));
        }
    }

    #[test]
    fn composition_order_is_self_then_then() {
        let a = Permutation::from_new_ids(vec![1, 2, 0]).unwrap();
        let b = Permutation::from_new_ids(vec![2, 0, 1]).unwrap();
        let c = a.then(&b).unwrap();
        for v in 0..3 {
            assert_eq!(c.new_of(v), b.new_of(a.new_of(v)));
        }
    }

    #[test]
    fn composition_length_mismatch_errors() {
        let a = Permutation::identity(3);
        let b = Permutation::identity(4);
        assert!(a.then(&b).is_err());
    }

    #[test]
    fn apply_to_vec_moves_data_to_new_slots() {
        let p = Permutation::from_new_ids(vec![2, 0, 1]).unwrap();
        let out = p.apply_to_vec(&[10, 20, 30]).unwrap();
        // old 0 (value 10) moves to new slot 2.
        assert_eq!(out, vec![20, 30, 10]);
    }

    #[test]
    fn apply_to_vec_length_mismatch() {
        let p = Permutation::identity(3);
        assert!(p.apply_to_vec(&[1, 2]).is_err());
    }

    #[test]
    fn empty_permutation_is_fine() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
        assert!(p.inverse().is_empty());
    }
}
