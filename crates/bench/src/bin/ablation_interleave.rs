//! **Ablation**: robustness of the conclusions to the execution model.
//!
//! All headline experiments linearize the kernel trace row-sequentially.
//! A real GPU interleaves thousands of threads; this ablation re-runs the
//! RANDOM / RABBIT / RABBIT++ comparison with a round-robin window of
//! concurrent row streams and checks that the *ordering* of techniques —
//! the thing the paper's claims rest on — is unchanged.

use commorder::prelude::*;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let subset: Vec<&str> = if harness.entries.len() <= 8 {
        vec!["mini-sbm", "mini-webhub", "mini-rmat"]
    } else {
        vec![
            "opt-block-512",
            "web-stackex",
            "soc-rmat-65k",
            "road-grid-messy",
        ]
    };

    // One grid: 3 orderings x 4 interleaving levels (the model axis).
    let stream_counts = [1u32, 4, 16, 64];
    let models: Vec<ExecutionModel> = stream_counts
        .iter()
        .map(|&streams| {
            if streams == 1 {
                ExecutionModel::Sequential
            } else {
                ExecutionModel::Interleaved { streams }
            }
        })
        .collect();
    let orderings: Vec<Box<dyn Reordering>> = vec![
        Box::new(RandomOrder::new(harness.random_seed)),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
    ];
    let result = harness
        .spec_for(&subset, orderings)
        .models(models)
        .run(&harness.engine())
        .expect("valid corpus grid");
    eprintln!("[ablation_interleave] engine: {}", result.stats.summary());

    for (mi, (name, _)) in result.matrices.iter().enumerate() {
        let mut table = Table::new(
            format!("{name}: traffic/compulsory vs concurrent row streams"),
            {
                let mut h = vec!["ordering".into()];
                h.extend(stream_counts.iter().map(|s| format!("{s} streams")));
                h
            },
        );
        for (ti, technique) in result.techniques.iter().enumerate() {
            let mut row = vec![technique.clone()];
            for si in 0..result.models.len() {
                row.push(Table::ratio(
                    result.record(mi, ti, 0, si, 0).run.traffic_ratio,
                ));
            }
            table.add_row(row);
        }
        println!("{table}");
        // The invariant the paper's claims need: RABBIT and RABBIT++ beat
        // RANDOM at every interleaving level.
        for (si, &streams) in stream_counts.iter().enumerate() {
            let ratio = |ti: usize| result.record(mi, ti, 0, si, 0).run.traffic_ratio;
            let ok = ratio(1) < ratio(0) && ratio(2) < ratio(0);
            println!(
                "  {streams} streams: RABBIT/RABBIT++ < RANDOM ? {}",
                if ok { "yes" } else { "NO (!)" },
            );
        }
        println!();
    }
}
