//! Property-based integration tests (proptest) over randomly generated
//! sparse matrices: permutation algebra, kernel/permutation commutation,
//! format round-trips, metric bounds and cache-policy dominance.

use commorder::cachesim::belady::simulate_belady;
use commorder::cachesim::trace::{collect_trace, ExecutionModel};
use commorder::prelude::*;
use commorder::reorder::quality;
use commorder::sparse::{io, kernels, ops};
use proptest::prelude::*;

/// Strategy: a random square pattern matrix with `n in 2..=40` and a
/// sprinkle of entries (possibly duplicated coordinates).
fn arb_square_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2u32..=40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..200).prop_map(move |coords| {
            let entries: Vec<(u32, u32, f32)> = coords
                .into_iter()
                .map(|(r, c)| (r, c, 1.0 + (r % 5) as f32))
                .collect();
            let coo = CooMatrix::from_entries(n, n, entries).expect("coords in range");
            CsrMatrix::try_from(coo).expect("valid conversion")
        })
    })
}

/// A seeded random permutation of `0..n` (via the RANDOM reordering on an
/// empty matrix — the library's own deterministic shuffle).
fn seeded_perm(n: u32, seed: u64) -> Permutation {
    RandomOrder::new(seed)
        .reorder(&CsrMatrix::empty(n))
        .expect("square")
}

proptest! {
    #[test]
    fn spmv_commutes_with_symmetric_permutation(m in arb_square_matrix()) {
        let n = m.n_rows();
        let perm = RandomOrder::new(42).reorder(&m).expect("square");
        let pm = m.permute_symmetric(&perm).expect("validated");
        let x: Vec<f32> = (0..n).map(|i| (i % 7) as f32 - 3.0).collect();
        let y = kernels::spmv_csr(&m, &x).expect("dims");
        let xp = perm.apply_to_vec(&x).expect("lengths match");
        let yp = kernels::spmv_csr(&pm, &xp).expect("dims");
        let y_expect = perm.apply_to_vec(&y).expect("lengths match");
        for (a, b) in yp.iter().zip(&y_expect) {
            prop_assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0));
        }
    }

    #[test]
    fn every_technique_outputs_a_bijection(m in arb_square_matrix(), seed in 0u64..100) {
        for technique in paper_suite(seed) {
            let p = technique.reorder(&m).expect("square input");
            prop_assert_eq!(p.len(), m.n_rows() as usize);
            // from_new_ids validated it; double-check the inverse law.
            let inv = p.inverse();
            for v in 0..m.n_rows() {
                prop_assert_eq!(inv.new_of(p.new_of(v)), v);
            }
        }
    }

    #[test]
    fn permutation_composition_is_associative(
        n in 1u32..30,
        s1 in 0u64..1000,
        s2 in 0u64..1000,
        s3 in 0u64..1000,
    ) {
        let (a, b, c) = (seeded_perm(n, s1), seeded_perm(n, s2), seeded_perm(n, s3));
        let left = a.then(&b).expect("same length").then(&c).expect("same length");
        let right = a.then(&b.then(&c).expect("same length")).expect("same length");
        prop_assert_eq!(left, right);
    }

    #[test]
    fn matrix_market_round_trip(m in arb_square_matrix()) {
        let mut buf = Vec::new();
        io::write_matrix_market(&mut buf, &m).expect("in-memory write");
        let back = CsrMatrix::try_from(
            io::read_matrix_market(buf.as_slice()).expect("own output parses"),
        ).expect("valid");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn transpose_is_an_involution(m in arb_square_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        prop_assert_eq!(m.transpose().nnz(), m.nnz());
    }

    #[test]
    fn symmetrize_produces_symmetric_superset(m in arb_square_matrix()) {
        let s = ops::symmetrize(&m).expect("square");
        prop_assert!(s.is_symmetric());
        prop_assert!(s.nnz() >= m.nnz());
        prop_assert!(s.nnz() <= 2 * m.nnz());
    }

    #[test]
    fn insularity_and_modularity_bounds(m in arb_square_matrix()) {
        let r = Rabbit::new().run(&m).expect("square");
        let ins = quality::insularity(&m, &r.assignment).expect("validated");
        prop_assert!((0.0..=1.0).contains(&ins));
        let sym = ops::symmetrize(&m).expect("square");
        let q = quality::modularity(&sym, &r.assignment).expect("validated");
        prop_assert!((-0.5..=1.0).contains(&q), "modularity {}", q);
        // Insular fraction is consistent with the node mask.
        let frac = quality::insular_fraction(&m, &r.assignment).expect("validated");
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn lru_dominated_by_belady_on_kernel_traces(m in arb_square_matrix()) {
        let config = CacheConfig { capacity_bytes: 1024, line_bytes: 32, associativity: 4 };
        let trace = collect_trace(&m, Kernel::SpmvCsr, ExecutionModel::Sequential);
        let mut lru = LruCache::new(config);
        for &acc in &trace {
            lru.access(acc);
        }
        let l = lru.finish();
        let o = simulate_belady(config, &trace);
        prop_assert!(o.misses() <= l.misses());
        prop_assert!(l.compulsory_misses <= l.misses());
        prop_assert_eq!(o.compulsory_misses, l.compulsory_misses);
        prop_assert_eq!(o.accesses, trace.len() as u64);
    }

    #[test]
    fn traffic_is_at_least_compulsory_reads(m in arb_square_matrix()) {
        // Fill misses alone must cover every distinct read line once.
        let pipeline = Pipeline::new(GpuSpec::test_scale());
        let run = pipeline.simulate(&m);
        prop_assert!(run.stats.fills >= run.stats.compulsory_misses);
        prop_assert!(run.time_seconds >= 0.0);
    }

    #[test]
    fn interleaved_and_sequential_have_same_footprint(
        m in arb_square_matrix(),
        streams in 1u32..8,
    ) {
        // Compulsory misses are schedule independent.
        let config = CacheConfig::test_scale();
        let count = |model| {
            let trace = collect_trace(&m, Kernel::SpmvCsr, model);
            let mut cache = LruCache::new(config);
            for &acc in &trace {
                cache.access(acc);
            }
            (trace.len(), cache.finish().compulsory_misses)
        };
        let (len_a, comp_a) = count(ExecutionModel::Sequential);
        let (len_b, comp_b) = count(ExecutionModel::Interleaved { streams });
        prop_assert_eq!(len_a, len_b);
        prop_assert_eq!(comp_a, comp_b);
    }
}
