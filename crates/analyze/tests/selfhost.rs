//! Self-hosting test: the analyzer runs over its own workspace — all
//! ten crates, including this one — and must report nothing.
//!
//! This is the same invocation `cargo run -p xtask -- lint` and CI
//! perform; keeping it as a test means `cargo test` alone catches a
//! regression that introduces a finding (or an allowlist entry that
//! stopped matching anything).

use std::path::PathBuf;

use commorder_analyze::{analyze_workspace, AnalyzerConfig};

#[test]
fn workspace_analyzes_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        analyze_workspace(&root, &AnalyzerConfig::default()).expect("workspace must be readable");
    assert!(
        report.findings.is_empty(),
        "self-host findings:\n{}",
        report.render_text()
    );
}

#[test]
fn selfhost_callgraph_meets_resolution_bar() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        analyze_workspace(&root, &AnalyzerConfig::default()).expect("workspace must be readable");
    let g = report
        .callgraph
        .as_ref()
        .expect("self-host emits a call graph");

    // Stats invariants the CHK1102 validator also enforces.
    assert_eq!(
        g.resolved + g.external,
        g.call_sites,
        "every call site is either resolved or external"
    );
    assert!(
        g.ambiguous <= g.resolved,
        "ambiguous is a subset of resolved"
    );

    // Acceptance bar: ≥96% of resolved intra-workspace call sites bind
    // unambiguously. Receiver typing (fields, params, lets, traits)
    // carries this; a regression in the resolver shows up here first.
    // The bar rose from 0.9 when type-qualified resolution landed —
    // the effect-inference pass leans on these edges, so precision
    // regressions now corrupt effect masks too.
    assert!(g.resolved > 0, "self-host must resolve some call sites");
    let precision = f64::from(g.resolved - g.ambiguous) / f64::from(g.resolved);
    assert!(
        precision >= 0.96,
        "call-graph resolution precision {precision:.3} fell below 0.96 \
         ({} ambiguous of {} resolved)",
        g.ambiguous,
        g.resolved
    );

    // The three seed sets must find their entry points: an empty set
    // means a pass silently checks nothing.
    assert!(!g.seeds_determinism.is_empty(), "determinism seeds missing");
    assert!(!g.seeds_hotpath.is_empty(), "hot-path seeds missing");
    assert!(!g.seeds_worker.is_empty(), "worker seeds missing");
}

#[test]
fn selfhost_effects_are_inferred_and_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        analyze_workspace(&root, &AnalyzerConfig::default()).expect("workspace must be readable");

    // The effect pass must actually run over the workspace and find
    // effectful functions (an empty table means the scanner broke).
    let fx = report.effects.as_ref().expect("self-host emits effects");
    assert!(fx.rows.len() > 50, "suspiciously few effectful functions");
    assert!(fx.local_bits > 0, "no local effect sources found");
    assert!(
        fx.propagated_bits > 0,
        "no propagation happened: the fixed-point pass is inert"
    );

    // …and the workspace itself must carry zero interprocedural
    // effect findings, with no allowlist escape hatch: the XT10xx
    // rules are scoped so the engine's sanctioned surfaces are
    // excluded structurally, not suppressed entry by entry.
    let effect_findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.code.starts_with("XT10"))
        .collect();
    assert!(
        effect_findings.is_empty(),
        "self-host effect findings: {effect_findings:?}"
    );
}

#[test]
fn workspace_discovers_all_crates() {
    // The layer table and the tree must agree: every directory under
    // crates/ is declared, so XT0404 can only fire on genuinely new
    // crates.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = AnalyzerConfig::default();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(crates_dir).expect("crates/ must exist") {
        let entry = entry.expect("readable dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            config.layers.contains_key(&name),
            "crate {name:?} is missing from AnalyzerConfig::default().layers"
        );
    }
}
