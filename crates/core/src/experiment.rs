//! The experiment grid API: declare *what* to measure
//! ([`ExperimentSpec`]) and let the engine decide *how* to schedule it.
//!
//! Every figure and table of the paper is a grid of
//! (matrix × technique × kernel × model × policy) evaluations. An
//! [`ExperimentSpec`] names that grid once; [`ExperimentSpec::run`] fans
//! it across a [`commorder_exec::Engine`]'s workers — one job per
//! (matrix, technique) pair, so each permutation is computed exactly
//! once and reused by every kernel/model/policy cell — and returns an
//! [`ExperimentResult`] whose record order is the deterministic nested
//! grid order regardless of thread count.
//!
//! Determinism guarantee: all simulated quantities (traffic, counters,
//! ratios, permutations) are pure functions of the spec, so
//! [`ExperimentResult::render_json`] is byte-identical for any worker
//! count. Only the scheduling observability (per-job `reorder_seconds` /
//! `sim_seconds`, worker IDs, [`EngineStats`]) varies between machines
//! and runs, and it is deliberately excluded from the JSON report.
//!
//! # Example
//!
//! ```
//! use commorder::prelude::*;
//!
//! # fn main() -> Result<(), commorder::sparse::SparseError> {
//! let matrix = commorder::synth::generators::PlantedPartition::uniform(512, 8, 6.0, 0.05)
//!     .generate(7)?;
//! let spec = ExperimentSpec::new(GpuSpec::test_scale())
//!     .matrix("planted", matrix)
//!     .technique(Box::new(Original))
//!     .technique(Box::new(Rabbit::new()));
//! let result = spec.run(&Engine::serial())?;
//! assert_eq!(result.records.len(), 2); // 1 matrix x 2 techniques x 1 kernel
//! let rabbit = result.run_for(0, 1);
//! assert!(rabbit.run.traffic_ratio >= 0.99);
//! # Ok(())
//! # }
//! ```

use std::time::Instant;

use commorder_cachesim::trace::ExecutionModel;
use commorder_exec::{Engine, EngineStats};
use commorder_gpumodel::GpuSpec;
use commorder_obs as obs;
use commorder_reorder::{ReorderContext, Reordering};
use commorder_sparse::traffic::Kernel;
use commorder_sparse::{CsrMatrix, Permutation, SparseError};

use crate::pipeline::{KernelRun, Pipeline, ReplacementPolicy};

/// A matrix with the labels the report layer prints.
#[derive(Debug, Clone)]
pub struct NamedMatrix {
    /// Display name (corpus entry name, file stem, …).
    pub name: String,
    /// Group label (corpus domain, dataset family); free-form.
    pub group: String,
    /// The matrix in its published (ORIGINAL) order.
    pub matrix: CsrMatrix,
}

/// Declarative description of one experiment grid.
///
/// Defaults: kernels = `[SpMV-CSR]`, models = `[Sequential]`, policies =
/// `[LRU]` — the configuration behind Figs. 2–7. Matrices and techniques
/// start empty and must be supplied.
pub struct ExperimentSpec {
    /// Simulated platform for every cell.
    pub gpu: GpuSpec,
    /// The matrices (rows of the grid).
    pub matrices: Vec<NamedMatrix>,
    /// Reordering techniques to evaluate on every matrix.
    pub techniques: Vec<Box<dyn Reordering>>,
    /// Kernels to simulate on every reordered matrix.
    pub kernels: Vec<Kernel>,
    /// Trace linearization models.
    pub models: Vec<ExecutionModel>,
    /// Replacement policies.
    pub policies: Vec<ReplacementPolicy>,
    /// Seed handed to techniques through [`ReorderContext`].
    pub reorder_seed: u64,
}

impl ExperimentSpec {
    /// An empty spec on `gpu` with the Fig. 2–7 kernel/model/policy
    /// defaults.
    #[must_use]
    pub fn new(gpu: GpuSpec) -> Self {
        ExperimentSpec {
            gpu,
            matrices: Vec::new(),
            techniques: Vec::new(),
            kernels: vec![Kernel::SpmvCsr],
            models: vec![ExecutionModel::Sequential],
            policies: vec![ReplacementPolicy::Lru],
            reorder_seed: 0xC0DE,
        }
    }

    /// Replaces the seed handed to techniques through [`ReorderContext`]
    /// (default `0xC0DE`).
    #[must_use]
    pub fn reorder_seed(mut self, seed: u64) -> Self {
        self.reorder_seed = seed;
        self
    }

    /// Adds a matrix under `name` (empty group label).
    #[must_use]
    pub fn matrix(self, name: impl Into<String>, matrix: CsrMatrix) -> Self {
        self.matrix_in_group(name, "", matrix)
    }

    /// Adds a matrix with a group/domain label.
    #[must_use]
    pub fn matrix_in_group(
        mut self,
        name: impl Into<String>,
        group: impl Into<String>,
        matrix: CsrMatrix,
    ) -> Self {
        self.matrices.push(NamedMatrix {
            name: name.into(),
            group: group.into(),
            matrix,
        });
        self
    }

    /// Adds one reordering technique.
    #[must_use]
    pub fn technique(mut self, technique: Box<dyn Reordering>) -> Self {
        self.techniques.push(technique);
        self
    }

    /// Adds a batch of techniques (e.g. `paper_suite(seed)`).
    #[must_use]
    pub fn techniques(mut self, techniques: Vec<Box<dyn Reordering>>) -> Self {
        self.techniques.extend(techniques);
        self
    }

    /// Replaces the kernel axis (default `[SpMV-CSR]`).
    #[must_use]
    pub fn kernels(mut self, kernels: Vec<Kernel>) -> Self {
        self.kernels = kernels;
        self
    }

    /// Replaces the execution-model axis (default `[Sequential]`).
    #[must_use]
    pub fn models(mut self, models: Vec<ExecutionModel>) -> Self {
        self.models = models;
        self
    }

    /// Replaces the replacement-policy axis (default `[LRU]`).
    #[must_use]
    pub fn policies(mut self, policies: Vec<ReplacementPolicy>) -> Self {
        self.policies = policies;
        self
    }

    /// Total number of grid cells (`records.len()` after a run).
    #[must_use]
    pub fn grid_len(&self) -> usize {
        self.matrices.len()
            * self.techniques.len()
            * self.kernels.len()
            * self.models.len()
            * self.policies.len()
    }

    /// Checks the grid is well-formed without running it.
    ///
    /// # Errors
    ///
    /// [`SparseError::InvalidConfig`] when an axis is empty or any
    /// (kernel, model, policy) cell fails [`Pipeline::builder`]
    /// validation.
    pub fn validate(&self) -> Result<(), SparseError> {
        let empty = |what: &str| SparseError::InvalidConfig {
            what: what.to_string(),
            message: "axis must not be empty".to_string(),
        };
        if self.matrices.is_empty() {
            return Err(empty("matrices"));
        }
        if self.techniques.is_empty() {
            return Err(empty("techniques"));
        }
        if self.kernels.is_empty() {
            return Err(empty("kernels"));
        }
        if self.models.is_empty() {
            return Err(empty("models"));
        }
        if self.policies.is_empty() {
            return Err(empty("policies"));
        }
        for pipeline in self.pipelines()? {
            // Building every cell validates every (kernel, model, policy)
            // combination against the platform.
            let _ = pipeline;
        }
        Ok(())
    }

    /// One validated pipeline per (kernel, model, policy) cell, in
    /// deterministic nested order.
    fn pipelines(&self) -> Result<Vec<Pipeline>, SparseError> {
        let mut pipelines =
            Vec::with_capacity(self.kernels.len() * self.models.len() * self.policies.len());
        for &kernel in &self.kernels {
            for &model in &self.models {
                for &policy in &self.policies {
                    pipelines.push(
                        Pipeline::builder(self.gpu)
                            .kernel(kernel)
                            .model(model)
                            .policy(policy)
                            .build()?,
                    );
                }
            }
        }
        Ok(pipelines)
    }

    /// Runs the whole grid on `engine` — one job per (matrix, technique)
    /// pair, each computing the permutation once and simulating every
    /// kernel/model/policy cell on the reordered matrix.
    ///
    /// # Errors
    ///
    /// Validation errors ([`ExperimentSpec::validate`]) and any
    /// reordering/permutation error from a grid cell (e.g. a non-square
    /// matrix).
    pub fn run(&self, engine: &Engine) -> Result<ExperimentResult, SparseError> {
        self.validate()?;
        let pipelines = self.pipelines()?;

        struct JobValue {
            permutation: Permutation,
            reorder_seconds: f64,
            cells: Vec<(KernelRun, f64)>,
        }

        let mut jobs = Vec::with_capacity(self.matrices.len() * self.techniques.len());
        for mi in 0..self.matrices.len() {
            for ti in 0..self.techniques.len() {
                jobs.push((mi, ti));
            }
        }
        let (outputs, stats) =
            engine.run_with_stats(jobs, |_, (mi, ti)| -> Result<JobValue, SparseError> {
                let matrix = &self.matrices[mi].matrix;
                let technique = self.techniques[ti].as_ref();
                let _job_span = obs::span!(
                    "grid.job",
                    "{}/{}",
                    self.matrices[mi].name,
                    technique.name()
                );
                // Timed on the worker, after dequeue: queue wait is in
                // JobTiming.queue_seconds, never in reorder_seconds.
                let started = Instant::now();
                let permutation = {
                    let _span = obs::span!("grid.reorder", "{}", technique.name());
                    // Techniques with parallel phases fan out on the same
                    // engine; the permutation is thread-count-invariant.
                    technique
                        .reorder_with(matrix, &ReorderContext::new(engine, self.reorder_seed))?
                };
                let reorder_seconds = started.elapsed().as_secs_f64();
                let reordered = {
                    let _span = obs::span!("grid.permute");
                    matrix.permute_symmetric(&permutation)?
                };
                let mut cells = Vec::with_capacity(pipelines.len());
                for pipeline in &pipelines {
                    let sim_started = Instant::now();
                    let run = {
                        let _span = obs::span!(
                            "grid.cell",
                            "{}/{}",
                            self.matrices[mi].name,
                            technique.name()
                        );
                        pipeline.simulate(&reordered)
                    };
                    obs::counter!("grid.cells", 1);
                    cells.push((run, sim_started.elapsed().as_secs_f64()));
                }
                Ok(JobValue {
                    permutation,
                    reorder_seconds,
                    cells,
                })
            });

        let mut records = Vec::with_capacity(self.grid_len());
        let mut permutations: Vec<Vec<Permutation>> = Vec::with_capacity(self.matrices.len());
        let n_techniques = self.techniques.len();
        let mut job_values = Vec::with_capacity(outputs.len());
        for output in outputs {
            job_values.push((output.value?, output.timing));
        }
        for (mi, _) in self.matrices.iter().enumerate() {
            let mut row = Vec::with_capacity(n_techniques);
            for ti in 0..n_techniques {
                let (value, timing) = &job_values[mi * n_techniques + ti];
                row.push(value.permutation.clone());
                let mut cell = 0usize;
                for (ki, _) in self.kernels.iter().enumerate() {
                    for (moi, _) in self.models.iter().enumerate() {
                        for (pi, _) in self.policies.iter().enumerate() {
                            let (run, sim_seconds) = &value.cells[cell];
                            records.push(RunRecord {
                                matrix: mi,
                                technique: ti,
                                kernel: ki,
                                model: moi,
                                policy: pi,
                                run: run.clone(),
                                reorder_seconds: value.reorder_seconds,
                                sim_seconds: *sim_seconds,
                                queue_seconds: timing.queue_seconds,
                                worker: timing.worker,
                            });
                            cell += 1;
                        }
                    }
                }
            }
            permutations.push(row);
        }

        Ok(ExperimentResult {
            gpu_name: self.gpu.name.to_string(),
            matrices: self
                .matrices
                .iter()
                .map(|m| (m.name.clone(), m.group.clone()))
                .collect(),
            techniques: self
                .techniques
                .iter()
                .map(|t| t.name().to_string())
                .collect(),
            kernels: self.kernels.clone(),
            models: self.models.clone(),
            policies: self.policies.clone(),
            records,
            permutations,
            stats,
        })
    }
}

/// One grid cell's measurements. Axis fields are indices into the
/// corresponding [`ExperimentResult`] axis vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Matrix axis index.
    pub matrix: usize,
    /// Technique axis index.
    pub technique: usize,
    /// Kernel axis index.
    pub kernel: usize,
    /// Execution-model axis index.
    pub model: usize,
    /// Replacement-policy axis index.
    pub policy: usize,
    /// Simulated traffic/time metrics.
    pub run: KernelRun,
    /// Wall-clock seconds the reordering took on its worker (§VI-C),
    /// measured inside the job after dequeue — queue wait excluded.
    /// Shared by every cell of the same (matrix, technique) job.
    pub reorder_seconds: f64,
    /// Wall-clock seconds this cell's simulation took on its worker.
    pub sim_seconds: f64,
    /// Seconds the producing job waited in the engine queue.
    pub queue_seconds: f64,
    /// Engine worker that produced this record.
    pub worker: usize,
}

/// The result table of one grid run, in deterministic nested order
/// (matrix → technique → kernel → model → policy).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Platform name the grid ran on.
    pub gpu_name: String,
    /// Matrix axis: `(name, group)` per matrix.
    pub matrices: Vec<(String, String)>,
    /// Technique axis: display names.
    pub techniques: Vec<String>,
    /// Kernel axis.
    pub kernels: Vec<Kernel>,
    /// Execution-model axis.
    pub models: Vec<ExecutionModel>,
    /// Replacement-policy axis.
    pub policies: Vec<ReplacementPolicy>,
    /// All grid cells (length = product of the axis lengths).
    pub records: Vec<RunRecord>,
    /// `permutations[matrix][technique]` — each technique's output,
    /// available for follow-up analyses (locality scores, spy plots).
    pub permutations: Vec<Vec<Permutation>>,
    /// Engine counters for the run (threads, steals, utilization).
    pub stats: EngineStats,
}

impl ExperimentResult {
    /// The record at the given axis indices.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range for its axis.
    #[must_use]
    pub fn record(
        &self,
        matrix: usize,
        technique: usize,
        kernel: usize,
        model: usize,
        policy: usize,
    ) -> &RunRecord {
        let (nt, nk, nm, np) = (
            self.techniques.len(),
            self.kernels.len(),
            self.models.len(),
            self.policies.len(),
        );
        assert!(
            matrix < self.matrices.len()
                && technique < nt
                && kernel < nk
                && model < nm
                && policy < np,
            "axis index out of range"
        );
        &self.records[(((matrix * nt + technique) * nk + kernel) * nm + model) * np + policy]
    }

    /// The record for (matrix, technique) at the first kernel, model and
    /// policy — the whole grid for single-kernel experiments.
    #[must_use]
    pub fn run_for(&self, matrix: usize, technique: usize) -> &RunRecord {
        self.record(matrix, technique, 0, 0, 0)
    }

    /// Per-matrix traffic ratios for one technique (kernel/model/policy
    /// 0), in matrix order — a figure column.
    #[must_use]
    pub fn traffic_ratios(&self, technique: usize) -> Vec<f64> {
        (0..self.matrices.len())
            .map(|mi| self.run_for(mi, technique).run.traffic_ratio)
            .collect()
    }

    /// Per-matrix normalized run times for one technique
    /// (kernel/model/policy 0), in matrix order.
    #[must_use]
    pub fn time_ratios(&self, technique: usize) -> Vec<f64> {
        (0..self.matrices.len())
            .map(|mi| self.run_for(mi, technique).run.time_ratio)
            .collect()
    }

    /// Stable display name for an execution model.
    #[must_use]
    pub fn model_name(model: ExecutionModel) -> String {
        match model {
            ExecutionModel::Sequential => "sequential".to_string(),
            ExecutionModel::Interleaved { streams } => format!("interleaved-{streams}"),
        }
    }

    /// Renders the machine-independent portion of the result as JSON.
    ///
    /// The output is byte-identical for any engine thread count: it
    /// contains only deterministic simulation quantities, never
    /// wall-clock timings, worker IDs or engine counters. Keys are
    /// emitted in a fixed order.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.records.len() * 200);
        out.push_str("{\n");
        out.push_str(&format!("  \"gpu\": {},\n", json_string(&self.gpu_name)));
        out.push_str(&format!(
            "  \"matrices\": [{}],\n",
            self.matrices
                .iter()
                .map(|(name, _)| json_string(name))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"techniques\": [{}],\n",
            self.techniques
                .iter()
                .map(|t| json_string(t))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"kernels\": [{}],\n",
            self.kernels
                .iter()
                .map(|k| json_string(&k.name()))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"models\": [{}],\n",
            self.models
                .iter()
                .map(|&m| json_string(&Self::model_name(m)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"policies\": [{}],\n",
            self.policies
                .iter()
                .map(|p| json_string(p.name()))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"matrix\": {}, \"technique\": {}, \"kernel\": {}, \"model\": {}, \
                 \"policy\": {}, \"dram_bytes\": {}, \"compulsory_bytes\": {}, \
                 \"traffic_ratio\": {}, \"time_ratio\": {}, \"hits\": {}, \"misses\": {}, \
                 \"dead_lines\": {}, \"writebacks\": {}}}{}\n",
                json_string(&self.matrices[r.matrix].0),
                json_string(&self.techniques[r.technique]),
                json_string(&self.kernels[r.kernel].name()),
                json_string(&Self::model_name(self.models[r.model])),
                json_string(self.policies[r.policy].name()),
                r.run.dram_bytes,
                r.run.compulsory_bytes,
                json_f64(r.run.traffic_ratio),
                json_f64(r.run.time_ratio),
                r.run.stats.hits,
                r.run.stats.misses(),
                r.run.stats.dead_lines,
                r.run.stats.writebacks,
                if i + 1 < self.records.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON string literal with minimal escaping (the workspace emits only
/// ASCII identifiers, but be correct anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic JSON number: Rust's shortest-round-trip `Display` for
/// finite values, `null` otherwise (JSON has no NaN/inf).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commorder_reorder::{Original, Rabbit, RandomOrder};
    use commorder_synth::generators::PlantedPartition;

    fn small_matrix(seed: u64) -> CsrMatrix {
        PlantedPartition::uniform(512, 8, 6.0, 0.05)
            .generate(seed)
            .expect("valid generator")
    }

    fn two_by_two_spec() -> ExperimentSpec {
        ExperimentSpec::new(GpuSpec::test_scale())
            .matrix("a", small_matrix(1))
            .matrix_in_group("b", "synthetic", small_matrix(2))
            .technique(Box::new(Original))
            .technique(Box::new(Rabbit::new()))
    }

    #[test]
    fn grid_shape_and_order() {
        let spec = two_by_two_spec().kernels(vec![Kernel::SpmvCsr, Kernel::SpmvCoo]);
        assert_eq!(spec.grid_len(), 8);
        let result = spec.run(&Engine::serial()).unwrap();
        assert_eq!(result.records.len(), 8);
        // Nested order: matrix-major, then technique, then kernel.
        let r = result.record(1, 0, 1, 0, 0);
        assert_eq!(r.matrix, 1);
        assert_eq!(r.technique, 0);
        assert_eq!(r.kernel, 1);
        assert_eq!(result.matrices[1].1, "synthetic");
        assert_eq!(result.permutations.len(), 2);
        assert_eq!(result.permutations[0].len(), 2);
    }

    #[test]
    fn empty_axes_are_rejected() {
        let no_matrices = ExperimentSpec::new(GpuSpec::test_scale()).technique(Box::new(Original));
        assert!(matches!(
            no_matrices.validate().unwrap_err(),
            SparseError::InvalidConfig { ref what, .. } if what == "matrices"
        ));
        let no_techniques = ExperimentSpec::new(GpuSpec::test_scale()).matrix("m", small_matrix(3));
        assert!(no_techniques.validate().is_err());
        let bad_kernel = two_by_two_spec().kernels(vec![Kernel::SpmmCsr { k: 0 }]);
        assert!(bad_kernel.validate().is_err());
    }

    #[test]
    fn timing_is_recorded_per_job() {
        let result = two_by_two_spec().run(&Engine::new(2)).unwrap();
        for r in &result.records {
            assert!(r.reorder_seconds >= 0.0);
            assert!(r.sim_seconds >= 0.0);
            assert!(r.queue_seconds >= 0.0);
        }
        assert_eq!(result.stats.jobs, 4);
    }

    #[test]
    fn json_is_identical_across_thread_counts() {
        let reference = two_by_two_spec()
            .run(&Engine::serial())
            .unwrap()
            .render_json();
        for threads in [2, 4] {
            let json = two_by_two_spec()
                .run(&Engine::new(threads))
                .unwrap()
                .render_json();
            assert_eq!(json, reference, "threads = {threads}");
        }
        assert!(reference.contains("\"traffic_ratio\""));
        assert!(reference.contains("RABBIT"));
        // Machine-dependent data must not leak into the report.
        assert!(!reference.contains("seconds"));
        assert!(!reference.contains("worker"));
    }

    #[test]
    fn column_accessors_match_records() {
        let result = two_by_two_spec().run(&Engine::serial()).unwrap();
        let ratios = result.traffic_ratios(1);
        assert_eq!(ratios.len(), 2);
        assert_eq!(ratios[0], result.run_for(0, 1).run.traffic_ratio);
        let times = result.time_ratios(0);
        assert_eq!(times[1], result.run_for(1, 0).run.time_ratio);
    }

    #[test]
    fn random_orders_differ_per_seed_but_grid_is_stable() {
        let spec = ExperimentSpec::new(GpuSpec::test_scale())
            .matrix("m", small_matrix(4))
            .technique(Box::new(RandomOrder::new(1)))
            .technique(Box::new(RandomOrder::new(2)));
        let result = spec.run(&Engine::new(2)).unwrap();
        assert_ne!(result.permutations[0][0], result.permutations[0][1]);
    }

    #[test]
    fn spgemm_kernels_thread_through_the_grid() {
        let spec =
            two_by_two_spec().kernels(vec![Kernel::SpGemmGustavson, Kernel::SpGemmClusterWise]);
        assert_eq!(spec.grid_len(), 8);
        let result = spec.run(&Engine::serial()).unwrap();
        assert_eq!(result.records.len(), 8);
        let json = result.render_json();
        assert!(json.contains("\"SpGEMM\""), "kernel axis rendered");
        assert!(json.contains("\"SpGEMM-CW\""), "cluster-wise rendered");
        // The grid re-runs identically under a parallel engine (the
        // cluster-wise community detection is a serial pass per job).
        let parallel = two_by_two_spec()
            .kernels(vec![Kernel::SpGemmGustavson, Kernel::SpGemmClusterWise])
            .run(&Engine::new(4))
            .unwrap()
            .render_json();
        assert_eq!(json, parallel);
    }

    #[test]
    fn json_helpers() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
