//! The stable `XT` diagnostic-code table.
//!
//! `XT` codes mirror the runtime checker's `CHK` codes: grouped by
//! hundreds per analysis pass and **append only** — a published code
//! never changes meaning, so golden fixtures and downstream tooling can
//! match on them forever.
//!
//! | Range  | Pass                                              |
//! |--------|---------------------------------------------------|
//! | XT00xx | Token-stream call-site rules                      |
//! | XT01xx | Crate-header pragmas                              |
//! | XT02xx | Manifest opt-ins                                  |
//! | XT03xx | API documentation                                 |
//! | XT04xx | Layering and dependency-cycle analysis            |
//! | XT05xx | Determinism lint (report-affecting modules)       |
//! | XT06xx | Static telemetry-name cross-check                 |
//! | XT07xx | Allowlist hygiene                                 |
//! | XT08xx | Hot-path allocation lint (call-graph reachable)   |
//! | XT09xx | Concurrency-safety audit (engine crates)          |
//! | XT10xx | Interprocedural effect inference                  |

/// One row of the code table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code, e.g. `XT0002`.
    pub code: &'static str,
    /// One-line description of what the code means.
    pub title: &'static str,
}

/// `unsafe` token in source (defence in depth on top of
/// `forbid(unsafe_code)`).
pub const UNSAFE_TOKEN: &str = "XT0001";
/// `.unwrap()` in non-test library code.
pub const UNWRAP_CALL: &str = "XT0002";
/// `.expect(` in non-test library code (allowed when the proof is in
/// the message and the file carries an allowlist justification).
pub const EXPECT_CALL: &str = "XT0003";
/// `panic!` in non-test library code.
pub const PANIC_CALL: &str = "XT0004";
/// `todo!` / `unimplemented!` anywhere.
pub const TODO_CALL: &str = "XT0005";
/// `println!` / `eprintln!` in quiet library crates.
pub const PRINT_CALL: &str = "XT0006";
/// `collect_trace(` / `Vec<Access>` outside the documented shims.
pub const TRACE_BUFFER: &str = "XT0007";

/// Library `lib.rs` missing `#![forbid(unsafe_code)]`.
pub const MISSING_FORBID_UNSAFE: &str = "XT0101";
/// Library `lib.rs` missing the `missing_docs` lint.
pub const MISSING_DOCS_LINT: &str = "XT0102";

/// Crate manifest missing the `[lints] workspace = true` opt-in.
pub const MANIFEST_LINTS: &str = "XT0201";
/// Workspace manifest missing the `[workspace.lints]` deny-list.
pub const WORKSPACE_LINTS: &str = "XT0202";

/// `pub` item without a doc comment.
pub const UNDOCUMENTED_PUB: &str = "XT0301";

/// Crate dependency cycle (Tarjan strongly connected component).
pub const CRATE_CYCLE: &str = "XT0401";
/// Layering back-edge: a crate uses a crate at the same or a higher
/// declared layer.
pub const LAYER_VIOLATION: &str = "XT0402";
/// Module dependency cycle within one crate.
pub const MODULE_CYCLE: &str = "XT0403";
/// Workspace crate missing from the declared layering table.
pub const UNDECLARED_CRATE: &str = "XT0404";

/// `HashMap` / `HashSet` in a report-affecting module (iteration order
/// is nondeterministic).
pub const HASH_CONTAINER: &str = "XT0501";
/// `Instant` / `SystemTime` in a report-affecting module.
pub const CLOCK_READ: &str = "XT0502";
/// Environment or thread-count read in a report-affecting module.
pub const ENV_READ: &str = "XT0503";
/// Float accumulation-order hazard in a report-affecting module.
pub const FLOAT_ACCUMULATION: &str = "XT0504";

/// Telemetry name at a call site is not declared in the registry.
pub const TELEM_UNDECLARED: &str = "XT0601";
/// Registry name never emitted at any call site (orphaned).
pub const TELEM_ORPHANED: &str = "XT0602";
/// Telemetry macro name argument is not a string literal, so the name
/// cannot be statically verified.
pub const TELEM_NONLITERAL: &str = "XT0603";
/// Telemetry macro kind disagrees with the declared metric kind.
pub const TELEM_KIND: &str = "XT0604";
/// Histogram registry row declares no measurement unit, so its
/// percentile exports would be meaningless numbers.
pub const TELEM_UNITLESS: &str = "XT0605";

/// Allowlist entry is malformed or missing its justification.
pub const ALLOWLIST_MALFORMED: &str = "XT0701";
/// Allowlist entry suppressed nothing (stale exception).
pub const ALLOWLIST_UNUSED: &str = "XT0702";

/// Container construction (`Vec::new`, `with_capacity`, `Box::new`,
/// `vec!`, …) inside a loop body of a function reachable from a
/// hot-path seed.
pub const HOT_ALLOC: &str = "XT0801";
/// Iterator materialization (`.collect()`, `.to_vec()`) inside a loop
/// body of a hot-path-reachable function.
pub const HOT_COLLECT: &str = "XT0802";
/// Duplication (`.clone()`, `.to_owned()`, `.to_string()`) inside a
/// loop body of a hot-path-reachable function.
pub const HOT_CLONE: &str = "XT0803";
/// `format!` inside a loop body of a hot-path-reachable function.
pub const HOT_FORMAT: &str = "XT0804";

/// `unsafe` token in an engine crate without an adjacent `// SAFETY:`
/// comment.
pub const UNSAFE_NO_SAFETY_COMMENT: &str = "XT0901";
/// Lock acquired while a let-bound guard from an earlier acquisition
/// is still in scope (lexical lock-order hazard).
pub const NESTED_LOCK: &str = "XT0902";
/// `Ordering::Relaxed` in non-test engine-crate code (must be audited
/// via the allowlist).
pub const RELAXED_ORDERING: &str = "XT0903";
/// `.unwrap()` / `.expect()` in a function reachable from a worker
/// closure (a panicking worker breaks the engine contract).
pub const WORKER_PANIC_CALL: &str = "XT0904";
/// Slice/array indexing in a function reachable from a worker closure
/// (out-of-bounds panics propagate into the engine).
pub const WORKER_INDEXING: &str = "XT0905";

/// Inferred nondeterministic effect (hash iteration / thread identity)
/// in a function whose effects reach a report renderer or `Pipeline`
/// method.
pub const NONDET_EFFECT: &str = "XT1001";
/// Call inside a loop of a per-access function whose callee carries an
/// inferred allocation effect.
pub const HOT_ALLOC_EFFECT: &str = "XT1002";
/// Inferred panic effect (explicit panic-family macro) in a function
/// reachable from a worker closure.
pub const WORKER_PANIC_EFFECT: &str = "XT1003";
/// Inferred lock effect outside the engine crates in a function
/// reachable from a worker closure.
pub const WORKER_LOCK_EFFECT: &str = "XT1004";
/// I/O effect entering a declared-pure crate (local I/O source or a
/// cross-crate call to an I/O-effectful function).
pub const PURE_CRATE_IO_EFFECT: &str = "XT1005";

/// Every published code with its meaning, in code order.
pub const CODE_TABLE: &[CodeInfo] = &[
    CodeInfo {
        code: UNSAFE_TOKEN,
        title: "unsafe code is forbidden across the workspace",
    },
    CodeInfo {
        code: UNWRAP_CALL,
        title: "unwrap() in non-test library code",
    },
    CodeInfo {
        code: EXPECT_CALL,
        title: "expect() in non-test library code",
    },
    CodeInfo {
        code: PANIC_CALL,
        title: "panic! in non-test library code",
    },
    CodeInfo {
        code: TODO_CALL,
        title: "todo!/unimplemented! must not ship",
    },
    CodeInfo {
        code: PRINT_CALL,
        title: "println!/eprintln! in a quiet library crate",
    },
    CodeInfo {
        code: TRACE_BUFFER,
        title: "materialized access trace outside the documented shims",
    },
    CodeInfo {
        code: MISSING_FORBID_UNSAFE,
        title: "library crate missing #![forbid(unsafe_code)]",
    },
    CodeInfo {
        code: MISSING_DOCS_LINT,
        title: "library crate missing the missing_docs lint",
    },
    CodeInfo {
        code: MANIFEST_LINTS,
        title: "crate manifest missing [lints] workspace = true",
    },
    CodeInfo {
        code: WORKSPACE_LINTS,
        title: "workspace manifest missing [workspace.lints]",
    },
    CodeInfo {
        code: UNDOCUMENTED_PUB,
        title: "public item without a doc comment",
    },
    CodeInfo {
        code: CRATE_CYCLE,
        title: "crate dependency cycle",
    },
    CodeInfo {
        code: LAYER_VIOLATION,
        title: "crate layering back-edge",
    },
    CodeInfo {
        code: MODULE_CYCLE,
        title: "module dependency cycle within a crate",
    },
    CodeInfo {
        code: UNDECLARED_CRATE,
        title: "workspace crate missing from the layering table",
    },
    CodeInfo {
        code: HASH_CONTAINER,
        title: "hash container in a report-affecting module",
    },
    CodeInfo {
        code: CLOCK_READ,
        title: "clock read in a report-affecting module",
    },
    CodeInfo {
        code: ENV_READ,
        title: "environment/thread-count read in a report-affecting module",
    },
    CodeInfo {
        code: FLOAT_ACCUMULATION,
        title: "float accumulation-order hazard in a report-affecting module",
    },
    CodeInfo {
        code: TELEM_UNDECLARED,
        title: "telemetry name not declared in the registry",
    },
    CodeInfo {
        code: TELEM_ORPHANED,
        title: "registry telemetry name never emitted",
    },
    CodeInfo {
        code: TELEM_NONLITERAL,
        title: "telemetry name is not a string literal",
    },
    CodeInfo {
        code: TELEM_KIND,
        title: "telemetry macro kind disagrees with the registry",
    },
    CodeInfo {
        code: TELEM_UNITLESS,
        title: "histogram registry row declares no unit",
    },
    CodeInfo {
        code: ALLOWLIST_MALFORMED,
        title: "allowlist entry malformed or missing justification",
    },
    CodeInfo {
        code: ALLOWLIST_UNUSED,
        title: "allowlist entry suppressed nothing",
    },
    CodeInfo {
        code: HOT_ALLOC,
        title: "container construction in a hot-path loop",
    },
    CodeInfo {
        code: HOT_COLLECT,
        title: "iterator materialization in a hot-path loop",
    },
    CodeInfo {
        code: HOT_CLONE,
        title: "clone/to_owned/to_string in a hot-path loop",
    },
    CodeInfo {
        code: HOT_FORMAT,
        title: "format! in a hot-path loop",
    },
    CodeInfo {
        code: UNSAFE_NO_SAFETY_COMMENT,
        title: "unsafe without an adjacent SAFETY comment",
    },
    CodeInfo {
        code: NESTED_LOCK,
        title: "lock acquired while another guard is in scope",
    },
    CodeInfo {
        code: RELAXED_ORDERING,
        title: "unaudited Ordering::Relaxed in an engine crate",
    },
    CodeInfo {
        code: WORKER_PANIC_CALL,
        title: "unwrap/expect reachable from a worker closure",
    },
    CodeInfo {
        code: WORKER_INDEXING,
        title: "slice indexing reachable from a worker closure",
    },
    CodeInfo {
        code: NONDET_EFFECT,
        title: "inferred nondeterministic effect on a report path",
    },
    CodeInfo {
        code: HOT_ALLOC_EFFECT,
        title: "allocating callee inside a per-access loop",
    },
    CodeInfo {
        code: WORKER_PANIC_EFFECT,
        title: "inferred panic effect reachable from a worker closure",
    },
    CodeInfo {
        code: WORKER_LOCK_EFFECT,
        title: "inferred lock effect outside the engine reachable from a worker closure",
    },
    CodeInfo {
        code: PURE_CRATE_IO_EFFECT,
        title: "I/O effect entering a declared-pure crate",
    },
];

/// Looks up the description of a code; `None` for unknown codes.
#[must_use]
pub fn describe(code: &str) -> Option<&'static str> {
    CODE_TABLE
        .iter()
        .find(|info| info.code == code)
        .map(|info| info.title)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_sorted_and_well_formed() {
        for w in CODE_TABLE.windows(2) {
            assert!(w[0].code < w[1].code, "{} !< {}", w[0].code, w[1].code);
        }
        for info in CODE_TABLE {
            assert_eq!(info.code.len(), 6, "{}", info.code);
            assert!(info.code.starts_with("XT"), "{}", info.code);
            assert!(info.code[2..].chars().all(|c| c.is_ascii_digit()));
            assert!(!info.title.is_empty());
        }
    }

    #[test]
    fn describe_known_and_unknown() {
        assert_eq!(describe(CRATE_CYCLE), Some("crate dependency cycle"));
        assert_eq!(describe("XT9999"), None);
    }
}
