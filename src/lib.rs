//! Umbrella package hosting the workspace's examples and integration tests.
pub use commorder;
