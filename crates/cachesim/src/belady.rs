//! Belady's optimal (oracular) replacement policy \[8\], used by Fig. 8 to
//! quantify the remaining headroom over LRU: on a miss in a full set, the
//! resident line whose next use lies farthest in the future is evicted.
//!
//! Requires the full trace up front: a backward pass precomputes each
//! access's next-use index, then the forward simulation evicts by maximum
//! next use. Classification (compulsory, dead lines, write-backs) matches
//! [`LruCache`](crate::LruCache) so the statistics are directly
//! comparable.

use std::collections::{HashMap, HashSet};

use crate::trace::Access;
use crate::{CacheConfig, CacheStats};

/// Index meaning "never used again".
const NEVER: u64 = u64::MAX;

/// Per-access index of the *next* access to the same line (`NEVER` when
/// the line is not touched again).
#[must_use]
pub fn next_use_indices(trace: &[Access], config: &CacheConfig) -> Vec<u64> {
    let mut next = vec![NEVER; trace.len()];
    let mut last_seen: HashMap<u64, u64> = HashMap::new();
    for (i, acc) in trace.iter().enumerate().rev() {
        let (_, tag) = config.set_and_tag(acc.addr);
        if let Some(&later) = last_seen.get(&tag) {
            next[i] = later;
        }
        last_seen.insert(tag, i as u64);
    }
    next
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    next_use: u64,
    dirty: bool,
    reuses: u32,
    valid: bool,
}

/// Simulates the trace under Belady's optimal replacement.
///
/// # Panics
///
/// Panics on a degenerate cache geometry (see
/// [`CacheConfig::num_lines`]).
#[must_use]
pub fn simulate_belady(config: CacheConfig, trace: &[Access]) -> CacheStats {
    let next = next_use_indices(trace, &config);
    let assoc = config.associativity as usize;
    let mut ways = vec![
        Way {
            tag: 0,
            next_use: NEVER,
            dirty: false,
            reuses: 0,
            valid: false,
        };
        config.num_lines()
    ];
    let mut stats = CacheStats {
        line_bytes: config.line_bytes,
        ..CacheStats::default()
    };
    let mut seen: HashSet<u64> = HashSet::new();

    for (i, acc) in trace.iter().enumerate() {
        stats.accesses += 1;
        let (set, tag) = config.set_and_tag(acc.addr);
        let slice = &mut ways[set * assoc..(set + 1) * assoc];
        if let Some(w) = slice.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.next_use = next[i];
            w.reuses += 1;
            w.dirty |= acc.write;
            stats.hits += 1;
            continue;
        }
        if seen.insert(tag) {
            stats.compulsory_misses += 1;
        }
        if acc.write {
            stats.write_alloc_misses += 1;
        } else {
            stats.fill_misses += 1;
        }
        stats.fills += 1;
        // Optimal bypass: a line never used again needn't displace a
        // useful resident — model it as filling and instantly dying only
        // when the set still has a better candidate to keep.
        let victim = match slice.iter().position(|w| !w.valid) {
            Some(idx) => idx,
            None => {
                let idx = slice
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, w)| w.next_use)
                    .expect("associativity > 0")
                    .0;
                // If the incoming line's next use is farther than every
                // resident's, evict the incoming line "immediately":
                // count the fill and a dead line, keep the set intact.
                if next[i] >= slice[idx].next_use {
                    stats.evictions += 1;
                    stats.dead_lines += u64::from(next[i] == NEVER);
                    if acc.write {
                        stats.writebacks += 1;
                    }
                    continue;
                }
                stats.evictions += 1;
                if slice[idx].reuses == 0 {
                    stats.dead_lines += 1;
                }
                if slice[idx].dirty {
                    stats.writebacks += 1;
                }
                idx
            }
        };
        slice[victim] = Way {
            tag,
            next_use: next[i],
            dirty: acc.write,
            reuses: 0,
            valid: true,
        };
    }
    for w in ways.iter().filter(|w| w.valid) {
        if w.dirty {
            stats.writebacks += 1;
        }
        if w.reuses == 0 {
            stats.dead_lines += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruCache;

    fn read(addr: u64) -> Access {
        Access { addr, write: false }
    }

    fn tiny() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 128,
            line_bytes: 32,
            associativity: 2,
        }
    }

    #[test]
    fn next_use_links_same_line() {
        let trace = [read(0), read(64), read(4), read(0)];
        let next = next_use_indices(&trace, &tiny());
        assert_eq!(next, vec![2, NEVER, 3, NEVER]);
    }

    #[test]
    fn belady_beats_lru_on_anti_lru_pattern() {
        // Set 0 lines: 0, 64, 128. Pattern engineered so LRU thrashes but
        // the oracle keeps the frequently revisited line resident.
        let mut trace = Vec::new();
        for _ in 0..50 {
            trace.push(read(0));
            trace.push(read(64));
            trace.push(read(128));
        }
        let cfg = tiny();
        let mut lru = LruCache::new(cfg);
        for &a in &trace {
            lru.access(a);
        }
        let lru_stats = lru.finish();
        let opt = simulate_belady(cfg, &trace);
        assert!(
            opt.misses() < lru_stats.misses(),
            "belady {} vs lru {}",
            opt.misses(),
            lru_stats.misses()
        );
        // LRU with 2 ways on a cyclic 3-line pattern misses every access.
        assert_eq!(lru_stats.hits, 0);
        assert!(opt.hits > 0);
    }

    #[test]
    fn belady_never_worse_than_lru() {
        // Pseudo-random mixed trace.
        let mut state = 12345u64;
        let mut trace = Vec::new();
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (state >> 33) % 2048;
            trace.push(Access {
                addr,
                write: state.is_multiple_of(7),
            });
        }
        let cfg = tiny();
        let mut lru = LruCache::new(cfg);
        for &a in &trace {
            lru.access(a);
        }
        let lru_stats = lru.finish();
        let opt = simulate_belady(cfg, &trace);
        assert!(opt.misses() <= lru_stats.misses());
        assert_eq!(opt.accesses, lru_stats.accesses);
        // Compulsory misses are policy independent.
        assert_eq!(opt.compulsory_misses, lru_stats.compulsory_misses);
    }

    #[test]
    fn belady_matches_lru_on_streaming() {
        // Pure streaming: both policies take exactly the compulsory misses.
        let trace: Vec<Access> = (0..512).map(|i| read(i * 32)).collect();
        let cfg = tiny();
        let mut lru = LruCache::new(cfg);
        for &a in &trace {
            lru.access(a);
        }
        let lru_stats = lru.finish();
        let opt = simulate_belady(cfg, &trace);
        assert_eq!(opt.misses(), lru_stats.misses());
        assert_eq!(opt.misses(), 512);
    }

    #[test]
    fn empty_trace() {
        let s = simulate_belady(tiny(), &[]);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.dram_traffic_bytes(), 0);
    }
}
