use crate::{CsrMatrix, SparseError};

/// A sparse matrix in Coordinate (COO) format: an unordered list of
/// `(row, col, value)` triples plus the matrix dimensions.
///
/// COO is the construction-friendly interchange format (and the second
/// storage format the paper evaluates with cuSPARSE's SpMV-COO kernel,
/// Table IV). Entries may appear in any order and may contain duplicates;
/// converting to [`CsrMatrix`] sorts and sums duplicates.
///
/// # Example
///
/// ```
/// use commorder_sparse::CooMatrix;
///
/// # fn main() -> Result<(), commorder_sparse::SparseError> {
/// let coo = CooMatrix::from_entries(2, 2, vec![(0, 1, 2.0), (1, 0, 3.0)])?;
/// assert_eq!(coo.nnz(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    n_rows: u32,
    n_cols: u32,
    entries: Vec<(u32, u32, f32)>,
}

impl CooMatrix {
    /// Creates a COO matrix from `(row, col, value)` triples.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any row/column index
    /// exceeds the dimensions, and [`SparseError::TooLarge`] if the entry
    /// count exceeds `u32` indexing.
    pub fn from_entries(
        n_rows: u32,
        n_cols: u32,
        entries: Vec<(u32, u32, f32)>,
    ) -> Result<Self, SparseError> {
        if entries.len() > u32::MAX as usize {
            return Err(SparseError::TooLarge(format!(
                "{} entries exceed u32 indexing",
                entries.len()
            )));
        }
        for &(r, c, _) in &entries {
            if r >= n_rows {
                return Err(SparseError::IndexOutOfBounds {
                    index: r,
                    bound: n_rows,
                });
            }
            if c >= n_cols {
                return Err(SparseError::IndexOutOfBounds {
                    index: c,
                    bound: n_cols,
                });
            }
        }
        Ok(CooMatrix {
            n_rows,
            n_cols,
            entries,
        })
    }

    /// An empty `n_rows x n_cols` matrix.
    #[must_use]
    pub fn empty(n_rows: u32, n_cols: u32) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of stored triples (duplicates counted separately).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Read-only view of the stored triples.
    #[must_use]
    pub fn entries(&self) -> &[(u32, u32, f32)] {
        &self.entries
    }

    /// Consumes the matrix, returning the triples.
    #[must_use]
    pub fn into_entries(self) -> Vec<(u32, u32, f32)> {
        self.entries
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] when the coordinate is
    /// outside the matrix.
    pub fn push(&mut self, row: u32, col: u32, value: f32) -> Result<(), SparseError> {
        if row >= self.n_rows {
            return Err(SparseError::IndexOutOfBounds {
                index: row,
                bound: self.n_rows,
            });
        }
        if col >= self.n_cols {
            return Err(SparseError::IndexOutOfBounds {
                index: col,
                bound: self.n_cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Sorts entries in row-major `(row, col)` order (stable for duplicate
    /// coordinates). The cuSPARSE COO kernels expect row-major order; our
    /// trace generator does too.
    pub fn sort_row_major(&mut self) {
        self.entries.sort_by_key(|&(r, c, _)| (r, c));
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        CooMatrix {
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            entries: csr.iter().collect(),
        }
    }
}

impl FromIterator<(u32, u32, f32)> for CooMatrix {
    /// Collects triples into a COO matrix whose dimensions are the smallest
    /// square that fits every coordinate.
    fn from_iter<I: IntoIterator<Item = (u32, u32, f32)>>(iter: I) -> Self {
        let entries: Vec<_> = iter.into_iter().collect();
        let n = entries
            .iter()
            .map(|&(r, c, _)| r.max(c) + 1)
            .max()
            .unwrap_or(0);
        CooMatrix {
            n_rows: n,
            n_cols: n,
            entries,
        }
    }
}

impl Extend<(u32, u32, f32)> for CooMatrix {
    /// Extends with triples; coordinates outside the current dimensions
    /// grow the matrix (keeping it square-covering).
    fn extend<I: IntoIterator<Item = (u32, u32, f32)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.n_rows = self.n_rows.max(r + 1);
            self.n_cols = self.n_cols.max(c + 1);
            self.entries.push((r, c, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_entries_validates_bounds() {
        assert!(CooMatrix::from_entries(2, 2, vec![(2, 0, 1.0)]).is_err());
        assert!(CooMatrix::from_entries(2, 2, vec![(0, 2, 1.0)]).is_err());
        assert!(CooMatrix::from_entries(2, 2, vec![(1, 1, 1.0)]).is_ok());
    }

    #[test]
    fn push_validates_bounds() {
        let mut m = CooMatrix::empty(2, 2);
        assert!(m.push(0, 1, 1.0).is_ok());
        assert!(m.push(2, 0, 1.0).is_err());
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn round_trip_with_csr() {
        let coo = CooMatrix::from_entries(3, 3, vec![(2, 0, 5.0), (0, 1, 1.0)]).unwrap();
        let csr = CsrMatrix::try_from(coo.clone()).unwrap();
        let mut back = CooMatrix::from(&csr);
        back.sort_row_major();
        assert_eq!(back.entries(), &[(0, 1, 1.0), (2, 0, 5.0)]);
    }

    #[test]
    fn from_iter_infers_square_dims() {
        let coo: CooMatrix = vec![(0, 4, 1.0), (2, 1, 1.0)].into_iter().collect();
        assert_eq!(coo.n_rows(), 5);
        assert_eq!(coo.n_cols(), 5);
    }

    #[test]
    fn extend_grows_dims() {
        let mut coo = CooMatrix::empty(1, 1);
        coo.extend(vec![(3, 2, 1.0)]);
        assert_eq!(coo.n_rows(), 4);
        assert_eq!(coo.n_cols(), 3);
        assert_eq!(coo.nnz(), 1);
    }

    #[test]
    fn sort_row_major_orders_entries() {
        let mut coo =
            CooMatrix::from_entries(2, 2, vec![(1, 1, 1.0), (0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        coo.sort_row_major();
        let coords: Vec<_> = coo.entries().iter().map(|&(r, c, _)| (r, c)).collect();
        assert_eq!(coords, vec![(0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn empty_iterator_collects_to_zero_dims() {
        let coo: CooMatrix = std::iter::empty().collect();
        assert_eq!(coo.n_rows(), 0);
        assert_eq!(coo.nnz(), 0);
    }
}
