//! Criterion microbenchmarks for the sparse kernels: SpMV-CSR, SpMV-COO
//! and SpMM throughput on a mid-sized community matrix.

use commorder::prelude::*;
use commorder::sparse::graph::pagerank;
use commorder::sparse::{kernels, EllMatrix, SellMatrix};
use commorder::synth::generators::PlantedPartition;
use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn fixture() -> CsrMatrix {
    PlantedPartition::uniform(8192, 64, 12.0, 0.05)
        .generate(77)
        .expect("valid generator config")
}

fn bench_kernels(c: &mut Criterion) {
    let a = fixture();
    let coo = CooMatrix::from(&a);
    let x = vec![1.0f32; a.n_cols() as usize];
    let b4 = vec![1.0f32; a.n_cols() as usize * 4];

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(a.nnz() as u64));
    group.bench_function("spmv_csr", |bench| {
        bench.iter(|| kernels::spmv_csr(&a, &x).expect("dims match"));
    });
    group.bench_function("spmv_coo", |bench| {
        bench.iter(|| kernels::spmv_coo(&coo, &x).expect("dims match"));
    });
    group.bench_function("spmm_csr_k4", |bench| {
        bench.iter(|| kernels::spmm_csr(&a, &b4, 4).expect("dims match"));
    });
    let ell = EllMatrix::from_csr(&a).expect("fits");
    group.bench_function("spmv_ell", |bench| {
        bench.iter(|| ell.spmv(&x).expect("dims match"));
    });
    let sell = SellMatrix::from_csr(&a, 32, 256).expect("valid geometry");
    group.bench_function("spmv_sell_32_256", |bench| {
        bench.iter(|| sell.spmv(&x).expect("dims match"));
    });
    group.bench_function("spmv_blocked_16", |bench| {
        bench.iter(|| kernels::spmv_blocked(&a, &x, 16).expect("dims match"));
    });
    group.bench_function("pagerank_1iter", |bench| {
        bench.iter(|| pagerank(&a, 0.85, 1).expect("square"));
    });
    group.finish();
}

fn bench_spmv_orderings(c: &mut Criterion) {
    // CPU-side SpMV also benefits from reordering (cache locality is
    // cache locality); this measures the end effect outside the simulator.
    let a = fixture();
    let x = vec![1.0f32; a.n_cols() as usize];
    let mut group = c.benchmark_group("spmv_by_ordering");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (name, perm) in [
        (
            "random",
            RandomOrder::new(3).reorder(&a).expect("square"),
        ),
        ("rabbit", Rabbit::new().reorder(&a).expect("square")),
        (
            "rabbitpp",
            RabbitPlusPlus::new().reorder(&a).expect("square"),
        ),
    ] {
        let m = a.permute_symmetric(&perm).expect("validated");
        group.bench_with_input(BenchmarkId::from_parameter(name), &m, |bench, m| {
            bench.iter(|| kernels::spmv_csr(m, &x).expect("dims match"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_spmv_orderings);
criterion_main!(benches);
