//! Depends sideways on the exec crate.

use commorder_exec::Engine;

/// Holds the sideways dependency.
pub struct Sim {
    /// The engine.
    pub engine: Engine,
}
