//! **Figure 9 at the mega tier**: reordering (pre-processing) time as
//! the matrix grows into the streamed million-row regime, for RABBIT,
//! RABBIT++ and BOBA — serial versus engine-parallel
//! ([`Reordering::reorder_with`]) on the same matrices.
//!
//! The original Fig. 9 sweep (`fig9`) tops out at 262k rows because its
//! generators materialize edge lists; this study stream-generates
//! community graphs straight into CSR, so the sweep extends to 2M rows
//! while the resident set stays bounded by the final matrix. Each cell
//! reports serial wall time, engine-parallel wall time, and verifies
//! the two permutations are byte-identical (the determinism contract of
//! the reorder context API).

use std::time::Instant;

use commorder::prelude::*;
use commorder::reorder::ReorderContext;
use commorder::synth::stream::{stream_undirected_csr, StreamedCommunity};
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let engine = harness.engine();

    // Streamed sweep: same community shape, scaled by an order of
    // magnitude past the standard corpus ceiling.
    let sizes: &[u32] = if harness.entries.len() <= 8 {
        &[65_536, 262_144] // mini corpus => quick sweep
    } else {
        &[262_144, 1_048_576, 2_097_152]
    };

    let mut table = Table::new(
        "Fig. 9 (mega): reordering time vs matrix size, serial -> engine-parallel",
        vec![
            "n".into(),
            "nnz".into(),
            "RABBIT".into(),
            "RABBIT par".into(),
            "RABBIT++".into(),
            "RABBIT++ par".into(),
            "BOBA".into(),
            "BOBA par".into(),
        ],
    );

    for &n in sizes {
        eprintln!("[fig9_mega] n = {n} (streamed)");
        let generator = StreamedCommunity {
            n,
            communities: (n / 256).max(1),
            intra_degree: 6.0,
            mixing: 0.05,
        };
        let matrix = stream_undirected_csr(&generator, u64::from(n)).expect("valid stream config");

        let techniques: Vec<Box<dyn Reordering>> = vec![
            Box::new(Rabbit::new()),
            Box::new(RabbitPlusPlus::new()),
            Box::new(Boba),
        ];
        let mut row = vec![n.to_string(), matrix.nnz().to_string()];
        for technique in &techniques {
            let serial_cx = ReorderContext::serial(harness.random_seed);
            let start = Instant::now();
            let serial = technique
                .reorder_with(&matrix, &serial_cx)
                .expect("square matrix");
            let serial_seconds = start.elapsed().as_secs_f64();

            let parallel_cx = ReorderContext::new(&engine, harness.random_seed);
            let start = Instant::now();
            let parallel = technique
                .reorder_with(&matrix, &parallel_cx)
                .expect("square matrix");
            let parallel_seconds = start.elapsed().as_secs_f64();

            assert_eq!(
                serial,
                parallel,
                "{} permutation must be thread-count-invariant at n = {n}",
                technique.name()
            );
            row.push(Table::seconds(serial_seconds));
            row.push(Table::seconds(parallel_seconds));
        }
        table.add_row(row);
    }
    println!("{table}");
    println!(
        "Paper shape: community-based reordering keeps scaling linearly past the \
         materialized-corpus ceiling; the engine-parallel column fans sharded \
         detection, dendrogram flattening and the chunked insular scan over {} \
         worker(s), with byte-identical permutations — the gap to the serial \
         column tracks the host's core count. BOBA is the lightweight \
         reference: one first-touch pass over the edge stream, orders of \
         magnitude cheaper than community detection.",
        engine.threads()
    );
}
