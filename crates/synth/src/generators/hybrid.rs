use commorder_sparse::{CsrMatrix, SparseError};

use crate::generators::undirected_csr;
use crate::rng::Rng;

/// Community-plus-hubs hybrid: a planted-partition base overlaid with a
/// power-law set of global hub vertices.
///
/// Stands in for web crawls (sk-2005, pld-arc, sx-stackoverflow): most
/// nodes live in tight communities (sites / tags), while a minority of
/// hubs (portals, popular posts) link across the whole graph. This is the
/// key regime for RABBIT++ — the insular majority orders perfectly while
/// the hubs generate the inter-community traffic the paper's modifications
/// target (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityHub {
    /// Number of vertices.
    pub n: u32,
    /// Number of planted communities.
    pub communities: u32,
    /// Average intra-community degree per vertex.
    pub intra_degree: f64,
    /// Fraction of vertices promoted to global hubs.
    pub hub_fraction: f64,
    /// Average number of global (uniform random) edges per hub.
    pub hub_degree: f64,
    /// Baseline cross-community mixing among non-hubs.
    pub mixing: f64,
    /// Shuffle vertex IDs after generation.
    pub scramble_ids: bool,
}

impl CommunityHub {
    /// Generates the graph.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the sparse layer.
    ///
    /// # Panics
    ///
    /// Panics if `communities == 0` or `communities > n`.
    pub fn generate(&self, seed: u64) -> Result<CsrMatrix, SparseError> {
        assert!(self.communities > 0, "need at least one community");
        assert!(self.communities <= self.n, "more communities than vertices");
        let mut rng = Rng::new(seed);
        let size = (self.n / self.communities).max(2);
        let mut edges = Vec::new();
        // Community base.
        for ci in 0..self.communities {
            let lo = ci * size;
            let hi = if ci == self.communities - 1 {
                self.n
            } else {
                ((ci + 1) * size).min(self.n)
            };
            if hi - lo < 2 {
                continue;
            }
            let span = hi - lo;
            let intra = (f64::from(span) * self.intra_degree / 2.0).round() as usize;
            for _ in 0..intra {
                edges.push((lo + rng.gen_u32(span), lo + rng.gen_u32(span)));
            }
            let inter = (intra as f64 * self.mixing).round() as usize;
            for _ in 0..inter {
                edges.push((lo + rng.gen_u32(span), rng.gen_u32(self.n)));
            }
        }
        // Hub overlay: promote a sample of vertices; hub degrees follow a
        // power law around `hub_degree`.
        let hub_count = ((f64::from(self.n) * self.hub_fraction).round() as u32).max(1);
        for _ in 0..hub_count {
            let h = rng.gen_u32(self.n);
            let extra = (self.hub_degree * rng.power_law(2.0, 16) as f64).round() as usize;
            for _ in 0..extra {
                let v = rng.gen_u32(self.n);
                if v != h {
                    edges.push((h, v));
                }
            }
        }
        if self.scramble_ids {
            let mut relabel: Vec<u32> = (0..self.n).collect();
            rng.shuffle(&mut relabel);
            for e in &mut edges {
                e.0 = relabel[e.0 as usize];
                e.1 = relabel[e.1 as usize];
            }
        }
        undirected_csr(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::assert_well_formed;
    use commorder_sparse::stats::skew_top10;

    fn sample(scramble: bool) -> CommunityHub {
        CommunityHub {
            n: 4000,
            communities: 40,
            intra_degree: 8.0,
            hub_fraction: 0.02,
            hub_degree: 30.0,
            mixing: 0.05,
            scramble_ids: scramble,
        }
    }

    #[test]
    fn well_formed_and_moderately_skewed() {
        let g = sample(true).generate(1).unwrap();
        assert_well_formed(&g);
        let skew = skew_top10(&g);
        // Between pure SBM (~0.15) and pure hub graphs (~0.6+).
        assert!((0.2..0.9).contains(&skew), "skew = {skew}");
    }

    #[test]
    fn majority_of_edges_stay_in_planted_blocks_when_unscrambled() {
        let g = sample(false).generate(2).unwrap();
        let size = 100; // 4000 / 40
        let intra = g.iter().filter(|&(r, c, _)| r / size == c / size).count();
        let frac = intra as f64 / g.nnz() as f64;
        assert!(frac > 0.5, "intra fraction = {frac}");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            sample(true).generate(9).unwrap(),
            sample(true).generate(9).unwrap()
        );
        assert_ne!(
            sample(true).generate(9).unwrap(),
            sample(true).generate(10).unwrap()
        );
    }
}
