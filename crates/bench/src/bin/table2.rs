//! **Table II**: the design space of RABBIT modifications — SpMV run time
//! (normalized to ideal) for {RABBIT, RABBIT+HUBSORT, RABBIT+HUBGROUP} ×
//! {without, with} insular-node grouping, split by insularity.

use commorder::prelude::*;
use commorder::reorder::quality;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();

    // The technique axis is the whole design space, in design-space order.
    let configs = RabbitPlusPlusConfig::design_space();
    let techniques: Vec<Box<dyn Reordering>> = configs
        .iter()
        .map(|&config| Box::new(RabbitPlusPlus::with_config(config)) as Box<dyn Reordering>)
        .collect();
    let spec = harness.spec(techniques);
    let engine = harness.engine();

    // Per-matrix insularity (bucket key), computed once.
    let insularities: Vec<f64> = engine.map(&spec.matrices, |_, named| {
        eprintln!("[table2] insularity {}", named.name);
        let r = Rabbit::new()
            .run(&named.matrix)
            .expect("square corpus matrix");
        quality::insularity(&named.matrix, &r.assignment).expect("validated")
    });

    let result = spec.run(&engine).expect("valid corpus grid");
    eprintln!("[table2] engine: {}", result.stats.summary());

    let mut table = Table::new(
        "Table II: SpMV run time normalized to ideal, RABBIT modification design space",
        vec![
            "configuration".into(),
            "ALL-MATS".into(),
            "INS < 0.95".into(),
            "INS >= 0.95".into(),
        ],
    );
    for (ti, config) in configs.iter().enumerate() {
        let pairs: Vec<(f64, f64)> = insularities
            .iter()
            .zip(result.time_ratios(ti))
            .map(|(&ins, time)| (ins, time))
            .collect();
        let split = InsularitySplit::from_pairs(&pairs);
        table.add_row(vec![
            config.label(),
            Table::ratio(split.all),
            Table::ratio(split.low),
            Table::ratio(split.high),
        ]);
    }
    println!("{table}");
    println!(
        "Paper reference (ALL / <0.95 / >=0.95):\n\
         RABBIT 1.54/1.81/1.25, +HUBSORT 1.63/1.89/1.35, +HUBGROUP 1.48/1.65/1.29 (no insular grouping)\n\
         RABBIT 1.49/1.70/1.25, +HUBSORT 1.57/1.86/1.26, +HUBGROUP 1.46/1.65/1.25 (insular grouped)\n\
         Shape to reproduce: insular grouping helps; HUBGROUP > plain RABBIT > HUBSORT; \
         RABBIT++ = insular grouped + HUBGROUP is best overall"
    );
}
