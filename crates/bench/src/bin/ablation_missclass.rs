//! **Ablation**: Three-C miss classification (Hill & Smith, the paper's
//! \[22\]) — verifies that reordering's wins come from shrinking the
//! *capacity* miss component (the working set), not from accidental
//! set-index (conflict) effects that a different hash could also fix.

use commorder::cachesim::classify::classify;
use commorder::cachesim::source::KernelTrace;
use commorder::cachesim::trace::ExecutionModel;
use commorder::prelude::*;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let subset: Vec<&str> = if harness.entries.len() <= 8 {
        vec!["mini-sbm", "mini-webhub", "mini-rmat"]
    } else {
        vec!["opt-block-512", "web-stackex", "soc-rmat-65k"]
    };
    let cases = harness.load_subset(&subset);

    for case in &cases {
        eprintln!("[ablation_missclass] {}", case.entry.name);
        let mut table = Table::new(
            format!("{}: SpMV miss classes (of all accesses)", case.entry.name),
            vec![
                "ordering".into(),
                "compulsory".into(),
                "capacity".into(),
                "conflict".into(),
                "hit rate".into(),
            ],
        );
        let orderings: Vec<Box<dyn Reordering>> = vec![
            Box::new(RandomOrder::new(harness.random_seed)),
            Box::new(Rabbit::new()),
            Box::new(RabbitPlusPlus::new()),
        ];
        let rows = harness.engine().map(&orderings, |_, ordering| {
            let perm = ordering
                .reorder(&case.matrix)
                .expect("square corpus matrix");
            let m = case.matrix.permute_symmetric(&perm).expect("validated");
            let source = KernelTrace::new(&m, Kernel::SpmvCsr, ExecutionModel::Sequential);
            let c = classify(harness.gpu.l2, &source);
            let total = c.accesses as f64;
            vec![
                ordering.name().to_string(),
                Table::percent(c.compulsory as f64 / total),
                Table::percent(c.capacity as f64 / total),
                Table::percent(c.conflict as f64 / total),
                Table::percent(c.hits as f64 / total),
            ]
        });
        for row in rows {
            table.add_row(row);
        }
        println!("{table}");
    }
    println!(
        "Reading: compulsory misses are order-invariant (same line count); the\n\
         entire reordering win is a collapse of the CAPACITY class — the working\n\
         set genuinely shrinks into the cache. Conflict misses stay marginal at\n\
         16-way associativity, confirming the geometry isn't confounding Fig. 2."
    );
}
