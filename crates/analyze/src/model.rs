//! Shared data model for the analysis passes.
//!
//! [`workspace`](crate::workspace) builds these values during
//! discovery; the layering, determinism, and telemetry passes consume
//! them. Keeping the types below every pass (instead of inside
//! `workspace`) keeps the crate's own module graph acyclic — a
//! property the layering pass checks on this very crate when the
//! analyzer self-hosts.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{PathRef, UsePath};
use crate::lexer::Token;

/// Where a file sits in its crate's module tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileRole {
    /// `lib.rs` or `main.rs` at the crate root: re-export surface.
    Facade,
    /// Part of the named top-level module.
    Module(String),
    /// Under `src/bin/`: a standalone entry point.
    Bin,
}

/// One lexed source file plus its derived structural facts.
pub struct FileData {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Module-tree position.
    pub role: FileRole,
    /// `true` for entry points (`main.rs`, `src/bin/*`).
    pub is_bin: bool,
    /// `false` for facade files (`lib.rs`, `main.rs`, `mod.rs`): their
    /// re-exports are surface, not dependencies, so they contribute no
    /// outgoing edges to the module *cycle* graph (they still do in the
    /// determinism reachability graph).
    pub cycle_source: bool,
    /// File contents.
    pub src: String,
    /// Token stream of `src`.
    pub tokens: Vec<Token>,
    /// `#[cfg(test)]` byte ranges.
    pub test_ranges: Vec<(usize, usize)>,
    /// `macro_rules!` body byte ranges.
    pub macro_ranges: Vec<(usize, usize)>,
    /// `use` declarations outside test regions.
    pub uses: Vec<UsePath>,
    /// `a::b` path chains outside test regions and macro bodies.
    pub refs: Vec<PathRef>,
}

/// One workspace crate (or the root package).
pub struct CrateData {
    /// Directory name under `crates/` (`"root"` for the root package);
    /// the key into the layer table.
    pub dir_name: String,
    /// The library name other crates import (`commorder_sparse`).
    pub lib_name: String,
    /// Workspace-relative manifest path.
    pub manifest_rel: String,
    /// Top-level module names.
    pub modules: BTreeSet<String>,
    /// Facade re-exports: exported item name → top-level module.
    pub reexports: BTreeMap<String, String>,
    /// The crate's source files, sorted by path.
    pub files: Vec<FileData>,
}

/// File/line/column a graph edge was first observed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeAnchor {
    /// Workspace-relative path of the referencing file.
    pub file: String,
    /// 1-based line of the reference.
    pub line: u32,
    /// 1-based column of the reference.
    pub col: u32,
}

/// A node of the determinism reachability graph: a crate plus either a
/// top-level module or (`None`) its facade.
pub type ReachNode = (usize, Option<String>);

/// The serializable slice of the call graph emitted in `analyze --json`
/// and validated by `commorder-check`'s `CHK1102`.
///
/// Node strings are `<file>::<name>@<line>:<col>` where `<name>` is the
/// bare function name, `Type::method`, or `parent::{closure}` for
/// worker closures. Edges, seed sets, and SCC members are indices into
/// `nodes`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CallGraphReport {
    /// Display names of the graph nodes, in (file, line, col) order.
    pub nodes: Vec<String>,
    /// Deduplicated caller → callee index pairs, sorted ascending.
    pub edges: Vec<(u32, u32)>,
    /// Determinism seeds: `render_json` functions and `Pipeline`
    /// methods.
    pub seeds_determinism: Vec<u32>,
    /// Hot-path seeds: replay/consume/simulate/reorder entry points.
    pub seeds_hotpath: Vec<u32>,
    /// Worker seeds: closures passed to `spawn` plus `Engine::map`.
    pub seeds_worker: Vec<u32>,
    /// Cyclic strongly connected components (each sorted, ≥ 2 members
    /// or a self-recursive singleton), in first-member order.
    pub sccs: Vec<Vec<u32>>,
    /// Call sites observed in function bodies.
    pub call_sites: u32,
    /// Call sites with at least one workspace candidate (ambiguous
    /// sites are a subset; `resolved + external == call_sites`).
    pub resolved: u32,
    /// Call sites naming no workspace function (std/core/externals).
    pub external: u32,
    /// Call sites matching several workspace candidates; edges go to
    /// all of them (conservative over-approximation).
    pub ambiguous: u32,
}

/// One row of the effects table: a call-graph node with at least one
/// inferred effect bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectRow {
    /// Node index into the call-graph `nodes` array.
    pub node: u32,
    /// Fixed-point effect mask, bit order per
    /// [`crate::effects::BIT_NAMES`].
    pub mask: u32,
    /// Lexically-local subset of `mask`.
    pub local: u32,
    /// Witness next-hop per bit: the node itself for local bits, the
    /// first callee of a shortest path to a local source for inherited
    /// bits, `-1` for unset bits.
    pub via: [i32; 6],
}

/// The serializable slice of the effect lattice emitted in
/// `analyze --json` and validated by `commorder-check`'s `CHK1103`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EffectsReport {
    /// Rows for every node with a non-zero mask, ascending by node.
    pub rows: Vec<EffectRow>,
    /// Total node count of the underlying call graph.
    pub functions: u32,
    /// Summed popcount of the rows' `local` masks.
    pub local_bits: u32,
    /// Summed popcount of the rows' `mask`s, minus `local_bits`.
    pub propagated_bits: u32,
}
