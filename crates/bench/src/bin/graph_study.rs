//! **Extension**: graph analytics — the other half of the paper's
//! "irregular memory access workloads" framing (and the domain RABBIT
//! was invented for).
//!
//! Simulates PageRank (3 pull iterations) and level-synchronous BFS on
//! the L2 under RANDOM / RABBIT / RABBIT++ orders. PageRank's repeated
//! sweeps amplify the reordering payoff (the pre-processing §VI-C
//! amortization argument in kernel form); BFS shows the effect on a
//! frontier-driven, data-dependent access pattern.

use commorder::cachesim::graph_trace::{BfsTrace, PagerankTrace};
use commorder::prelude::*;
use commorder_bench::Harness;

fn simulate(gpu: &GpuSpec, source: &dyn TraceSource) -> (u64, f64) {
    let mut cache = LruCache::new(gpu.l2);
    cache.consume(source);
    let stats = cache.finish();
    (stats.dram_traffic_bytes(), stats.hit_rate())
}

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let subset: Vec<&str> = if harness.entries.len() <= 8 {
        vec!["mini-sbm", "mini-webhub", "mini-grid"]
    } else {
        vec![
            "opt-block-512",
            "web-stackex",
            "road-grid-messy",
            "soc-rmat-65k",
        ]
    };
    let cases = harness.load_subset(&subset);

    for case in &cases {
        eprintln!("[graph_study] {}", case.entry.name);
        let mut table = Table::new(
            format!("{}: graph kernels on the simulated L2", case.entry.name),
            vec![
                "ordering".into(),
                "PageRank MB".into(),
                "PR hit rate".into(),
                "BFS MB".into(),
                "BFS hit rate".into(),
            ],
        );
        let orderings: Vec<Box<dyn Reordering>> = vec![
            Box::new(RandomOrder::new(harness.random_seed)),
            Box::new(Rabbit::new()),
            Box::new(RabbitPlusPlus::new()),
        ];
        let results = harness.engine().map(&orderings, |_, ordering| {
            let perm = ordering
                .reorder(&case.matrix)
                .expect("square corpus matrix");
            let m = case.matrix.permute_symmetric(&perm).expect("validated");
            let (pr_bytes, pr_hit) = simulate(&harness.gpu, &PagerankTrace::new(&m, 3));
            // BFS from the (reordered) vertex with the highest degree —
            // a deterministic, component-covering start.
            let degrees = m.out_degrees();
            let source = (0..m.n_rows())
                .max_by_key(|&v| degrees[v as usize])
                .expect("non-empty corpus matrix");
            let (bfs_bytes, bfs_hit) = simulate(&harness.gpu, &BfsTrace::new(&m, source));
            (
                ordering.name().to_string(),
                pr_bytes,
                pr_hit,
                bfs_bytes,
                bfs_hit,
            )
        });
        let mut pr_traffic = Vec::new();
        for (name, pr_bytes, pr_hit, bfs_bytes, bfs_hit) in results {
            table.add_row(vec![
                name,
                format!("{:.1}", pr_bytes as f64 / 1e6),
                Table::percent(pr_hit),
                format!("{:.1}", bfs_bytes as f64 / 1e6),
                Table::percent(bfs_hit),
            ]);
            pr_traffic.push(pr_bytes);
        }
        println!("{table}");
        println!(
            "  PageRank traffic: RABBIT++ moves {} of RANDOM's bytes\n",
            Table::percent(pr_traffic[2] as f64 / pr_traffic[0] as f64)
        );
    }
    println!(
        "Reading: the same community orderings that fix SpMV fix PageRank (it is\n\
         an iterated SpMV) and help BFS's frontier probes — the paper's claim\n\
         that reordering is a workload-agnostic pre-processing optimization."
    );
}
