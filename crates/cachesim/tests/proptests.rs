//! Property-based tests for the cache simulator: conservation laws,
//! policy dominance, inclusion monotonicity and trace well-formedness.
//!
//! Driven by the offline `commorder_check::propcheck` harness.

use commorder_cachesim::belady::simulate_belady;
use commorder_cachesim::source::{simulate_lru, KernelTrace};
use commorder_cachesim::trace::{Access, ExecutionModel};
use commorder_cachesim::{CacheConfig, LruCache, TraceSource};
use commorder_check::propcheck::{arb_csr, run_cases, DEFAULT_CASES};
use commorder_sparse::traffic::Kernel;
use commorder_synth::rng::Rng;

/// A random trace over 4096 8-byte slots (exercises intra-line sharing).
fn arb_slot_trace(rng: &mut Rng) -> Vec<Access> {
    let len = rng.gen_range(800) as usize;
    (0..len)
        .map(|_| Access::new(rng.gen_range(4096) * 8, rng.gen_bool(0.5)))
        .collect()
}

fn small_cache() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 2048,
        line_bytes: 32,
        associativity: 4,
    }
}

fn run_lru(config: CacheConfig, trace: &[Access]) -> commorder_cachesim::CacheStats {
    let mut cache = LruCache::new(config);
    for &a in trace {
        cache.access(a);
    }
    cache.finish()
}

#[test]
fn conservation_laws() {
    run_cases("conservation-laws", 2 * DEFAULT_CASES, |rng| {
        let trace = arb_slot_trace(rng);
        let s = run_lru(small_cache(), &trace);
        assert_eq!(s.accesses, trace.len() as u64);
        assert_eq!(s.hits + s.misses(), s.accesses);
        assert_eq!(s.fills, s.misses());
        assert!(s.compulsory_misses <= s.misses());
        assert!(s.dead_lines <= s.fills);
        assert!(s.evictions <= s.fills);
        assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    });
}

#[test]
fn belady_dominates_lru() {
    run_cases("belady-dominates", 2 * DEFAULT_CASES, |rng| {
        let trace = arb_slot_trace(rng);
        let lru = run_lru(small_cache(), &trace);
        let opt = simulate_belady(small_cache(), &trace);
        assert!(opt.misses() <= lru.misses());
        assert_eq!(opt.compulsory_misses, lru.compulsory_misses);
        assert!(opt.misses() >= opt.compulsory_misses);
    });
}

#[test]
fn bigger_cache_never_misses_more_with_full_associativity() {
    run_cases("lru-inclusion", 2 * DEFAULT_CASES, |rng| {
        // LRU with full associativity is a stack algorithm: inclusion
        // holds, so misses are monotone non-increasing in capacity.
        let trace = arb_slot_trace(rng);
        let small = CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 32,
            associativity: 32, // 1 set of 32 ways: fully associative
        };
        let big = CacheConfig {
            capacity_bytes: 4096,
            line_bytes: 32,
            associativity: 128, // 1 set of 128 ways
        };
        let s = run_lru(small, &trace);
        let b = run_lru(big, &trace);
        assert!(b.misses() <= s.misses(), "{} > {}", b.misses(), s.misses());
    });
}

#[test]
fn compulsory_equals_distinct_lines() {
    run_cases("compulsory-distinct-lines", 2 * DEFAULT_CASES, |rng| {
        let trace = arb_slot_trace(rng);
        let s = run_lru(small_cache(), &trace);
        let distinct: std::collections::HashSet<u64> =
            trace.iter().map(|a| a.addr() / 32).collect();
        assert_eq!(s.compulsory_misses, distinct.len() as u64);
    });
}

#[test]
fn writebacks_bounded_by_written_lines() {
    run_cases("writebacks-bounded", 2 * DEFAULT_CASES, |rng| {
        let trace = arb_slot_trace(rng);
        let s = run_lru(small_cache(), &trace);
        let written: std::collections::HashSet<u64> = trace
            .iter()
            .filter(|a| a.is_write())
            .map(|a| a.addr() / 32)
            .collect();
        // A line can be written back many times only if re-dirtied after
        // eviction; bound by writes, not written lines. Cheap sanity:
        let writes = trace.iter().filter(|a| a.is_write()).count() as u64;
        assert!(s.writebacks <= writes);
        if written.is_empty() {
            assert_eq!(s.writebacks, 0);
        }
    });
}

#[test]
fn kernel_traces_read_every_csr_element() {
    run_cases("trace-covers-csr", DEFAULT_CASES, |rng| {
        // The SpMV-CSR trace must contain exactly nnz coords reads, nnz
        // values reads, nnz X reads and n_rows Y writes.
        let m = arb_csr(rng, 28, 5);
        let trace =
            KernelTrace::new(&m, Kernel::SpmvCsr, ExecutionModel::Sequential).collect_trace();
        let writes = trace.iter().filter(|a| a.is_write()).count();
        assert_eq!(writes, m.n_rows() as usize);
        assert_eq!(trace.len(), m.n_rows() as usize * 3 + m.nnz() * 3);
    });
}

#[test]
fn traffic_never_below_compulsory_reads() {
    run_cases("traffic-at-least-compulsory", DEFAULT_CASES, |rng| {
        let m = arb_csr(rng, 28, 5);
        let streams = 1 + rng.gen_u32(5);
        let source = KernelTrace::new(&m, Kernel::SpmvCsr, ExecutionModel::Interleaved { streams });
        let s = simulate_lru(small_cache(), &source);
        // Fill misses cover at least every distinct read-first line.
        assert!(s.fill_misses + s.write_alloc_misses >= s.compulsory_misses);
    });
}

#[test]
fn stats_identical_for_identical_traces() {
    run_cases("stats-deterministic", DEFAULT_CASES, |rng| {
        let trace = arb_slot_trace(rng);
        let a = run_lru(small_cache(), &trace);
        let b = run_lru(small_cache(), &trace);
        assert_eq!(a, b);
    });
}
