//! Fixture: determinism hazards reachable from report code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clean;
pub mod pipe;
pub mod report;
