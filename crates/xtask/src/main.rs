//! Workspace automation tasks.
//!
//! `cargo run -p xtask -- lint` runs the offline source-lint pass over
//! every crate: it needs no network, no rustc invocation, and no
//! third-party dependencies, so it works in the most restricted CI
//! sandbox. It complements (not replaces) `cargo clippy` with the
//! workspace deny-list: clippy enforces expression-level lints, xtask
//! enforces the *policy* invariants a lint pass can't express —
//! crate-header pragmas, manifest opt-ins, and the panic-free-library
//! rule with this workspace's documented-`expect` exception.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&workspace_root(), args.iter().any(|a| a == "--json")),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--json]");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint    offline static-analysis pass over all workspace crates");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}
