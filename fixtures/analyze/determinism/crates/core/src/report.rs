//! Report rendering with every seeded hazard class.

use std::collections::HashMap;
use std::time::Instant;

/// Seed: `fn render_json` marks this module report-affecting.
pub fn render_json(values: &[f64], keys: &HashMap<u32, u32>, t0: Instant) -> String {
    let threads = std::thread::available_parallelism();
    let corpus = std::env::var("COMMORDER_CORPUS");
    let total = values.iter().sum::<f64>();
    let folded = values.iter().fold(0.25, |acc, v| acc + v);
    format!(
        "{} {threads:?} {corpus:?} {total} {folded} {:?}",
        keys.len(),
        t0.elapsed()
    )
}
