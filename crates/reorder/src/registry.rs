//! Name-keyed technique registry.
//!
//! Every user-facing surface that turns a string into a technique — the
//! CLI's `--techniques` flag, the advisor, [`crate::paper_suite`] — goes
//! through this one table, so a technique registered here is immediately
//! reachable everywhere. Names are case-insensitive; `seed` feeds the
//! seeded techniques (RANDOM, RABBIT-FLAT).

use crate::{
    Bisection, Boba, Dbg, DegSort, FlatCommunity, Gorder, HubGroup, HubSort, LabelPropagation,
    Original, Rabbit, RabbitPlusPlus, RandomOrder, Rcm, RcmPlusPlus, Reordering, SlashBurn,
};

/// Canonical (lowercase) names accepted by [`technique_by_name`], for
/// help text and exhaustive iteration. Aliases (`rabbitpp`, `rcmpp`,
/// `rabbitflat`) are accepted on parse but not listed.
pub const TECHNIQUE_NAMES: &[&str] = &[
    "original",
    "random",
    "degsort",
    "dbg",
    "hubsort",
    "hubgroup",
    "rcm",
    "rcm++",
    "gorder",
    "rabbit",
    "rabbit++",
    "rabbit-flat",
    "boba",
    "slashburn",
    "bisection",
    "labelprop",
];

/// Resolves a (case-insensitive) technique name to an instance with
/// default configuration. Returns `None` for unknown names.
#[must_use]
pub fn technique_by_name(name: &str, seed: u64) -> Option<Box<dyn Reordering>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "original" => Box::new(Original),
        "random" => Box::new(RandomOrder::new(seed)),
        "degsort" => Box::new(DegSort),
        "dbg" => Box::new(Dbg::default()),
        "hubsort" => Box::new(HubSort),
        "hubgroup" => Box::new(HubGroup),
        "rcm" => Box::new(Rcm),
        "rcm++" | "rcmpp" => Box::new(RcmPlusPlus::default()),
        "gorder" => Box::new(Gorder::default()),
        "rabbit" => Box::new(Rabbit::new()),
        "rabbit++" | "rabbitpp" => Box::new(RabbitPlusPlus::new()),
        "rabbit-flat" | "rabbitflat" => Box::new(FlatCommunity::new(seed)),
        "boba" => Box::new(Boba),
        "slashburn" => Box::new(SlashBurn::default()),
        "bisection" => Box::new(Bisection::default()),
        "labelprop" => Box::new(LabelPropagation::default()),
        _ => return None,
    })
}

/// Parses a comma-separated technique list (e.g. `"rabbit++,boba,rcm"`)
/// into instances, preserving order and skipping empty items.
///
/// # Errors
///
/// Returns the first unknown name, with the accepted names appended.
pub fn parse_technique_list(list: &str, seed: u64) -> Result<Vec<Box<dyn Reordering>>, String> {
    let mut techniques = Vec::new();
    for item in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match technique_by_name(item, seed) {
            Some(t) => techniques.push(t),
            None => {
                return Err(format!(
                    "unknown technique '{item}' (expected one of: {})",
                    TECHNIQUE_NAMES.join(", ")
                ))
            }
        }
    }
    Ok(techniques)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_resolves() {
        for name in TECHNIQUE_NAMES {
            let t = technique_by_name(name, 7).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn lookup_is_case_insensitive_with_aliases() {
        assert_eq!(technique_by_name("RABBIT", 0).unwrap().name(), "RABBIT");
        assert_eq!(technique_by_name("rabbitpp", 0).unwrap().name(), "RABBIT++");
        assert_eq!(technique_by_name("rcmpp", 0).unwrap().name(), "RCM++");
        assert_eq!(technique_by_name("BOBA", 0).unwrap().name(), "BOBA");
        assert!(technique_by_name("metis", 0).is_none());
    }

    #[test]
    fn list_parsing_preserves_order_and_reports_unknowns() {
        let ts = parse_technique_list("rabbit++, boba ,rcm++", 3).unwrap();
        let names: Vec<_> = ts.iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names, vec!["RABBIT++", "BOBA", "RCM++"]);
        let err = match parse_technique_list("rabbit,metis", 3) {
            Err(e) => e,
            Ok(_) => panic!("metis must be rejected"),
        };
        assert!(err.contains("metis"), "{err}");
        assert!(err.contains("rabbit++"), "{err}");
    }

    #[test]
    fn seed_threads_into_seeded_techniques() {
        use commorder_synth::generators::PlantedPartition;
        let g = PlantedPartition::uniform(128, 4, 6.0, 0.1)
            .generate(5)
            .unwrap();
        let a = technique_by_name("random", 1).unwrap().reorder(&g).unwrap();
        let b = technique_by_name("random", 2).unwrap().reorder(&g).unwrap();
        assert_ne!(a, b, "different seeds must give different random orders");
    }
}
