//! Golden tests: each seeded-bad fixture workspace must reproduce its
//! findings report byte-for-byte.
//!
//! The fixtures under `fixtures/analyze/` are miniature workspaces that
//! deliberately violate one rule family each; the goldens under
//! `fixtures/analyze/golden/` were frozen from `commorder-cli analyze
//! --source <fixture> --json`. A byte-exact comparison pins message
//! wording, sort order, anchors, and the JSON framing all at once — the
//! same framing the `CHK1101` validator in `commorder-check` audits.

use std::path::PathBuf;

use commorder_analyze::{analyze_workspace, AnalyzerConfig};

/// Workspace-relative fixture root for `name`.
fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../fixtures/analyze")
        .join(name)
}

/// Runs the analyzer over the named fixture and compares against its
/// golden, listing a readable diff context on mismatch. Set
/// `COMMORDER_UPDATE_GOLDEN=1` to rewrite the golden instead — the
/// refreeze path used after a deliberate schema or wording change.
fn assert_golden(name: &str) {
    let report = analyze_workspace(&fixture_root(name), &AnalyzerConfig::default())
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    let got = report.render_json();
    let golden_path = fixture_root("golden").join(format!("{name}.json"));
    if std::env::var_os("COMMORDER_UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::write(&golden_path, &got)
            .unwrap_or_else(|e| panic!("writing golden {}: {e}", golden_path.display()));
        return;
    }
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
    assert!(
        got == want,
        "fixture {name} drifted from its golden\n--- got ---\n{got}\n--- want ---\n{want}"
    );
}

#[test]
fn source_rules_fixture_matches_golden() {
    assert_golden("source_rules");
}

#[test]
fn layering_fixture_matches_golden() {
    assert_golden("layering");
}

#[test]
fn determinism_fixture_matches_golden() {
    assert_golden("determinism");
}

#[test]
fn telemetry_fixture_matches_golden() {
    assert_golden("telemetry");
}

#[test]
fn hotpath_fixture_matches_golden() {
    assert_golden("hotpath");
}

#[test]
fn concurrency_fixture_matches_golden() {
    assert_golden("concurrency");
}

#[test]
fn callgraph_fixture_matches_golden() {
    assert_golden("callgraph");
}

#[test]
fn effects_fixture_matches_golden() {
    assert_golden("effects");
}

#[test]
fn collision_fixture_matches_golden() {
    assert_golden("collision");
}

/// The collision fixture must resolve the typed receiver to exactly
/// one `width`: a bare-name binding would add a false `Coo::width`
/// edge and bump `ambiguous` — the regression the typed resolver
/// exists to prevent.
#[test]
fn collision_fixture_binds_one_method() {
    let report = analyze_workspace(&fixture_root("collision"), &AnalyzerConfig::default())
        .expect("collision fixture analyzes");
    assert!(
        report.findings.is_empty(),
        "collision fixture must be clean"
    );
    let g = report.callgraph.as_ref().expect("call graph present");
    assert_eq!(g.ambiguous, 0, "typed receiver left an ambiguous site");
    let node = |needle: &str| {
        g.nodes
            .iter()
            .position(|n| n.contains(needle))
            .unwrap_or_else(|| panic!("node {needle} missing")) as u32
    };
    let caller = node("::reorder@");
    let csr = node("Csr::width");
    let coo = node("Coo::width");
    let outs: Vec<u32> = g
        .edges
        .iter()
        .filter(|&&(u, _)| u == caller)
        .map(|&(_, v)| v)
        .collect();
    assert_eq!(
        outs,
        vec![csr],
        "caller must bind Csr::width and nothing else"
    );
    assert!(
        !g.edges.contains(&(caller, coo)),
        "bare-name collision edge resurfaced"
    );
}

#[test]
fn every_code_is_reproduced_by_some_fixture() {
    use std::collections::BTreeSet;

    let mut seen: BTreeSet<String> = BTreeSet::new();
    for name in [
        "source_rules",
        "layering",
        "determinism",
        "telemetry",
        "hotpath",
        "concurrency",
        "callgraph",
        "effects",
        "collision",
    ] {
        let report = analyze_workspace(&fixture_root(name), &AnalyzerConfig::default())
            .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
        seen.extend(report.findings.iter().map(|f| f.code.to_string()));
    }
    // XT0004 is deliberately absent from the reports (it is the
    // allowlist-application demo) but reproduced by the suppressed
    // fixture file, so assert it separately via a no-allowlist config.
    let config = AnalyzerConfig {
        allowlist_rel: "no-such-allowlist.txt".to_string(),
        ..AnalyzerConfig::default()
    };
    let unsuppressed = analyze_workspace(&fixture_root("source_rules"), &config)
        .unwrap_or_else(|e| panic!("fixture source_rules: {e}"));
    seen.extend(unsuppressed.findings.iter().map(|f| f.code.to_string()));

    let missing: Vec<&str> = commorder_analyze::codes::CODE_TABLE
        .iter()
        .map(|info| info.code)
        .filter(|code| !seen.contains(*code))
        .collect();
    assert!(missing.is_empty(), "codes without a fixture: {missing:?}");
}
