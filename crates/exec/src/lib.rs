//! `commorder-exec` — a deterministic work-stealing execution engine for
//! experiment grids.
//!
//! Every figure and table of the paper is a grid of independent
//! (matrix × technique × kernel × policy) evaluations. This crate fans
//! such a grid across N OS threads (`std::thread` only — the workspace
//! is offline and registry-free) while keeping the *results* exactly as
//! deterministic as a serial loop:
//!
//! * **Stable ordering** — outputs are returned in job-submission order
//!   no matter which worker ran which job or in what order jobs
//!   finished. A run with 1 thread and a run with 16 threads produce the
//!   same `Vec` (provided the job function itself is deterministic).
//! * **Per-job observability** — each job reports the time it spent
//!   waiting in a queue separately from the time it spent executing
//!   ([`JobTiming`]), so wall-clock measurements (e.g. reordering
//!   pre-processing time, §VI-C of the paper) exclude scheduling noise.
//! * **Engine counters** — [`EngineStats`] records per-worker job
//!   counts, steal counts and the wall-clock of the whole batch, which
//!   the experiment binaries print as a utilization summary.
//!
//! # Worker model
//!
//! Jobs are distributed round-robin into one double-ended queue per
//! worker before any worker starts. Each worker pops from the *front* of
//! its own queue; when its queue drains it scans the other queues and
//! steals from the *back* (classic work-stealing, coarse-grained — jobs
//! here are whole matrix evaluations, so a `Mutex<VecDeque>` per worker
//! costs nothing measurable). When a full scan finds every queue empty
//! the worker exits: no job is ever enqueued after the batch starts, so
//! an empty scan is a correct termination proof.
//!
//! # Example
//!
//! ```
//! use commorder_exec::Engine;
//!
//! let engine = Engine::new(4);
//! let squares = engine.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;

pub use engine::{Engine, EngineStats, JobFailure, JobOutput, JobTiming};
