//! `commorder-analyze`: token-stream semantic source analysis for the
//! commorder workspace.
//!
//! The crate replaces the old line-regex lint with a real (if small)
//! program analysis. A zero-dependency lossless [`lexer`] turns each
//! source file into a spanned token stream; [`items`] extracts the
//! structural facts the passes share (`#[cfg(test)]` regions,
//! `macro_rules!` bodies, `use` trees, path chains); and four passes
//! produce findings with stable `XT` codes from [`codes`]:
//!
//! 1. [`source_rules`] — the call-site, crate-header, and doc rules
//!    (`XT0001`–`XT0301`), now immune to string/comment false
//!    positives;
//! 2. [`layering`] — inter-crate and intra-crate dependency graphs
//!    from `use`/path tokens, checked against a declared layer table
//!    with Tarjan SCC cycle reports (`XT0401`–`XT0404`);
//! 3. [`determinism`] — nondeterminism hazards in modules reachable
//!    from `render_json`/`Pipeline` (`XT0501`–`XT0504`);
//! 4. [`telemetry_names`] — `span!`/`counter!`/`gauge!`/`observe!`
//!    string literals diffed against the `names.rs` registry
//!    (`XT0601`–`XT0604`);
//! 5. [`callgraph`] — a workspace-wide symbol table and
//!    intra-workspace call graph with seeded reachability, feeding
//! 6. [`hotpath`] — the hot-path allocation lint over loops of
//!    functions reachable from the simulate/reorder/replay seeds
//!    (`XT0801`–`XT0804`), and
//! 7. [`concurrency`] — the concurrency-safety audit of the engine
//!    crates plus worker-reachability rules (`XT0901`–`XT0905`), and
//! 8. [`effects`] — interprocedural effect inference: a fixed-point
//!    bottom-up effect lattice (allocates/locks/panics/does_io/
//!    nondeterministic/unsafe) over the call-graph SCC condensation
//!    with shortest-witness provenance, driving the inferred-effect
//!    rules (`XT1001`–`XT1005`).
//!
//! Audited exceptions live in an allowlist file (one justified
//! `(code, file)` pair per line); allowlist hygiene is itself checked
//! (`XT0701`/`XT0702`). Entry point: [`analyze_workspace`] with an
//! [`AnalyzerConfig`] (the [`Default`] config describes the commorder
//! workspace). The analyzer self-hosts: `cargo run -p xtask -- lint`
//! runs it over this very crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod codes;
pub mod concurrency;
pub mod determinism;
pub mod effects;
pub mod findings;
pub mod hotpath;
pub mod items;
pub mod layering;
pub mod lexer;
pub mod model;
pub mod source_rules;
pub mod telemetry_names;
pub mod workspace;

pub use findings::{AnalysisReport, Finding, Severity};
pub use lexer::{lex, Token, TokenKind};
pub use workspace::{analyze_workspace, AnalyzerConfig};
