//! Graph-analytics scenario: PageRank and BFS before and after
//! reordering — the paper's claim that reordering is a pre-processing
//! optimization for *irregular workloads in general*, demonstrated on
//! the workload family RABBIT originally came from.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use commorder::cachesim::graph_trace::{BfsTrace, PagerankTrace};
use commorder::prelude::*;
use commorder::reorder::advisor::{Advisor, Budget};
use commorder::sparse::graph::pagerank;
use commorder::synth::generators::CommunityHub;

fn simulate(gpu: &GpuSpec, source: &dyn TraceSource) -> (f64, f64) {
    let mut cache = LruCache::new(gpu.l2);
    cache.consume(source);
    let stats = cache.finish();
    (stats.dram_traffic_bytes() as f64 / 1e6, stats.hit_rate())
}

fn main() -> Result<(), commorder::sparse::SparseError> {
    let matrix = CommunityHub {
        n: 16_384,
        communities: 128,
        intra_degree: 10.0,
        hub_fraction: 0.02,
        hub_degree: 24.0,
        mixing: 0.1,
        scramble_ids: true,
    }
    .generate(7)?;
    println!(
        "web-like graph: {} vertices, {} edges",
        matrix.n_rows(),
        matrix.nnz() / 2
    );

    // Ask the advisor what to run (it inspects skew/insularity itself).
    let rec = Advisor::default().recommend(&matrix, Budget::Amortized)?;
    println!("advisor: {} — {}\n", rec.technique.name(), rec.rationale);
    let reordered = matrix.permute_symmetric(&rec.technique.reorder(&matrix)?)?;

    let gpu = GpuSpec::test_scale();
    let mut table = Table::new(
        "graph kernels on the simulated L2",
        vec![
            "kernel".into(),
            "before (MB, hit rate)".into(),
            "after (MB, hit rate)".into(),
        ],
    );
    let (mb_a, hr_a) = simulate(&gpu, &PagerankTrace::new(&matrix, 3));
    let (mb_b, hr_b) = simulate(&gpu, &PagerankTrace::new(&reordered, 3));
    table.add_row(vec![
        "PageRank x3".into(),
        format!("{mb_a:.1} MB, {}", Table::percent(hr_a)),
        format!("{mb_b:.1} MB, {}", Table::percent(hr_b)),
    ]);
    let (mb_a, hr_a) = simulate(&gpu, &BfsTrace::new(&matrix, 0));
    let (mb_b, hr_b) = simulate(&gpu, &BfsTrace::new(&reordered, 0));
    table.add_row(vec![
        "BFS".into(),
        format!("{mb_a:.1} MB, {}", Table::percent(hr_a)),
        format!("{mb_b:.1} MB, {}", Table::percent(hr_b)),
    ]);
    println!("{table}");

    // The numerics are untouched: top-ranked pages keep their ranks.
    let pr = pagerank(&matrix, 0.85, 20)?;
    let top = pr.iter().cloned().fold(0f32, f32::max);
    println!("top PageRank score (order-independent): {top:.6}");
    Ok(())
}
