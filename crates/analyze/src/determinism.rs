//! The determinism lint (`XT0501`–`XT0504`).
//!
//! The workspace's headline guarantee is byte-identical reports, so
//! any module whose output can reach a report renderer must avoid the
//! classic nondeterminism sources. Seeds are modules defining
//! `fn render_json` or a `Pipeline` type; the closure follows the
//! module reachability graph forward (a seed's dependencies feed its
//! output). Inside the closure the pass flags:
//!
//! * `XT0501` — `HashMap`/`HashSet` (iteration order varies per run);
//! * `XT0502` — `Instant`/`SystemTime` (clock-derived values);
//! * `XT0503` — `std::env` reads and `available_parallelism` (config
//!   must be threaded explicitly, not sniffed from the environment);
//! * `XT0504` — float accumulation-order hazards (`.sum::<f32/f64>()`,
//!   `fold(0.0, …)`), a warning because order can be deliberate.
//!
//! Audited exceptions live in the allowlist file with a justification
//! per entry.

use std::collections::BTreeSet;

use crate::codes;
use crate::findings::{Finding, Severity};
use crate::items::{code_indices, in_ranges};
use crate::lexer::TokenKind;
use crate::model::{CrateData, FileData, FileRole, ReachNode};

/// Runs the determinism pass over the reachability graph.
#[must_use]
pub fn check(crates: &[CrateData], edges: &BTreeSet<(ReachNode, ReachNode)>) -> Vec<Finding> {
    // Seed nodes: modules (or facades) defining a report renderer or
    // the pipeline type.
    let mut reachable: BTreeSet<ReachNode> = BTreeSet::new();
    let mut frontier: Vec<ReachNode> = Vec::new();
    for (ci, c) in crates.iter().enumerate() {
        for f in &c.files {
            if f.is_bin || !is_seed(f) {
                continue;
            }
            let node: ReachNode = match &f.role {
                FileRole::Facade => (ci, None),
                FileRole::Module(m) => (ci, Some(m.clone())),
                FileRole::Bin => continue,
            };
            if reachable.insert(node.clone()) {
                frontier.push(node);
            }
        }
    }
    // Forward closure.
    while let Some(node) = frontier.pop() {
        for (src, dst) in edges {
            if *src == node && reachable.insert(dst.clone()) {
                frontier.push(dst.clone());
            }
        }
    }

    let mut out = Vec::new();
    for (ci, c) in crates.iter().enumerate() {
        for f in &c.files {
            if f.is_bin {
                continue;
            }
            let node: ReachNode = match &f.role {
                FileRole::Facade => (ci, None),
                FileRole::Module(m) => (ci, Some(m.clone())),
                FileRole::Bin => continue,
            };
            if reachable.contains(&node) {
                scan_hazards(f, &mut out);
            }
        }
    }
    out
}

/// `true` when the file defines `fn render_json` or a `Pipeline`
/// type (`struct Pipeline` / `impl Pipeline`), outside tests.
fn is_seed(f: &FileData) -> bool {
    let code = code_indices(&f.tokens);
    let text = |at: usize| {
        code.get(at).map(|&i| {
            let t = &f.tokens[i];
            (t.kind, t.text(&f.src), t.start)
        })
    };
    (0..code.len()).any(|i| {
        let Some((kind, word, start)) = text(i) else {
            return false;
        };
        if kind != TokenKind::Ident || in_ranges(start, &f.test_ranges) {
            return false;
        }
        let next = text(i + 1).map(|(_, w, _)| w);
        (word == "fn" && next == Some("render_json"))
            || ((word == "struct" || word == "impl") && next == Some("Pipeline"))
    })
}

/// Scans one reachable file for the four hazard patterns.
fn scan_hazards(f: &FileData, out: &mut Vec<Finding>) {
    let code = code_indices(&f.tokens);
    let tok = |at: usize| code.get(at).map(|&i| &f.tokens[i]);
    let word =
        |at: usize| tok(at).and_then(|t| (t.kind == TokenKind::Ident).then(|| t.text(&f.src)));
    let punct = |at: usize, c: char| {
        tok(at).is_some_and(|t| t.kind == TokenKind::Punct && t.text(&f.src).starts_with(c))
    };
    let push = |out: &mut Vec<Finding>,
                code: &'static str,
                severity: Severity,
                at: usize,
                message: String| {
        if let Some(t) = tok(at) {
            out.push(Finding {
                code,
                severity,
                file: f.rel.clone(),
                line: t.line,
                col_start: t.col,
                col_end: t.col + u32::try_from(t.len()).unwrap_or(0),
                message,
            });
        }
    };

    for i in 0..code.len() {
        let Some(t) = tok(i) else {
            continue;
        };
        if in_ranges(t.start, &f.test_ranges) {
            continue;
        }
        let Some(w) = word(i) else {
            continue;
        };
        match w {
            "HashMap" | "HashSet" => push(
                out,
                codes::HASH_CONTAINER,
                Severity::Error,
                i,
                format!(
                    "`{w}` in a report-affecting module: iteration order is nondeterministic; use a BTree collection or sort before iterating"
                ),
            ),
            "Instant" | "SystemTime" => push(
                out,
                codes::CLOCK_READ,
                Severity::Error,
                i,
                format!(
                    "`{w}` in a report-affecting module: clock-derived values must stay out of deterministic reports"
                ),
            ),
            "env" if punct(i + 1, ':')
                && punct(i + 2, ':')
                && word(i + 3).is_some_and(|v| v.starts_with("var")) =>
            {
                push(
                    out,
                    codes::ENV_READ,
                    Severity::Error,
                    i,
                    "environment read in a report-affecting module: thread configuration through explicit parameters".to_string(),
                );
            }
            "available_parallelism" => push(
                out,
                codes::ENV_READ,
                Severity::Error,
                i,
                "thread-count read in a report-affecting module: take the thread count as an explicit parameter".to_string(),
            ),
            "sum" if punct(i.wrapping_sub(1), '.')
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && punct(i + 3, '<')
                && word(i + 4).is_some_and(|v| v == "f32" || v == "f64") =>
            {
                push(
                    out,
                    codes::FLOAT_ACCUMULATION,
                    Severity::Warning,
                    i,
                    "float sum in a report-affecting module: accumulation order changes the result; document the order or use a fixed reduction".to_string(),
                );
            }
            "fold" if punct(i + 1, '(')
                && tok(i + 2).is_some_and(|t| {
                    t.kind == TokenKind::NumLit && t.text(&f.src).contains('.')
                }) =>
            {
                push(
                    out,
                    codes::FLOAT_ACCUMULATION,
                    Severity::Warning,
                    i,
                    "float fold in a report-affecting module: accumulation order changes the result; document the order or use a fixed reduction".to_string(),
                );
            }
            _ => {}
        }
    }
}
