//! The concurrency-safety audit (`XT0901`–`XT0905`).
//!
//! A panicking or deadlocking worker breaks the engine's determinism
//! contract, so the engine crates (see `AnalyzerConfig::engine_crates`)
//! get five lexical checks on top of the workspace-wide rules:
//!
//! * `XT0901` — an `unsafe` token whose nearest preceding non-trivia
//!   neighbour is not a comment containing `SAFETY:`;
//! * `XT0902` — a lock acquired (`.lock()`, `.read()`, `.write()`)
//!   while a *let-bound* guard from an earlier acquisition is still in
//!   scope (temporaries consumed within their own statement do not
//!   count);
//! * `XT0903` — `Ordering::Relaxed` outside tests: every relaxed
//!   atomic must be audited through the allowlist;
//! * `XT0904` / `XT0905` — `.unwrap()`/`.expect()` and slice indexing
//!   in functions reachable from a worker-closure seed, workspace-wide
//!   via the call graph (the static counterparts of the engine's
//!   panic-containment wrapper).

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::codes;
use crate::findings::{Finding, Severity};
use crate::items::{code_indices, in_ranges};
use crate::lexer::{Token, TokenKind};
use crate::model::CrateData;

fn is_punct(tok: &Token, src: &str, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text(src).len() == 1 && tok.text(src).starts_with(c)
}

fn ident_is(tok: &Token, src: &str, word: &str) -> bool {
    tok.kind == TokenKind::Ident && tok.text(src) == word
}

fn ident_in(tok: &Token, src: &str, words: &[&str]) -> bool {
    tok.kind == TokenKind::Ident && words.contains(&tok.text(src))
}

/// Token-anchored finding constructor shared by every rule here.
fn at(code: &'static str, f: &crate::model::FileData, t: &Token, message: String) -> Finding {
    Finding {
        code,
        severity: Severity::Error,
        file: f.rel.clone(),
        line: t.line,
        col_start: t.col,
        col_end: t.col + u32::try_from(t.end - t.start).unwrap_or(0),
        message,
    }
}

/// Runs the audit: per-file rules over the engine crates plus
/// graph-reachability rules over the whole workspace.
#[must_use]
pub fn check(
    crates: &[CrateData],
    graph: &CallGraph,
    engine_crates: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for c in crates {
        if !engine_crates.contains(&c.dir_name) {
            continue;
        }
        for f in &c.files {
            scan_engine_file(f, &mut findings);
        }
    }
    worker_reach_rules(crates, graph, &mut findings);
    findings
}

/// `XT0901`–`XT0903` over one engine-crate file.
fn scan_engine_file(f: &crate::model::FileData, findings: &mut Vec<Finding>) {
    let src = &f.src;
    let tokens = &f.tokens;
    let code = code_indices(tokens);

    // Live let-bound lock guards seen so far: (acquisition byte
    // position, scope-end byte, line of the acquisition).
    let mut guards: Vec<(usize, usize, u32)> = Vec::new();

    for (ci, &idx) in code.iter().enumerate() {
        let t = &tokens[idx];
        if in_ranges(t.start, &f.test_ranges) || in_ranges(t.start, &f.macro_ranges) {
            continue;
        }
        if ident_is(t, src, "unsafe") && !safety_comment_before(src, tokens, idx) {
            findings.push(at(
                codes::UNSAFE_NO_SAFETY_COMMENT,
                f,
                t,
                "`unsafe` without an adjacent `// SAFETY:` comment explaining the proof"
                    .to_string(),
            ));
        }
        if ident_is(t, src, "Relaxed")
            && ci >= 3
            && is_punct(&tokens[code[ci - 1]], src, ':')
            && is_punct(&tokens[code[ci - 2]], src, ':')
            && ident_is(&tokens[code[ci - 3]], src, "Ordering")
        {
            findings.push(at(
                codes::RELAXED_ORDERING,
                f,
                t,
                "`Ordering::Relaxed` must be audited: justify via the allowlist or strengthen"
                    .to_string(),
            ));
        }
        // Lock acquisitions: `.lock()`, `.read()`, `.write()`.
        let after_dot = ci >= 1 && is_punct(&tokens[code[ci - 1]], src, '.');
        let opens_call = code
            .get(ci + 1)
            .is_some_and(|&k| is_punct(&tokens[k], src, '('));
        if after_dot && opens_call && ident_in(t, src, &["lock", "read", "write"]) {
            if let Some(&(_, _, line)) = guards
                .iter()
                .find(|&&(acq, end, _)| t.start > acq && t.start < end)
            {
                findings.push(at(
                    codes::NESTED_LOCK,
                    f,
                    t,
                    format!(
                        "lock acquired while the guard bound at line {line} is still in scope \
                         (lock-order hazard)"
                    ),
                ));
            }
            if is_live_guard_binding(src, tokens, &code, ci) {
                let scope_end = enclosing_block_end(src, tokens, &code, ci);
                guards.push((t.start, scope_end, t.line));
            }
        }
    }
}

/// `true` when the nearest non-whitespace token before raw index `idx`
/// is a comment mentioning `SAFETY:`.
fn safety_comment_before(src: &str, tokens: &[Token], idx: usize) -> bool {
    for t in tokens[..idx].iter().rev() {
        match t.kind {
            TokenKind::Whitespace => continue,
            TokenKind::LineComment
            | TokenKind::BlockComment
            | TokenKind::DocLineComment
            | TokenKind::DocBlockComment => return t.text(src).contains("SAFETY:"),
            _ => return false,
        }
    }
    false
}

/// `true` when the acquisition at code index `ci` produces a guard
/// that outlives its statement: the statement starts with `let` (or
/// `if let`/`while let`) and the only methods chained after the
/// acquisition are `unwrap`/`expect` (anything else consumes the
/// guard as a temporary).
fn is_live_guard_binding(src: &str, tokens: &[Token], code: &[usize], ci: usize) -> bool {
    // Statement start: scan back to `;`, `{`, or `}`.
    let mut first = None;
    for p in (0..ci).rev() {
        let t = &tokens[code[p]];
        if is_punct(t, src, ';') || is_punct(t, src, '{') || is_punct(t, src, '}') {
            break;
        }
        first = Some(p);
    }
    let Some(first) = first else { return false };
    let head = &tokens[code[first]];
    let is_let = ident_is(head, src, "let")
        || (ident_in(head, src, &["if", "while"])
            && code
                .get(first + 1)
                .is_some_and(|&k| ident_is(&tokens[k], src, "let")));
    if !is_let {
        return false;
    }
    // Walk the chain after the acquisition's argument list.
    let Some(mut j) = skip_call(src, tokens, code, ci + 1) else {
        return false;
    };
    loop {
        let Some(&dot) = code.get(j) else { return true };
        if !is_punct(&tokens[dot], src, '.') {
            return true; // `;`, `)` … — the binding holds the guard
        }
        let Some(&m) = code.get(j + 1) else {
            return true;
        };
        if !ident_in(&tokens[m], src, &["expect", "unwrap"]) {
            return false; // chained into something else: temporary
        }
        match skip_call(src, tokens, code, j + 2) {
            Some(next) => j = next,
            None => return true,
        }
    }
}

/// If code index `at` opens a `(`, returns the index after its
/// matching `)`.
fn skip_call(src: &str, tokens: &[Token], code: &[usize], at: usize) -> Option<usize> {
    let &k = code.get(at)?;
    if !is_punct(&tokens[k], src, '(') {
        return None;
    }
    let mut depth = 0i64;
    let mut j = at;
    while j < code.len() {
        let t = &tokens[code[j]];
        if is_punct(t, src, '(') {
            depth += 1;
        } else if is_punct(t, src, ')') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// Byte offset where the block enclosing code index `ci` closes.
fn enclosing_block_end(src: &str, tokens: &[Token], code: &[usize], ci: usize) -> usize {
    let mut depth = 0i64;
    for &idx in &code[ci..] {
        let t = &tokens[idx];
        if is_punct(t, src, '{') {
            depth += 1;
        } else if is_punct(t, src, '}') {
            depth -= 1;
            if depth < 0 {
                return t.start;
            }
        }
    }
    src.len()
}

/// `XT0904`/`XT0905` over every function reachable from a worker seed.
fn worker_reach_rules(crates: &[CrateData], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let reached = graph.reachable(&graph.seeds_worker);
    for (ni, node) in graph.nodes.iter().enumerate() {
        let Some(seed) = reached[ni] else { continue };
        let seed_name = &graph.nodes[seed].name;
        let f = &crates[node.crate_idx].files[node.file_idx];
        let src = &f.src;
        let tokens = &f.tokens;
        let code = code_indices(tokens);
        for (ci, &idx) in code.iter().enumerate() {
            let t = &tokens[idx];
            if t.start < node.body.0
                || t.start >= node.body.1
                || in_ranges(t.start, &f.test_ranges)
                || in_ranges(t.start, &f.macro_ranges)
                || graph.owner(node.crate_idx, node.file_idx, t.start) != Some(ni)
            {
                continue;
            }
            let after_dot = ci >= 1 && is_punct(&tokens[code[ci - 1]], src, '.');
            let opens_call = code
                .get(ci + 1)
                .is_some_and(|&k| is_punct(&tokens[k], src, '('));
            if after_dot && opens_call && ident_in(t, src, &["expect", "unwrap"]) {
                findings.push(at(
                    codes::WORKER_PANIC_CALL,
                    f,
                    t,
                    format!(
                        "`.{}()` in `{}`, reachable from worker seed `{seed_name}`: a panicking \
                         worker breaks the engine contract",
                        t.text(src),
                        node.name
                    ),
                ));
            }
            // Indexing: `expr[…]` — the `[` directly after an
            // identifier or a closing `)`/`]`.
            if is_punct(t, src, '[') && ci >= 1 {
                let p = &tokens[code[ci - 1]];
                let indexable =
                    p.kind == TokenKind::Ident || is_punct(p, src, ')') || is_punct(p, src, ']');
                if indexable && !ident_in(p, src, &["else", "in", "match", "return"]) {
                    findings.push(at(
                        codes::WORKER_INDEXING,
                        f,
                        t,
                        format!(
                            "slice indexing in `{}`, reachable from worker seed `{seed_name}`: \
                             an out-of-bounds panic propagates into the engine",
                            node.name
                        ),
                    ));
                }
            }
        }
    }
}
