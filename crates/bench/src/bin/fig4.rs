//! **Figure 4**: percentage of insular nodes per matrix (sorted by
//! insularity) — "even for low insularity matrices, a substantial portion
//! of the matrix is insular", the observation motivating RABBIT++'s first
//! modification.

use commorder::prelude::*;
use commorder::reorder::quality;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let cases = harness.load();

    let mut rows: Vec<(String, f64, f64)> = harness.engine().map(&cases, |_, case| {
        eprintln!("[fig4] {}", case.entry.name);
        let result = Rabbit::new()
            .run(&case.matrix)
            .expect("square corpus matrix");
        let insularity = quality::insularity(&case.matrix, &result.assignment).expect("validated");
        let insular_frac =
            quality::insular_fraction(&case.matrix, &result.assignment).expect("validated");
        (case.entry.name.to_string(), insularity, insular_frac)
    });
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    let mut table = Table::new(
        "Fig. 4: percentage of insular nodes (matrices sorted by insularity)",
        vec![
            "matrix".into(),
            "insularity".into(),
            "% insular nodes".into(),
        ],
    );
    for (name, ins, frac) in &rows {
        table.add_row(vec![
            name.clone(),
            format!("{ins:.3}"),
            Table::percent(*frac),
        ]);
    }
    println!("{table}");

    let low: Vec<f64> = rows.iter().filter(|r| r.1 < 0.95).map(|r| r.2).collect();
    let high: Vec<f64> = rows.iter().filter(|r| r.1 >= 0.95).map(|r| r.2).collect();
    println!(
        "mean insular-node fraction: ins < 0.95 {} | ins >= 0.95 {}",
        Table::percent(arith_mean_ratio(&low).unwrap_or(f64::NAN)),
        Table::percent(arith_mean_ratio(&high).unwrap_or(f64::NAN)),
    );
    println!(
        "Paper shape: high-insularity matrices are almost entirely insular; \
         low-insularity matrices still have a large insular fraction"
    );
}
