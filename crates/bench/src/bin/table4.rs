//! **Table IV**: generality across kernels — run time (normalized to the
//! per-kernel ideal) for SpMV-COO, SpMM-CSR-4 and SpMM-CSR-256 under
//! RANDOM / ORIGINAL / RABBIT / RABBIT++, split by insularity.

use commorder::prelude::*;
use commorder::reorder::quality;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();

    // One grid: 4 techniques x 3 kernels. The engine computes each
    // permutation once per (matrix, technique) job and reuses it for all
    // three kernels.
    let techniques: Vec<Box<dyn Reordering>> = vec![
        Box::new(RandomOrder::new(harness.random_seed)),
        Box::new(Original),
        Box::new(Rabbit::new()),
        Box::new(RabbitPlusPlus::new()),
    ];
    let spec = harness.spec(techniques).kernels(vec![
        Kernel::SpmvCoo,
        Kernel::SpmmCsr { k: 4 },
        Kernel::SpmmCsr { k: 256 },
    ]);
    let engine = harness.engine();

    // Insularity per matrix (bucket key), computed once.
    let insularities: Vec<f64> = engine.map(&spec.matrices, |_, named| {
        eprintln!("[table4] insularity {}", named.name);
        let r = Rabbit::new()
            .run(&named.matrix)
            .expect("square corpus matrix");
        quality::insularity(&named.matrix, &r.assignment).expect("validated")
    });

    let result = spec.run(&engine).expect("valid corpus grid");
    eprintln!("[table4] engine: {}", result.stats.summary());

    for (ki, kernel) in result.kernels.iter().enumerate() {
        let mut table = Table::new(
            format!("Table IV ({}): run time normalized to ideal", kernel.name()),
            vec![
                "ordering".into(),
                "ALL".into(),
                "INS < 0.95".into(),
                "INS >= 0.95".into(),
            ],
        );
        for (ti, technique) in result.techniques.iter().enumerate() {
            let pairs: Vec<(f64, f64)> = (0..result.matrices.len())
                .map(|mi| {
                    (
                        insularities[mi],
                        result.record(mi, ti, ki, 0, 0).run.time_ratio,
                    )
                })
                .collect();
            let split = InsularitySplit::from_pairs(&pairs);
            table.add_row(vec![
                technique.clone(),
                Table::ratio(split.all),
                Table::ratio(split.low),
                Table::ratio(split.high),
            ]);
        }
        println!("{table}");
    }
    println!(
        "Paper reference (ALL / <0.95 / >=0.95):\n\
         SpMV-COO:     RANDOM 5.37/4.94/5.97   ORIGINAL 1.84/2.10/1.55  RABBIT 1.49/1.73/1.23  RABBIT++ 1.40/1.55/1.23\n\
         SpMM-CSR-4:   RANDOM 29.3/32.2/26.1   ORIGINAL 5.97/8.92/3.58  RABBIT 4.31/7.39/2.18  RABBIT++ 3.79/5.85/2.18\n\
         SpMM-CSR-256: RANDOM 139/197/75       ORIGINAL 26.8/43.8/11.0  RABBIT 20.3/50.3/3.91  RABBIT++ 18.7/44.0/3.95\n\
         Shape: RABBIT++ <= RABBIT <= ORIGINAL << RANDOM for every kernel and bucket"
    );
}
