//! Differential validation of the Belady simulator: on small traces and
//! a single fully-associative set, exhaustive search over every possible
//! eviction/bypass decision must not find fewer misses than
//! `simulate_belady` reports — i.e. our implementation of the oracle is
//! actually optimal, not just LRU-dominating.

use commorder_cachesim::belady::simulate_belady;
use commorder_cachesim::trace::Access;
use commorder_cachesim::CacheConfig;

/// Minimum achievable misses by exhaustive search. State: the set of
/// resident lines (small, so a sorted Vec works as a key); at each miss
/// every victim choice — including bypassing the incoming line — is
/// explored.
fn brute_force_min_misses(lines: &[u64], ways: usize) -> u64 {
    fn recurse(
        lines: &[u64],
        pos: usize,
        resident: &mut Vec<u64>,
        ways: usize,
        memo: &mut std::collections::HashMap<(usize, Vec<u64>), u64>,
    ) -> u64 {
        if pos == lines.len() {
            return 0;
        }
        let key = (pos, resident.clone());
        if let Some(&v) = memo.get(&key) {
            return v;
        }
        let line = lines[pos];
        let result = if resident.contains(&line) {
            recurse(lines, pos + 1, resident, ways, memo)
        } else if resident.len() < ways {
            resident.push(line);
            resident.sort_unstable();
            let r = 1 + recurse(lines, pos + 1, resident, ways, memo);
            resident.retain(|&l| l != line);
            r
        } else {
            // Try evicting each resident line, and also bypassing.
            let mut best = u64::MAX;
            let snapshot = resident.clone();
            for victim_idx in 0..snapshot.len() {
                *resident = snapshot.clone();
                resident.remove(victim_idx);
                resident.push(line);
                resident.sort_unstable();
                best = best.min(1 + recurse(lines, pos + 1, resident, ways, memo));
            }
            // Bypass: incoming line not cached.
            *resident = snapshot.clone();
            best = best.min(1 + recurse(lines, pos + 1, resident, ways, memo));
            *resident = snapshot;
            best
        };
        memo.insert(key, result);
        result
    }
    let mut memo = std::collections::HashMap::new();
    recurse(lines, 0, &mut Vec::new(), ways, &mut memo)
}

fn single_set_config(ways: u32) -> CacheConfig {
    CacheConfig {
        capacity_bytes: u64::from(ways) * 32,
        line_bytes: 32,
        associativity: ways,
    }
}

fn check(lines: &[u64], ways: u32) {
    let trace: Vec<Access> = lines.iter().map(|&l| Access::read(l * 32)).collect();
    let simulated = simulate_belady(single_set_config(ways), &trace);
    let optimal = brute_force_min_misses(lines, ways as usize);
    assert_eq!(
        simulated.misses(),
        optimal,
        "belady {} vs brute force {} on {lines:?} ({ways} ways)",
        simulated.misses(),
        optimal
    );
}

#[test]
fn matches_brute_force_on_hand_patterns() {
    check(&[0, 1, 2, 0, 1, 2], 2); // cyclic thrash
    check(&[0, 1, 0, 2, 0, 3, 0], 2); // hot line + scan
    check(&[0, 1, 2, 3, 2, 1, 0], 2); // palindrome
    check(&[5, 5, 5, 5], 1); // trivial reuse
    check(&[0, 1, 2, 3, 4, 5], 4); // pure streaming
}

#[test]
fn matches_brute_force_on_pseudo_random_traces() {
    let mut state = 0xABCDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for ways in [1u32, 2, 3] {
        for trial in 0..40 {
            let len = 4 + (next() % 9) as usize; // 4..=12 accesses
            let universe = 2 + (next() % 5); // 2..=6 distinct lines
            let lines: Vec<u64> = (0..len).map(|_| next() % universe).collect();
            check(&lines, ways);
            let _ = trial;
        }
    }
}

#[test]
fn simulator_never_beats_brute_force_even_with_writes() {
    // Writes don't change miss optimality (write-allocate counts as a
    // miss the same way); verify on mixed traces.
    let mut state = 7u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..20 {
        let len = 4 + (next() % 7) as usize;
        let lines: Vec<u64> = (0..len).map(|_| next() % 4).collect();
        let trace: Vec<Access> = lines
            .iter()
            .map(|&l| Access::new(l * 32, next() % 3 == 0))
            .collect();
        let simulated = simulate_belady(single_set_config(2), &trace);
        let optimal = brute_force_min_misses(&lines, 2);
        assert_eq!(simulated.misses(), optimal, "{lines:?}");
    }
}
