//! Fixture: name-collision regression — two types expose an
//! identically named method, and a typed receiver must bind to
//! exactly one of them (one edge, zero ambiguous sites).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod pass;
