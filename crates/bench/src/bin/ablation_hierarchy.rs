//! **Ablation**: is the *hierarchy* in RABBIT's ordering doing work?
//!
//! The paper motivates RABBIT by mapping nested communities onto the
//! multi-level cache hierarchy (§V-A). This experiment runs a two-level
//! L1+L2 stack and compares:
//!
//! * RANDOM — no structure,
//! * RABBIT-FLAT — communities contiguous, members shuffled inside
//!   (community structure *without* hierarchy),
//! * RABBIT — full dendrogram-DFS order (hierarchical),
//! * RABBIT++ — hierarchical + insular/hub grouping.
//!
//! If the hierarchy claim holds, RABBIT must beat RABBIT-FLAT at the L1
//! (the inner-community level) while both enjoy similar L2 behaviour.

use commorder::cachesim::hierarchy::CacheHierarchy;
use commorder::cachesim::{trace, CacheConfig};
use commorder::prelude::*;
use commorder::reorder::FlatCommunity;
use commorder_bench::Harness;

fn main() {
    let harness = Harness::from_env();
    harness.print_platform();
    let subset: Vec<&str> = if harness.entries.len() <= 8 {
        vec!["mini-sbm", "mini-webhub"]
    } else {
        vec!["opt-block-512", "web-stackex", "web-deep"]
    };
    let cases = harness.load_subset(&subset);

    // L1 = 1/16 of the L2 (GPU-SM-like ratio), same line size.
    let l2 = harness.gpu.l2;
    let l1 = CacheConfig {
        capacity_bytes: (l2.capacity_bytes / 16).max(u64::from(l2.line_bytes) * 16),
        ..l2
    };
    println!(
        "hierarchy: L1 {} B + L2 {} B ({}B lines)\n",
        l1.capacity_bytes, l2.capacity_bytes, l2.line_bytes
    );

    for case in &cases {
        eprintln!("[ablation_hierarchy] {}", case.entry.name);
        let mut table = Table::new(
            format!("{}: two-level cache behaviour by ordering", case.entry.name),
            vec![
                "ordering".into(),
                "L1 hit rate".into(),
                "L2 hit rate".into(),
                "DRAM traffic/compulsory".into(),
            ],
        );
        let orderings: Vec<Box<dyn Reordering>> = vec![
            Box::new(RandomOrder::new(harness.random_seed)),
            Box::new(FlatCommunity::new(harness.random_seed)),
            Box::new(Rabbit::new()),
            Box::new(RabbitPlusPlus::new()),
        ];
        let rows = harness.engine().map(&orderings, |_, ordering| {
            let perm = ordering
                .reorder(&case.matrix)
                .expect("square corpus matrix");
            let reordered = case.matrix.permute_symmetric(&perm).expect("validated");
            let mut stack = CacheHierarchy::new(l1, l2);
            trace::for_each_access(
                &reordered,
                Kernel::SpmvCsr,
                ExecutionModel::Sequential,
                |acc| {
                    stack.access(acc);
                },
            );
            let stats = stack.finish();
            let compulsory = Kernel::SpmvCsr.compulsory_bytes_for(&reordered) as f64;
            vec![
                ordering.name().to_string(),
                Table::percent(stats.l1.hit_rate()),
                Table::percent(stats.l2.hit_rate()),
                Table::ratio(stats.dram_traffic_bytes() as f64 / compulsory),
            ]
        });
        for row in rows {
            table.add_row(row);
        }
        println!("{table}");
    }
    println!(
        "Reading: RABBIT-FLAT keeps the community-level (L2) benefit but loses\n\
         L1 hit rate to RABBIT — the dendrogram DFS's nested sub-communities are\n\
         what the small inner cache captures, exactly the paper's §V-A intuition."
    );
}
